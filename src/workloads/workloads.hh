/**
 * @file
 * The MiniPy benchmark suite.
 *
 * Nineteen workloads mirroring the classic Python benchmark families
 * (richards, deltablue, nbody, fannkuch, spectral-norm, binary-trees,
 * fasta, chaos, sieve, raytrace, queens, json, strings, hashtable).
 * Each workload is a MiniPy module with an entry function
 * `run(n) -> int|float` returning a deterministic checksum, so
 * correctness can be asserted across tiers and invocations.
 */

#ifndef RIGOR_WORKLOADS_WORKLOADS_HH
#define RIGOR_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rigor {
namespace workloads {

/** Broad workload category (used in suite characterization). */
enum class Category : uint8_t
{
    ObjectOriented,
    Numeric,
    DataStructure,
    Strings,
};

/** Name of a Category. */
const char *categoryName(Category c);

/** One benchmark in the suite. */
struct WorkloadSpec
{
    std::string name;
    std::string description;
    Category category = Category::Numeric;
    /** MiniPy module source; defines `run(n)`. */
    std::string source;
    /** Entry-function argument for full experiment runs. */
    int64_t defaultSize = 0;
    /** Smaller argument for unit tests / smoke runs. */
    int64_t testSize = 0;
};

/** The full benchmark suite, in canonical order. */
const std::vector<WorkloadSpec> &suite();

/**
 * Find a workload by name.
 * @throws FatalError if the name is unknown.
 */
const WorkloadSpec &findWorkload(const std::string &name);

// Source accessors (one per workload; defined across wl_*.cc files).
const char *richardsSource();
const char *deltablueSource();
const char *binaryTreesSource();
const char *queensSource();
const char *raytraceSource();
const char *nbodySource();
const char *spectralNormSource();
const char *fannkuchSource();
const char *chaosSource();
const char *sieveSource();
const char *fastaSource();
const char *jsonEncodeSource();
const char *stringOpsSource();
const char *hashtableSource();
const char *sorSource();
const char *goPlayoutSource();
const char *regexSource();
const char *lzCompressSource();
const char *validatorSource();

} // namespace workloads
} // namespace rigor

#endif // RIGOR_WORKLOADS_WORKLOADS_HH
