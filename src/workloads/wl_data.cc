/**
 * @file
 * Data/string workloads: fasta-style sequence generation, JSON
 * encoding, string-method churn and hashtable (dict) churn. These
 * stress string allocation, dict probing and the GC-like refcount
 * traffic of temporary-object-heavy code.
 */

#include "workloads/workloads.hh"

namespace rigor {
namespace workloads {

const char *
fastaSource()
{
    return R"PY(
IM = 139968
IA = 3877
IC = 29573

ALPHABET = 'acgtBDHKMNRSVWY'
CUM = [0.27, 0.39, 0.66, 0.93, 0.935, 0.94, 0.945, 0.95,
       0.955, 0.96, 0.965, 0.97, 0.975, 0.98, 1.0]

def run(n):
    seed = 42
    parts = []
    checksum = 0
    i = 0
    while i < n:
        seed = (seed * IA + IC) % IM
        r = seed / IM
        k = 0
        while CUM[k] < r:
            k += 1
        c = ALPHABET[k]
        parts.append(c)
        checksum += ord(c)
        i += 1
    s = ''.join(parts)
    return len(s) * 1000 + checksum % 1000
)PY";
}

const char *
jsonEncodeSource()
{
    return R"PY(
def encode(value):
    t = typename(value)
    if t == 'NoneType':
        return 'null'
    if t == 'bool':
        if value:
            return 'true'
        return 'false'
    if t == 'int' or t == 'float':
        return str(value)
    if t == 'str':
        return '"' + value + '"'
    if t == 'list':
        parts = []
        for item in value:
            parts.append(encode(item))
        return '[' + ','.join(parts) + ']'
    if t == 'dict':
        parts = []
        for k, v in value.items():
            parts.append('"' + k + '":' + encode(v))
        return '{' + ','.join(parts) + '}'
    if t == 'Wrapper':
        return encode(value.value)
    return '?'

class Wrapper:
    def __init__(self, value):
        self.value = value

def make_record(i):
    rec = {}
    rec['id'] = i
    rec['name'] = 'record-' + str(i)
    rec['score'] = i * 0.5
    rec['active'] = i % 2 == 0
    tags = []
    j = 0
    while j < 4:
        tags.append('tag' + str((i + j) % 10))
        j += 1
    rec['tags'] = tags
    inner = {}
    inner['x'] = i % 17
    inner['y'] = (i * 31) % 23
    rec['pos'] = inner
    return rec

def run(n):
    total = 0
    i = 0
    while i < n:
        s = encode(make_record(i))
        total += len(s)
        i += 1
    return total
)PY";
}

const char *
stringOpsSource()
{
    return R"PY(
WORDS = ['alpha', 'beta', 'gamma', 'delta', 'epsilon', 'zeta',
         'eta', 'theta', 'iota', 'kappa']

def run(n):
    checksum = 0
    i = 0
    while i < n:
        w = WORDS[i % 10]
        up = w.upper()
        joined = '-'.join([w, up, str(i)])
        replaced = joined.replace('-', '_')
        pieces = replaced.split('_')
        checksum += len(pieces)
        rebuilt = ''
        for p in pieces:
            rebuilt = rebuilt + p
        checksum += len(rebuilt)
        if rebuilt.startswith('alpha'):
            checksum += 1
        found = rebuilt.find('A')
        if found >= 0:
            checksum += found
        i += 1
    return checksum
)PY";
}

const char *
hashtableSource()
{
    return R"PY(
def run(n):
    d = {}
    i = 0
    while i < n:
        d['key' + str(i)] = i * 3
        i += 1
    total = 0
    i = 0
    while i < n:
        total += d['key' + str(i)]
        i += 1
    # Delete every third key, then re-probe with get().
    i = 0
    while i < n:
        del d['key' + str(i)]
        i += 3
    i = 0
    while i < n:
        total += d.get('key' + str(i), -1)
        i += 1
    misses = 0
    i = 0
    while i < n:
        if 'key' + str(i) not in d:
            misses += 1
        i += 1
    return total + misses * 7 + len(d)
)PY";
}

} // namespace workloads
} // namespace rigor
