/**
 * @file
 * Extended workloads: scimark-style SOR stencil, a Go-like
 * random-playout kernel, a backtracking regex matcher, and an
 * LZ77-style compressor. These widen the suite with 2D-array,
 * branch-heavy, recursive-matching and sliding-window behaviours.
 */

#include "workloads/workloads.hh"

namespace rigor {
namespace workloads {

const char *
sorSource()
{
    return R"PY(
def build_grid(n):
    g = []
    i = 0
    while i < n:
        row = []
        j = 0
        while j < n:
            row.append(((i * 7 + j * 13) % 10) * 0.1)
            j += 1
        g.append(row)
        i += 1
    return g

def sor_sweep(g, n, omega):
    i = 1
    while i < n - 1:
        gi = g[i]
        gim = g[i - 1]
        gip = g[i + 1]
        j = 1
        while j < n - 1:
            gi[j] = omega * 0.25 * (gim[j] + gip[j] + gi[j - 1]
                                    + gi[j + 1]) + (1.0 - omega) * gi[j]
            j += 1
        i += 1

def run(n):
    # n is the grid edge length; 8 relaxation sweeps.
    g = build_grid(n)
    sweep = 0
    while sweep < 8:
        sor_sweep(g, n, 1.25)
        sweep += 1
    total = 0.0
    i = 0
    while i < n:
        row = g[i]
        j = 0
        while j < n:
            total += row[j]
            j += 1
        i += 1
    return int(total * 100000.0)
)PY";
}

const char *
goPlayoutSource()
{
    return R"PY(
EMPTY = 0
BLACK = 1
WHITE = 2

IM = 139968
IA = 3877
IC = 29573

def neighbors(pos, size):
    out = []
    x = pos % size
    y = pos // size
    if x > 0:
        out.append(pos - 1)
    if x < size - 1:
        out.append(pos + 1)
    if y > 0:
        out.append(pos - size)
    if y < size - 1:
        out.append(pos + size)
    return out

def count_liberties(board, pos, size):
    # Flood fill of the group at pos, counting empty neighbors.
    color = board[pos]
    seen = {}
    stack = [pos]
    libs = 0
    while len(stack) > 0:
        p = stack.pop()
        if p in seen:
            continue
        seen[p] = True
        for q in neighbors(p, size):
            v = board[q]
            if v == EMPTY:
                libs += 1
            elif v == color and q not in seen:
                stack.append(q)
    return libs

def run(n):
    # n playout moves on a 9x9 board with a simple legality rule.
    size = 9
    board = [EMPTY] * (size * size)
    seed = 12345
    color = BLACK
    placed = 0
    captured = 0
    moves = 0
    while moves < n:
        seed = (seed * IA + IC) % IM
        pos = seed % (size * size)
        moves += 1
        if board[pos] != EMPTY:
            continue
        board[pos] = color
        if count_liberties(board, pos, size) == 0:
            board[pos] = EMPTY       # suicide: retract
            captured += 1
        else:
            placed += 1
            # Capture any adjacent enemy group left with no liberty.
            for q in neighbors(pos, size):
                v = board[q]
                if v != EMPTY and v != color:
                    if count_liberties(board, q, size) == 0:
                        board[q] = EMPTY
                        captured += 1
        if color == BLACK:
            color = WHITE
        else:
            color = BLACK
    stones = 0
    for v in board:
        if v != EMPTY:
            stones += 1
    return stones * 10000 + placed * 10 + captured
)PY";
}

const char *
regexSource()
{
    return R"PY(
def match_here(pattern, pi, text, ti):
    # Backtracking matcher for literals, '.', and 'x*'.
    if pi == len(pattern):
        return True
    if pi + 1 < len(pattern) and pattern[pi + 1] == '*':
        return match_star(pattern[pi], pattern, pi + 2, text, ti)
    if ti < len(text):
        c = pattern[pi]
        if c == '.' or c == text[ti]:
            return match_here(pattern, pi + 1, text, ti + 1)
    return False

def match_star(c, pattern, pi, text, ti):
    # Zero or more of c, then the rest.
    i = ti
    while True:
        if match_here(pattern, pi, text, i):
            return True
        if i >= len(text):
            return False
        if c != '.' and text[i] != c:
            return False
        i += 1

def match(pattern, text):
    if len(pattern) > 0 and pattern[0] == '^':
        return match_here(pattern, 1, text, 0)
    i = 0
    while True:
        if match_here(pattern, 0, text, i):
            return True
        if i >= len(text):
            return False
        i += 1

ALPH = 'abc'

def gen_text(seed, length):
    parts = []
    i = 0
    s = seed
    while i < length:
        s = (s * 3877 + 29573) % 139968
        parts.append(ALPH[s % 3])
        i += 1
    return ''.join(parts)

PATTERNS = ['^a.*b$', 'a*b*c', '^abc', 'c.c.c', 'b*a', '^.*cab']

def run(n):
    hits = 0
    trial = 0
    while trial < n:
        text = gen_text(trial + 1, 24)
        for p in PATTERNS:
            if match(p, text):
                hits += 1
        trial += 1
    return hits
)PY";
}

const char *
lzCompressSource()
{
    return R"PY(
def gen_data(n):
    # Repetitive text with pseudo-random interruptions.
    parts = []
    seed = 987
    words = ['the', 'quick', 'brown', 'fox', 'jumps']
    i = 0
    while i < n:
        seed = (seed * 3877 + 29573) % 139968
        parts.append(words[seed % 5])
        if seed % 7 == 0:
            parts.append(str(seed % 100))
        i += 1
    return ' '.join(parts)

def compress(data):
    # LZ77-style: greedy longest match against a 255-byte window,
    # digram index accelerates candidate lookup.
    n = len(data)
    index = {}
    out_tokens = 0
    out_bytes = 0
    i = 0
    while i < n:
        best_len = 0
        best_dist = 0
        if i + 1 < n:
            key = data[i] + data[i + 1]
            cands = index.get(key, None)
            if cands != None:
                for start in cands:
                    if i - start > 255:
                        continue
                    length = 0
                    while i + length < n and length < 63:
                        if data[start + length] != data[i + length]:
                            break
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = i - start
        # Update the digram index at this position.
        if i + 1 < n:
            key = data[i] + data[i + 1]
            cands = index.get(key, None)
            if cands == None:
                index[key] = [i]
            else:
                cands.append(i)
                if len(cands) > 8:
                    cands.pop(0)
        if best_len >= 4:
            out_tokens += 1
            out_bytes += 2
            i += best_len
        else:
            out_tokens += 1
            out_bytes += 1
            i += 1
    return out_tokens * 1000000 + out_bytes

def run(n):
    data = gen_data(n)
    return compress(data) + len(data)
)PY";
}

const char *
validatorSource()
{
    return R"PY(
def make_token(seed):
    # Roughly 60% numeric tokens, 40% malformed.
    s = (seed * 3877 + 29573) % 139968
    if s % 5 < 3:
        return str(s % 10000)
    if s % 5 == 3:
        return 'x' + str(s % 100)
    return ''

def to_int(s):
    try:
        return int(s)
    except:
        return -1

def checked_ratio(a, b):
    try:
        return a // b
    except:
        return 0

def run(n):
    good = 0
    bad = 0
    ratio_sum = 0
    i = 0
    while i < n:
        token = make_token(i)
        v = to_int(token)
        if v >= 0:
            good += v % 97
        else:
            bad += 1
        ratio_sum += checked_ratio(i, i % 7)
        i += 1
    return good * 1000 + bad + ratio_sum % 1000
)PY";
}

} // namespace workloads
} // namespace rigor
