#include "workloads/workloads.hh"

#include "support/logging.hh"

namespace rigor {
namespace workloads {

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::ObjectOriented: return "object-oriented";
      case Category::Numeric: return "numeric";
      case Category::DataStructure: return "data-structure";
      case Category::Strings: return "strings";
    }
    return "?";
}

const std::vector<WorkloadSpec> &
suite()
{
    static const std::vector<WorkloadSpec> specs = [] {
        std::vector<WorkloadSpec> s;
        auto add = [&s](const char *name, const char *desc,
                        Category cat, const char *src,
                        int64_t def_size, int64_t test_size) {
            WorkloadSpec w;
            w.name = name;
            w.description = desc;
            w.category = cat;
            w.source = src;
            w.defaultSize = def_size;
            w.testSize = test_size;
            s.push_back(std::move(w));
        };

        add("richards", "task-scheduler with polymorphic dispatch",
            Category::ObjectOriented, richardsSource(), 120, 12);
        add("deltablue", "one-way constraint propagation chains",
            Category::ObjectOriented, deltablueSource(), 60, 8);
        add("binary_trees", "allocate/walk perfect binary trees",
            Category::ObjectOriented, binaryTreesSource(), 7, 4);
        add("queens", "n-queens backtracking search",
            Category::ObjectOriented, queensSource(), 7, 5);
        add("raytrace", "sphere-intersection ray casting",
            Category::ObjectOriented, raytraceSource(), 24, 8);
        add("nbody", "planetary n-body float simulation",
            Category::Numeric, nbodySource(), 120, 10);
        add("spectral_norm", "power-iteration spectral norm",
            Category::Numeric, spectralNormSource(), 26, 8);
        add("fannkuch", "pancake-flip permutation kernel",
            Category::Numeric, fannkuchSource(), 7, 5);
        add("chaos", "mandelbrot escape-time iteration",
            Category::Numeric, chaosSource(), 28, 8);
        add("sieve", "sieve of Eratosthenes",
            Category::Numeric, sieveSource(), 6000, 100);
        add("fasta", "weighted random sequence generation",
            Category::Strings, fastaSource(), 3000, 100);
        add("json_encode", "recursive JSON serialization",
            Category::Strings, jsonEncodeSource(), 60, 6);
        add("string_ops", "string method churn",
            Category::Strings, stringOpsSource(), 400, 20);
        add("hashtable", "dict insert/lookup/delete churn",
            Category::DataStructure, hashtableSource(), 700, 40);
        add("scimark_sor", "successive over-relaxation 2D stencil",
            Category::Numeric, sorSource(), 26, 8);
        add("go_playout", "random go playout with liberty counting",
            Category::DataStructure, goPlayoutSource(), 180, 25);
        add("regex", "backtracking regular-expression matching",
            Category::Strings, regexSource(), 60, 8);
        add("lz_compress", "LZ77-style sliding-window compression",
            Category::DataStructure, lzCompressSource(), 260, 25);
        add("validator", "token parsing with exception-based errors",
            Category::Strings, validatorSource(), 900, 50);
        return s;
    }();
    return specs;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto &w : suite()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace workloads
} // namespace rigor
