/**
 * @file
 * Numeric workloads: nbody, spectral-norm, fannkuch, chaos
 * (mandelbrot) and the sieve of Eratosthenes. These stress boxed
 * float/int arithmetic and tight loops — prime JIT territory.
 */

#include "workloads/workloads.hh"

namespace rigor {
namespace workloads {

const char *
nbodySource()
{
    return R"PY(
PI = 3.141592653589793
SOLAR_MASS = 4.0 * PI * PI
DAYS_PER_YEAR = 365.24

def make_bodies():
    bodies = []
    # [x, y, z, vx, vy, vz, mass]
    bodies.append([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, SOLAR_MASS])
    bodies.append([4.84143144246472090, -1.16032004402742839,
                   -0.103622044471123109, 0.00166007664274403694 * DAYS_PER_YEAR,
                   0.00769901118419740425 * DAYS_PER_YEAR,
                   -0.0000690460016972063023 * DAYS_PER_YEAR,
                   0.000954791938424326609 * SOLAR_MASS])
    bodies.append([8.34336671824457987, 4.12479856412430479,
                   -0.403523417114321381, -0.00276742510726862411 * DAYS_PER_YEAR,
                   0.00499852801234917238 * DAYS_PER_YEAR,
                   0.0000230417297573763929 * DAYS_PER_YEAR,
                   0.000285885980666130812 * SOLAR_MASS])
    bodies.append([12.8943695621391310, -15.1111514016986312,
                   -0.223307578892655734, 0.00296460137564761618 * DAYS_PER_YEAR,
                   0.00237847173959480950 * DAYS_PER_YEAR,
                   -0.0000296589568540237556 * DAYS_PER_YEAR,
                   0.0000436624404335156298 * SOLAR_MASS])
    bodies.append([15.3796971148509165, -25.9193146099879641,
                   0.179258772950371181, 0.00268067772490389322 * DAYS_PER_YEAR,
                   0.00162824170038242295 * DAYS_PER_YEAR,
                   -0.0000951592254519715870 * DAYS_PER_YEAR,
                   0.0000515138902046611451 * SOLAR_MASS])
    return bodies

def advance(bodies, dt):
    n = len(bodies)
    i = 0
    while i < n:
        bi = bodies[i]
        j = i + 1
        while j < n:
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            d2 = dx * dx + dy * dy + dz * dz
            mag = dt / (d2 * (d2 ** 0.5))
            bim = bi[6] * mag
            bjm = bj[6] * mag
            bi[3] -= dx * bjm
            bi[4] -= dy * bjm
            bi[5] -= dz * bjm
            bj[3] += dx * bim
            bj[4] += dy * bim
            bj[5] += dz * bim
            j += 1
        bi[0] += dt * bi[3]
        bi[1] += dt * bi[4]
        bi[2] += dt * bi[5]
        i += 1

def energy(bodies):
    e = 0.0
    n = len(bodies)
    i = 0
    while i < n:
        bi = bodies[i]
        e += 0.5 * bi[6] * (bi[3] * bi[3] + bi[4] * bi[4] + bi[5] * bi[5])
        j = i + 1
        while j < n:
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            dist = (dx * dx + dy * dy + dz * dz) ** 0.5
            e -= bi[6] * bj[6] / dist
            j += 1
        i += 1
    return e

def run(n):
    bodies = make_bodies()
    i = 0
    while i < n:
        advance(bodies, 0.01)
        i += 1
    return int(energy(bodies) * 1000000.0)
)PY";
}

const char *
spectralNormSource()
{
    return R"PY(
def eval_a(i, j):
    return 1.0 / ((i + j) * (i + j + 1) // 2 + i + 1)

def mult_av(v, out):
    n = len(v)
    i = 0
    while i < n:
        s = 0.0
        j = 0
        while j < n:
            s += eval_a(i, j) * v[j]
            j += 1
        out[i] = s
        i += 1

def mult_atv(v, out):
    n = len(v)
    i = 0
    while i < n:
        s = 0.0
        j = 0
        while j < n:
            s += eval_a(j, i) * v[j]
            j += 1
        out[i] = s
        i += 1

def run(n):
    u = [1.0] * n
    v = [0.0] * n
    tmp = [0.0] * n
    it = 0
    while it < 4:
        mult_av(u, tmp)
        mult_atv(tmp, v)
        mult_av(v, tmp)
        mult_atv(tmp, u)
        it += 1
    vbv = 0.0
    vv = 0.0
    i = 0
    while i < n:
        vbv += u[i] * v[i]
        vv += v[i] * v[i]
        i += 1
    return int((vbv / vv) ** 0.5 * 1000000.0)
)PY";
}

const char *
fannkuchSource()
{
    return R"PY(
def run(n):
    # Returns max_flips * 1000 + (checksum % 1000 adjusted positive).
    perm1 = list(range(n))
    count = [0] * n
    max_flips = 0
    checksum = 0
    perm_count = 0
    r = n
    while True:
        while r != 1:
            count[r - 1] = r
            r -= 1
        if perm1[0] != 0 and perm1[n - 1] != n - 1:
            perm = list(perm1)
            flips = 0
            k = perm[0]
            while k != 0:
                i = 0
                j = k
                while i < j:
                    t = perm[i]
                    perm[i] = perm[j]
                    perm[j] = t
                    i += 1
                    j -= 1
                flips += 1
                k = perm[0]
            if flips > max_flips:
                max_flips = flips
            if perm_count % 2 == 0:
                checksum += flips
            else:
                checksum -= flips
        while True:
            if r == n:
                q = checksum % 1000
                if q < 0:
                    q += 1000
                return max_flips * 1000 + q
            perm0 = perm1[0]
            i = 0
            while i < r:
                perm1[i] = perm1[i + 1]
                i += 1
            perm1[r] = perm0
            count[r] -= 1
            if count[r] > 0:
                break
            r += 1
        perm_count += 1
)PY";
}

const char *
chaosSource()
{
    return R"PY(
def run(n):
    # Mandelbrot over an n x n grid; returns the inside-count.
    max_iter = 40
    inside = 0
    y = 0
    while y < n:
        ci = 2.0 * y / n - 1.0
        x = 0
        while x < n:
            cr = 2.0 * x / n - 1.5
            zr = 0.0
            zi = 0.0
            i = 0
            escaped = False
            while i < max_iter:
                zr2 = zr * zr
                zi2 = zi * zi
                if zr2 + zi2 > 4.0:
                    escaped = True
                    break
                zi = 2.0 * zr * zi + ci
                zr = zr2 - zi2 + cr
                i += 1
            if not escaped:
                inside += 1
            x += 1
        y += 1
    return inside
)PY";
}

const char *
sieveSource()
{
    return R"PY(
def run(n):
    # Count of primes below n, plus the largest prime found.
    flags = [True] * n
    count = 0
    largest = 0
    i = 2
    while i < n:
        if flags[i]:
            count += 1
            largest = i
            j = i * i
            while j < n:
                flags[j] = False
                j += i
        i += 1
    return count * 1000000 + largest
)PY";
}

} // namespace workloads
} // namespace rigor
