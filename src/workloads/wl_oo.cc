/**
 * @file
 * Object-oriented workloads: richards-style scheduler, deltablue-style
 * constraint propagation, binary trees, n-queens, and a small
 * raytracer. These stress dynamic dispatch, attribute-dict lookups
 * and allocation.
 */

#include "workloads/workloads.hh"

namespace rigor {
namespace workloads {

const char *
richardsSource()
{
    return R"PY(
IDLE = 0
WORKER = 1
HANDLER = 2
DEVICE = 3

class Packet:
    def __init__(self, kind, payload):
        self.kind = kind
        self.payload = payload
        self.link = None

class Task:
    def __init__(self, ident):
        self.ident = ident
        self.queue = []
        self.work_done = 0
    def enqueue(self, packet):
        self.queue.append(packet)
    def has_work(self):
        return len(self.queue) > 0
    def take(self):
        return self.queue.pop(0)
    def step(self, sched):
        return 0

class IdleTask(Task):
    def __init__(self, ident, count):
        Task.__init__(self, ident)
        self.count = count
        self.control = 1
    def step(self, sched):
        self.count -= 1
        if self.count <= 0:
            return 0
        if self.control % 2 == 0:
            self.control = self.control // 2
            sched.dispatch(Packet(WORKER, self.control))
        else:
            self.control = self.control * 3 + 1
            sched.dispatch(Packet(HANDLER, self.control))
        return 1

class WorkerTask(Task):
    def step(self, sched):
        if not self.has_work():
            return 0
        p = self.take()
        self.work_done += p.payload % 7
        sched.dispatch(Packet(DEVICE, p.payload + 1))
        return 1

class HandlerTask(Task):
    def step(self, sched):
        if not self.has_work():
            return 0
        p = self.take()
        self.work_done += 1
        if p.payload % 3 == 0:
            sched.dispatch(Packet(WORKER, p.payload // 3))
        else:
            sched.dispatch(Packet(DEVICE, p.payload))
        return 1

class DeviceTask(Task):
    def step(self, sched):
        if not self.has_work():
            return 0
        p = self.take()
        self.work_done += p.payload % 5
        return 1

class Scheduler:
    def __init__(self, idle_count):
        self.tasks = []
        self.tasks.append(IdleTask(IDLE, idle_count))
        self.tasks.append(WorkerTask(WORKER))
        self.tasks.append(HandlerTask(HANDLER))
        self.tasks.append(DeviceTask(DEVICE))
        self.steps = 0
    def dispatch(self, packet):
        self.tasks[packet.kind].enqueue(packet)
    def schedule(self):
        busy = True
        while busy:
            busy = False
            for t in self.tasks:
                if t.step(self):
                    busy = True
                    self.steps += 1

def run(n):
    total = 0
    sched = Scheduler(n)
    sched.schedule()
    for t in sched.tasks:
        total += t.work_done
    return total * 1000 + sched.steps % 1000
)PY";
}

const char *
deltablueSource()
{
    return R"PY(
class Variable:
    def __init__(self, name, value):
        self.name = name
        self.value = value
        self.stay = True

class Constraint:
    def __init__(self, output):
        self.output = output
    def execute(self):
        pass

class StayConstraint(Constraint):
    def execute(self):
        pass

class ScaleConstraint(Constraint):
    def __init__(self, src, scale, offset, output):
        Constraint.__init__(self, output)
        self.src = src
        self.scale = scale
        self.offset = offset
    def execute(self):
        self.output.value = self.src.value * self.scale.value + self.offset.value

class EqualityConstraint(Constraint):
    def __init__(self, src, output):
        Constraint.__init__(self, output)
        self.src = src
    def execute(self):
        self.output.value = self.src.value

class Planner:
    def __init__(self):
        self.plan = []
    def add(self, c):
        self.plan.append(c)
    def execute(self):
        for c in self.plan:
            c.execute()

def build_chain(n, planner):
    first = Variable('v0', 1)
    prev = first
    i = 1
    while i <= n:
        v = Variable('v' + str(i), 0)
        planner.add(EqualityConstraint(prev, v))
        prev = v
        i += 1
    return first, prev

def build_projection(n, planner):
    scale = Variable('scale', 10)
    offset = Variable('offset', 1000)
    src = Variable('src', 0)
    dst = None
    ins = src
    i = 0
    while i < n:
        dst = Variable('d' + str(i), 0)
        planner.add(ScaleConstraint(ins, scale, offset, dst))
        ins = dst
        i += 1
    return src, dst

def run(n):
    total = 0
    planner = Planner()
    first, last = build_chain(n, planner)
    src, dst = build_projection(8, planner)
    trial = 0
    while trial < 10:
        first.value = trial
        src.value = trial % 3
        planner.execute()
        total += last.value
        total += dst.value % 100000
        trial += 1
    return total
)PY";
}

const char *
binaryTreesSource()
{
    return R"PY(
class Node:
    def __init__(self, left, right):
        self.left = left
        self.right = right

def make_tree(depth):
    if depth <= 0:
        return Node(None, None)
    return Node(make_tree(depth - 1), make_tree(depth - 1))

def check_tree(node):
    if node.left == None:
        return 1
    return 1 + check_tree(node.left) + check_tree(node.right)

def run(n):
    # n is the maximum tree depth.
    min_depth = 2
    total = 0
    long_lived = make_tree(n)
    depth = min_depth
    while depth <= n:
        iterations = 1 << (n - depth + min_depth)
        i = 0
        while i < iterations:
            total += check_tree(make_tree(depth))
            i += 1
        depth += 2
    total += check_tree(long_lived)
    return total
)PY";
}

const char *
queensSource()
{
    return R"PY(
def solve(row, n, cols, diag1, diag2):
    if row == n:
        return 1
    count = 0
    col = 0
    while col < n:
        d1 = row - col + n
        d2 = row + col
        if cols[col] == 0 and diag1[d1] == 0 and diag2[d2] == 0:
            cols[col] = 1
            diag1[d1] = 1
            diag2[d2] = 1
            count += solve(row + 1, n, cols, diag1, diag2)
            cols[col] = 0
            diag1[d1] = 0
            diag2[d2] = 0
        col += 1
    return count

def run(n):
    cols = [0] * n
    diag1 = [0] * (2 * n + 1)
    diag2 = [0] * (2 * n + 1)
    return solve(0, n, cols, diag1, diag2)
)PY";
}

const char *
raytraceSource()
{
    return R"PY(
class Vec:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z
    def add(self, o):
        return Vec(self.x + o.x, self.y + o.y, self.z + o.z)
    def sub(self, o):
        return Vec(self.x - o.x, self.y - o.y, self.z - o.z)
    def scale(self, k):
        return Vec(self.x * k, self.y * k, self.z * k)
    def dot(self, o):
        return self.x * o.x + self.y * o.y + self.z * o.z

class Sphere:
    def __init__(self, center, radius, brightness):
        self.center = center
        self.radius = radius
        self.brightness = brightness
    def intersect(self, origin, direction):
        oc = origin.sub(self.center)
        b = 2.0 * oc.dot(direction)
        c = oc.dot(oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        if disc < 0.0:
            return -1.0
        root = disc ** 0.5
        t = (-b - root) / 2.0
        if t > 0.001:
            return t
        t = (-b + root) / 2.0
        if t > 0.001:
            return t
        return -1.0

def run(n):
    # n is the image width/height in pixels.
    spheres = []
    spheres.append(Sphere(Vec(0.0, 0.0, -3.0), 1.0, 10))
    spheres.append(Sphere(Vec(1.5, 0.5, -4.0), 1.0, 6))
    spheres.append(Sphere(Vec(-1.5, -0.5, -2.5), 0.5, 3))
    origin = Vec(0.0, 0.0, 0.0)
    hits = 0
    glow = 0
    y = 0
    while y < n:
        x = 0
        while x < n:
            dx = (x - n / 2.0) / n
            dy = (y - n / 2.0) / n
            d = Vec(dx, dy, -1.0)
            inv = 1.0 / (d.dot(d) ** 0.5)
            d = d.scale(inv)
            best = -1.0
            bright = 0
            for s in spheres:
                t = s.intersect(origin, d)
                if t > 0.0:
                    if best < 0.0 or t < best:
                        best = t
                        bright = s.brightness
            if best > 0.0:
                hits += 1
                glow += bright
            x += 1
        y += 1
    return hits * 100 + glow % 100
)PY";
}

} // namespace workloads
} // namespace rigor
