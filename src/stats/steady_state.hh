/**
 * @file
 * Warmup and steady-state detection for per-iteration timing series.
 *
 * Managed runtimes (JIT-compiled Python in particular) exhibit an
 * initial warmup phase before reaching steady state — and sometimes
 * never reach one. The rigorous methodology detects the warmup/steady
 * boundary per VM invocation instead of discarding a fixed number of
 * iterations, and classifies pathological series (no steady state,
 * slowdown over time) so they are reported rather than silently
 * averaged away. The approach follows Kalibera & Jones and Barrett et
 * al. (OOPSLA'17): changepoint segmentation of the series plus rules
 * over the segment means.
 */

#ifndef RIGOR_STATS_STEADY_STATE_HH
#define RIGOR_STATS_STEADY_STATE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace rigor {
namespace stats {

/** Classification of a per-iteration timing series. */
enum class SeriesClass
{
    Flat,           ///< no warmup: steady from the first iteration
    Warmup,         ///< initial slow phase, then steady state
    Slowdown,       ///< gets *slower* over time (pathological)
    NoSteadyState,  ///< oscillates between levels; no stable segment
};

/** Human-readable name of a SeriesClass. */
std::string seriesClassName(SeriesClass c);

/** One segment of a piecewise-constant fit. */
struct Segment
{
    size_t begin = 0;   ///< first index (inclusive)
    size_t end = 0;     ///< one past the last index
    double mean = 0.0;
    double variance = 0.0;

    size_t length() const { return end - begin; }
};

/** Outcome of steady-state analysis of one invocation's series. */
struct SteadyStateResult
{
    SeriesClass classification = SeriesClass::Flat;
    /** First iteration considered steady (== series length if none). */
    size_t steadyStart = 0;
    /** Piecewise-constant segmentation of the series. */
    std::vector<Segment> segments;
    /** Mean of the steady-state portion (0 if none). */
    double steadyMean = 0.0;

    /** True if a usable steady state was found. */
    bool
    hasSteadyState() const
    {
        return classification != SeriesClass::NoSteadyState;
    }
};

/** Tuning knobs for the detector. */
struct SteadyStateOptions
{
    /** Penalty multiplier for adding a changepoint (BIC-like). */
    double penaltyFactor = 3.0;
    /** Minimum segment length considered. */
    size_t minSegmentLength = 3;
    /**
     * Two adjacent segment means closer than this relative tolerance
     * are considered equivalent levels.
     */
    double equivalenceTolerance = 0.05;
    /**
     * The final segment must cover at least this fraction of the
     * series to count as a steady state.
     */
    double minSteadyFraction = 0.2;
};

/**
 * Changepoint segmentation by binary splitting with a BIC-style
 * penalty: each split must reduce the within-segment sum of squared
 * error by more than penaltyFactor * variance * log(n).
 */
std::vector<Segment> segmentSeries(const std::vector<double> &xs,
                                   const SteadyStateOptions &opts = {});

/**
 * Full steady-state analysis: segment the series, then classify it and
 * locate the steady-state start per the rules described above.
 */
SteadyStateResult detectSteadyState(const std::vector<double> &xs,
                                    const SteadyStateOptions &opts = {});

} // namespace stats
} // namespace rigor

#endif // RIGOR_STATS_STEADY_STATE_HH
