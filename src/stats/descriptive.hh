/**
 * @file
 * Descriptive statistics over samples of doubles.
 */

#ifndef RIGOR_STATS_DESCRIPTIVE_HH
#define RIGOR_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace rigor {
namespace stats {

/** Summary statistics of a sample. */
struct Summary
{
    size_t n = 0;
    double mean = 0.0;
    double variance = 0.0;   ///< unbiased (n-1) sample variance
    double stddev = 0.0;
    double sem = 0.0;        ///< standard error of the mean
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double q1 = 0.0;         ///< 25th percentile
    double q3 = 0.0;         ///< 75th percentile
    double cov = 0.0;        ///< coefficient of variation (stddev/mean)
};

/** Compute summary statistics; panics on an empty sample. */
Summary summarize(const std::vector<double> &xs);

/** Arithmetic mean; panics on an empty sample. */
double mean(const std::vector<double> &xs);

/** Unbiased sample variance (returns 0 for n < 2). */
double variance(const std::vector<double> &xs);

/** Sample standard deviation. */
double stddev(const std::vector<double> &xs);

/**
 * Percentile with linear interpolation between order statistics.
 * @param p percentile in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/** Median (50th percentile). */
double median(const std::vector<double> &xs);

/** Geometric mean; panics if any value is non-positive. */
double geomean(const std::vector<double> &xs);

/** Harmonic mean; panics if any value is non-positive. */
double harmonicMean(const std::vector<double> &xs);

/** Coefficient of variation (stddev / mean). */
double coefficientOfVariation(const std::vector<double> &xs);

/**
 * Lag-k sample autocorrelation; returns 0 when undefined (constant
 * series or k >= n).
 */
double autocorrelation(const std::vector<double> &xs, size_t lag);

/**
 * Effective sample size accounting for positive autocorrelation
 * (initial positive sequence estimator, truncated at the first
 * non-positive lag).
 */
double effectiveSampleSize(const std::vector<double> &xs);

/**
 * Indices of Tukey outliers: values outside [q1 - k*iqr, q3 + k*iqr].
 * @param k fence multiplier (1.5 = standard, 3.0 = far outliers).
 */
std::vector<size_t> tukeyOutliers(const std::vector<double> &xs,
                                  double k = 1.5);

} // namespace stats
} // namespace rigor

#endif // RIGOR_STATS_DESCRIPTIVE_HH
