/**
 * @file
 * Confidence intervals: parametric (Student-t), nonparametric
 * (bootstrap percentile), geometric-mean intervals and intervals for
 * ratios of means — the core quantities the rigorous methodology
 * reports instead of bare point estimates.
 */

#ifndef RIGOR_STATS_CI_HH
#define RIGOR_STATS_CI_HH

#include <functional>
#include <vector>

#include "support/rng.hh"

namespace rigor {
namespace stats {

/** A point estimate with a two-sided confidence interval. */
struct ConfidenceInterval
{
    double estimate = 0.0;
    double lower = 0.0;
    double upper = 0.0;
    double confidence = 0.95;

    /** Interval half-width. */
    double halfWidth() const { return (upper - lower) / 2.0; }
    /** Half-width relative to the estimate (dimensionless). */
    double relativeHalfWidth() const;
    /** True if the interval contains v. */
    bool contains(double v) const { return v >= lower && v <= upper; }
    /** True if the two intervals overlap. */
    bool overlaps(const ConfidenceInterval &o) const;
};

/**
 * Student-t confidence interval on the mean.
 * @param xs sample (n >= 2 for a finite-width interval).
 * @param confidence e.g. 0.95.
 */
ConfidenceInterval tInterval(const std::vector<double> &xs,
                             double confidence = 0.95);

/**
 * Bootstrap percentile confidence interval for an arbitrary statistic.
 * @param xs sample.
 * @param statistic functional to bootstrap (e.g. median).
 * @param rng seeded generator for resampling (reproducible).
 * @param resamples number of bootstrap resamples.
 */
ConfidenceInterval bootstrapInterval(
    const std::vector<double> &xs,
    const std::function<double(const std::vector<double> &)> &statistic,
    Rng &rng, double confidence = 0.95, int resamples = 2000);

/**
 * Confidence interval on the geometric mean, computed as a t-interval
 * in log space and exponentiated back. All values must be positive.
 */
ConfidenceInterval geomeanInterval(const std::vector<double> &xs,
                                   double confidence = 0.95);

/**
 * Confidence interval on the ratio mean(numer) / mean(denom) for two
 * independent samples, using the log-transform + Welch approximation.
 * Suitable for speedup reporting. All values must be positive.
 */
ConfidenceInterval ratioOfMeansInterval(const std::vector<double> &numer,
                                        const std::vector<double> &denom,
                                        double confidence = 0.95);

/**
 * Hierarchical bootstrap confidence interval for the ratio
 * mean-of-means(numer) / mean-of-means(denom) of two independent
 * two-level samples (samples[i][j] = iteration j of invocation i).
 *
 * Each bootstrap replicate respects the invocation→iteration nesting:
 * invocations are resampled with replacement first, then each chosen
 * invocation's iterations are resampled with replacement *within* it,
 * and the replicate statistic is the ratio of the two mean-of-means.
 * Resampling iterations across invocations would treat correlated
 * iterations as independent — exactly the naive-pooling mistake the
 * methodology exists to avoid.
 *
 * The point estimate is the ratio of the original mean-of-means. The
 * interval is the percentile interval of the replicates; with a given
 * seeded Rng the result is bit-identical on every platform.
 *
 * @param numer two-level sample of the numerator (e.g. baseline ms).
 * @param denom two-level sample of the denominator.
 * @param rng seeded generator for resampling (reproducible).
 */
ConfidenceInterval hierarchicalRatioInterval(
    const std::vector<std::vector<double>> &numer,
    const std::vector<std::vector<double>> &denom,
    Rng &rng, double confidence = 0.95, int resamples = 2000);

/**
 * Number of additional samples estimated to shrink a t-interval to the
 * requested relative half-width, given the sample's current mean and
 * standard deviation (normal-approximation planning formula).
 * @return required total sample size (>= 2).
 */
size_t requiredSampleSize(const std::vector<double> &xs,
                          double target_relative_half_width,
                          double confidence = 0.95);

} // namespace stats
} // namespace rigor

#endif // RIGOR_STATS_CI_HH
