/**
 * @file
 * Two-level hierarchical analysis of (invocation x iteration) samples.
 *
 * The rigorous methodology's central estimator: benchmark measurements
 * form a two-level hierarchy — multiple VM invocations, each with
 * multiple in-process iterations. Iterations within one invocation
 * share state (JIT code, heap layout, hash seed) and are therefore
 * correlated; treating all iterations as i.i.d. underestimates the
 * variance and produces overconfident intervals. The correct unit of
 * replication for cross-invocation effects is the invocation mean
 * (Kalibera & Jones; Georges et al., OOPSLA'07).
 */

#ifndef RIGOR_STATS_HIERARCHY_HH
#define RIGOR_STATS_HIERARCHY_HH

#include <vector>

#include "stats/ci.hh"

namespace rigor {
namespace stats {

/** Variance decomposition of a two-level sample. */
struct VarianceComponents
{
    double betweenInvocation = 0.0;  ///< variance of true invocation means
    double withinInvocation = 0.0;   ///< pooled iteration variance
    double betweenCoV = 0.0;   ///< sqrt(between) / grand mean
    double withinCoV = 0.0;    ///< sqrt(within) / grand mean
    double grandMean = 0.0;

    /** Fraction of total variance attributable to invocations. */
    double
    intraclassCorrelation() const
    {
        double total = betweenInvocation + withinInvocation;
        return total > 0.0 ? betweenInvocation / total : 0.0;
    }
};

/**
 * Mean-of-means estimate with a Student-t confidence interval whose
 * unit of replication is the invocation mean. This is the "rigorous"
 * estimator the methodology recommends.
 *
 * @param samples samples[i][j] = iteration j of invocation i. Every
 *        invocation must be non-empty; invocation counts may differ.
 */
ConfidenceInterval meanOfMeansInterval(
    const std::vector<std::vector<double>> &samples,
    double confidence = 0.95);

/**
 * ANOVA-style method-of-moments variance decomposition into
 * between-invocation and within-invocation components (balanced or
 * mildly unbalanced designs; negative between-components are clamped
 * to zero as usual).
 */
VarianceComponents decomposeVariance(
    const std::vector<std::vector<double>> &samples);

/** Per-invocation means (the replication units). */
std::vector<double> invocationMeans(
    const std::vector<std::vector<double>> &samples);

/** All iterations flattened into one vector (the *naive* pooling). */
std::vector<double> flatten(
    const std::vector<std::vector<double>> &samples);

/**
 * The *incorrect* interval obtained by pooling all iterations as if
 * they were independent. Provided so experiments can quantify how
 * overconfident the naive analysis is.
 */
ConfidenceInterval naivePooledInterval(
    const std::vector<std::vector<double>> &samples,
    double confidence = 0.95);

} // namespace stats
} // namespace rigor

#endif // RIGOR_STATS_HIERARCHY_HH
