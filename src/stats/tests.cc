#include "stats/tests.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "support/logging.hh"

namespace rigor {
namespace stats {

TestResult
welchTTest(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() < 2 || b.size() < 2)
        panic("welchTTest: need n >= 2 in each sample");

    double m1 = mean(a), m2 = mean(b);
    double v1 = variance(a), v2 = variance(b);
    double n1 = static_cast<double>(a.size());
    double n2 = static_cast<double>(b.size());

    double se2 = v1 / n1 + v2 / n2;
    TestResult r;
    if (se2 == 0.0) {
        r.statistic = m1 == m2 ? 0.0 : (m1 > m2 ? 1e9 : -1e9);
        r.pValue = m1 == m2 ? 1.0 : 0.0;
        r.dof = n1 + n2 - 2.0;
        return r;
    }
    r.statistic = (m1 - m2) / std::sqrt(se2);
    r.dof = se2 * se2 /
        (v1 * v1 / (n1 * n1 * (n1 - 1.0)) +
         v2 * v2 / (n2 * n2 * (n2 - 1.0)));
    r.dof = std::max(1.0, r.dof);
    double cdf = studentTCdf(std::fabs(r.statistic), r.dof);
    r.pValue = 2.0 * (1.0 - cdf);
    return r;
}

namespace {

/** Midranks of the pooled sample; also accumulates tie correction. */
std::vector<double>
midranks(const std::vector<double> &pooled, double &tie_correction)
{
    size_t n = pooled.size();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return pooled[x] < pooled[y]; });

    std::vector<double> ranks(n);
    tie_correction = 0.0;
    size_t i = 0;
    while (i < n) {
        size_t j = i;
        while (j + 1 < n && pooled[order[j + 1]] == pooled[order[i]])
            ++j;
        double avg_rank = (static_cast<double>(i) +
                           static_cast<double>(j)) / 2.0 + 1.0;
        double t = static_cast<double>(j - i + 1);
        tie_correction += t * t * t - t;
        for (size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg_rank;
        i = j + 1;
    }
    return ranks;
}

} // namespace

TestResult
mannWhitneyU(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        panic("mannWhitneyU: empty sample");

    std::vector<double> pooled = a;
    pooled.insert(pooled.end(), b.begin(), b.end());
    double tie_correction = 0.0;
    std::vector<double> ranks = midranks(pooled, tie_correction);

    double n1 = static_cast<double>(a.size());
    double n2 = static_cast<double>(b.size());
    double rank_sum_a = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        rank_sum_a += ranks[i];

    double u1 = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
    double mu = n1 * n2 / 2.0;
    double n = n1 + n2;
    double sigma2 = n1 * n2 / 12.0 *
        ((n + 1.0) - tie_correction / (n * (n - 1.0)));

    TestResult r;
    if (sigma2 <= 0.0) {
        r.statistic = 0.0;
        r.pValue = 1.0;
        return r;
    }
    // Continuity correction.
    double diff = u1 - mu;
    double cc = diff > 0.0 ? -0.5 : (diff < 0.0 ? 0.5 : 0.0);
    r.statistic = (diff + cc) / std::sqrt(sigma2);
    r.pValue = 2.0 * (1.0 - normalCdf(std::fabs(r.statistic)));
    r.pValue = std::min(1.0, r.pValue);
    return r;
}

TestResult
wilcoxonSignedRank(const std::vector<double> &a,
                   const std::vector<double> &b)
{
    if (a.size() != b.size())
        panic("wilcoxonSignedRank: paired samples must match");
    if (a.empty())
        panic("wilcoxonSignedRank: empty sample");

    // Differences, dropping exact zeros (standard practice).
    std::vector<double> diffs;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        if (d != 0.0)
            diffs.push_back(d);
    }
    TestResult r;
    if (diffs.size() < 2) {
        r.statistic = 0.0;
        r.pValue = 1.0;
        return r;
    }

    // Rank |d| with midranks.
    std::vector<double> abs_d;
    abs_d.reserve(diffs.size());
    for (double d : diffs)
        abs_d.push_back(std::fabs(d));
    double tie_correction = 0.0;
    std::vector<double> ranks = midranks(abs_d, tie_correction);

    double w_plus = 0.0;
    for (size_t i = 0; i < diffs.size(); ++i)
        if (diffs[i] > 0.0)
            w_plus += ranks[i];

    double n = static_cast<double>(diffs.size());
    double mu = n * (n + 1.0) / 4.0;
    double sigma2 = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 -
        tie_correction / 48.0;
    if (sigma2 <= 0.0) {
        r.statistic = 0.0;
        r.pValue = 1.0;
        return r;
    }
    double diff = w_plus - mu;
    double cc = diff > 0.0 ? -0.5 : (diff < 0.0 ? 0.5 : 0.0);
    r.statistic = (diff + cc) / std::sqrt(sigma2);
    r.pValue = std::min(
        1.0, 2.0 * (1.0 - normalCdf(std::fabs(r.statistic))));
    return r;
}

double
cohensD(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() < 2 || b.size() < 2)
        panic("cohensD: need n >= 2 in each sample");
    double n1 = static_cast<double>(a.size());
    double n2 = static_cast<double>(b.size());
    double pooled_var = ((n1 - 1.0) * variance(a) +
                         (n2 - 1.0) * variance(b)) / (n1 + n2 - 2.0);
    if (pooled_var == 0.0)
        return 0.0;
    return (mean(a) - mean(b)) / std::sqrt(pooled_var);
}

double
cliffsDelta(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.empty() || b.empty())
        panic("cliffsDelta: empty sample");
    // O(n log n) via sorted b and binary search.
    std::vector<double> sb = b;
    std::sort(sb.begin(), sb.end());
    double n1 = static_cast<double>(a.size());
    double n2 = static_cast<double>(sb.size());
    double total = 0.0;
    for (double x : a) {
        auto lo = std::lower_bound(sb.begin(), sb.end(), x);
        auto hi = std::upper_bound(sb.begin(), sb.end(), x);
        double less = static_cast<double>(lo - sb.begin());
        double greater = static_cast<double>(sb.end() - hi);
        total += less - greater;
    }
    return total / (n1 * n2);
}

} // namespace stats
} // namespace rigor
