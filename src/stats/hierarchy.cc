#include "stats/hierarchy.hh"

#include <cmath>

#include "stats/descriptive.hh"
#include "support/logging.hh"

namespace rigor {
namespace stats {

std::vector<double>
invocationMeans(const std::vector<std::vector<double>> &samples)
{
    if (samples.empty())
        panic("invocationMeans: no invocations");
    std::vector<double> means;
    means.reserve(samples.size());
    for (const auto &inv : samples) {
        if (inv.empty())
            panic("invocationMeans: empty invocation");
        means.push_back(mean(inv));
    }
    return means;
}

std::vector<double>
flatten(const std::vector<std::vector<double>> &samples)
{
    std::vector<double> out;
    for (const auto &inv : samples)
        out.insert(out.end(), inv.begin(), inv.end());
    return out;
}

ConfidenceInterval
meanOfMeansInterval(const std::vector<std::vector<double>> &samples,
                    double confidence)
{
    return tInterval(invocationMeans(samples), confidence);
}

ConfidenceInterval
naivePooledInterval(const std::vector<std::vector<double>> &samples,
                    double confidence)
{
    return tInterval(flatten(samples), confidence);
}

VarianceComponents
decomposeVariance(const std::vector<std::vector<double>> &samples)
{
    if (samples.size() < 2)
        panic("decomposeVariance: need at least 2 invocations");

    size_t a = samples.size();
    double total_n = 0.0;
    double grand_sum = 0.0;
    for (const auto &inv : samples) {
        if (inv.size() < 2)
            panic("decomposeVariance: need >= 2 iterations/invocation");
        total_n += static_cast<double>(inv.size());
        for (double x : inv)
            grand_sum += x;
    }
    double grand_mean = grand_sum / total_n;

    // One-way ANOVA sums of squares.
    double ss_between = 0.0;
    double ss_within = 0.0;
    double sum_ni_sq = 0.0;
    for (const auto &inv : samples) {
        double ni = static_cast<double>(inv.size());
        double mi = mean(inv);
        ss_between += ni * (mi - grand_mean) * (mi - grand_mean);
        for (double x : inv)
            ss_within += (x - mi) * (x - mi);
        sum_ni_sq += ni * ni;
    }

    double df_between = static_cast<double>(a) - 1.0;
    double df_within = total_n - static_cast<double>(a);
    double ms_between = ss_between / df_between;
    double ms_within = ss_within / df_within;

    // Method-of-moments n0 for (possibly) unbalanced designs.
    double n0 = (total_n - sum_ni_sq / total_n) / df_between;

    VarianceComponents vc;
    vc.grandMean = grand_mean;
    vc.withinInvocation = ms_within;
    vc.betweenInvocation = std::max(0.0, (ms_between - ms_within) / n0);
    if (grand_mean != 0.0) {
        vc.betweenCoV = std::sqrt(vc.betweenInvocation) /
            std::fabs(grand_mean);
        vc.withinCoV = std::sqrt(vc.withinInvocation) /
            std::fabs(grand_mean);
    }
    return vc;
}

} // namespace stats
} // namespace rigor
