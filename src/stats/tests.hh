/**
 * @file
 * Hypothesis tests and effect sizes for comparing two runtimes'
 * measurement samples.
 */

#ifndef RIGOR_STATS_TESTS_HH
#define RIGOR_STATS_TESTS_HH

#include <vector>

namespace rigor {
namespace stats {

/** Result of a two-sample location test. */
struct TestResult
{
    double statistic = 0.0;  ///< t statistic or standardized U
    double pValue = 0.0;     ///< two-sided p-value
    double dof = 0.0;        ///< degrees of freedom (t-tests only)

    /** True at the given significance level alpha. */
    bool significant(double alpha = 0.05) const { return pValue < alpha; }
};

/**
 * Welch's unequal-variance t-test for difference of means.
 * Requires n >= 2 in each sample.
 */
TestResult welchTTest(const std::vector<double> &a,
                      const std::vector<double> &b);

/**
 * Mann-Whitney U test (normal approximation with tie correction).
 * Nonparametric alternative when normality is doubtful.
 */
TestResult mannWhitneyU(const std::vector<double> &a,
                        const std::vector<double> &b);

/**
 * Wilcoxon signed-rank test for *paired* samples (normal
 * approximation with tie/zero handling). The canonical suite-level
 * question — "is runtime A faster than B across benchmarks?" — is a
 * paired design: one speedup per benchmark.
 */
TestResult wilcoxonSignedRank(const std::vector<double> &a,
                              const std::vector<double> &b);

/** Cohen's d effect size with pooled standard deviation. */
double cohensD(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Cliff's delta: P(a > b) - P(a < b), a robust ordinal effect size in
 * [-1, 1]; |delta| < 0.147 is conventionally "negligible".
 */
double cliffsDelta(const std::vector<double> &a,
                   const std::vector<double> &b);

} // namespace stats
} // namespace rigor

#endif // RIGOR_STATS_TESTS_HH
