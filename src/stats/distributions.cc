#include "stats/distributions.hh"

#include <cmath>

#include "support/logging.hh"

namespace rigor {
namespace stats {

double
normalPdf(double x)
{
    static const double inv_sqrt_2pi = 0.3989422804014326779399461;
    return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x * M_SQRT1_2);
}

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        panic("normalQuantile: p must be in (0,1), got %g", p);

    // Acklam's rational approximation, |relative error| < 1.15e-9,
    // followed by one Halley refinement step.
    static const double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00,
    };
    static const double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01,
    };
    static const double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00,
    };
    static const double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00,
    };
    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;

    double x;
    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= p_high) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // Halley refinement.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double
lnGamma(double x)
{
    if (x <= 0.0)
        panic("lnGamma: requires x > 0, got %g", x);
    // Lanczos approximation, g = 7, n = 9.
    static const double coeff[] = {
        0.99999999999980993, 676.5203681218851, -1259.1392167224028,
        771.32342877765313, -176.61502916214059, 12.507343278686905,
        -0.13857109526572012, 9.9843695780195716e-6,
        1.5056327351493116e-7,
    };
    if (x < 0.5) {
        // Reflection formula.
        return std::log(M_PI / std::sin(M_PI * x)) - lnGamma(1.0 - x);
    }
    x -= 1.0;
    double sum = coeff[0];
    for (int i = 1; i < 9; ++i)
        sum += coeff[i] / (x + i);
    double t = x + 7.5;
    return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
        std::log(sum);
}

namespace {

/** Continued-fraction core of the incomplete beta (modified Lentz). */
double
betaContinuedFraction(double a, double b, double x)
{
    const int max_iter = 300;
    const double eps = 3.0e-15;
    const double fpmin = 1.0e-300;

    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return h;
}

} // namespace

double
incompleteBeta(double a, double b, double x)
{
    if (a <= 0.0 || b <= 0.0)
        panic("incompleteBeta: a,b must be positive");
    if (x < 0.0 || x > 1.0)
        panic("incompleteBeta: x must be in [0,1], got %g", x);
    if (x == 0.0)
        return 0.0;
    if (x == 1.0)
        return 1.0;

    double ln_front = lnGamma(a + b) - lnGamma(a) - lnGamma(b) +
        a * std::log(x) + b * std::log(1.0 - x);
    double front = std::exp(ln_front);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
studentTPdf(double t, double nu)
{
    if (nu <= 0.0)
        panic("studentTPdf: nu must be positive");
    double ln = lnGamma((nu + 1.0) / 2.0) - lnGamma(nu / 2.0) -
        0.5 * std::log(nu * M_PI) -
        (nu + 1.0) / 2.0 * std::log1p(t * t / nu);
    return std::exp(ln);
}

double
studentTCdf(double t, double nu)
{
    if (nu <= 0.0)
        panic("studentTCdf: nu must be positive");
    double x = nu / (nu + t * t);
    double p = 0.5 * incompleteBeta(nu / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - p : p;
}

double
studentTQuantile(double p, double nu)
{
    if (p <= 0.0 || p >= 1.0)
        panic("studentTQuantile: p must be in (0,1), got %g", p);
    if (nu <= 0.0)
        panic("studentTQuantile: nu must be positive");

    if (p == 0.5)
        return 0.0;

    // Initial guess from the normal quantile, then bisection+Newton on
    // the CDF. The CDF is monotone so this always converges.
    double z = normalQuantile(p);
    double x = z;
    if (nu < 30.0) {
        // Cornish-Fisher-style expansion for a better start.
        double g1 = (z * z * z + z) / 4.0;
        double g2 = (5.0 * std::pow(z, 5) + 16.0 * z * z * z + 3.0 * z) /
            96.0;
        x = z + g1 / nu + g2 / (nu * nu);
    }

    // Bracket the root.
    double lo = x - 1.0, hi = x + 1.0;
    while (studentTCdf(lo, nu) > p)
        lo -= 2.0;
    while (studentTCdf(hi, nu) < p)
        hi += 2.0;

    for (int iter = 0; iter < 200; ++iter) {
        double mid = 0.5 * (lo + hi);
        double cdf = studentTCdf(mid, nu);
        // Newton step from the midpoint, clamped to the bracket.
        double pdf = studentTPdf(mid, nu);
        double next = mid;
        if (pdf > 1e-300) {
            next = mid - (cdf - p) / pdf;
            if (next <= lo || next >= hi)
                next = mid;
        }
        if (cdf > p)
            hi = mid;
        else
            lo = mid;
        if (hi - lo < 1e-12)
            return next;
    }
    return 0.5 * (lo + hi);
}

double
tCritical(double confidence, double nu)
{
    if (confidence <= 0.0 || confidence >= 1.0)
        panic("tCritical: confidence must be in (0,1), got %g", confidence);
    double alpha = 1.0 - confidence;
    return studentTQuantile(1.0 - alpha / 2.0, nu);
}

} // namespace stats
} // namespace rigor
