/**
 * @file
 * Probability distribution functions needed by the rigorous methodology:
 * the standard normal and Student's t distribution (PDF, CDF, quantile).
 *
 * Implemented from first principles (Acklam's inverse-normal rational
 * approximation, regularized incomplete beta via Lentz's continued
 * fraction) so the framework has no external numeric dependencies and is
 * bit-reproducible across platforms.
 */

#ifndef RIGOR_STATS_DISTRIBUTIONS_HH
#define RIGOR_STATS_DISTRIBUTIONS_HH

namespace rigor {
namespace stats {

/** Standard normal probability density at x. */
double normalPdf(double x);

/** Standard normal cumulative distribution at x. */
double normalCdf(double x);

/**
 * Standard normal quantile (inverse CDF).
 * @param p probability in (0, 1).
 */
double normalQuantile(double p);

/** Natural log of the gamma function (Lanczos approximation). */
double lnGamma(double x);

/**
 * Regularized incomplete beta function I_x(a, b), computed with the
 * continued-fraction expansion (Numerical-Recipes-style betacf).
 */
double incompleteBeta(double a, double b, double x);

/** Student-t probability density with nu degrees of freedom. */
double studentTPdf(double t, double nu);

/** Student-t cumulative distribution with nu degrees of freedom. */
double studentTCdf(double t, double nu);

/**
 * Student-t quantile with nu degrees of freedom.
 * @param p probability in (0, 1).
 */
double studentTQuantile(double p, double nu);

/**
 * Two-sided critical value t* such that P(|T| <= t*) = confidence,
 * e.g. confidence = 0.95 gives the usual 95% interval multiplier.
 */
double tCritical(double confidence, double nu);

} // namespace stats
} // namespace rigor

#endif // RIGOR_STATS_DISTRIBUTIONS_HH
