#include "stats/ci.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "support/logging.hh"

namespace rigor {
namespace stats {

double
ConfidenceInterval::relativeHalfWidth() const
{
    if (estimate == 0.0)
        return 0.0;
    return halfWidth() / std::fabs(estimate);
}

bool
ConfidenceInterval::overlaps(const ConfidenceInterval &o) const
{
    return lower <= o.upper && o.lower <= upper;
}

ConfidenceInterval
tInterval(const std::vector<double> &xs, double confidence)
{
    if (xs.empty())
        panic("tInterval: empty sample");
    ConfidenceInterval ci;
    ci.confidence = confidence;
    ci.estimate = mean(xs);
    if (xs.size() < 2) {
        ci.lower = ci.upper = ci.estimate;
        return ci;
    }
    double n = static_cast<double>(xs.size());
    double t = tCritical(confidence, n - 1.0);
    double half = t * stddev(xs) / std::sqrt(n);
    ci.lower = ci.estimate - half;
    ci.upper = ci.estimate + half;
    return ci;
}

ConfidenceInterval
bootstrapInterval(
    const std::vector<double> &xs,
    const std::function<double(const std::vector<double> &)> &statistic,
    Rng &rng, double confidence, int resamples)
{
    if (xs.empty())
        panic("bootstrapInterval: empty sample");
    if (resamples < 10)
        panic("bootstrapInterval: need at least 10 resamples");

    ConfidenceInterval ci;
    ci.confidence = confidence;
    ci.estimate = statistic(xs);

    std::vector<double> stats;
    stats.reserve(static_cast<size_t>(resamples));
    std::vector<double> resample(xs.size());
    for (int r = 0; r < resamples; ++r) {
        for (auto &v : resample)
            v = xs[rng.nextBounded(xs.size())];
        stats.push_back(statistic(resample));
    }
    double alpha = 1.0 - confidence;
    ci.lower = percentile(stats, 100.0 * alpha / 2.0);
    ci.upper = percentile(stats, 100.0 * (1.0 - alpha / 2.0));
    return ci;
}

ConfidenceInterval
geomeanInterval(const std::vector<double> &xs, double confidence)
{
    if (xs.empty())
        panic("geomeanInterval: empty sample");
    std::vector<double> logs;
    logs.reserve(xs.size());
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomeanInterval: non-positive value %g", x);
        logs.push_back(std::log(x));
    }
    ConfidenceInterval log_ci = tInterval(logs, confidence);
    ConfidenceInterval ci;
    ci.confidence = confidence;
    ci.estimate = std::exp(log_ci.estimate);
    ci.lower = std::exp(log_ci.lower);
    ci.upper = std::exp(log_ci.upper);
    return ci;
}

ConfidenceInterval
ratioOfMeansInterval(const std::vector<double> &numer,
                     const std::vector<double> &denom, double confidence)
{
    if (numer.empty() || denom.empty())
        panic("ratioOfMeansInterval: empty sample");
    for (double x : numer)
        if (x <= 0.0)
            panic("ratioOfMeansInterval: non-positive numerator %g", x);
    for (double x : denom)
        if (x <= 0.0)
            panic("ratioOfMeansInterval: non-positive denominator %g", x);

    // Work in log space: log(ratio) = log mean is approximated by the
    // difference of log-means; Welch's approximation supplies the
    // degrees of freedom for unequal variances.
    std::vector<double> ln, ld;
    ln.reserve(numer.size());
    ld.reserve(denom.size());
    for (double x : numer)
        ln.push_back(std::log(x));
    for (double x : denom)
        ld.push_back(std::log(x));

    double m1 = mean(ln), m2 = mean(ld);
    double v1 = variance(ln), v2 = variance(ld);
    double n1 = static_cast<double>(ln.size());
    double n2 = static_cast<double>(ld.size());
    double se2 = v1 / n1 + v2 / n2;
    double se = std::sqrt(se2);

    ConfidenceInterval ci;
    ci.confidence = confidence;
    ci.estimate = mean(numer) / mean(denom);
    double diff = m1 - m2;
    if (se == 0.0 || n1 < 2 || n2 < 2) {
        ci.lower = ci.upper = std::exp(diff);
        return ci;
    }
    // Welch-Satterthwaite degrees of freedom.
    double nu = se2 * se2 /
        (v1 * v1 / (n1 * n1 * (n1 - 1.0)) +
         v2 * v2 / (n2 * n2 * (n2 - 1.0)));
    nu = std::max(1.0, nu);
    double t = tCritical(confidence, nu);
    ci.lower = std::exp(diff - t * se);
    ci.upper = std::exp(diff + t * se);
    return ci;
}

namespace {

/** Mean of per-invocation means of a two-level sample. */
double
meanOfMeans(const std::vector<std::vector<double>> &samples)
{
    double total = 0.0;
    for (const auto &inv : samples) {
        double s = 0.0;
        for (double v : inv)
            s += v;
        total += s / static_cast<double>(inv.size());
    }
    return total / static_cast<double>(samples.size());
}

/**
 * One hierarchical bootstrap replicate: resample invocations with
 * replacement, then iterations within each chosen invocation, and
 * return the replicate's mean of invocation means.
 */
double
resampleMeanOfMeans(const std::vector<std::vector<double>> &samples,
                    Rng &rng)
{
    size_t n = samples.size();
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const auto &inv = samples[rng.nextBounded(n)];
        size_t m = inv.size();
        double s = 0.0;
        for (size_t j = 0; j < m; ++j)
            s += inv[rng.nextBounded(m)];
        total += s / static_cast<double>(m);
    }
    return total / static_cast<double>(n);
}

void
validateTwoLevel(const char *what,
                 const std::vector<std::vector<double>> &samples)
{
    if (samples.empty())
        panic("hierarchicalRatioInterval: empty %s sample", what);
    for (const auto &inv : samples)
        if (inv.empty())
            panic("hierarchicalRatioInterval: empty %s invocation",
                  what);
}

} // namespace

ConfidenceInterval
hierarchicalRatioInterval(
    const std::vector<std::vector<double>> &numer,
    const std::vector<std::vector<double>> &denom, Rng &rng,
    double confidence, int resamples)
{
    validateTwoLevel("numerator", numer);
    validateTwoLevel("denominator", denom);
    if (resamples < 10)
        panic("hierarchicalRatioInterval: need at least 10 "
              "resamples");

    ConfidenceInterval ci;
    ci.confidence = confidence;
    double denomMean = meanOfMeans(denom);
    if (denomMean == 0.0)
        panic("hierarchicalRatioInterval: zero denominator mean");
    ci.estimate = meanOfMeans(numer) / denomMean;

    std::vector<double> ratios;
    ratios.reserve(static_cast<size_t>(resamples));
    for (int r = 0; r < resamples; ++r) {
        double num = resampleMeanOfMeans(numer, rng);
        double den = resampleMeanOfMeans(denom, rng);
        // A replicate with a zero denominator (possible only for
        // degenerate all-zero data) would poison the percentile; the
        // zero-mean panic above already excludes the systematic case.
        ratios.push_back(num / den);
    }
    double alpha = 1.0 - confidence;
    ci.lower = percentile(ratios, 100.0 * alpha / 2.0);
    ci.upper = percentile(ratios, 100.0 * (1.0 - alpha / 2.0));
    return ci;
}

size_t
requiredSampleSize(const std::vector<double> &xs,
                   double target_relative_half_width, double confidence)
{
    if (xs.size() < 2)
        panic("requiredSampleSize: need at least 2 pilot samples");
    if (target_relative_half_width <= 0.0)
        panic("requiredSampleSize: target must be positive");
    double m = mean(xs);
    if (m == 0.0)
        panic("requiredSampleSize: zero mean");
    double s = stddev(xs);
    if (s == 0.0)
        return 2;
    double z = normalQuantile(1.0 - (1.0 - confidence) / 2.0);
    double target_half = target_relative_half_width * std::fabs(m);
    double n = (z * s / target_half) * (z * s / target_half);
    return std::max<size_t>(2, static_cast<size_t>(std::ceil(n)));
}

} // namespace stats
} // namespace rigor
