#include "stats/steady_state.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"
#include "support/logging.hh"

namespace rigor {
namespace stats {

std::string
seriesClassName(SeriesClass c)
{
    switch (c) {
      case SeriesClass::Flat: return "flat";
      case SeriesClass::Warmup: return "warmup";
      case SeriesClass::Slowdown: return "slowdown";
      case SeriesClass::NoSteadyState: return "no-steady-state";
    }
    return "?";
}

namespace {

/** Prefix sums enabling O(1) segment sum-of-squared-error queries. */
class SseOracle
{
  public:
    explicit SseOracle(const std::vector<double> &xs)
        : sum(xs.size() + 1, 0.0), sumsq(xs.size() + 1, 0.0)
    {
        for (size_t i = 0; i < xs.size(); ++i) {
            sum[i + 1] = sum[i] + xs[i];
            sumsq[i + 1] = sumsq[i] + xs[i] * xs[i];
        }
    }

    /** Sum of squared deviations from the mean over [b, e). */
    double
    sse(size_t b, size_t e) const
    {
        double n = static_cast<double>(e - b);
        if (n <= 0.0)
            return 0.0;
        double s = sum[e] - sum[b];
        double ss = sumsq[e] - sumsq[b];
        double v = ss - s * s / n;
        return std::max(0.0, v);
    }

    /** Mean over [b, e). */
    double
    segMean(size_t b, size_t e) const
    {
        return (sum[e] - sum[b]) / static_cast<double>(e - b);
    }

  private:
    std::vector<double> sum;
    std::vector<double> sumsq;
};

/**
 * Robust noise-variance estimate from lag-1 differences using the
 * median absolute deviation, insensitive to level shifts.
 */
double
noiseVariance(const std::vector<double> &xs)
{
    if (xs.size() < 3)
        return variance(xs);
    std::vector<double> diffs;
    diffs.reserve(xs.size() - 1);
    for (size_t i = 1; i < xs.size(); ++i)
        diffs.push_back(xs[i] - xs[i - 1]);
    std::vector<double> abs_dev;
    double med = median(diffs);
    abs_dev.reserve(diffs.size());
    for (double d : diffs)
        abs_dev.push_back(std::fabs(d - med));
    double mad = median(abs_dev);
    // 1.4826 converts MAD to sigma for normal data; differences double
    // the variance, hence the sqrt(2) divisor.
    double sigma = 1.4826 * mad / std::sqrt(2.0);
    double v = sigma * sigma;
    if (v <= 0.0) {
        v = variance(xs);
        if (v <= 0.0)
            v = 1e-12;
    }
    return v;
}

void
splitRecursive(const SseOracle &oracle, size_t b, size_t e,
               double penalty, size_t min_len,
               std::vector<size_t> &cuts, int depth)
{
    if (depth > 30 || e - b < 2 * min_len)
        return;
    double whole = oracle.sse(b, e);
    double best_gain = 0.0;
    size_t best_cut = 0;
    for (size_t c = b + min_len; c + min_len <= e; ++c) {
        double split_cost = oracle.sse(b, c) + oracle.sse(c, e);
        double gain = whole - split_cost;
        if (gain > best_gain) {
            best_gain = gain;
            best_cut = c;
        }
    }
    if (best_cut == 0 || best_gain <= penalty)
        return;
    cuts.push_back(best_cut);
    splitRecursive(oracle, b, best_cut, penalty, min_len, cuts, depth + 1);
    splitRecursive(oracle, best_cut, e, penalty, min_len, cuts, depth + 1);
}

} // namespace

std::vector<Segment>
segmentSeries(const std::vector<double> &xs, const SteadyStateOptions &opts)
{
    if (xs.empty())
        panic("segmentSeries: empty series");

    SseOracle oracle(xs);
    size_t n = xs.size();

    std::vector<size_t> cuts;
    if (n >= 2 * opts.minSegmentLength) {
        double noise = noiseVariance(xs);
        double penalty = opts.penaltyFactor * noise *
            std::log(static_cast<double>(n));
        splitRecursive(oracle, 0, n, penalty, opts.minSegmentLength, cuts,
                       0);
    }
    cuts.push_back(0);
    cuts.push_back(n);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<Segment> segs;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        Segment s;
        s.begin = cuts[i];
        s.end = cuts[i + 1];
        s.mean = oracle.segMean(s.begin, s.end);
        double sse = oracle.sse(s.begin, s.end);
        s.variance = s.length() > 1
            ? sse / static_cast<double>(s.length() - 1) : 0.0;
        segs.push_back(s);
    }
    return segs;
}

SteadyStateResult
detectSteadyState(const std::vector<double> &xs,
                  const SteadyStateOptions &opts)
{
    SteadyStateResult r;
    r.segments = segmentSeries(xs, opts);

    // Merge adjacent segments whose means are equivalent, either
    // relative to the level (tolerance) or relative to the series'
    // noise floor (a ~3-sigma two-sample criterion), so that noisy
    // steady phases are not fragmented into spurious levels.
    double noise_var = noiseVariance(xs);
    std::vector<Segment> merged;
    for (const auto &s : r.segments) {
        if (!merged.empty()) {
            Segment &last = merged.back();
            double ref = std::max(std::fabs(last.mean),
                                  std::fabs(s.mean));
            // 4 sigma rather than ~2: binary segmentation picks the
            // *maximal*-gain split, which inflates the apparent mean
            // difference (selection bias), so the merge gate must be
            // conservative.
            double noise_gate = 4.0 *
                std::sqrt(noise_var *
                          (1.0 / static_cast<double>(last.length()) +
                           1.0 / static_cast<double>(s.length())));
            if (ref == 0.0 ||
                std::fabs(last.mean - s.mean) <=
                    opts.equivalenceTolerance * ref ||
                std::fabs(last.mean - s.mean) <= noise_gate) {
                // Merge: recompute the pooled mean.
                double total = last.mean *
                        static_cast<double>(last.length()) +
                    s.mean * static_cast<double>(s.length());
                last.end = s.end;
                last.mean = total / static_cast<double>(last.length());
                continue;
            }
        }
        merged.push_back(s);
    }
    r.segments = merged;

    size_t n = xs.size();
    const Segment &last = r.segments.back();
    const Segment &first = r.segments.front();

    auto steady_from = [&](size_t start) {
        std::vector<double> tail(xs.begin() +
                                     static_cast<ptrdiff_t>(start),
                                 xs.end());
        return mean(tail);
    };

    if (r.segments.size() == 1) {
        r.classification = SeriesClass::Flat;
        r.steadyStart = 0;
        r.steadyMean = steady_from(0);
        return r;
    }

    bool last_long_enough = static_cast<double>(last.length()) >=
        opts.minSteadyFraction * static_cast<double>(n);

    // Is the last segment (one of) the fastest levels?
    double min_mean = last.mean;
    for (const auto &s : r.segments)
        min_mean = std::min(min_mean, s.mean);
    double ref = std::max(std::fabs(min_mean), std::fabs(last.mean));
    bool last_is_fastest = ref == 0.0 ||
        (last.mean - min_mean) <= opts.equivalenceTolerance * ref;

    if (!last_long_enough) {
        r.classification = SeriesClass::NoSteadyState;
        r.steadyStart = n;
        r.steadyMean = 0.0;
        return r;
    }

    if (last_is_fastest) {
        r.classification = SeriesClass::Warmup;
        r.steadyStart = last.begin;
        r.steadyMean = steady_from(r.steadyStart);
        return r;
    }

    if (last.mean > first.mean) {
        r.classification = SeriesClass::Slowdown;
        r.steadyStart = last.begin;
        r.steadyMean = steady_from(r.steadyStart);
        return r;
    }

    r.classification = SeriesClass::NoSteadyState;
    r.steadyStart = n;
    r.steadyMean = 0.0;
    return r;
}

} // namespace stats
} // namespace rigor
