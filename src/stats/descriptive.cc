#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace rigor {
namespace stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("mean: empty sample");
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("variance: empty sample");
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs) {
        double d = x - m;
        ss += d * d;
    }
    return ss / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        panic("percentile: empty sample");
    if (p < 0.0 || p > 100.0)
        panic("percentile: p must be in [0,100], got %g", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
median(const std::vector<double> &xs)
{
    return percentile(xs, 50.0);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("geomean: empty sample");
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean: non-positive value %g", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("harmonicMean: empty sample");
    double inv_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("harmonicMean: non-positive value %g", x);
        inv_sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / inv_sum;
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    double m = mean(xs);
    if (m == 0.0)
        panic("coefficientOfVariation: zero mean");
    return stddev(xs) / std::fabs(m);
}

Summary
summarize(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("summarize: empty sample");
    Summary s;
    s.n = xs.size();
    s.mean = mean(xs);
    s.variance = variance(xs);
    s.stddev = std::sqrt(s.variance);
    s.sem = s.stddev / std::sqrt(static_cast<double>(s.n));
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());
    s.median = median(xs);
    s.q1 = percentile(xs, 25.0);
    s.q3 = percentile(xs, 75.0);
    s.cov = s.mean != 0.0 ? s.stddev / std::fabs(s.mean) : 0.0;
    return s;
}

double
autocorrelation(const std::vector<double> &xs, size_t lag)
{
    size_t n = xs.size();
    if (lag >= n || n < 2)
        return 0.0;
    double m = mean(xs);
    double denom = 0.0;
    for (double x : xs) {
        double d = x - m;
        denom += d * d;
    }
    if (denom == 0.0)
        return 0.0;
    double num = 0.0;
    for (size_t i = 0; i + lag < n; ++i)
        num += (xs[i] - m) * (xs[i + lag] - m);
    return num / denom;
}

double
effectiveSampleSize(const std::vector<double> &xs)
{
    size_t n = xs.size();
    if (n < 3)
        return static_cast<double>(n);
    double rho_sum = 0.0;
    for (size_t k = 1; k < n / 2; ++k) {
        double rho = autocorrelation(xs, k);
        if (rho <= 0.0)
            break;
        rho_sum += rho;
    }
    double ess = static_cast<double>(n) / (1.0 + 2.0 * rho_sum);
    return std::max(1.0, std::min(ess, static_cast<double>(n)));
}

std::vector<size_t>
tukeyOutliers(const std::vector<double> &xs, double k)
{
    std::vector<size_t> out;
    if (xs.size() < 4)
        return out;
    double q1 = percentile(xs, 25.0);
    double q3 = percentile(xs, 75.0);
    double iqr = q3 - q1;
    double lo = q1 - k * iqr;
    double hi = q3 + k * iqr;
    for (size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] < lo || xs[i] > hi)
            out.push_back(i);
    }
    return out;
}

} // namespace stats
} // namespace rigor
