/**
 * @file
 * Differential profiling: attribute a measured performance ratio to
 * behavior-level causes.
 *
 * Given two archived entries and their statistical comparison, the
 * engine diffs the per-(workload, tier) behavior profiles and splits
 * the measured slowdown into named components, each expressed as a
 * percentage of the baseline's steady-state iteration time:
 *
 *  - opcode-mix: change in retired micro-ops per iteration (which
 *    opcodes gained/lost dynamic share, weighted by uop cost),
 *    divided by the issue width;
 *  - tier/deopt: JIT-compilation uops plus guard-failure (deopt)
 *    penalties — the cost of *being on a different tier residency*;
 *  - branch: conditional-branch and interpreter-dispatch mispredict
 *    penalties;
 *  - cache: L1I refill penalty plus overlap-scaled data-cache miss
 *    latency (L2/LLC/DRAM decomposition).
 *
 * The components never silently absorb what they cannot see: the
 * difference between the measured ratio and the sum of attributed
 * components is reported as an explicit *unattributed remainder*
 * (noise, steady-state windowing, setup-vs-iteration window skew).
 *
 * Everything is computed from archived integers with fixed-order
 * arithmetic, so reports are byte-identical across repeats and across
 * the --jobs value of the source runs.
 */

#ifndef RIGOR_EXPLAIN_EXPLAIN_HH
#define RIGOR_EXPLAIN_EXPLAIN_HH

#include <string>
#include <vector>

#include "archive/archive.hh"
#include "compare/compare.hh"
#include "explain/behavior_profile.hh"
#include "support/json.hh"

namespace rigor {
namespace explain {

/** One named attribution component of a pair's time difference. */
struct Component
{
    /** "opcode-mix", "tier/deopt", "branch" or "cache". */
    std::string name;
    /** Modelled cycles per iteration charged to this component. */
    double baselineCyclesPerIter = 0.0;
    double candidateCyclesPerIter = 0.0;
    /**
     * Share of the measured difference, as percent of the baseline's
     * steady-state iteration time (positive = candidate slower).
     */
    double contributionPct = 0.0;
};

/** One opcode whose dynamic uop share moved between the entries. */
struct OpMover
{
    std::string op;
    /** Contribution percent (same scale as Component). */
    double contributionPct = 0.0;
    /** Dynamic executions per iteration on each side. */
    double baselineCountPerIter = 0.0;
    double candidateCountPerIter = 0.0;
    /** Uops per iteration on each side. */
    double baselineUopsPerIter = 0.0;
    double candidateUopsPerIter = 0.0;
};

/** Attribution of one paired (workload, tier). */
struct PairExplanation
{
    std::string workload;
    std::string tier;
    /** False when either side lacks an archived behavior profile. */
    bool hasProfiles = false;
    /** Loud degradation note when hasProfiles is false. */
    std::string note;

    /** Measured steady-state change, percent (> 0 = slower). */
    double measuredPct = 0.0;
    stats::ConfidenceInterval speedup;
    std::string verdict;

    /** Components ranked by |contribution| (ties: fixed order). */
    std::vector<Component> components;
    /** measuredPct minus the sum of component contributions. */
    double unattributedPct = 0.0;
    /** Top opcodes by |uop-share movement|, ranked. */
    std::vector<OpMover> movers;

    // --- evidence (per-iteration rates on each side) -----------------
    double baselineGuardsPerIter = 0.0, candidateGuardsPerIter = 0.0;
    /** Opcode with the largest guard-failure movement ("" if none). */
    std::string topGuardOp;
    uint64_t baselineJitCompiles = 0, candidateJitCompiles = 0;
    /** Share of bytecodes executed via interpreter dispatch. */
    double baselineDispatchShare = 0.0,
           candidateDispatchShare = 0.0;
    /** L1d miss rate in percent of L1d accesses. */
    double baselineL1dMissPct = 0.0, candidateL1dMissPct = 0.0;
};

/** Full differential report between two archive entries. */
struct ExplainReport
{
    std::string baselineRef, candidateRef;
    int baselineId = 0, candidateId = 0;
    std::string baselineFingerprint, candidateFingerprint;
    bool sameConfig = false;
    /** Pairs in (workload, tier) order — same order as the compare
     *  report they were derived from. */
    std::vector<PairExplanation> pairs;
    std::vector<std::string> baselineOnly, candidateOnly;
};

/**
 * Attribute every pair of `report` using the profiles archived in the
 * two entries. `report` must have been produced by
 * compare::compareEntries on the same two entries.
 */
ExplainReport explainEntries(const archive::Entry &baseline,
                             const archive::Entry &candidate,
                             const compare::CompareReport &report);

/** Render the full report as Markdown. */
std::string renderMarkdown(const ExplainReport &report);

/** Render one pair's section (used by `gate --explain`). */
std::string renderPair(const PairExplanation &pair);

/** One-line summary, e.g. "8.3% slower — tier/deopt +5.2%, ...". */
std::string headline(const PairExplanation &pair);

/** Machine-readable report (schema rigorbench-explain v1). */
Json reportToJson(const ExplainReport &report);

/** Find a pair by (workload, tier); nullptr when absent. */
const PairExplanation *findPair(const ExplainReport &report,
                                const std::string &workload,
                                const std::string &tier);

} // namespace explain
} // namespace rigor

#endif // RIGOR_EXPLAIN_EXPLAIN_HH
