/**
 * @file
 * Behavior profiles: the compact per-(workload, tier) execution
 * summary archived next to each run so a later `rigorbench explain`
 * can attribute a measured time difference to behavior differences.
 *
 * A profile is a *pure function* of the committed RunResult (VM
 * dynamic counters plus the summed per-iteration perf counters) and
 * of the measurement-determining configuration. RunResults are
 * already byte-identical across --jobs values (ordered commit), so
 * profiles — and everything explain derives from them — inherit that
 * guarantee for free. All accumulated fields are integer totals,
 * which makes the aggregation order-independent by construction.
 *
 * Two windows coexist on purpose:
 *  - `vm` totals and `ops` come from the VM's invocation-lifetime
 *    statistics (module setup included);
 *  - `counters` are the iteration-window perf-counter totals (module
 *    setup excluded), the same window the reported times cover.
 * The attribution arithmetic in explain.cc prefers the iteration
 * window where it exists and says so where it cannot (see
 * docs/METHODOLOGY.md §14).
 */

#ifndef RIGOR_EXPLAIN_BEHAVIOR_PROFILE_HH
#define RIGOR_EXPLAIN_BEHAVIOR_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "support/json.hh"
#include "uarch/counters.hh"

namespace rigor {
namespace explain {

/** Dynamic totals for one opcode (invocation-lifetime window). */
struct OpProfile
{
    /** Opcode name as printed by vm::opName. */
    std::string op;
    /** Dynamic execution count. */
    uint64_t count = 0;
    /** Micro-ops charged, interpreter-dispatch overhead included. */
    uint64_t uops = 0;
    /** Executions that went through interpreter dispatch. */
    uint64_t dispatched = 0;
    /** Guard (speculation) failures blamed on this opcode. */
    uint64_t guardFailures = 0;
};

/** VM-level dynamic totals (invocation-lifetime window). */
struct VmTotals
{
    uint64_t bytecodes = 0;
    uint64_t uops = 0;
    uint64_t calls = 0;
    uint64_t allocations = 0;
    uint64_t allocatedBytes = 0;
    uint64_t dictLookups = 0;
    uint64_t guardFailures = 0;
    uint64_t jitCompiles = 0;
    /** Uops charged for JIT compilation (subset of `uops`). */
    uint64_t jitCompileUops = 0;
};

/**
 * The performance-model parameters the attribution arithmetic needs.
 * Embedded in the profile so `explain` always computes with the
 * parameters the runs were *measured* under, not whatever the current
 * build defaults to.
 */
struct ModelParams
{
    double issueWidth = 4.0;
    uint32_t branchMissPenalty = 14;
    uint32_t dispatchMissPenalty = 18;
    double memOverlapFactor = 0.45;
    uint32_t l1iMissPenalty = 10;
    uint32_t l2HitCycles = 12;
    uint32_t llcHitCycles = 40;
    uint32_t dramCycles = 180;
    double cyclesPerMs = 3.0e6;
};

/** The archived behavior profile of one (workload, tier) run. */
struct BehaviorProfile
{
    std::string workload;
    std::string tier;
    /** Successful invocations the totals are summed over. */
    uint64_t invocations = 0;
    /** Successful iterations the totals are summed over. */
    uint64_t iterations = 0;
    VmTotals vm;
    /** Per-opcode totals, in opcode-enum order, zero-count omitted. */
    std::vector<OpProfile> ops;
    /** Iteration-window perf-counter totals (setup excluded). */
    uarch::CounterSet counters;
    ModelParams model;
};

/**
 * Build the profile of a committed run. Deterministic: integer sums
 * over the ordered invocation list only.
 */
BehaviorProfile buildProfile(const harness::RunResult &run,
                             const harness::RunnerConfig &config);

/** Serialize (schema rigorbench-behavior-profile v1). */
Json profileToJson(const BehaviorProfile &profile);

/**
 * Parse a profile back.
 * @throws FatalError on schema/version mismatch.
 */
BehaviorProfile profileFromJson(const Json &j);

} // namespace explain
} // namespace rigor

#endif // RIGOR_EXPLAIN_BEHAVIOR_PROFILE_HH
