#include "explain/explain.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "harness/report.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"

namespace rigor {
namespace explain {

namespace {

/** Signed percentage with two decimals, e.g. "+5.21%". */
std::string
fmtSignedPct(double pct)
{
    return strprintf("%+.2f%%", pct);
}

/** "8.3% slower" / "8.3% faster" / "unchanged". */
std::string
fmtDirection(double measuredPct)
{
    if (measuredPct > 0.0)
        return fmtDouble(measuredPct, 1) + "% slower";
    if (measuredPct < 0.0)
        return fmtDouble(-measuredPct, 1) + "% faster";
    return "unchanged";
}

/** "×2.10" change factor; "new" when the baseline rate is zero. */
std::string
fmtFactor(double baseRate, double candRate)
{
    if (baseRate <= 0.0)
        return candRate > 0.0 ? "new" : "×1.00";
    return "×" + fmtDouble(candRate / baseRate, 2);
}

/** Per-iteration rate (0 when the profile holds no iterations). */
double
perIter(uint64_t total, uint64_t iters)
{
    return iters ? static_cast<double>(total) /
                       static_cast<double>(iters)
                 : 0.0;
}

/**
 * Decompose one profile into per-iteration modelled cycles per
 * component, mirroring uarch::PerfModel's additive accounting:
 * retired uops at the issue width, plus branch/dispatch mispredict,
 * L1I refill, overlap-scaled data-miss latency and deopt penalties.
 */
struct Decomposition
{
    double opmix = 0.0;
    double tier = 0.0;
    double branch = 0.0;
    double cache = 0.0;
};

Decomposition
decompose(const BehaviorProfile &p)
{
    Decomposition d;
    if (p.iterations == 0)
        return d;
    const ModelParams &m = p.model;
    double iters = static_cast<double>(p.iterations);
    const uarch::CounterSet &c = p.counters;

    // JIT-compile uops are counted by the VM over the invocation
    // lifetime; clamp so the iteration-window subtraction can never
    // go negative when a compile landed during module setup.
    double jcu = static_cast<double>(
        std::min(p.vm.jitCompileUops, c.instructions));
    d.opmix = (static_cast<double>(c.instructions) - jcu) /
              m.issueWidth / iters;
    d.tier = (jcu / m.issueWidth +
              static_cast<double>(p.vm.guardFailures) *
                  m.branchMissPenalty) /
             iters;
    d.branch = (static_cast<double>(c.branchMisses) *
                    m.branchMissPenalty +
                static_cast<double>(c.dispatchMisses) *
                    m.dispatchMissPenalty) /
               iters;
    // Data-side latency, reconstructed from the per-level miss
    // counts: an L1d miss that hit L2 cost l2Hit, an L2 miss that
    // hit LLC cost llcHit, an LLC miss cost dram.
    double l2Hits = static_cast<double>(c.l1dMisses) -
                    static_cast<double>(c.l2Misses);
    double llcHits = static_cast<double>(c.l2Misses) -
                     static_cast<double>(c.llcMisses);
    double latency = std::max(0.0, l2Hits) * m.l2HitCycles +
                     std::max(0.0, llcHits) * m.llcHitCycles +
                     static_cast<double>(c.llcMisses) * m.dramCycles;
    d.cache = (static_cast<double>(c.l1iMisses) * m.l1iMissPenalty +
               m.memOverlapFactor * latency) /
              iters;
    return d;
}

/** Dispatched share of executed bytecodes (tier residency proxy). */
double
dispatchShare(const BehaviorProfile &p)
{
    uint64_t count = 0, dispatched = 0;
    for (const auto &op : p.ops) {
        count += op.count;
        dispatched += op.dispatched;
    }
    return count ? static_cast<double>(dispatched) /
                       static_cast<double>(count)
                 : 0.0;
}

/**
 * Attribute one compared pair. `anchor` work is all done against the
 * baseline's steady-state iteration time so the component percentages
 * and the measured percentage share a denominator and sum (up to the
 * explicit remainder).
 */
PairExplanation
explainPair(const compare::WorkloadComparison &wc,
            const BehaviorProfile &a, const BehaviorProfile &b)
{
    PairExplanation pe;
    pe.workload = wc.workload;
    pe.tier = wc.tier;
    pe.hasProfiles = true;
    pe.speedup = wc.speedup;
    pe.verdict = compare::verdictName(wc.verdict);
    pe.measuredPct =
        (wc.candidateMs / wc.baselineMs - 1.0) * 100.0;

    // Baseline steady-state iteration time, in modelled cycles.
    double anchorCycles = wc.baselineMs * a.model.cyclesPerMs;
    Decomposition da = decompose(a);
    Decomposition db = decompose(b);

    auto component = [&](const char *name, double baseCyc,
                         double candCyc) {
        Component c;
        c.name = name;
        c.baselineCyclesPerIter = baseCyc;
        c.candidateCyclesPerIter = candCyc;
        c.contributionPct =
            anchorCycles > 0.0
                ? (candCyc - baseCyc) / anchorCycles * 100.0
                : 0.0;
        pe.components.push_back(std::move(c));
    };
    component("opcode-mix", da.opmix, db.opmix);
    component("tier/deopt", da.tier, db.tier);
    component("branch", da.branch, db.branch);
    component("cache", da.cache, db.cache);

    double attributed = 0.0;
    for (const auto &c : pe.components)
        attributed += c.contributionPct;
    pe.unattributedPct = pe.measuredPct - attributed;

    // Rank by |contribution|, ties broken by the fixed order above
    // so the report is deterministic even for exact ties.
    std::stable_sort(pe.components.begin(), pe.components.end(),
                     [](const Component &x, const Component &y) {
                         return std::fabs(x.contributionPct) >
                                std::fabs(y.contributionPct);
                     });

    // Per-opcode movers: how much each opcode's uop share moved the
    // needle, in the same percent-of-baseline-time scale.
    std::map<std::string, std::pair<const OpProfile *,
                                    const OpProfile *>>
        byOp;
    for (const auto &op : a.ops)
        byOp[op.op].first = &op;
    for (const auto &op : b.ops)
        byOp[op.op].second = &op;
    for (const auto &[name, sides] : byOp) {
        OpMover mv;
        mv.op = name;
        if (sides.first) {
            mv.baselineCountPerIter =
                perIter(sides.first->count, a.iterations);
            mv.baselineUopsPerIter =
                perIter(sides.first->uops, a.iterations);
        }
        if (sides.second) {
            mv.candidateCountPerIter =
                perIter(sides.second->count, b.iterations);
            mv.candidateUopsPerIter =
                perIter(sides.second->uops, b.iterations);
        }
        double deltaCycles =
            (mv.candidateUopsPerIter - mv.baselineUopsPerIter) /
            a.model.issueWidth;
        mv.contributionPct = anchorCycles > 0.0
                                 ? deltaCycles / anchorCycles * 100.0
                                 : 0.0;
        if (std::fabs(mv.contributionPct) >= 0.02)
            pe.movers.push_back(std::move(mv));
    }
    std::stable_sort(pe.movers.begin(), pe.movers.end(),
                     [](const OpMover &x, const OpMover &y) {
                         return std::fabs(x.contributionPct) >
                                std::fabs(y.contributionPct);
                     });
    if (pe.movers.size() > 5)
        pe.movers.resize(5);

    // Evidence rates.
    pe.baselineGuardsPerIter =
        perIter(a.vm.guardFailures, a.iterations);
    pe.candidateGuardsPerIter =
        perIter(b.vm.guardFailures, b.iterations);
    double worstGuardDelta = 0.0;
    for (const auto &[name, sides] : byOp) {
        double ga = sides.first
                        ? perIter(sides.first->guardFailures,
                                  a.iterations)
                        : 0.0;
        double gb = sides.second
                        ? perIter(sides.second->guardFailures,
                                  b.iterations)
                        : 0.0;
        if (std::fabs(gb - ga) > worstGuardDelta) {
            worstGuardDelta = std::fabs(gb - ga);
            pe.topGuardOp = name;
        }
    }
    pe.baselineJitCompiles = a.vm.jitCompiles;
    pe.candidateJitCompiles = b.vm.jitCompiles;
    pe.baselineDispatchShare = dispatchShare(a);
    pe.candidateDispatchShare = dispatchShare(b);
    pe.baselineL1dMissPct =
        a.counters.l1dAccesses
            ? 100.0 * static_cast<double>(a.counters.l1dMisses) /
                  static_cast<double>(a.counters.l1dAccesses)
            : 0.0;
    pe.candidateL1dMissPct =
        b.counters.l1dAccesses
            ? 100.0 * static_cast<double>(b.counters.l1dMisses) /
                  static_cast<double>(b.counters.l1dAccesses)
            : 0.0;
    return pe;
}

/** Map (workload, tier) -> parsed profile for one entry. */
std::map<std::pair<std::string, std::string>, BehaviorProfile>
profilesByKey(const archive::Entry &entry)
{
    std::map<std::pair<std::string, std::string>, BehaviorProfile>
        out;
    if (entry.profiles.size() != entry.runs.size())
        return out;
    for (size_t i = 0; i < entry.runs.size(); ++i) {
        if (entry.profiles[i].isNull())
            continue;
        BehaviorProfile p = profileFromJson(entry.profiles[i]);
        out.emplace(std::make_pair(p.workload, p.tier),
                    std::move(p));
    }
    return out;
}

} // namespace

ExplainReport
explainEntries(const archive::Entry &baseline,
               const archive::Entry &candidate,
               const compare::CompareReport &report)
{
    ExplainReport out;
    out.baselineRef = report.baselineRef;
    out.candidateRef = report.candidateRef;
    out.baselineId = report.baselineId;
    out.candidateId = report.candidateId;
    out.baselineFingerprint = report.baselineFingerprint;
    out.candidateFingerprint = report.candidateFingerprint;
    out.sameConfig = report.sameConfig;
    out.baselineOnly = report.baselineOnly;
    out.candidateOnly = report.candidateOnly;

    auto baseProfiles = profilesByKey(baseline);
    auto candProfiles = profilesByKey(candidate);
    for (const auto &wc : report.workloads) {
        // Under cross-tier pairing the pair's display tier
        // ("interp->threaded") matches no profile; each side's
        // profile is keyed by its own tier.
        auto ia = baseProfiles.find(std::make_pair(
            wc.workload, report.baselineTier.empty()
                             ? wc.tier
                             : report.baselineTier));
        auto ib = candProfiles.find(std::make_pair(
            wc.workload, report.candidateTier.empty()
                             ? wc.tier
                             : report.candidateTier));
        bool haveA =
            ia != baseProfiles.end() && ia->second.iterations > 0;
        bool haveB =
            ib != candProfiles.end() && ib->second.iterations > 0;
        if (haveA && haveB) {
            out.pairs.push_back(
                explainPair(wc, ia->second, ib->second));
            continue;
        }
        PairExplanation pe;
        pe.workload = wc.workload;
        pe.tier = wc.tier;
        pe.hasProfiles = false;
        pe.speedup = wc.speedup;
        pe.verdict = compare::verdictName(wc.verdict);
        pe.measuredPct =
            (wc.candidateMs / wc.baselineMs - 1.0) * 100.0;
        std::string missing;
        if (!haveA)
            missing += strprintf("baseline entry #%d",
                                 report.baselineId);
        if (!haveB) {
            if (!missing.empty())
                missing += " and ";
            missing += strprintf("candidate entry #%d",
                                 report.candidateId);
        }
        pe.note = strprintf(
            "NO PROFILE CAPTURED: %s carries no behavior profile "
            "for this pair (archived by an older rigorbench or "
            "with empty runs); re-archive with this build to "
            "enable attribution.",
            missing.c_str());
        out.pairs.push_back(std::move(pe));
    }
    return out;
}

std::string
headline(const PairExplanation &pair)
{
    std::string out = fmtDirection(pair.measuredPct);
    if (!pair.hasProfiles)
        return out + " — unexplained (no profile captured)";
    std::vector<std::string> parts;
    for (const auto &c : pair.components)
        if (std::fabs(c.contributionPct) >= 0.05)
            parts.push_back(c.name + " " +
                            fmtSignedPct(c.contributionPct));
    parts.push_back("unattributed " +
                    fmtSignedPct(pair.unattributedPct));
    return out + " — " + join(parts, ", ");
}

std::string
renderPair(const PairExplanation &pair)
{
    std::string md;
    md += strprintf("### %s / %s\n\n", pair.workload.c_str(),
                    pair.tier.c_str());
    md += strprintf("%s (speedup %s, verdict %s)\n\n",
                    headline(pair).c_str(),
                    harness::formatCi(pair.speedup, 3).c_str(),
                    pair.verdict.c_str());
    if (!pair.hasProfiles) {
        md += pair.note + "\n";
        return md;
    }
    md += "| component | baseline cyc/iter | candidate cyc/iter | "
          "contribution |\n|---|---|---|---|\n";
    for (const auto &c : pair.components)
        md += strprintf(
            "| %s | %s | %s | %s |\n", c.name.c_str(),
            fmtDouble(c.baselineCyclesPerIter, 1).c_str(),
            fmtDouble(c.candidateCyclesPerIter, 1).c_str(),
            fmtSignedPct(c.contributionPct).c_str());
    md += strprintf("| unattributed remainder |  |  | %s |\n\n",
                    fmtSignedPct(pair.unattributedPct).c_str());

    if (!pair.movers.empty()) {
        std::vector<std::string> parts;
        for (const auto &mv : pair.movers)
            parts.push_back(strprintf(
                "`%s` %s (count %s, uops %s)", mv.op.c_str(),
                fmtSignedPct(mv.contributionPct).c_str(),
                fmtFactor(mv.baselineCountPerIter,
                          mv.candidateCountPerIter)
                    .c_str(),
                fmtFactor(mv.baselineUopsPerIter,
                          mv.candidateUopsPerIter)
                    .c_str()));
        md += "Top opcode movers: " + join(parts, ", ") + ".\n";
    }

    std::string worst;
    if (!pair.topGuardOp.empty())
        worst = ", worst `" + pair.topGuardOp + "`";
    std::string deopt = strprintf(
        "deopts/iter %s (%s → %s%s)",
        fmtFactor(pair.baselineGuardsPerIter,
                  pair.candidateGuardsPerIter)
            .c_str(),
        fmtDouble(pair.baselineGuardsPerIter, 2).c_str(),
        fmtDouble(pair.candidateGuardsPerIter, 2).c_str(),
        worst.c_str());
    md += strprintf(
        "Evidence: %s; jit compiles %s → %s; interp-dispatched "
        "share %s%% → %s%%; L1d miss rate %s%% → %s%%.\n",
        deopt.c_str(), fmtCount(pair.baselineJitCompiles).c_str(),
        fmtCount(pair.candidateJitCompiles).c_str(),
        fmtDouble(100.0 * pair.baselineDispatchShare, 1).c_str(),
        fmtDouble(100.0 * pair.candidateDispatchShare, 1).c_str(),
        fmtDouble(pair.baselineL1dMissPct, 2).c_str(),
        fmtDouble(pair.candidateL1dMissPct, 2).c_str());
    return md;
}

std::string
renderMarkdown(const ExplainReport &report)
{
    std::string md;
    md += strprintf("# rigorbench explain: %s vs %s\n\n",
                    report.baselineRef.c_str(),
                    report.candidateRef.c_str());
    md += "|  | baseline | candidate |\n|---|---|---|\n";
    md += strprintf("| ref | %s (#%d) | %s (#%d) |\n",
                    report.baselineRef.c_str(), report.baselineId,
                    report.candidateRef.c_str(),
                    report.candidateId);
    md += strprintf("| config fingerprint | `%s` | `%s` |\n\n",
                    report.baselineFingerprint.c_str(),
                    report.candidateFingerprint.c_str());
    if (report.sameConfig)
        md += "Configurations are **identical**: attributions "
              "below explain a performance change.\n\n";
    else
        md += "Configurations **differ** (A/B comparison): "
              "attributions below explain the config change's "
              "behavioral effect.\n\n";
    md += "Contributions are percentages of the baseline's "
          "steady-state iteration time; components sum to the "
          "measured change up to the explicit unattributed "
          "remainder (see docs/METHODOLOGY.md §14).\n\n";
    for (const auto &pair : report.pairs)
        md += renderPair(pair) + "\n";
    if (!report.baselineOnly.empty())
        md += strprintf("Only in baseline (not explained): %s.\n",
                        join(report.baselineOnly, ", ").c_str());
    if (!report.candidateOnly.empty())
        md += strprintf("Only in candidate (not explained): %s.\n",
                        join(report.candidateOnly, ", ").c_str());
    return md;
}

Json
reportToJson(const ExplainReport &report)
{
    Json root = Json::object();
    root.set("schema", kExplainReportSchema);
    root.set("version", kExplainReportVersion);
    Json base = Json::object();
    base.set("ref", report.baselineRef);
    base.set("id", report.baselineId);
    base.set("fingerprint", report.baselineFingerprint);
    root.set("baseline", std::move(base));
    Json cand = Json::object();
    cand.set("ref", report.candidateRef);
    cand.set("id", report.candidateId);
    cand.set("fingerprint", report.candidateFingerprint);
    root.set("candidate", std::move(cand));
    root.set("same_config", report.sameConfig);

    Json pairs = Json::array();
    for (const auto &pair : report.pairs) {
        Json j = Json::object();
        j.set("workload", pair.workload);
        j.set("tier", pair.tier);
        j.set("has_profiles", pair.hasProfiles);
        if (!pair.note.empty())
            j.set("note", pair.note);
        j.set("measured_pct", pair.measuredPct);
        Json s = Json::object();
        s.set("estimate", pair.speedup.estimate);
        s.set("lower", pair.speedup.lower);
        s.set("upper", pair.speedup.upper);
        j.set("speedup", std::move(s));
        j.set("verdict", pair.verdict);
        if (pair.hasProfiles) {
            Json comps = Json::array();
            for (const auto &c : pair.components) {
                Json cj = Json::object();
                cj.set("name", c.name);
                cj.set("baseline_cycles_per_iter",
                       c.baselineCyclesPerIter);
                cj.set("candidate_cycles_per_iter",
                       c.candidateCyclesPerIter);
                cj.set("contribution_pct", c.contributionPct);
                comps.push(std::move(cj));
            }
            j.set("components", std::move(comps));
            j.set("unattributed_pct", pair.unattributedPct);
            Json movers = Json::array();
            for (const auto &mv : pair.movers) {
                Json mj = Json::object();
                mj.set("op", mv.op);
                mj.set("contribution_pct", mv.contributionPct);
                mj.set("baseline_count_per_iter",
                       mv.baselineCountPerIter);
                mj.set("candidate_count_per_iter",
                       mv.candidateCountPerIter);
                mj.set("baseline_uops_per_iter",
                       mv.baselineUopsPerIter);
                mj.set("candidate_uops_per_iter",
                       mv.candidateUopsPerIter);
                movers.push(std::move(mj));
            }
            j.set("movers", std::move(movers));
            Json ev = Json::object();
            ev.set("baseline_guards_per_iter",
                   pair.baselineGuardsPerIter);
            ev.set("candidate_guards_per_iter",
                   pair.candidateGuardsPerIter);
            if (!pair.topGuardOp.empty())
                ev.set("top_guard_op", pair.topGuardOp);
            ev.set("baseline_jit_compiles",
                   pair.baselineJitCompiles);
            ev.set("candidate_jit_compiles",
                   pair.candidateJitCompiles);
            ev.set("baseline_dispatch_share",
                   pair.baselineDispatchShare);
            ev.set("candidate_dispatch_share",
                   pair.candidateDispatchShare);
            ev.set("baseline_l1d_miss_pct",
                   pair.baselineL1dMissPct);
            ev.set("candidate_l1d_miss_pct",
                   pair.candidateL1dMissPct);
            j.set("evidence", std::move(ev));
        }
        pairs.push(std::move(j));
    }
    root.set("pairs", std::move(pairs));
    Json onlyA = Json::array();
    for (const auto &k : report.baselineOnly)
        onlyA.push(k);
    root.set("baseline_only", std::move(onlyA));
    Json onlyB = Json::array();
    for (const auto &k : report.candidateOnly)
        onlyB.push(k);
    root.set("candidate_only", std::move(onlyB));
    return root;
}

const PairExplanation *
findPair(const ExplainReport &report, const std::string &workload,
         const std::string &tier)
{
    for (const auto &pair : report.pairs)
        if (pair.workload == workload && pair.tier == tier)
            return &pair;
    return nullptr;
}

} // namespace explain
} // namespace rigor
