#include "explain/behavior_profile.hh"

#include "support/logging.hh"
#include "support/schema.hh"
#include "uarch/cache.hh"
#include "vm/code.hh"
#include "vm/interp.hh"

namespace rigor {
namespace explain {

namespace {

/** Read a uint64 field, tolerating its absence (older minor docs). */
uint64_t
getU64(const Json &obj, const std::string &key)
{
    const Json *v = obj.get(key);
    return v ? static_cast<uint64_t>(v->asInt()) : 0;
}

double
getDbl(const Json &obj, const std::string &key, double dflt)
{
    const Json *v = obj.get(key);
    return v ? v->asDouble() : dflt;
}

} // namespace

BehaviorProfile
buildProfile(const harness::RunResult &run,
             const harness::RunnerConfig &config)
{
    BehaviorProfile p;
    p.workload = run.workload;
    p.tier = vm::tierName(run.tier);
    p.invocations = run.invocations.size();
    for (const auto &inv : run.invocations)
        p.iterations += inv.samples.size();

    // Invocation-lifetime VM totals and per-op totals.
    constexpr size_t kNumOps =
        static_cast<size_t>(vm::Op::NumOpcodes);
    std::vector<OpProfile> ops(kNumOps);
    for (const auto &inv : run.invocations) {
        const vm::InterpStats &s = inv.vmStats;
        p.vm.bytecodes += s.bytecodes;
        p.vm.uops += s.uops;
        p.vm.calls += s.calls;
        p.vm.allocations += s.allocations;
        p.vm.allocatedBytes += s.allocatedBytes;
        p.vm.dictLookups += s.dictLookups;
        p.vm.guardFailures += s.guardFailures;
        p.vm.jitCompiles += s.jitCompiles;
        p.vm.jitCompileUops += s.jitCompileUops;
        for (size_t i = 0; i < kNumOps; ++i) {
            ops[i].count += s.perOp[i];
            ops[i].uops += s.perOpUops[i];
            ops[i].dispatched += s.perOpDispatched[i];
            ops[i].guardFailures += s.perOpGuards[i];
        }
    }
    for (size_t i = 0; i < kNumOps; ++i) {
        if (ops[i].count == 0 && ops[i].guardFailures == 0)
            continue;
        ops[i].op = vm::opName(static_cast<vm::Op>(i));
        p.ops.push_back(ops[i]);
    }

    // Iteration-window perf-counter totals (module setup excluded).
    p.counters = run.totalCounters();

    // Model parameters the runs were measured under. The cache
    // latencies are the (fixed) defaults of CacheHierarchy: the
    // runner has no knob for them, but the profile records them so a
    // future knob cannot silently invalidate archived attributions.
    uarch::MemoryLatencies lat;
    p.model.issueWidth = config.uarch.issueWidth;
    p.model.branchMissPenalty = config.uarch.branchMissPenalty;
    p.model.dispatchMissPenalty = config.uarch.dispatchMissPenalty;
    p.model.memOverlapFactor = config.uarch.memOverlapFactor;
    p.model.l1iMissPenalty = config.uarch.l1iMissPenalty;
    p.model.l2HitCycles = lat.l2Hit;
    p.model.llcHitCycles = lat.llcHit;
    p.model.dramCycles = lat.dram;
    p.model.cyclesPerMs = config.cyclesPerMs;
    return p;
}

Json
profileToJson(const BehaviorProfile &p)
{
    Json j = Json::object();
    j.set("schema", kBehaviorProfileSchema);
    j.set("version", kBehaviorProfileVersion);
    j.set("workload", p.workload);
    j.set("tier", p.tier);
    j.set("invocations", p.invocations);
    j.set("iterations", p.iterations);

    Json vm = Json::object();
    vm.set("bytecodes", p.vm.bytecodes);
    vm.set("uops", p.vm.uops);
    vm.set("calls", p.vm.calls);
    vm.set("allocations", p.vm.allocations);
    vm.set("allocated_bytes", p.vm.allocatedBytes);
    vm.set("dict_lookups", p.vm.dictLookups);
    vm.set("guard_failures", p.vm.guardFailures);
    vm.set("jit_compiles", p.vm.jitCompiles);
    vm.set("jit_compile_uops", p.vm.jitCompileUops);
    j.set("vm", vm);

    // Compact row-per-opcode form: [name, count, uops, dispatched,
    // guard_failures]; column meaning is fixed by the schema version.
    Json ops = Json::array();
    for (const auto &op : p.ops) {
        Json row = Json::array();
        row.push(op.op);
        row.push(op.count);
        row.push(op.uops);
        row.push(op.dispatched);
        row.push(op.guardFailures);
        ops.push(row);
    }
    j.set("ops", ops);

    const uarch::CounterSet &c = p.counters;
    Json counters = Json::object();
    counters.set("bytecodes", c.bytecodes);
    counters.set("instructions", c.instructions);
    counters.set("cycles", c.cycles);
    counters.set("branches", c.branches);
    counters.set("branch_misses", c.branchMisses);
    counters.set("dispatches", c.dispatches);
    counters.set("dispatch_misses", c.dispatchMisses);
    counters.set("loads", c.loads);
    counters.set("stores", c.stores);
    counters.set("l1d_accesses", c.l1dAccesses);
    counters.set("l1d_misses", c.l1dMisses);
    counters.set("l1i_accesses", c.l1iAccesses);
    counters.set("l1i_misses", c.l1iMisses);
    counters.set("l2_misses", c.l2Misses);
    counters.set("llc_misses", c.llcMisses);
    counters.set("allocations", c.allocations);
    counters.set("allocated_bytes", c.allocatedBytes);
    j.set("counters", counters);

    Json model = Json::object();
    model.set("issue_width", p.model.issueWidth);
    model.set("branch_miss_penalty",
              static_cast<uint64_t>(p.model.branchMissPenalty));
    model.set("dispatch_miss_penalty",
              static_cast<uint64_t>(p.model.dispatchMissPenalty));
    model.set("mem_overlap_factor", p.model.memOverlapFactor);
    model.set("l1i_miss_penalty",
              static_cast<uint64_t>(p.model.l1iMissPenalty));
    model.set("l2_hit_cycles",
              static_cast<uint64_t>(p.model.l2HitCycles));
    model.set("llc_hit_cycles",
              static_cast<uint64_t>(p.model.llcHitCycles));
    model.set("dram_cycles",
              static_cast<uint64_t>(p.model.dramCycles));
    model.set("cycles_per_ms", p.model.cyclesPerMs);
    j.set("model", model);
    return j;
}

BehaviorProfile
profileFromJson(const Json &j)
{
    const Json *schema = j.get("schema");
    if (!schema ||
        schema->asString() != kBehaviorProfileSchema)
        fatal("not a %s document", kBehaviorProfileSchema);
    const Json *version = j.get("version");
    if (!version || version->asInt() != kBehaviorProfileVersion)
        fatal("behavior profile version %lld; this build reads "
              "version %d",
              version ? static_cast<long long>(version->asInt())
                      : 0LL,
              kBehaviorProfileVersion);

    BehaviorProfile p;
    p.workload = j.at("workload").asString();
    p.tier = j.at("tier").asString();
    // Round-trip through tierFromName so an unknown tier string in an
    // archived profile fails loudly instead of misattributing.
    vm::tierFromName(p.tier);
    p.invocations = static_cast<uint64_t>(j.at("invocations").asInt());
    p.iterations = static_cast<uint64_t>(j.at("iterations").asInt());

    const Json &vm = j.at("vm");
    p.vm.bytecodes = getU64(vm, "bytecodes");
    p.vm.uops = getU64(vm, "uops");
    p.vm.calls = getU64(vm, "calls");
    p.vm.allocations = getU64(vm, "allocations");
    p.vm.allocatedBytes = getU64(vm, "allocated_bytes");
    p.vm.dictLookups = getU64(vm, "dict_lookups");
    p.vm.guardFailures = getU64(vm, "guard_failures");
    p.vm.jitCompiles = getU64(vm, "jit_compiles");
    p.vm.jitCompileUops = getU64(vm, "jit_compile_uops");

    const Json &ops = j.at("ops");
    for (size_t i = 0; i < ops.size(); ++i) {
        const Json &row = ops.at(i);
        OpProfile op;
        op.op = row.at(size_t{0}).asString();
        op.count = static_cast<uint64_t>(row.at(size_t{1}).asInt());
        op.uops = static_cast<uint64_t>(row.at(size_t{2}).asInt());
        op.dispatched =
            static_cast<uint64_t>(row.at(size_t{3}).asInt());
        op.guardFailures =
            static_cast<uint64_t>(row.at(size_t{4}).asInt());
        p.ops.push_back(op);
    }

    const Json &c = j.at("counters");
    p.counters.bytecodes = getU64(c, "bytecodes");
    p.counters.instructions = getU64(c, "instructions");
    p.counters.cycles = getU64(c, "cycles");
    p.counters.branches = getU64(c, "branches");
    p.counters.branchMisses = getU64(c, "branch_misses");
    p.counters.dispatches = getU64(c, "dispatches");
    p.counters.dispatchMisses = getU64(c, "dispatch_misses");
    p.counters.loads = getU64(c, "loads");
    p.counters.stores = getU64(c, "stores");
    p.counters.l1dAccesses = getU64(c, "l1d_accesses");
    p.counters.l1dMisses = getU64(c, "l1d_misses");
    p.counters.l1iAccesses = getU64(c, "l1i_accesses");
    p.counters.l1iMisses = getU64(c, "l1i_misses");
    p.counters.l2Misses = getU64(c, "l2_misses");
    p.counters.llcMisses = getU64(c, "llc_misses");
    p.counters.allocations = getU64(c, "allocations");
    p.counters.allocatedBytes = getU64(c, "allocated_bytes");

    const Json &m = j.at("model");
    p.model.issueWidth = getDbl(m, "issue_width", 4.0);
    p.model.branchMissPenalty =
        static_cast<uint32_t>(getU64(m, "branch_miss_penalty"));
    p.model.dispatchMissPenalty =
        static_cast<uint32_t>(getU64(m, "dispatch_miss_penalty"));
    p.model.memOverlapFactor =
        getDbl(m, "mem_overlap_factor", 0.45);
    p.model.l1iMissPenalty =
        static_cast<uint32_t>(getU64(m, "l1i_miss_penalty"));
    p.model.l2HitCycles =
        static_cast<uint32_t>(getU64(m, "l2_hit_cycles"));
    p.model.llcHitCycles =
        static_cast<uint32_t>(getU64(m, "llc_hit_cycles"));
    p.model.dramCycles =
        static_cast<uint32_t>(getU64(m, "dram_cycles"));
    p.model.cyclesPerMs = getDbl(m, "cycles_per_ms", 3.0e6);
    return p;
}

} // namespace explain
} // namespace rigor
