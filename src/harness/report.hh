/**
 * @file
 * Report formatting: confidence-interval strings, ASCII sparkline
 * "figures" for per-iteration series, and CSV/JSON export of run
 * results so external plotting can regenerate the paper's figures.
 */

#ifndef RIGOR_HARNESS_REPORT_HH
#define RIGOR_HARNESS_REPORT_HH

#include <ostream>
#include <string>

#include "harness/analysis.hh"
#include "harness/measurement.hh"
#include "stats/ci.hh"
#include "support/json.hh"

namespace rigor {
namespace harness {

/** "12.345 [12.1, 12.6]" with the given decimal places. */
std::string formatCi(const stats::ConfidenceInterval &ci, int places);

/** "12.345 ± 2.1%" style rendering. */
std::string formatCiPercent(const stats::ConfidenceInterval &ci,
                            int places);

/**
 * Render a numeric series as an ASCII chart, one row per output line:
 * values are min-max scaled onto `height` levels of '#' columns.
 */
std::string asciiSeries(const std::vector<double> &values,
                        int height = 8, int max_width = 72);

/** Compact one-line sparkline using block characters. */
std::string sparkline(const std::vector<double> &values,
                      int max_width = 64);

/** Write one run's per-iteration samples as CSV rows. */
void writeSeriesCsv(std::ostream &os, const RunResult &run);

/** Full JSON dump of a run (times + counters per iteration). */
Json runToJson(const RunResult &run);

/**
 * Rebuild a RunResult from runToJson() output. Only the fields the
 * analyses need (times and cycle counts) are restored; per-iteration
 * counter details and VM stats are not serialized. Enables offline
 * re-analysis of archived measurements.
 * @throws FatalError / PanicError on malformed documents.
 */
RunResult runFromJson(const Json &doc);

/**
 * Per-workload entry of a (possibly partial) suite run. `failed` means
 * no usable estimate exists for the workload; a quarantined or
 * failure-scarred workload that still produced estimates keeps its
 * numbers and is flagged instead.
 */
struct SuiteWorkloadState
{
    std::string name;
    bool failed = false;
    bool quarantined = false;
    /** Invocation failures recorded across all tiers. */
    int failureCount = 0;
    /** Modelled ms spent measuring this workload (all tiers). */
    double modelledMs = 0.0;
    double interpMs = 0.0;
    double adaptiveMs = 0.0;
    double threadedMs = 0.0;
    /** Adaptive over interp. */
    SpeedupResult speedup;
    /** Threaded over interp. */
    SpeedupResult threadedSpeedup;
};

/**
 * Persistent state of a suite run, written after every workload so an
 * interrupted suite can be resumed (`rigorbench suite --resume FILE`)
 * without re-measuring completed workloads. The design parameters are
 * stored so a resume with mismatched parameters is rejected rather
 * than silently mixing incomparable measurements.
 */
struct SuiteState
{
    uint64_t seed = 0;
    int invocations = 0;
    int iterations = 0;

    std::vector<SuiteWorkloadState> workloads;

    /** Entry for a workload, or nullptr if not yet measured. */
    const SuiteWorkloadState *find(const std::string &name) const;
};

/** Serialize suite state (JSON round-trips via suiteStateFromJson). */
Json suiteStateToJson(const SuiteState &state);

/** Rebuild suite state; throws FatalError/PanicError on bad input. */
SuiteState suiteStateFromJson(const Json &doc);

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_REPORT_HH
