/**
 * @file
 * Measurement-noise model with known ground truth.
 *
 * Real benchmarking noise has (at least) three components the
 * methodology must separate:
 *   1. a per-invocation bias (ASLR, hash seed, CPU frequency state,
 *      co-located load at launch) — identical for every iteration of
 *      one invocation;
 *   2. per-iteration jitter (timer interrupts, minor scheduling);
 *   3. rare spikes (daemon wakeups, SMIs).
 * Because the noise here is injected with *known parameters*, tests
 * can verify that the statistical estimators recover them — something
 * impossible on real hardware.
 */

#ifndef RIGOR_HARNESS_NOISE_HH
#define RIGOR_HARNESS_NOISE_HH

#include <cstdint>

#include "support/rng.hh"

namespace rigor {
namespace harness {

/** Parameters of the noise model. */
struct NoiseConfig
{
    /** Log-normal sigma of the per-invocation multiplicative bias. */
    double betweenSigma = 0.015;
    /** Log-normal sigma of the per-iteration multiplicative jitter. */
    double withinSigma = 0.006;
    /** Probability that an iteration takes a spike. */
    double spikeProbability = 0.01;
    /** Mean relative magnitude of a spike (exponential). */
    double spikeScale = 0.10;
    /** Disable all noise (pure simulation determinism). */
    bool enabled = true;
};

/**
 * Draws noise factors for one invocation's iterations. Construct one
 * per invocation with that invocation's seed.
 */
class NoiseModel
{
  public:
    NoiseModel(NoiseConfig config, uint64_t invocation_seed);

    /**
     * Multiplicative factor (>= 0) to apply to the next iteration's
     * modelled time; includes the invocation bias.
     */
    double nextIterationFactor();

    /** The invocation's fixed bias factor (for tests). */
    double invocationBias() const { return bias; }

  private:
    NoiseConfig cfg;
    Rng rng;
    double bias;
};

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_NOISE_HH
