/**
 * @file
 * Flat execution profiling: run one VM invocation of a workload with
 * a profiling observer and aggregate its dynamic bytecode stream into
 * a per-opcode profile plus hot branch / allocation site tables.
 *
 * This is the "Explain" instrument of the Measure-Explain-Test-
 * Improve loop: when a timing result surprises, the profile shows
 * where the dynamic work actually went — which opcodes dominate,
 * which of them ran quickened versus dispatched, and which source
 * sites branch and allocate the most — without recompiling anything.
 */

#ifndef RIGOR_HARNESS_PROFILE_HH
#define RIGOR_HARNESS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "vm/code.hh"
#include "vm/interp.hh"
#include "workloads/workloads.hh"

namespace rigor {
namespace harness {

/** Design of one profiling run (a single VM invocation). */
struct ProfileConfig
{
    /** Tier to profile; adaptive shows warmup + tier split. */
    vm::Tier tier = vm::Tier::Adaptive;
    /** In-process iterations of run(n) to aggregate over. */
    int iterations = 8;
    /** Workload size (0 = the workload's defaultSize). */
    int64_t size = 0;
    /** Seed deriving hash/ASLR seeds (same scheme as the runner). */
    uint64_t seed = 0xc0ffee;
    /** JIT hot threshold (adaptive tier). */
    int jitThreshold = kDefaultJitThreshold;
};

/** One opcode's aggregated dynamic profile. */
struct OpProfileEntry
{
    vm::Op op = vm::Op::Nop;
    /** Dynamic execution count. */
    uint64_t count = 0;
    /** Micro-ops attributed to this opcode (incl. dispatch). */
    uint64_t uops = 0;
    /** Executions that went through interpreter dispatch. The rest
     *  ran inside compiled (JIT-model) code. */
    uint64_t dispatched = 0;
    /** Share of the run's total micro-ops, in percent. */
    double uopsPercent = 0.0;
};

/** One static branch site's aggregated outcome counts. */
struct BranchSiteEntry
{
    uint64_t site = 0;        ///< (codeId << 20) | pc
    std::string location;     ///< "function+pc"
    uint64_t count = 0;
    uint64_t taken = 0;
};

/** One bytecode site's aggregated allocations. */
struct AllocSiteEntry
{
    uint64_t site = 0;
    std::string location;
    uint64_t count = 0;
    uint64_t bytes = 0;
};

/** Everything one profiling invocation learned. */
struct ProfileResult
{
    std::string workload;
    vm::Tier tier = vm::Tier::Adaptive;
    int64_t size = 0;
    int iterations = 0;

    uint64_t totalBytecodes = 0;
    uint64_t totalUops = 0;
    uint64_t jitCompiles = 0;
    uint64_t guardFailures = 0;

    /** Executed opcodes, sorted by uops descending. */
    std::vector<OpProfileEntry> ops;
    /** Branch sites, sorted by execution count descending. */
    std::vector<BranchSiteEntry> branchSites;
    /** Allocation sites, sorted by bytes descending. */
    std::vector<AllocSiteEntry> allocSites;
};

/** Profile one workload (a single fresh VM invocation). */
ProfileResult profileWorkload(const workloads::WorkloadSpec &spec,
                              const ProfileConfig &config);

/** Convenience: look up the workload by name and profile it. */
ProfileResult profileWorkload(const std::string &workload_name,
                              const ProfileConfig &config);

/**
 * Render the profile as the CLI prints it: a flat per-opcode table
 * (count, uops, % of total uops, tier split) followed by the top
 * `top_sites` branch and allocation sites.
 */
std::string renderProfile(const ProfileResult &profile,
                          int top_sites = 10);

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_PROFILE_HH
