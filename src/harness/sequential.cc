#include "harness/sequential.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rigor {
namespace harness {

SequentialResult
runSequential(const workloads::WorkloadSpec &spec,
              const RunnerConfig &base, const SequentialConfig &seq)
{
    if (seq.minInvocations < 2)
        fatal("sequential design needs at least 2 invocations");
    if (seq.maxInvocations < seq.minInvocations)
        fatal("maxInvocations must be >= minInvocations");
    if (seq.batchSize < 1)
        fatal("batchSize must be positive");

    SequentialResult out;
    out.run.workload = spec.name;
    out.run.tier = base.tier;
    out.run.size = base.size > 0 ? base.size : spec.defaultSize;

    extendExperiment(spec, base, out.run, seq.minInvocations);
    for (;;) {
        out.invocationsUsed =
            static_cast<int>(out.run.invocations.size());
        // A quarantined workload cannot be extended further; return
        // whatever partial evidence was gathered (the caller sees
        // converged == false plus the run's failure records).
        if (out.run.quarantined || out.run.interrupted) {
            if (out.invocationsUsed >= 2)
                out.estimate =
                    rigorousEstimate(out.run, seq.confidence);
            return out;
        }
        if (out.invocationsUsed >= 2) {
            out.estimate = rigorousEstimate(out.run, seq.confidence);
            double rel = out.estimate.ci.relativeHalfWidth();
            out.widthTrajectory.push_back(rel);
            if (rel <= seq.targetRelativeHalfWidth) {
                out.converged = true;
                return out;
            }
        }
        // Budget accounting counts attempted invocations, so a run
        // suffering scattered permanent failures still terminates.
        int spent = std::max(out.run.invocationsAttempted,
                             out.invocationsUsed);
        if (spent >= seq.maxInvocations)
            return out;
        int add = std::min(seq.batchSize, seq.maxInvocations - spent);
        extendExperiment(spec, base, out.run, add);
    }
}

SequentialResult
runSequential(const std::string &workload_name,
              const RunnerConfig &base, const SequentialConfig &seq)
{
    return runSequential(workloads::findWorkload(workload_name), base,
                         seq);
}

} // namespace harness
} // namespace rigor
