#include "harness/noise.hh"

namespace rigor {
namespace harness {

NoiseModel::NoiseModel(NoiseConfig config, uint64_t invocation_seed)
    : cfg(config), rng(invocation_seed ^ 0xd1b54a32d192ed03ULL),
      bias(1.0)
{
    if (cfg.enabled && cfg.betweenSigma > 0.0)
        bias = rng.nextLogNormal(0.0, cfg.betweenSigma);
}

double
NoiseModel::nextIterationFactor()
{
    if (!cfg.enabled)
        return 1.0;
    double factor = bias;
    if (cfg.withinSigma > 0.0)
        factor *= rng.nextLogNormal(0.0, cfg.withinSigma);
    if (cfg.spikeProbability > 0.0 &&
        rng.nextBernoulli(cfg.spikeProbability))
        factor *= 1.0 + rng.nextExponential(1.0 / cfg.spikeScale);
    return factor;
}

} // namespace harness
} // namespace rigor
