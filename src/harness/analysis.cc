#include "harness/analysis.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"
#include "support/logging.hh"

namespace rigor {
namespace harness {

double
SteadyStateSummary::steadyFraction() const
{
    size_t total = perInvocation.size();
    return total ? static_cast<double>(total -
                                       static_cast<size_t>(
                                           noSteadyState)) /
            static_cast<double>(total)
                 : 0.0;
}

SteadyStateSummary
analyzeSteadyState(const RunResult &run,
                   const stats::SteadyStateOptions &opts)
{
    SteadyStateSummary summary;
    double start_sum = 0.0;
    int with_steady = 0;
    for (const auto &inv : run.invocations) {
        auto res = stats::detectSteadyState(inv.times(), opts);
        switch (res.classification) {
          case stats::SeriesClass::Flat: ++summary.flat; break;
          case stats::SeriesClass::Warmup: ++summary.warmup; break;
          case stats::SeriesClass::Slowdown:
            ++summary.slowdown;
            break;
          case stats::SeriesClass::NoSteadyState:
            ++summary.noSteadyState;
            break;
        }
        if (res.hasSteadyState()) {
            start_sum += static_cast<double>(res.steadyStart);
            summary.maxSteadyStart =
                std::max(summary.maxSteadyStart, res.steadyStart);
            ++with_steady;
        }
        summary.perInvocation.push_back(std::move(res));
    }
    if (with_steady)
        summary.meanSteadyStart = start_sum / with_steady;
    return summary;
}

const char *
methodologyName(Methodology m)
{
    switch (m) {
      case Methodology::RigorousMeanOfMeans:
        return "rigorous";
      case Methodology::NaiveFirstIteration:
        return "naive-first-iter";
      case Methodology::NaiveSingleInvocationMean:
        return "naive-one-invocation";
      case Methodology::NaiveBestOfAll:
        return "naive-best";
      case Methodology::NaiveLastIteration:
        return "naive-last-iter";
      case Methodology::NaivePooled:
        return "naive-pooled";
    }
    return "?";
}

const std::vector<Methodology> &
allMethodologies()
{
    static const std::vector<Methodology> all = {
        Methodology::RigorousMeanOfMeans,
        Methodology::NaiveFirstIteration,
        Methodology::NaiveSingleInvocationMean,
        Methodology::NaiveBestOfAll,
        Methodology::NaiveLastIteration,
        Methodology::NaivePooled,
    };
    return all;
}

RigorousEstimate
rigorousEstimate(const RunResult &run, double confidence)
{
    // With fault-tolerant execution a run can legitimately end up with
    // zero successful invocations (everything failed or the workload
    // was quarantined). That is a reportable condition, not a bug.
    if (run.invocations.empty())
        fatal("rigorousEstimate: run of %s has no successful "
              "invocations (%zu failure(s)%s)",
              run.workload.c_str(), run.failures.size(),
              run.quarantined ? ", quarantined" : "");

    RigorousEstimate out;
    out.steadyState = analyzeSteadyState(run);
    for (size_t i = 0; i < run.invocations.size(); ++i) {
        const auto &inv = run.invocations[i];
        const auto &ss = out.steadyState.perInvocation[i];
        std::vector<double> times = inv.times();
        if (ss.hasSteadyState() && ss.steadyStart < times.size()) {
            std::vector<double> steady(
                times.begin() +
                    static_cast<ptrdiff_t>(ss.steadyStart),
                times.end());
            out.invocationMeans.push_back(stats::mean(steady));
        } else {
            // No steady state: fall back to the full series, counted
            // in the summary so reports can flag it.
            out.invocationMeans.push_back(stats::mean(times));
        }
    }
    out.ci = stats::tInterval(out.invocationMeans, confidence);
    return out;
}

double
pointEstimate(const RunResult &run, Methodology m)
{
    if (run.invocations.empty())
        panic("pointEstimate: empty run");
    const auto &first_inv = run.invocations.front();
    switch (m) {
      case Methodology::RigorousMeanOfMeans:
        return rigorousEstimate(run).ci.estimate;
      case Methodology::NaiveFirstIteration:
        return first_inv.samples.front().timeMs;
      case Methodology::NaiveSingleInvocationMean:
        return stats::mean(first_inv.times());
      case Methodology::NaiveBestOfAll: {
        double best = first_inv.samples.front().timeMs;
        for (const auto &inv : run.invocations)
            for (const auto &s : inv.samples)
                best = std::min(best, s.timeMs);
        return best;
      }
      case Methodology::NaiveLastIteration:
        return first_inv.samples.back().timeMs;
      case Methodology::NaivePooled:
        return stats::mean(stats::flatten(run.series()));
    }
    panic("pointEstimate: bad methodology");
}

stats::ConfidenceInterval
intervalEstimate(const RunResult &run, Methodology m, double confidence)
{
    switch (m) {
      case Methodology::RigorousMeanOfMeans:
        return rigorousEstimate(run, confidence).ci;
      case Methodology::NaivePooled:
        return stats::naivePooledInterval(run.series(), confidence);
      default: {
        // Single-number methodologies have no interval at all.
        stats::ConfidenceInterval ci;
        ci.confidence = confidence;
        ci.estimate = pointEstimate(run, m);
        ci.lower = ci.upper = ci.estimate;
        return ci;
      }
    }
}

SpeedupResult
rigorousSpeedup(const RunResult &baseline, const RunResult &optimized,
                double confidence)
{
    RigorousEstimate base = rigorousEstimate(baseline, confidence);
    RigorousEstimate opt = rigorousEstimate(optimized, confidence);
    SpeedupResult out;
    out.ci = stats::ratioOfMeansInterval(base.invocationMeans,
                                         opt.invocationMeans,
                                         confidence);
    out.significant = !out.ci.contains(1.0);
    return out;
}

double
naiveSpeedup(const RunResult &baseline, const RunResult &optimized,
             Methodology m)
{
    double b = pointEstimate(baseline, m);
    double o = pointEstimate(optimized, m);
    if (o <= 0.0)
        panic("naiveSpeedup: non-positive optimized estimate");
    return b / o;
}

stats::ConfidenceInterval
geomeanSpeedup(const std::vector<SpeedupResult> &speedups,
               double confidence)
{
    std::vector<double> points;
    points.reserve(speedups.size());
    for (const auto &s : speedups)
        points.push_back(s.ci.estimate);
    return stats::geomeanInterval(points, confidence);
}

PairwiseComparison
compareRuntimes(const std::vector<const RunResult *> &runs,
                double confidence)
{
    size_t n = runs.size();
    if (n < 2)
        panic("compareRuntimes: need at least 2 runtimes");

    std::vector<RigorousEstimate> estimates;
    estimates.reserve(n);
    for (const RunResult *run : runs)
        estimates.push_back(rigorousEstimate(*run, confidence));

    PairwiseComparison out;
    out.speedup.assign(n, std::vector<SpeedupResult>(n));
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            if (i == j) {
                SpeedupResult self;
                self.ci = {1.0, 1.0, 1.0, confidence};
                self.significant = false;
                out.speedup[i][j] = self;
                continue;
            }
            SpeedupResult s;
            s.ci = stats::ratioOfMeansInterval(
                estimates[i].invocationMeans,
                estimates[j].invocationMeans, confidence);
            s.significant = !s.ci.contains(1.0);
            out.speedup[i][j] = s;
        }
    }

    // Tie-aware ranking: sort by point estimate (ascending time is
    // better); a runtime shares the previous rank when its pairwise
    // comparison with the previous runtime is not significant.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return estimates[a].ci.estimate < estimates[b].ci.estimate;
    });
    out.rank.assign(n, 0);
    int current_rank = 1;
    for (size_t pos = 0; pos < n; ++pos) {
        if (pos > 0 &&
            out.speedup[order[pos - 1]][order[pos]].significant)
            current_rank = static_cast<int>(pos) + 1;
        out.rank[order[pos]] = current_rank;
    }
    return out;
}

stats::VarianceComponents
varianceDecomposition(const RunResult &run)
{
    auto est = rigorousEstimate(run);
    std::vector<std::vector<double>> steady_series;
    for (size_t i = 0; i < run.invocations.size(); ++i) {
        const auto &ss = est.steadyState.perInvocation[i];
        std::vector<double> times = run.invocations[i].times();
        size_t start =
            ss.hasSteadyState() && ss.steadyStart < times.size()
                ? ss.steadyStart
                : 0;
        std::vector<double> steady(
            times.begin() + static_cast<ptrdiff_t>(start),
            times.end());
        if (steady.size() < 2)
            steady = times;
        steady_series.push_back(std::move(steady));
    }
    return stats::decomposeVariance(steady_series);
}

} // namespace harness
} // namespace rigor
