#include "harness/profile.hh"

#include <algorithm>
#include <array>
#include <map>

#include "harness/runner.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "vm/compiler.hh"
#include "vm/observer.hh"

namespace rigor {
namespace harness {

namespace {

/** Aggregates the dynamic event stream for one profiling run. */
class ProfilingObserver : public vm::ExecutionObserver
{
  public:
    struct SiteStats
    {
        uint64_t count = 0;
        uint64_t secondary = 0;  ///< taken count / allocated bytes
    };

    void
    onBytecode(vm::Op op, uint32_t uops) override
    {
        auto i = static_cast<size_t>(op);
        ++opCount[i];
        opUops[i] += uops;
    }

    void
    onDispatch(vm::Op op) override
    {
        ++opDispatched[static_cast<size_t>(op)];
    }

    void
    onBranch(uint64_t site, bool taken) override
    {
        SiteStats &s = branchSites[site];
        ++s.count;
        s.secondary += taken ? 1 : 0;
    }

    void
    onAllocSite(uint64_t site, uint32_t size) override
    {
        SiteStats &s = allocSites[site];
        ++s.count;
        s.secondary += size;
    }

    void
    onJitCompile(uint32_t, uint64_t) override
    {
        ++jitCompiles;
    }

    void
    onGuardFailure(vm::Op) override
    {
        ++guardFailures;
    }

    static constexpr size_t kNumOps =
        static_cast<size_t>(vm::Op::NumOpcodes);
    std::array<uint64_t, kNumOps> opCount{};
    std::array<uint64_t, kNumOps> opUops{};
    std::array<uint64_t, kNumOps> opDispatched{};
    // std::map keeps site order deterministic for equal-count ties.
    std::map<uint64_t, SiteStats> branchSites;
    std::map<uint64_t, SiteStats> allocSites;
    uint64_t jitCompiles = 0;
    uint64_t guardFailures = 0;
};

/** codeId -> function name, for turning site ids into locations. */
void
collectCodeNames(const vm::CodeObject *code,
                 std::map<uint32_t, std::string> &names)
{
    names[code->codeId] = code->name;
    for (const auto &child : code->children)
        collectCodeNames(child.get(), names);
}

std::string
siteLocation(uint64_t site,
             const std::map<uint32_t, std::string> &names)
{
    if (site == 0)
        return "<vm-setup>";
    auto code_id = static_cast<uint32_t>(site >> 20);
    auto pc = static_cast<uint32_t>(site & 0xFFFFF);
    auto it = names.find(code_id);
    const char *name =
        it == names.end() ? "<unknown>" : it->second.c_str();
    return strprintf("%s+%u", name, pc);
}

} // namespace

ProfileResult
profileWorkload(const workloads::WorkloadSpec &spec,
                const ProfileConfig &config)
{
    vm::Program prog = vm::compileSource(spec.source, spec.name);

    vm::InterpConfig icfg;
    icfg.tier = config.tier;
    icfg.jitThreshold = config.jitThreshold;
    if (config.tier == vm::Tier::Threaded)
        icfg.dispatchUops = kThreadedDispatchUops;
    icfg.captureOutput = false;
    SplitMix64 sm(config.seed);
    icfg.hashSeed = sm.next();
    icfg.aslrSeed = sm.next();

    ProfilingObserver obs;
    vm::Interp interp(prog, icfg, &obs);
    interp.runModule();

    int64_t size =
        config.size > 0 ? config.size : spec.defaultSize;
    for (int it = 0; it < config.iterations; ++it)
        interp.callGlobal("run", {vm::Value::makeInt(size)});

    ProfileResult result;
    result.workload = spec.name;
    result.tier = config.tier;
    result.size = size;
    result.iterations = config.iterations;
    result.jitCompiles = obs.jitCompiles;
    result.guardFailures = obs.guardFailures;

    for (size_t i = 0; i < ProfilingObserver::kNumOps; ++i) {
        if (obs.opCount[i] == 0)
            continue;
        OpProfileEntry e;
        e.op = static_cast<vm::Op>(i);
        e.count = obs.opCount[i];
        e.uops = obs.opUops[i];
        e.dispatched = obs.opDispatched[i];
        result.ops.push_back(e);
        result.totalBytecodes += e.count;
        result.totalUops += e.uops;
    }
    for (auto &e : result.ops)
        e.uopsPercent = result.totalUops
            ? 100.0 * static_cast<double>(e.uops) /
                static_cast<double>(result.totalUops)
            : 0.0;
    std::stable_sort(result.ops.begin(), result.ops.end(),
                     [](const OpProfileEntry &a,
                        const OpProfileEntry &b) {
                         return a.uops > b.uops;
                     });

    std::map<uint32_t, std::string> codeNames;
    collectCodeNames(prog.module.get(), codeNames);

    for (const auto &[site, stats] : obs.branchSites) {
        BranchSiteEntry e;
        e.site = site;
        e.location = siteLocation(site, codeNames);
        e.count = stats.count;
        e.taken = stats.secondary;
        result.branchSites.push_back(std::move(e));
    }
    std::stable_sort(result.branchSites.begin(),
                     result.branchSites.end(),
                     [](const BranchSiteEntry &a,
                        const BranchSiteEntry &b) {
                         return a.count > b.count;
                     });

    for (const auto &[site, stats] : obs.allocSites) {
        AllocSiteEntry e;
        e.site = site;
        e.location = siteLocation(site, codeNames);
        e.count = stats.count;
        e.bytes = stats.secondary;
        result.allocSites.push_back(std::move(e));
    }
    std::stable_sort(result.allocSites.begin(),
                     result.allocSites.end(),
                     [](const AllocSiteEntry &a,
                        const AllocSiteEntry &b) {
                         return a.bytes > b.bytes;
                     });

    return result;
}

ProfileResult
profileWorkload(const std::string &workload_name,
                const ProfileConfig &config)
{
    return profileWorkload(workloads::findWorkload(workload_name),
                           config);
}

std::string
renderProfile(const ProfileResult &profile, int top_sites)
{
    std::string out = strprintf(
        "profile: %s / %s  (1 invocation x %d iterations, "
        "size %lld)\n"
        "  %s bytecodes, %s uops, %s jit compile(s), "
        "%s guard failure(s)\n\n",
        profile.workload.c_str(), vm::tierName(profile.tier),
        profile.iterations,
        static_cast<long long>(profile.size),
        fmtCount(profile.totalBytecodes).c_str(),
        fmtCount(profile.totalUops).c_str(),
        fmtCount(profile.jitCompiles).c_str(),
        fmtCount(profile.guardFailures).c_str());

    Table ops({"opcode", "count", "uops", "% uops", "% interp",
               "% jit"});
    for (const auto &e : profile.ops) {
        double interp_pct = e.count
            ? 100.0 * static_cast<double>(e.dispatched) /
                static_cast<double>(e.count)
            : 0.0;
        ops.addRow({vm::opName(e.op), fmtCount(e.count),
                    fmtCount(e.uops), fmtDouble(e.uopsPercent, 2),
                    fmtDouble(interp_pct, 1),
                    fmtDouble(100.0 - interp_pct, 1)});
    }
    out += ops.render();

    auto limit = static_cast<size_t>(top_sites);
    if (!profile.branchSites.empty()) {
        Table t({"branch site", "count", "taken %"});
        t.setCaption(strprintf("top branch sites (of %zu)",
                               profile.branchSites.size()));
        for (size_t i = 0;
             i < profile.branchSites.size() && i < limit; ++i) {
            const auto &e = profile.branchSites[i];
            t.addRow({e.location, fmtCount(e.count),
                      fmtDouble(100.0 * static_cast<double>(e.taken) /
                                    static_cast<double>(e.count),
                                1)});
        }
        out += "\n" + t.render();
    }

    if (!profile.allocSites.empty()) {
        Table t({"alloc site", "allocs", "bytes"});
        t.setCaption(strprintf("top allocation sites (of %zu)",
                               profile.allocSites.size()));
        for (size_t i = 0;
             i < profile.allocSites.size() && i < limit; ++i) {
            const auto &e = profile.allocSites[i];
            t.addRow({e.location, fmtCount(e.count),
                      fmtCount(e.bytes)});
        }
        out += "\n" + t.render();
    }

    return out;
}

} // namespace harness
} // namespace rigor
