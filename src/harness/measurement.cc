#include "harness/measurement.hh"

namespace rigor {
namespace harness {

const char *
failureKindName(FailureKind k)
{
    switch (k) {
      case FailureKind::VmError: return "vm-error";
      case FailureKind::ChecksumMismatch: return "checksum-mismatch";
      case FailureKind::DeadlineExceeded: return "deadline-exceeded";
    }
    return "?";
}

std::vector<double>
InvocationResult::times() const
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const auto &s : samples)
        out.push_back(s.timeMs);
    return out;
}

std::vector<std::vector<double>>
RunResult::series() const
{
    std::vector<std::vector<double>> out;
    out.reserve(invocations.size());
    for (const auto &inv : invocations)
        out.push_back(inv.times());
    return out;
}

double
RunResult::totalModelledMs() const
{
    double total = 0.0;
    for (const auto &inv : invocations)
        for (const auto &s : inv.samples)
            total += s.timeMs;
    return total;
}

uarch::CounterSet
RunResult::totalCounters() const
{
    uarch::CounterSet total;
    for (const auto &inv : invocations)
        for (const auto &s : inv.samples)
            total.add(s.counters);
    return total;
}

std::vector<uint64_t>
RunResult::opMix() const
{
    std::vector<uint64_t> mix(
        static_cast<size_t>(vm::Op::NumOpcodes), 0);
    for (const auto &inv : invocations)
        for (size_t i = 0; i < mix.size(); ++i)
            mix[i] += inv.vmStats.perOp[i];
    return mix;
}

} // namespace harness
} // namespace rigor
