/**
 * @file
 * The rigorous analysis methodology, plus the naive methodologies it
 * is compared against.
 *
 * Rigorous pipeline: (1) per-invocation steady-state detection via
 * changepoint segmentation, (2) per-invocation steady-state means as
 * replication units, (3) Student-t confidence interval over those
 * means, (4) speedups as ratio-of-means intervals, (5) suite-level
 * geometric-mean speedup with its own interval.
 *
 * Naive methodologies deliberately reproduce common bad practice
 * (single invocation, first iteration, best-of-K, pooling all
 * iterations as independent) so experiments can quantify how far
 * their conclusions drift.
 */

#ifndef RIGOR_HARNESS_ANALYSIS_HH
#define RIGOR_HARNESS_ANALYSIS_HH

#include <string>
#include <vector>

#include "harness/measurement.hh"
#include "stats/ci.hh"
#include "stats/hierarchy.hh"
#include "stats/steady_state.hh"

namespace rigor {
namespace harness {

/** Per-run steady-state summary. */
struct SteadyStateSummary
{
    /** One detector result per invocation. */
    std::vector<stats::SteadyStateResult> perInvocation;
    /** Invocation count per series class. */
    int flat = 0;
    int warmup = 0;
    int slowdown = 0;
    int noSteadyState = 0;
    /** Mean first-steady iteration over invocations that have one. */
    double meanSteadyStart = 0.0;
    /** Max steady start (conservative warmup cut). */
    size_t maxSteadyStart = 0;

    /** Fraction of invocations that reached a steady state. */
    double steadyFraction() const;
};

/** Run the steady-state detector on every invocation. */
SteadyStateSummary analyzeSteadyState(
    const RunResult &run, const stats::SteadyStateOptions &opts = {});

/** Estimation methodologies compared in the experiments. */
enum class Methodology
{
    RigorousMeanOfMeans,      ///< the paper's recommendation
    NaiveFirstIteration,      ///< one invocation, iteration 0
    NaiveSingleInvocationMean,///< mean of one invocation's iterations
    NaiveBestOfAll,           ///< min over everything ("peak perf")
    NaiveLastIteration,       ///< one invocation, last iteration
    NaivePooled,              ///< all iterations pooled as i.i.d.
};

/** Short name of a methodology. */
const char *methodologyName(Methodology m);

/** All methodologies, for sweep experiments. */
const std::vector<Methodology> &allMethodologies();

/** Outcome of a rigorous estimate. */
struct RigorousEstimate
{
    stats::ConfidenceInterval ci;
    SteadyStateSummary steadyState;
    /** Per-invocation steady-state means (replication units). */
    std::vector<double> invocationMeans;
};

/**
 * The rigorous estimator: steady-state portion of each invocation,
 * then a t-interval over invocation means. Invocations that never
 * reach steady state fall back to their full-series mean and are
 * counted in the summary.
 */
RigorousEstimate rigorousEstimate(const RunResult &run,
                                  double confidence = 0.95);

/**
 * Point estimate under a (possibly naive) methodology. For
 * RigorousMeanOfMeans this is rigorousEstimate().ci.estimate.
 */
double pointEstimate(const RunResult &run, Methodology m);

/** Confidence interval under a methodology (degenerate for the
 *  single-number naive schemes, which is exactly their flaw). */
stats::ConfidenceInterval intervalEstimate(const RunResult &run,
                                           Methodology m,
                                           double confidence = 0.95);

/** A speedup of `optimized` over `baseline` with its interval. */
struct SpeedupResult
{
    stats::ConfidenceInterval ci;
    /** True if the interval excludes 1.0. */
    bool significant = false;
};

/**
 * Rigorous speedup baseline/optimized (>1 means optimized is faster),
 * from steady-state invocation means via the log-Welch interval.
 */
SpeedupResult rigorousSpeedup(const RunResult &baseline,
                              const RunResult &optimized,
                              double confidence = 0.95);

/** Speedup point estimate under a naive methodology. */
double naiveSpeedup(const RunResult &baseline,
                    const RunResult &optimized, Methodology m);

/**
 * Suite-level geometric-mean speedup with a confidence interval over
 * the per-benchmark speedup point estimates.
 */
stats::ConfidenceInterval geomeanSpeedup(
    const std::vector<SpeedupResult> &speedups,
    double confidence = 0.95);

/**
 * Variance decomposition (between- vs within-invocation) over the
 * steady-state portion of each invocation.
 */
stats::VarianceComponents varianceDecomposition(const RunResult &run);

/** Outcome of an all-pairs runtime comparison. */
struct PairwiseComparison
{
    /** speedup[i][j]: how much faster j is than i (ratio CI). */
    std::vector<std::vector<SpeedupResult>> speedup;
    /**
     * rank[i]: 1-based rank of runtime i by point estimate, where
     * runtimes whose comparison interval includes 1.0 share a rank
     * (statistical ties are reported, not hidden).
     */
    std::vector<int> rank;
};

/**
 * Compare any number of runtimes' runs of the *same* workload:
 * all-pairs speedup intervals plus a tie-aware ranking. This is what
 * a rigorous "which runtime wins" table should be built from.
 */
PairwiseComparison compareRuntimes(
    const std::vector<const RunResult *> &runs,
    double confidence = 0.95);

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_ANALYSIS_HH
