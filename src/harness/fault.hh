/**
 * @file
 * Deterministic fault injection with known ground truth.
 *
 * The same property that makes the noise model useful — parameters are
 * *injected*, so tests can assert that the methodology recovers them —
 * applies to failures. A FaultPlan describes which invocation attempts
 * of which workloads misbehave and how; the FaultInjector arms those
 * faults deterministically (optionally with a seeded per-attempt
 * probability), so tests can prove the harness detects, retries and
 * quarantines exactly as designed.
 *
 * Fault kinds mirror the pathologies a real benchmarking campaign
 * meets: a crash mid-run (Throw), silently wrong results
 * (CorruptChecksum), a hang (Stall, caught by the modelled-time
 * deadline), and a pathological noise regime (NoiseRamp, a
 * thermal-throttle-style linear slowdown the steady-state detector
 * must flag).
 *
 * A second family targets the durability stack instead of the
 * measurement: `io:*` faults arm on FsOps calls (support/durable_io)
 * rather than invocation attempts, making short writes, ENOSPC,
 * fsync failures, torn renames and process death at an exact call
 * index injectable from the same --inject flag — deterministic, so a
 * crash-point torture harness can enumerate every call site.
 */

#ifndef RIGOR_HARNESS_FAULT_HH
#define RIGOR_HARNESS_FAULT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/durable_io.hh"

namespace rigor {
namespace harness {

/** What a fault does to the invocation attempt it arms. */
enum class FaultKind
{
    Throw,           ///< throw a VmError at invocation start
    CorruptChecksum, ///< flip bits in the recorded workload checksum
    Stall,           ///< scale modelled time (trips the deadline)
    NoiseRamp,       ///< linear per-iteration slowdown ramp
};

/** Short name of a fault kind ("throw", "checksum", ...). */
const char *faultKindName(FaultKind k);

/** One injection rule. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Throw;
    /** Workload to target; empty matches every workload. */
    std::string workload;
    /** Invocation index to target; -1 matches every invocation. */
    int invocation = -1;
    /**
     * Number of attempts of a matching invocation that fire (attempts
     * 0..maxTriggers-1). 1 means "fail once, succeed on retry"; a
     * large value makes the invocation fail permanently.
     */
    int maxTriggers = 1;
    /** Per-attempt arming probability (seeded, deterministic). */
    double probability = 1.0;
    /**
     * Kind-specific magnitude; 0 selects the default:
     * Stall -> 1000 (x1000 modelled time), NoiseRamp -> 0.05
     * (each iteration 5% slower than the last). Unused by Throw and
     * CorruptChecksum.
     */
    double magnitude = 0.0;

    /** Magnitude with the kind default applied. */
    double effectiveMagnitude() const;
};

/** What an I/O fault does to the FsOps call it arms on. */
enum class IoFaultKind
{
    ShortWrite, ///< write() transfers at most `magnitude` bytes
    Enospc,     ///< the call fails with ENOSPC (disk full)
    TornRename, ///< rename() leaves a truncated destination
    FsyncFail,  ///< fsync() fails with EIO
    CrashAt,    ///< _exit() instead of performing call number `at`
};

/** Short name of an I/O fault kind ("short-write", "enospc", ...). */
const char *ioFaultKindName(IoFaultKind k);

/** Exit code of a process killed by an `io:crash-at=N` fault. */
inline constexpr int kExitCrashInjected = 6;

/** One I/O injection rule, armed on FsOps calls. */
struct IoFaultSpec
{
    IoFaultKind kind = IoFaultKind::Enospc;
    /**
     * 1-based index among *matching* calls to fire at (required for
     * crash-at; -1 for the other kinds means "the first maxTriggers
     * matching calls").
     */
    int at = -1;
    /** Matching calls that fire when `at` is unset. */
    int maxTriggers = 1;
    /** Per-call arming probability (seeded, deterministic). */
    double probability = 1.0;
    /**
     * Operation filter: open|write|fsync|close|rename|unlink. Empty
     * selects the kind's natural target (short-write/enospc -> write,
     * fsync-fail -> fsync, torn-rename -> rename, crash-at -> every
     * operation).
     */
    std::string op;
    /** Substring the operation's path must contain ("" = any). */
    std::string pathSubstr;
    /** ShortWrite: max bytes per write() (0 selects the default 1). */
    double magnitude = 0.0;
};

/** An ordered list of injection rules. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;
    /** I/O rules (`io:*` specs), armed on FsOps calls instead. */
    std::vector<IoFaultSpec> ioFaults;

    bool empty() const { return faults.empty() && ioFaults.empty(); }

    /**
     * Parse one CLI fault spec of the form
     *
     *   kind[:key=value]...
     *
     * where kind is throw|checksum|stall|ramp and keys are
     * wl=NAME, inv=N, n=COUNT (maxTriggers), p=PROB, mag=X.
     * Examples: "throw:wl=sieve:inv=0", "checksum:inv=1",
     * "stall:mag=500", "ramp:p=0.5".
     * @throws FatalError on malformed specs.
     */
    static FaultSpec parseSpec(const std::string &text);

    /**
     * Parse one `io:` spec of the form
     *
     *   io:subkind[:key=value]...
     *
     * where subkind is short-write|enospc|torn-rename|fsync-fail|
     * crash-at=N and keys are at=N (1-based matching-call index),
     * n=COUNT, p=PROB, op=NAME, path=SUBSTR, mag=X.
     * Examples: "io:crash-at=7", "io:enospc:at=3",
     * "io:short-write:n=1000:mag=1", "io:torn-rename:path=entry-".
     * @throws FatalError on malformed specs.
     */
    static IoFaultSpec parseIoSpec(const std::string &text);

    /** Parse and append one spec (either family). */
    void add(const std::string &text);
};

/**
 * Decides, statelessly and deterministically, whether a fault arms for
 * a given (workload, invocation, attempt). Stateless queries mean the
 * injector can be shared by concurrent runs and replayed exactly.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, uint64_t seed);

    /**
     * First spec armed for this attempt, or nullptr. Probability draws
     * are a pure function of (seed, workload, invocation, attempt).
     */
    const FaultSpec *query(const std::string &workload, int invocation,
                           int attempt) const;

    /**
     * Multiplicative modelled-time factor a Stall/NoiseRamp fault
     * applies to iteration `iteration` (1.0 for other kinds).
     */
    static double timeFactor(const FaultSpec &fault, int iteration);

    const FaultPlan &plan() const { return plan_; }
    uint64_t seed() const { return seed_; }

  private:
    FaultPlan plan_;
    uint64_t seed_;
};

/**
 * An FsOps wrapper that injects the `io:*` fault kinds. Every call is
 * counted in program order; a spec fires when its operation and path
 * filters match, its `at` index (1-based among matching calls) or
 * trigger budget allows, and its seeded probability draw passes — a
 * pure function of (seed, spec, matching-call index), so the same
 * command line fails the same call every run.
 *
 * CrashAt calls _exit(kExitCrashInjected) *instead of* performing the
 * matching call, which models power loss at that exact point: nothing
 * later in the process runs, no buffers flush, no destructors fire.
 * Install with setFsOps() before durable work starts.
 */
class FaultyFsOps : public FsOps
{
  public:
    explicit FaultyFsOps(std::vector<IoFaultSpec> faults,
                         uint64_t seed = 0);

    int open(const char *path, int flags, mode_t mode) override;
    ssize_t write(int fd, const void *buf, size_t n) override;
    int fsync(int fd) override;
    int close(int fd) override;
    int rename(const char *from, const char *to) override;
    int unlink(const char *path) override;

    /** Total FsOps calls observed (crash-point enumeration bound). */
    uint64_t calls() const;

  private:
    /** First spec armed for this call, after counting it. */
    const IoFaultSpec *arm(const char *op, const std::string &path);

    std::vector<IoFaultSpec> faults_;
    uint64_t seed_;
    mutable std::mutex mu_;
    uint64_t calls_ = 0;
    /** Per-spec count of matching calls seen / faults fired. */
    std::vector<int> matched_;
    std::vector<int> fired_;
    /** fd -> path, so path filters apply to fd-based operations. */
    std::map<int, std::string> fdPaths_;
};

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_FAULT_HH
