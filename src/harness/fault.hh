/**
 * @file
 * Deterministic fault injection with known ground truth.
 *
 * The same property that makes the noise model useful — parameters are
 * *injected*, so tests can assert that the methodology recovers them —
 * applies to failures. A FaultPlan describes which invocation attempts
 * of which workloads misbehave and how; the FaultInjector arms those
 * faults deterministically (optionally with a seeded per-attempt
 * probability), so tests can prove the harness detects, retries and
 * quarantines exactly as designed.
 *
 * Fault kinds mirror the pathologies a real benchmarking campaign
 * meets: a crash mid-run (Throw), silently wrong results
 * (CorruptChecksum), a hang (Stall, caught by the modelled-time
 * deadline), and a pathological noise regime (NoiseRamp, a
 * thermal-throttle-style linear slowdown the steady-state detector
 * must flag).
 */

#ifndef RIGOR_HARNESS_FAULT_HH
#define RIGOR_HARNESS_FAULT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rigor {
namespace harness {

/** What a fault does to the invocation attempt it arms. */
enum class FaultKind
{
    Throw,           ///< throw a VmError at invocation start
    CorruptChecksum, ///< flip bits in the recorded workload checksum
    Stall,           ///< scale modelled time (trips the deadline)
    NoiseRamp,       ///< linear per-iteration slowdown ramp
};

/** Short name of a fault kind ("throw", "checksum", ...). */
const char *faultKindName(FaultKind k);

/** One injection rule. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Throw;
    /** Workload to target; empty matches every workload. */
    std::string workload;
    /** Invocation index to target; -1 matches every invocation. */
    int invocation = -1;
    /**
     * Number of attempts of a matching invocation that fire (attempts
     * 0..maxTriggers-1). 1 means "fail once, succeed on retry"; a
     * large value makes the invocation fail permanently.
     */
    int maxTriggers = 1;
    /** Per-attempt arming probability (seeded, deterministic). */
    double probability = 1.0;
    /**
     * Kind-specific magnitude; 0 selects the default:
     * Stall -> 1000 (x1000 modelled time), NoiseRamp -> 0.05
     * (each iteration 5% slower than the last). Unused by Throw and
     * CorruptChecksum.
     */
    double magnitude = 0.0;

    /** Magnitude with the kind default applied. */
    double effectiveMagnitude() const;
};

/** An ordered list of injection rules. */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /**
     * Parse one CLI fault spec of the form
     *
     *   kind[:key=value]...
     *
     * where kind is throw|checksum|stall|ramp and keys are
     * wl=NAME, inv=N, n=COUNT (maxTriggers), p=PROB, mag=X.
     * Examples: "throw:wl=sieve:inv=0", "checksum:inv=1",
     * "stall:mag=500", "ramp:p=0.5".
     * @throws FatalError on malformed specs.
     */
    static FaultSpec parseSpec(const std::string &text);

    /** Parse and append one spec. */
    void add(const std::string &text);
};

/**
 * Decides, statelessly and deterministically, whether a fault arms for
 * a given (workload, invocation, attempt). Stateless queries mean the
 * injector can be shared by concurrent runs and replayed exactly.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultPlan plan, uint64_t seed);

    /**
     * First spec armed for this attempt, or nullptr. Probability draws
     * are a pure function of (seed, workload, invocation, attempt).
     */
    const FaultSpec *query(const std::string &workload, int invocation,
                           int attempt) const;

    /**
     * Multiplicative modelled-time factor a Stall/NoiseRamp fault
     * applies to iteration `iteration` (1.0 for other kinds).
     */
    static double timeFactor(const FaultSpec &fault, int iteration);

    const FaultPlan &plan() const { return plan_; }
    uint64_t seed() const { return seed_; }

  private:
    FaultPlan plan_;
    uint64_t seed_;
};

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_FAULT_HH
