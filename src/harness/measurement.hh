/**
 * @file
 * Measurement containers for the two-level experiment design:
 * a *run* consists of multiple VM *invocations*, each executing
 * multiple in-process *iterations* of a workload's entry function.
 */

#ifndef RIGOR_HARNESS_MEASUREMENT_HH
#define RIGOR_HARNESS_MEASUREMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/counters.hh"
#include "vm/interp.hh"

namespace rigor {
namespace harness {

/** Why an invocation attempt failed. */
enum class FailureKind
{
    VmError,          ///< the VM raised an error mid-run
    ChecksumMismatch, ///< workload result diverged (iteration or
                      ///< cross-invocation)
    DeadlineExceeded, ///< modelled time passed the per-invocation
                      ///< deadline
};

/** Short name of a failure kind ("vm-error", ...). */
const char *failureKindName(FailureKind k);

/**
 * Structured record of one failed invocation attempt. Failures are
 * data, not reasons to abort: they stay attached to the run so reports
 * can account for them, while the samples of failed attempts are
 * excluded from every estimate.
 */
struct InvocationFailure
{
    FailureKind kind = FailureKind::VmError;
    /** Invocation index whose attempt failed. */
    int invocation = 0;
    /** Attempt number (0 = first try, 1 = first retry, ...). */
    int attempt = 0;
    /** Seed the failed attempt ran with. */
    uint64_t seed = 0;
    /** Modelled backoff delay charged before the next attempt. */
    double backoffMs = 0.0;
    std::string message;
};

/** One in-process iteration's measurements. */
struct IterationSample
{
    /** Modelled execution time in milliseconds (noise applied). */
    double timeMs = 0.0;
    /** Noise-free simulated cycle count for the iteration. */
    uint64_t simCycles = 0;
    /** Host wall-clock nanoseconds (informational only). */
    uint64_t wallNanos = 0;
    /** Per-iteration perf-counter deltas. */
    uarch::CounterSet counters;
};

/** All measurements from one VM invocation. */
struct InvocationResult
{
    /** Seed that derived this invocation's hash seed / ASLR / noise. */
    uint64_t invocationSeed = 0;
    std::vector<IterationSample> samples;
    /** VM statistics at the end of the invocation. */
    vm::InterpStats vmStats;
    /** Workload checksum (must match across invocations). */
    int64_t checksum = 0;

    /** The per-iteration time series. */
    std::vector<double> times() const;
};

/** A complete experiment run for one (workload, tier) pair. */
struct RunResult
{
    std::string workload;
    vm::Tier tier = vm::Tier::Interp;
    int64_t size = 0;
    /** Successful invocations only; failed attempts never land here. */
    std::vector<InvocationResult> invocations;

    /** Every failed attempt, in execution order. */
    std::vector<InvocationFailure> failures;
    /**
     * Invocation slots consumed so far, including ones whose every
     * attempt failed (>= invocations.size()). Seed derivation keys on
     * this index, so extending a run stays deterministic even when
     * some invocations failed permanently.
     */
    int invocationsAttempted = 0;
    /** Consecutive permanently-failed invocations (quarantine input). */
    int consecutiveFailures = 0;
    /** True once the quarantine threshold tripped; no more attempts. */
    bool quarantined = false;
    std::string quarantineReason;
    /**
     * True when the run stopped early at a commit boundary because an
     * interrupt (SIGINT/SIGTERM) was requested. Not serialized:
     * a checkpointed run is incomplete iff
     * invocationsAttempted < the configured invocation count.
     */
    bool interrupted = false;

    /** series()[i][j]: iteration j of invocation i, in ms. */
    std::vector<std::vector<double>> series() const;

    /** Modelled ms summed over every successful iteration. */
    double totalModelledMs() const;

    /** Counter totals summed over all iterations and invocations. */
    uarch::CounterSet totalCounters() const;

    /** Dynamic per-opcode counts summed over invocations. */
    std::vector<uint64_t> opMix() const;
};

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_MEASUREMENT_HH
