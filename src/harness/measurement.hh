/**
 * @file
 * Measurement containers for the two-level experiment design:
 * a *run* consists of multiple VM *invocations*, each executing
 * multiple in-process *iterations* of a workload's entry function.
 */

#ifndef RIGOR_HARNESS_MEASUREMENT_HH
#define RIGOR_HARNESS_MEASUREMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/counters.hh"
#include "vm/interp.hh"

namespace rigor {
namespace harness {

/** One in-process iteration's measurements. */
struct IterationSample
{
    /** Modelled execution time in milliseconds (noise applied). */
    double timeMs = 0.0;
    /** Noise-free simulated cycle count for the iteration. */
    uint64_t simCycles = 0;
    /** Host wall-clock nanoseconds (informational only). */
    uint64_t wallNanos = 0;
    /** Per-iteration perf-counter deltas. */
    uarch::CounterSet counters;
};

/** All measurements from one VM invocation. */
struct InvocationResult
{
    /** Seed that derived this invocation's hash seed / ASLR / noise. */
    uint64_t invocationSeed = 0;
    std::vector<IterationSample> samples;
    /** VM statistics at the end of the invocation. */
    vm::InterpStats vmStats;
    /** Workload checksum (must match across invocations). */
    int64_t checksum = 0;

    /** The per-iteration time series. */
    std::vector<double> times() const;
};

/** A complete experiment run for one (workload, tier) pair. */
struct RunResult
{
    std::string workload;
    vm::Tier tier = vm::Tier::Interp;
    int64_t size = 0;
    std::vector<InvocationResult> invocations;

    /** series()[i][j]: iteration j of invocation i, in ms. */
    std::vector<std::vector<double>> series() const;

    /** Counter totals summed over all iterations and invocations. */
    uarch::CounterSet totalCounters() const;

    /** Dynamic per-opcode counts summed over invocations. */
    std::vector<uint64_t> opMix() const;
};

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_MEASUREMENT_HH
