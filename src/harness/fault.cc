#include "harness/fault.hh"

#include <cstdlib>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/str.hh"

namespace rigor {
namespace harness {

namespace {

/** FNV-1a, so probability draws depend on the workload name. */
uint64_t
hashString(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

double
parseNumber(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("fault spec: %s expects a number, got '%s'", key.c_str(),
              value.c_str());
    return v;
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::Throw: return "throw";
      case FaultKind::CorruptChecksum: return "checksum";
      case FaultKind::Stall: return "stall";
      case FaultKind::NoiseRamp: return "ramp";
    }
    return "?";
}

double
FaultSpec::effectiveMagnitude() const
{
    if (magnitude > 0.0)
        return magnitude;
    switch (kind) {
      case FaultKind::Stall: return 1000.0;
      case FaultKind::NoiseRamp: return 0.05;
      default: return 0.0;
    }
}

FaultSpec
FaultPlan::parseSpec(const std::string &text)
{
    auto parts = split(text, ':');
    if (parts.empty() || parts[0].empty())
        fatal("fault spec: empty specification");

    FaultSpec spec;
    const std::string &kind = parts[0];
    if (kind == "throw")
        spec.kind = FaultKind::Throw;
    else if (kind == "checksum")
        spec.kind = FaultKind::CorruptChecksum;
    else if (kind == "stall")
        spec.kind = FaultKind::Stall;
    else if (kind == "ramp")
        spec.kind = FaultKind::NoiseRamp;
    else
        fatal("fault spec: unknown kind '%s' (expected throw, "
              "checksum, stall or ramp)",
              kind.c_str());

    for (size_t i = 1; i < parts.size(); ++i) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("fault spec: expected key=value, got '%s'",
                  parts[i].c_str());
        std::string key = parts[i].substr(0, eq);
        std::string value = parts[i].substr(eq + 1);
        if (key == "wl") {
            spec.workload = value;
        } else if (key == "inv") {
            spec.invocation =
                static_cast<int>(parseNumber(key, value));
            if (spec.invocation < 0)
                fatal("fault spec: inv must be >= 0");
        } else if (key == "n") {
            spec.maxTriggers =
                static_cast<int>(parseNumber(key, value));
            if (spec.maxTriggers < 1)
                fatal("fault spec: n must be >= 1");
        } else if (key == "p") {
            spec.probability = parseNumber(key, value);
            if (spec.probability < 0.0 || spec.probability > 1.0)
                fatal("fault spec: p must be in [0, 1]");
        } else if (key == "mag") {
            spec.magnitude = parseNumber(key, value);
            if (spec.magnitude <= 0.0)
                fatal("fault spec: mag must be positive");
        } else {
            fatal("fault spec: unknown key '%s' (expected wl, inv, "
                  "n, p or mag)",
                  key.c_str());
        }
    }
    return spec;
}

void
FaultPlan::add(const std::string &text)
{
    faults.push_back(parseSpec(text));
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)), seed_(seed)
{}

const FaultSpec *
FaultInjector::query(const std::string &workload, int invocation,
                     int attempt) const
{
    for (const auto &spec : plan_.faults) {
        if (!spec.workload.empty() && spec.workload != workload)
            continue;
        if (spec.invocation >= 0 && spec.invocation != invocation)
            continue;
        if (attempt >= spec.maxTriggers)
            continue;
        if (spec.probability < 1.0) {
            // Stateless seeded draw: the same (seed, workload,
            // invocation, attempt) always decides the same way.
            SplitMix64 sm(seed_ ^ hashString(workload) ^
                          (static_cast<uint64_t>(invocation) *
                           0x9e3779b97f4a7c15ULL) ^
                          (static_cast<uint64_t>(attempt) + 1));
            double draw = static_cast<double>(sm.next() >> 11) *
                0x1.0p-53;
            if (draw >= spec.probability)
                continue;
        }
        return &spec;
    }
    return nullptr;
}

double
FaultInjector::timeFactor(const FaultSpec &fault, int iteration)
{
    switch (fault.kind) {
      case FaultKind::Stall:
        return fault.effectiveMagnitude();
      case FaultKind::NoiseRamp:
        return 1.0 + fault.effectiveMagnitude() * iteration;
      default:
        return 1.0;
    }
}

} // namespace harness
} // namespace rigor
