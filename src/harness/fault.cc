#include "harness/fault.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/str.hh"

namespace rigor {
namespace harness {

namespace {

/** FNV-1a, so probability draws depend on the workload name. */
uint64_t
hashString(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

double
parseNumber(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("fault spec: %s expects a number, got '%s'", key.c_str(),
              value.c_str());
    return v;
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::Throw: return "throw";
      case FaultKind::CorruptChecksum: return "checksum";
      case FaultKind::Stall: return "stall";
      case FaultKind::NoiseRamp: return "ramp";
    }
    return "?";
}

double
FaultSpec::effectiveMagnitude() const
{
    if (magnitude > 0.0)
        return magnitude;
    switch (kind) {
      case FaultKind::Stall: return 1000.0;
      case FaultKind::NoiseRamp: return 0.05;
      default: return 0.0;
    }
}

FaultSpec
FaultPlan::parseSpec(const std::string &text)
{
    auto parts = split(text, ':');
    if (parts.empty() || parts[0].empty())
        fatal("fault spec: empty specification");

    FaultSpec spec;
    const std::string &kind = parts[0];
    if (kind == "throw")
        spec.kind = FaultKind::Throw;
    else if (kind == "checksum")
        spec.kind = FaultKind::CorruptChecksum;
    else if (kind == "stall")
        spec.kind = FaultKind::Stall;
    else if (kind == "ramp")
        spec.kind = FaultKind::NoiseRamp;
    else
        fatal("fault spec: unknown kind '%s' (expected throw, "
              "checksum, stall or ramp)",
              kind.c_str());

    for (size_t i = 1; i < parts.size(); ++i) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("fault spec: expected key=value, got '%s'",
                  parts[i].c_str());
        std::string key = parts[i].substr(0, eq);
        std::string value = parts[i].substr(eq + 1);
        if (key == "wl") {
            spec.workload = value;
        } else if (key == "inv") {
            spec.invocation =
                static_cast<int>(parseNumber(key, value));
            if (spec.invocation < 0)
                fatal("fault spec: inv must be >= 0");
        } else if (key == "n") {
            spec.maxTriggers =
                static_cast<int>(parseNumber(key, value));
            if (spec.maxTriggers < 1)
                fatal("fault spec: n must be >= 1");
        } else if (key == "p") {
            spec.probability = parseNumber(key, value);
            if (spec.probability < 0.0 || spec.probability > 1.0)
                fatal("fault spec: p must be in [0, 1]");
        } else if (key == "mag") {
            spec.magnitude = parseNumber(key, value);
            if (spec.magnitude <= 0.0)
                fatal("fault spec: mag must be positive");
        } else {
            fatal("fault spec: unknown key '%s' (expected wl, inv, "
                  "n, p or mag)",
                  key.c_str());
        }
    }
    return spec;
}

const char *
ioFaultKindName(IoFaultKind k)
{
    switch (k) {
      case IoFaultKind::ShortWrite: return "short-write";
      case IoFaultKind::Enospc: return "enospc";
      case IoFaultKind::TornRename: return "torn-rename";
      case IoFaultKind::FsyncFail: return "fsync-fail";
      case IoFaultKind::CrashAt: return "crash-at";
    }
    return "?";
}

namespace {

/** Operations an op= filter may name. */
bool
validOpName(const std::string &op)
{
    return op == "open" || op == "write" || op == "fsync" ||
        op == "close" || op == "rename" || op == "unlink";
}

/** The operation a kind arms on when no op= filter is given. */
const char *
defaultOpFor(IoFaultKind kind)
{
    switch (kind) {
      case IoFaultKind::ShortWrite: return "write";
      case IoFaultKind::Enospc: return "write";
      case IoFaultKind::FsyncFail: return "fsync";
      case IoFaultKind::TornRename: return "rename";
      case IoFaultKind::CrashAt: return ""; // every operation
    }
    return "";
}

} // namespace

IoFaultSpec
FaultPlan::parseIoSpec(const std::string &text)
{
    auto parts = split(text, ':');
    if (parts.size() < 2 || parts[0] != "io" || parts[1].empty())
        fatal("fault spec: io faults look like io:subkind[:key=val]"
              ", got '%s'",
              text.c_str());

    IoFaultSpec spec;
    const std::string &sub = parts[1];
    if (sub == "short-write") {
        spec.kind = IoFaultKind::ShortWrite;
    } else if (sub == "enospc") {
        spec.kind = IoFaultKind::Enospc;
    } else if (sub == "torn-rename") {
        spec.kind = IoFaultKind::TornRename;
    } else if (sub == "fsync-fail") {
        spec.kind = IoFaultKind::FsyncFail;
    } else if (startsWith(sub, "crash-at=")) {
        spec.kind = IoFaultKind::CrashAt;
        spec.at = static_cast<int>(
            parseNumber("crash-at", sub.substr(9)));
        if (spec.at < 1)
            fatal("fault spec: crash-at expects a 1-based call "
                  "index, got %d",
                  spec.at);
    } else {
        fatal("fault spec: unknown io fault '%s' (expected "
              "short-write, enospc, torn-rename, fsync-fail or "
              "crash-at=N)",
              sub.c_str());
    }

    for (size_t i = 2; i < parts.size(); ++i) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("fault spec: expected key=value, got '%s'",
                  parts[i].c_str());
        std::string key = parts[i].substr(0, eq);
        std::string value = parts[i].substr(eq + 1);
        if (key == "at") {
            spec.at = static_cast<int>(parseNumber(key, value));
            if (spec.at < 1)
                fatal("fault spec: at must be >= 1");
        } else if (key == "n") {
            spec.maxTriggers =
                static_cast<int>(parseNumber(key, value));
            if (spec.maxTriggers < 1)
                fatal("fault spec: n must be >= 1");
        } else if (key == "p") {
            spec.probability = parseNumber(key, value);
            if (spec.probability < 0.0 || spec.probability > 1.0)
                fatal("fault spec: p must be in [0, 1]");
        } else if (key == "op") {
            if (!validOpName(value))
                fatal("fault spec: op must be one of open, write, "
                      "fsync, close, rename or unlink, got '%s'",
                      value.c_str());
            spec.op = value;
        } else if (key == "path") {
            spec.pathSubstr = value;
        } else if (key == "mag") {
            spec.magnitude = parseNumber(key, value);
            if (spec.magnitude <= 0.0)
                fatal("fault spec: mag must be positive");
        } else {
            fatal("fault spec: unknown io key '%s' (expected at, n, "
                  "p, op, path or mag)",
                  key.c_str());
        }
    }
    // A torn rename must tear renames and a short write must shorten
    // writes; redirecting them elsewhere would silently do nothing.
    if (spec.kind == IoFaultKind::TornRename && !spec.op.empty() &&
        spec.op != "rename")
        fatal("fault spec: torn-rename only applies to op=rename");
    if (spec.kind == IoFaultKind::ShortWrite && !spec.op.empty() &&
        spec.op != "write")
        fatal("fault spec: short-write only applies to op=write");
    if (spec.kind == IoFaultKind::FsyncFail && !spec.op.empty() &&
        spec.op != "fsync")
        fatal("fault spec: fsync-fail only applies to op=fsync");
    return spec;
}

void
FaultPlan::add(const std::string &text)
{
    if (startsWith(text, "io:"))
        ioFaults.push_back(parseIoSpec(text));
    else
        faults.push_back(parseSpec(text));
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)), seed_(seed)
{}

const FaultSpec *
FaultInjector::query(const std::string &workload, int invocation,
                     int attempt) const
{
    for (const auto &spec : plan_.faults) {
        if (!spec.workload.empty() && spec.workload != workload)
            continue;
        if (spec.invocation >= 0 && spec.invocation != invocation)
            continue;
        if (attempt >= spec.maxTriggers)
            continue;
        if (spec.probability < 1.0) {
            // Stateless seeded draw: the same (seed, workload,
            // invocation, attempt) always decides the same way.
            SplitMix64 sm(seed_ ^ hashString(workload) ^
                          (static_cast<uint64_t>(invocation) *
                           0x9e3779b97f4a7c15ULL) ^
                          (static_cast<uint64_t>(attempt) + 1));
            double draw = static_cast<double>(sm.next() >> 11) *
                0x1.0p-53;
            if (draw >= spec.probability)
                continue;
        }
        return &spec;
    }
    return nullptr;
}

double
FaultInjector::timeFactor(const FaultSpec &fault, int iteration)
{
    switch (fault.kind) {
      case FaultKind::Stall:
        return fault.effectiveMagnitude();
      case FaultKind::NoiseRamp:
        return 1.0 + fault.effectiveMagnitude() * iteration;
      default:
        return 1.0;
    }
}

// --- FaultyFsOps -----------------------------------------------------

FaultyFsOps::FaultyFsOps(std::vector<IoFaultSpec> faults,
                         uint64_t seed)
    : faults_(std::move(faults)), seed_(seed),
      matched_(faults_.size(), 0), fired_(faults_.size(), 0)
{}

uint64_t
FaultyFsOps::calls() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return calls_;
}

const IoFaultSpec *
FaultyFsOps::arm(const char *op, const std::string &path)
{
    std::lock_guard<std::mutex> guard(mu_);
    ++calls_;
    for (size_t i = 0; i < faults_.size(); ++i) {
        IoFaultSpec &spec = faults_[i];
        const std::string &want =
            spec.op.empty() ? defaultOpFor(spec.kind) : spec.op;
        if (!want.empty() && want != op)
            continue;
        if (!spec.pathSubstr.empty() &&
            path.find(spec.pathSubstr) == std::string::npos)
            continue;
        int index = ++matched_[i];
        if (spec.kind == IoFaultKind::CrashAt) {
            if (index != spec.at)
                continue;
            // Power loss at this exact call: no flushes, no
            // destructors, no later writes. The distinctive exit
            // code lets a torture driver tell "crashed as told"
            // from every other way a process can die.
            ::_exit(kExitCrashInjected);
        }
        if (spec.at >= 0 && index != spec.at)
            continue;
        if (spec.at < 0 && fired_[i] >= spec.maxTriggers)
            continue;
        if (spec.probability < 1.0) {
            // Stateless seeded draw, as for workload faults: the
            // same (seed, spec, matching-call index) always decides
            // the same way.
            SplitMix64 sm(seed_ ^ (i * 0x9e3779b97f4a7c15ULL) ^
                          (static_cast<uint64_t>(index) + 1));
            double draw = static_cast<double>(sm.next() >> 11) *
                0x1.0p-53;
            if (draw >= spec.probability)
                continue;
        }
        ++fired_[i];
        return &spec;
    }
    return nullptr;
}

int
FaultyFsOps::open(const char *path, int flags, mode_t mode)
{
    const IoFaultSpec *spec = arm("open", path);
    if (spec && spec->kind == IoFaultKind::Enospc) {
        errno = ENOSPC;
        return -1;
    }
    int fd = FsOps::open(path, flags, mode);
    if (fd >= 0) {
        std::lock_guard<std::mutex> guard(mu_);
        fdPaths_[fd] = path;
    }
    return fd;
}

ssize_t
FaultyFsOps::write(int fd, const void *buf, size_t n)
{
    std::string path;
    {
        std::lock_guard<std::mutex> guard(mu_);
        auto it = fdPaths_.find(fd);
        if (it != fdPaths_.end())
            path = it->second;
    }
    const IoFaultSpec *spec = arm("write", path);
    if (spec) {
        if (spec->kind == IoFaultKind::Enospc) {
            errno = ENOSPC;
            return -1;
        }
        if (spec->kind == IoFaultKind::ShortWrite) {
            size_t cap = static_cast<size_t>(std::max(
                1.0, spec->magnitude > 0.0 ? spec->magnitude : 1.0));
            return FsOps::write(fd, buf, std::min(n, cap));
        }
    }
    return FsOps::write(fd, buf, n);
}

int
FaultyFsOps::fsync(int fd)
{
    std::string path;
    {
        std::lock_guard<std::mutex> guard(mu_);
        auto it = fdPaths_.find(fd);
        if (it != fdPaths_.end())
            path = it->second;
    }
    const IoFaultSpec *spec = arm("fsync", path);
    if (spec) {
        if (spec->kind == IoFaultKind::FsyncFail) {
            errno = EIO;
            return -1;
        }
        if (spec->kind == IoFaultKind::Enospc) {
            errno = ENOSPC;
            return -1;
        }
    }
    return FsOps::fsync(fd);
}

int
FaultyFsOps::close(int fd)
{
    std::string path;
    {
        std::lock_guard<std::mutex> guard(mu_);
        auto it = fdPaths_.find(fd);
        if (it != fdPaths_.end()) {
            path = it->second;
            fdPaths_.erase(it);
        }
    }
    const IoFaultSpec *spec = arm("close", path);
    if (spec && spec->kind == IoFaultKind::Enospc) {
        // A deferred-allocation filesystem can surface ENOSPC at
        // close; the fd is still closed underneath, as the kernel
        // would.
        (void)FsOps::close(fd);
        errno = ENOSPC;
        return -1;
    }
    return FsOps::close(fd);
}

int
FaultyFsOps::rename(const char *from, const char *to)
{
    const IoFaultSpec *spec = arm("rename", from);
    if (spec && spec->kind == IoFaultKind::TornRename) {
        // Model a non-atomic replacement torn by a crash: the
        // destination ends up holding a truncated copy of the
        // source and the source is gone, yet the caller sees
        // success. Recovery must come from the .bak / fsck path.
        std::string content;
        std::ifstream in(from, std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            content = buf.str();
        }
        content.resize(content.size() / 2);
        int fd = FsOps::open(to, O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            (void)FsOps::write(fd, content.data(), content.size());
            (void)FsOps::close(fd);
        }
        (void)FsOps::unlink(from);
        return 0;
    }
    return FsOps::rename(from, to);
}

int
FaultyFsOps::unlink(const char *path)
{
    (void)arm("unlink", path);
    return FsOps::unlink(path);
}

} // namespace harness
} // namespace rigor
