#include "harness/report.hh"

#include <algorithm>
#include <cmath>

#include "support/csv.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"

namespace rigor {
namespace harness {

std::string
formatCi(const stats::ConfidenceInterval &ci, int places)
{
    return fmtDouble(ci.estimate, places) + " [" +
        fmtDouble(ci.lower, places) + ", " +
        fmtDouble(ci.upper, places) + "]";
}

std::string
formatCiPercent(const stats::ConfidenceInterval &ci, int places)
{
    return fmtDouble(ci.estimate, places) + " ±" +
        fmtDouble(100.0 * ci.relativeHalfWidth(), 1) + "%";
}

std::string
asciiSeries(const std::vector<double> &values, int height,
            int max_width)
{
    if (values.empty())
        return "(empty series)\n";
    // Downsample to max_width columns by averaging buckets.
    size_t n = values.size();
    size_t width = std::min<size_t>(n, static_cast<size_t>(max_width));
    std::vector<double> cols(width, 0.0);
    for (size_t c = 0; c < width; ++c) {
        size_t lo = c * n / width;
        size_t hi = std::max(lo + 1, (c + 1) * n / width);
        double sum = 0.0;
        for (size_t i = lo; i < hi; ++i)
            sum += values[i];
        cols[c] = sum / static_cast<double>(hi - lo);
    }
    double vmin = *std::min_element(cols.begin(), cols.end());
    double vmax = *std::max_element(cols.begin(), cols.end());
    double span = vmax - vmin;
    if (span <= 0.0)
        span = 1.0;

    std::string out;
    for (int row = height - 1; row >= 0; --row) {
        double threshold = vmin + span * (row + 0.5) / height;
        std::string line;
        for (size_t c = 0; c < width; ++c)
            line += cols[c] >= threshold ? '#' : ' ';
        out += "  |" + line + "\n";
    }
    out += "  +" + repeat('-', width) + "\n";
    out += "   min=" + fmtDouble(vmin, 4) + "  max=" +
        fmtDouble(vmax, 4) + "  n=" + std::to_string(n) + "\n";
    return out;
}

std::string
sparkline(const std::vector<double> &values, int max_width)
{
    static const char *levels[] = {"▁", "▂", "▃",
                                   "▄", "▅", "▆",
                                   "▇", "█"};
    if (values.empty())
        return "";
    size_t n = values.size();
    size_t width = std::min<size_t>(n, static_cast<size_t>(max_width));
    std::string out;
    double vmin = *std::min_element(values.begin(), values.end());
    double vmax = *std::max_element(values.begin(), values.end());
    double span = vmax - vmin > 0.0 ? vmax - vmin : 1.0;
    for (size_t c = 0; c < width; ++c) {
        size_t lo = c * n / width;
        size_t hi = std::max(lo + 1, (c + 1) * n / width);
        double sum = 0.0;
        for (size_t i = lo; i < hi; ++i)
            sum += values[i];
        double v = sum / static_cast<double>(hi - lo);
        int level = static_cast<int>((v - vmin) / span * 7.0 + 0.5);
        level = std::clamp(level, 0, 7);
        out += levels[level];
    }
    return out;
}

void
writeSeriesCsv(std::ostream &os, const RunResult &run)
{
    // Self-describing artifact: a comment line names the schema and
    // version before the column header, so an archived CSV can be
    // identified (and rejected on mismatch) without guessing from its
    // columns. Readers that choke on comments skip one line.
    os << "# schema=" << kSeriesCsvSchema
       << " version=" << kSeriesCsvVersion << "\n";
    CsvWriter csv(os);
    csv.writeRow({"workload", "tier", "invocation", "iteration",
                  "time_ms", "sim_cycles", "instructions", "ipc",
                  "branch_mpki", "l1d_mpki", "llc_mpki"});
    for (size_t inv = 0; inv < run.invocations.size(); ++inv) {
        const auto &samples = run.invocations[inv].samples;
        for (size_t it = 0; it < samples.size(); ++it) {
            const auto &s = samples[it];
            csv.field(run.workload)
                .field(std::string(vm::tierName(run.tier)))
                .field(static_cast<uint64_t>(inv))
                .field(static_cast<uint64_t>(it))
                .field(s.timeMs)
                .field(s.simCycles)
                .field(s.counters.instructions)
                .field(s.counters.ipc())
                .field(s.counters.branchMpki())
                .field(s.counters.l1dMpki())
                .field(s.counters.llcMpki());
            csv.endRow();
        }
    }
}

Json
runToJson(const RunResult &run)
{
    Json root = Json::object();
    root.set("schema", kRunSchema);
    root.set("version", kRunSchemaVersion);
    root.set("workload", run.workload);
    root.set("tier", std::string(vm::tierName(run.tier)));
    root.set("size", run.size);
    Json invs = Json::array();
    for (const auto &inv : run.invocations) {
        Json j = Json::object();
        j.set("seed", strprintf("0x%016llx",
                                static_cast<unsigned long long>(
                                    inv.invocationSeed)));
        j.set("checksum", inv.checksum);
        Json times = Json::array();
        Json cycles = Json::array();
        for (const auto &s : inv.samples) {
            times.push(s.timeMs);
            cycles.push(s.simCycles);
        }
        j.set("times_ms", std::move(times));
        j.set("sim_cycles", std::move(cycles));
        invs.push(std::move(j));
    }
    root.set("invocations", std::move(invs));
    // Failure bookkeeping is only emitted when present, so clean
    // dumps stay free of all-zero boilerplate.
    if (!run.failures.empty()) {
        Json fails = Json::array();
        for (const auto &f : run.failures) {
            Json j = Json::object();
            j.set("kind", std::string(failureKindName(f.kind)));
            j.set("invocation", f.invocation);
            j.set("attempt", f.attempt);
            j.set("seed", strprintf("0x%016llx",
                                    static_cast<unsigned long long>(
                                        f.seed)));
            j.set("backoff_ms", f.backoffMs);
            j.set("message", f.message);
            fails.push(std::move(j));
        }
        root.set("failures", std::move(fails));
    }
    if (run.invocationsAttempted >
        static_cast<int>(run.invocations.size()))
        root.set("invocations_attempted", run.invocationsAttempted);
    // The consecutive-failure streak feeds quarantine accounting when
    // a checkpointed run is extended; omitted when zero.
    if (run.consecutiveFailures > 0)
        root.set("consecutive_failures", run.consecutiveFailures);
    if (run.quarantined) {
        root.set("quarantined", true);
        root.set("quarantine_reason", run.quarantineReason);
    }
    return root;
}

namespace {

FailureKind
failureKindFromName(const std::string &name)
{
    if (name == "vm-error")
        return FailureKind::VmError;
    if (name == "checksum-mismatch")
        return FailureKind::ChecksumMismatch;
    if (name == "deadline-exceeded")
        return FailureKind::DeadlineExceeded;
    fatal("unknown failure kind '%s'", name.c_str());
}

} // namespace

RunResult
runFromJson(const Json &doc)
{
    // Reject a document that *claims* to be something else or a
    // future layout; accept documents with no schema field at all
    // (artifacts from before runs were self-describing).
    if (const Json *schema = doc.get("schema")) {
        if (schema->asString() != kRunSchema)
            fatal("runFromJson: document schema is '%s', expected "
                  "'%s'",
                  schema->asString().c_str(), kRunSchema);
        int64_t v = doc.at("version").asInt();
        if (v != kRunSchemaVersion)
            fatal("runFromJson: unsupported %s version %lld (this "
                  "build reads version %d)",
                  kRunSchema, static_cast<long long>(v),
                  kRunSchemaVersion);
    }
    RunResult run;
    run.workload = doc.at("workload").asString();
    run.tier = vm::tierFromName(doc.at("tier").asString());
    run.size = doc.at("size").asInt();

    const Json &invs = doc.at("invocations");
    for (size_t i = 0; i < invs.size(); ++i) {
        const Json &j = invs.at(i);
        InvocationResult inv;
        inv.invocationSeed = static_cast<uint64_t>(
            std::strtoull(j.at("seed").asString().c_str(), nullptr,
                          0));
        inv.checksum = j.at("checksum").asInt();
        const Json &times = j.at("times_ms");
        const Json &cycles = j.at("sim_cycles");
        if (times.size() != cycles.size())
            fatal("runFromJson: times/cycles length mismatch");
        for (size_t k = 0; k < times.size(); ++k) {
            IterationSample s;
            s.timeMs = times.at(k).asDouble();
            s.simCycles =
                static_cast<uint64_t>(cycles.at(k).asInt());
            s.counters.cycles = s.simCycles;
            inv.samples.push_back(std::move(s));
        }
        if (inv.samples.empty())
            fatal("runFromJson: invocation %zu has no samples", i);
        run.invocations.push_back(std::move(inv));
    }
    if (const Json *fails = doc.get("failures")) {
        for (size_t i = 0; i < fails->size(); ++i) {
            const Json &j = fails->at(i);
            InvocationFailure f;
            f.kind = failureKindFromName(j.at("kind").asString());
            f.invocation =
                static_cast<int>(j.at("invocation").asInt());
            f.attempt = static_cast<int>(j.at("attempt").asInt());
            f.seed = static_cast<uint64_t>(
                std::strtoull(j.at("seed").asString().c_str(),
                              nullptr, 0));
            f.backoffMs = j.at("backoff_ms").asDouble();
            f.message = j.at("message").asString();
            run.failures.push_back(std::move(f));
        }
    }
    run.invocationsAttempted =
        static_cast<int>(run.invocations.size());
    if (const Json *attempted = doc.get("invocations_attempted"))
        run.invocationsAttempted =
            static_cast<int>(attempted->asInt());
    if (const Json *cf = doc.get("consecutive_failures"))
        run.consecutiveFailures = static_cast<int>(cf->asInt());
    if (const Json *q = doc.get("quarantined"))
        run.quarantined = q->asBool();
    if (const Json *r = doc.get("quarantine_reason"))
        run.quarantineReason = r->asString();
    // A run with zero successful invocations is only meaningful if it
    // carries the failure records explaining why.
    if (run.invocations.empty() && run.failures.empty())
        fatal("runFromJson: no invocations");
    return run;
}

namespace {

Json
speedupToJson(const SpeedupResult &sp)
{
    Json s = Json::object();
    s.set("estimate", sp.ci.estimate);
    s.set("lower", sp.ci.lower);
    s.set("upper", sp.ci.upper);
    s.set("confidence", sp.ci.confidence);
    s.set("significant", sp.significant);
    return s;
}

SpeedupResult
speedupFromJson(const Json &s)
{
    SpeedupResult sp;
    sp.ci.estimate = s.at("estimate").asDouble();
    sp.ci.lower = s.at("lower").asDouble();
    sp.ci.upper = s.at("upper").asDouble();
    sp.ci.confidence = s.at("confidence").asDouble();
    sp.significant = s.at("significant").asBool();
    return sp;
}

} // namespace

const SuiteWorkloadState *
SuiteState::find(const std::string &name) const
{
    for (const auto &w : workloads)
        if (w.name == name)
            return &w;
    return nullptr;
}

Json
suiteStateToJson(const SuiteState &state)
{
    Json root = Json::object();
    root.set("seed", strprintf("0x%016llx",
                               static_cast<unsigned long long>(
                                   state.seed)));
    root.set("invocations", state.invocations);
    root.set("iterations", state.iterations);
    Json wls = Json::array();
    for (const auto &w : state.workloads) {
        Json j = Json::object();
        j.set("name", w.name);
        j.set("failed", w.failed);
        j.set("quarantined", w.quarantined);
        j.set("failures", w.failureCount);
        j.set("modelled_ms", w.modelledMs);
        if (!w.failed) {
            j.set("interp_ms", w.interpMs);
            j.set("adaptive_ms", w.adaptiveMs);
            j.set("threaded_ms", w.threadedMs);
            j.set("speedup", speedupToJson(w.speedup));
            j.set("threaded_speedup",
                  speedupToJson(w.threadedSpeedup));
        }
        wls.push(std::move(j));
    }
    root.set("workloads", std::move(wls));
    return root;
}

SuiteState
suiteStateFromJson(const Json &doc)
{
    SuiteState state;
    state.seed = static_cast<uint64_t>(
        std::strtoull(doc.at("seed").asString().c_str(), nullptr, 0));
    state.invocations =
        static_cast<int>(doc.at("invocations").asInt());
    state.iterations = static_cast<int>(doc.at("iterations").asInt());
    const Json &wls = doc.at("workloads");
    for (size_t i = 0; i < wls.size(); ++i) {
        const Json &j = wls.at(i);
        SuiteWorkloadState w;
        w.name = j.at("name").asString();
        if (w.name.empty())
            fatal("suiteStateFromJson: workload %zu has no name", i);
        w.failed = j.at("failed").asBool();
        w.quarantined = j.at("quarantined").asBool();
        w.failureCount = static_cast<int>(j.at("failures").asInt());
        // Absent in state files from before the heartbeat existed.
        if (const Json *ms = j.get("modelled_ms"))
            w.modelledMs = ms->asDouble();
        if (!w.failed) {
            w.interpMs = j.at("interp_ms").asDouble();
            w.adaptiveMs = j.at("adaptive_ms").asDouble();
            // Strict: pre-threaded-tier state files are rejected here
            // (their measurements cover two tiers, not three; resuming
            // would record a suite that never measured threaded).
            w.threadedMs = j.at("threaded_ms").asDouble();
            w.speedup = speedupFromJson(j.at("speedup"));
            w.threadedSpeedup =
                speedupFromJson(j.at("threaded_speedup"));
        }
        state.workloads.push_back(std::move(w));
    }
    return state;
}

} // namespace harness
} // namespace rigor
