#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "harness/fault.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "vm/compiler.hh"
#include "vm/metrics_observer.hh"

namespace rigor {
namespace harness {

namespace {

uint64_t
deriveSeed(uint64_t master, uint64_t stream, uint64_t index)
{
    SplitMix64 sm(master ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                  (index + 1));
    return sm.next();
}

/**
 * Seed for one invocation attempt. Attempt 0 reproduces the original
 * single-attempt derivation bit for bit (fault-free runs are
 * byte-identical to the pre-fault-tolerance harness); retries fork a
 * fresh stream off the invocation seed.
 */
uint64_t
attemptSeed(const RunnerConfig &config, int invocation, int attempt)
{
    uint64_t inv_seed =
        deriveSeed(config.seed, 1, static_cast<uint64_t>(invocation));
    if (attempt == 0)
        return inv_seed;
    return deriveSeed(inv_seed, 4, static_cast<uint64_t>(attempt));
}

/** Internal control-flow signal: this attempt failed; retry it. */
struct InvocationAbort
{
    FailureKind kind;
    std::string message;
};

/** Bucket bounds shared by the harness duration histograms. */
std::vector<double>
durationBucketsMs()
{
    return MetricsRegistry::exponentialBuckets(0.001, 4.0, 16);
}

/** Execute one VM invocation attempt of the experiment design. */
InvocationResult
runOneInvocation(const vm::Program &prog,
                 const workloads::WorkloadSpec &spec,
                 const RunnerConfig &config, int64_t size,
                 int invocation_index, int attempt, uint64_t inv_seed)
{
    MetricsRegistry *metrics = config.metrics;
    TraceEmitter *tr = config.trace;

    const FaultSpec *fault = config.faults
        ? config.faults->query(spec.name, invocation_index, attempt)
        : nullptr;
    if (fault) {
        if (metrics)
            metrics->counter("harness.faults_injected").inc();
        if (tr) {
            Json args = Json::object();
            args.set("kind", faultKindName(fault->kind));
            args.set("invocation", invocation_index);
            args.set("attempt", attempt);
            tr->instant("fault_injected", "harness", std::move(args));
        }
    }
    if (fault && fault->kind == FaultKind::Throw)
        throw vm::VmError(strprintf(
            "injected fault: VmError in %s invocation %d attempt %d",
            spec.name.c_str(), invocation_index, attempt));

    vm::InterpConfig icfg;
    icfg.tier = config.tier;
    icfg.jitThreshold = config.jitThreshold;
    icfg.dispatchUops = config.dispatchUops;
    icfg.hashSeed = deriveSeed(inv_seed, 2, 0);
    icfg.aslrSeed = deriveSeed(inv_seed, 3, 0);
    icfg.captureOutput = false;

    uarch::PerfModelConfig ucfg = config.uarch;
    if (config.tier == vm::Tier::Threaded) {
        icfg.dispatchUops = kThreadedDispatchUops;
        ucfg.dispatchHistoryOps = kThreadedDispatchHistoryOps;
    }

    uarch::PerfModel model(ucfg);
    // The uarch model is the only observer on plain runs; metrics /
    // trace runs multiplex a MetricsObserver alongside it.
    vm::MetricsObserver mobs(
        metrics, strprintf("vm.%s", vm::tierName(config.tier)), tr);
    vm::MultiplexObserver mux;
    vm::ExecutionObserver *observer = &model;
    if (metrics || tr) {
        mux.add(&model);
        mux.add(&mobs);
        observer = &mux;
    }
    vm::Interp interp(prog, icfg, observer);
    interp.runModule();

    NoiseModel noise(config.noise, inv_seed);

    InvocationResult inv_result;
    inv_result.invocationSeed = inv_seed;
    inv_result.samples.reserve(
        static_cast<size_t>(config.iterations));

    double elapsed_ms = 0.0;
    uarch::CounterSet prev = model.snapshot();
    for (int it = 0; it < config.iterations; ++it) {
        if (tr) {
            Json args = Json::object();
            args.set("index", it);
            tr->beginSpan("iteration", "harness", std::move(args));
        }
        auto wall_start = std::chrono::steady_clock::now();
        vm::Value r =
            interp.callGlobal("run", {vm::Value::makeInt(size)});
        auto wall_end = std::chrono::steady_clock::now();

        int64_t checksum = r.isInt()
            ? r.asInt()
            : static_cast<int64_t>(r.numeric());
        if (inv_result.samples.empty()) {
            inv_result.checksum = checksum;
        } else if (inv_result.checksum != checksum) {
            throw InvocationAbort{
                FailureKind::ChecksumMismatch,
                strprintf("workload %s: checksum changed between "
                          "iterations (%lld vs %lld)",
                          spec.name.c_str(),
                          static_cast<long long>(inv_result.checksum),
                          static_cast<long long>(checksum))};
        }

        uarch::CounterSet now = model.snapshot();
        IterationSample sample;
        sample.counters = now.diff(prev);
        prev = now;
        sample.simCycles = sample.counters.cycles;
        sample.timeMs = static_cast<double>(sample.simCycles) /
            config.cyclesPerMs * noise.nextIterationFactor();
        if (fault)
            sample.timeMs *= FaultInjector::timeFactor(*fault, it);
        sample.wallNanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                wall_end - wall_start)
                .count());
        elapsed_ms += sample.timeMs;
        // The modelled clock advances even when the deadline check
        // below aborts: the aborted iteration's time did pass.
        if (tr)
            tr->advanceMs(sample.timeMs);
        if (metrics) {
            metrics->counter("harness.iterations").inc();
            metrics
                ->histogram("harness.iteration_ms",
                            durationBucketsMs())
                .observe(sample.timeMs);
        }
        if (config.deadlineMs > 0.0 && elapsed_ms > config.deadlineMs)
            throw InvocationAbort{
                FailureKind::DeadlineExceeded,
                strprintf("workload %s: invocation %d exceeded the "
                          "%.1f ms deadline after %d iterations "
                          "(%.1f ms modelled)",
                          spec.name.c_str(), invocation_index,
                          config.deadlineMs, it + 1, elapsed_ms)};
        if (tr)
            tr->endSpan();
        inv_result.samples.push_back(std::move(sample));
    }
    if (metrics)
        metrics
            ->histogram("harness.invocation_ms", durationBucketsMs())
            .observe(elapsed_ms);
    inv_result.vmStats = interp.stats();

    if (fault && fault->kind == FaultKind::CorruptChecksum)
        inv_result.checksum ^= 0x5A5A5A5ALL;
    return inv_result;
}

/** Capped exponential backoff charged before retry `attempt + 1`. */
double
backoffMs(const RunnerConfig &config, int attempt)
{
    double delay = config.backoffBaseMs;
    for (int i = 0; i < attempt && delay < config.backoffCapMs; ++i)
        delay *= 2.0;
    return std::min(delay, config.backoffCapMs);
}

/**
 * warn() plus a mirror of the message into the trace as a "log"
 * instant at the current modelled time. Mirroring is owned by the
 * runner, not by whatever log sink is installed: that way the
 * instant lands at the same position in the document whether the
 * message is delivered immediately (serial) or buffered and replayed
 * at commit time (parallel). Quiet runs mirror nothing, matching the
 * sink-after-setQuiet contract.
 */
__attribute__((format(printf, 2, 3))) void
warnTraced(TraceEmitter *tr, const char *fmt, ...)
{
    if (quietEnabled())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (tr)
        tr->logInstant("warn", msg);
    warn("%s", msg.c_str());
}

/**
 * Everything one invocation slot produced: the retry loop's failure
 * records plus the successful result (if any). Slots have no side
 * effects on the RunResult — the caller commits outcomes in
 * invocation order, which is what keeps parallel execution
 * byte-identical to serial.
 */
struct SlotOutcome
{
    bool succeeded = false;
    InvocationResult result;
    std::vector<InvocationFailure> failures;
};

/**
 * Run the full attempt loop (with retries and backoff) for one
 * invocation slot. Metric, trace and log output goes to whatever
 * sinks config carries: the shared ones on the serial path,
 * per-worker buffers on the parallel path.
 *
 * @param ref_checksum checksum of the run's first successful
 * invocation for cross-invocation verification, or nullptr if no
 * invocation has succeeded yet (or, on the parallel path, if the
 * reference is not yet known — see extendParallel()).
 */
SlotOutcome
runInvocationSlot(const vm::Program &prog,
                  const workloads::WorkloadSpec &spec,
                  const RunnerConfig &config, int64_t size, int inv,
                  const int64_t *ref_checksum)
{
    SlotOutcome out;
    MetricsRegistry *metrics = config.metrics;
    TraceEmitter *tr = config.trace;
    if (metrics)
        metrics->counter("harness.invocations_attempted").inc();
    for (int attempt = 0; attempt <= config.maxRetries; ++attempt) {
        uint64_t seed = attemptSeed(config, inv, attempt);
        InvocationFailure failure;
        failure.invocation = inv;
        failure.attempt = attempt;
        failure.seed = seed;
        size_t spanDepth = tr ? tr->openSpans() : 0;
        if (tr) {
            Json args = Json::object();
            args.set("index", inv);
            args.set("attempt", attempt);
            tr->beginSpan("invocation", "harness", std::move(args));
        }
        try {
            InvocationResult r = runOneInvocation(
                prog, spec, config, size, inv, attempt, seed);
            // Cross-invocation checksum verification against the
            // first successful invocation. With a single prior
            // invocation the blame is ambiguous; we presume the
            // established reference is correct.
            if (ref_checksum && r.checksum != *ref_checksum) {
                throw InvocationAbort{
                    FailureKind::ChecksumMismatch,
                    strprintf(
                        "workload %s: checksum differs across "
                        "invocations (%lld vs %lld)",
                        spec.name.c_str(),
                        static_cast<long long>(r.checksum),
                        static_cast<long long>(*ref_checksum))};
            }
            out.result = std::move(r);
            out.succeeded = true;
            if (metrics)
                metrics->counter("harness.invocations").inc();
            if (tr)
                tr->endSpan();
            break;
        } catch (const vm::VmError &e) {
            failure.kind = FailureKind::VmError;
            failure.message = e.what();
        } catch (const InvocationAbort &a) {
            failure.kind = a.kind;
            failure.message = a.message;
        }
        if (attempt < config.maxRetries)
            failure.backoffMs = backoffMs(config, attempt);
        if (metrics) {
            metrics->counter("harness.failures").inc();
            metrics
                ->counter(strprintf(
                    "harness.failures.%s",
                    failureKindName(failure.kind)))
                .inc();
            if (attempt < config.maxRetries)
                metrics->counter("harness.retries").inc();
        }
        if (tr) {
            Json args = Json::object();
            args.set("kind", failureKindName(failure.kind));
            args.set("invocation", inv);
            args.set("attempt", attempt);
            args.set("message", failure.message);
            tr->instant("invocation_failure", "harness",
                        std::move(args));
            // Close the aborted iteration + invocation spans.
            tr->endSpansTo(spanDepth);
            if (attempt < config.maxRetries) {
                tr->advanceMs(failure.backoffMs);
                Json rargs = Json::object();
                rargs.set("invocation", inv);
                rargs.set("next_attempt", attempt + 1);
                rargs.set("backoff_ms", failure.backoffMs);
                tr->instant("retry", "harness", std::move(rargs));
            }
        }
        warnTraced(tr,
                   "workload %s: invocation %d attempt %d failed "
                   "(%s): %s",
                   spec.name.c_str(), inv, attempt,
                   failureKindName(failure.kind),
                   failure.message.c_str());
        out.failures.push_back(std::move(failure));
    }
    return out;
}

/**
 * Fold one slot's outcome into the run: append failure records and
 * the result, then apply the consecutive-failure / quarantine
 * accounting. Always runs on the committing thread, in invocation
 * order, against the shared sinks.
 */
void
commitSlot(const workloads::WorkloadSpec &spec,
           const RunnerConfig &config, RunResult &run,
           SlotOutcome &&out, int inv)
{
    MetricsRegistry *metrics = config.metrics;
    TraceEmitter *tr = config.trace;

    for (auto &f : out.failures)
        run.failures.push_back(std::move(f));
    bool succeeded = out.succeeded;
    if (succeeded)
        run.invocations.push_back(std::move(out.result));
    run.invocationsAttempted = inv + 1;
    if (succeeded) {
        run.consecutiveFailures = 0;
    } else if (++run.consecutiveFailures >= config.quarantineAfter &&
               config.quarantineAfter > 0) {
        run.quarantined = true;
        run.quarantineReason = strprintf(
            "%d consecutive invocations failed all %d attempt(s)",
            run.consecutiveFailures, config.maxRetries + 1);
        if (metrics)
            metrics->counter("harness.quarantines").inc();
        if (tr) {
            Json args = Json::object();
            args.set("workload", spec.name);
            args.set("reason", run.quarantineReason);
            tr->instant("quarantine", "harness", std::move(args));
        }
        warnTraced(tr, "workload %s quarantined: %s",
                   spec.name.c_str(), run.quarantineReason.c_str());
    }
}

/**
 * Commit-boundary bookkeeping shared by the serial loop and the
 * parallel committer: fire the periodic checkpoint callback at the
 * configured cadence and poll the interrupt flag. An interrupt fires
 * the callback too, regardless of cadence, so the final checkpoint
 * always reflects the last committed slot — and it fires *before* the
 * caller returns and runExperiment closes the workload trace span,
 * because the checkpoint must capture the span as still open for the
 * resume to continue it.
 *
 * @return true when the run should stop (interrupt requested).
 */
bool
afterCommit(const RunnerConfig &config, RunResult &run)
{
    if (config.onProgress)
        config.onProgress(run);
    bool stop = interruptRequested();
    if (config.onCheckpoint &&
        (stop ||
         (config.checkpointEvery > 0 &&
          run.invocationsAttempted % config.checkpointEvery == 0)))
        config.onCheckpoint(run);
    if (stop)
        run.interrupted = true;
    return stop;
}

/**
 * RAII capture of this thread's warn()/inform() output into a
 * buffer. The committer replays the buffered text through the normal
 * sink chain in invocation order, so a parallel run's log stream is
 * identical to a serial run's whatever sink the embedder installed.
 * (Trace mirroring is not the capture's job — warnTraced() already
 * placed the instant in the worker's trace buffer.)
 */
class ThreadLogCapture
{
  public:
    explicit ThreadLogCapture(
        std::vector<std::pair<LogLevel, std::string>> *buf)
    {
        prev = setThreadLogSink(
            [buf](LogLevel level, const std::string &msg) {
                buf->emplace_back(level, msg);
            });
    }

    ~ThreadLogCapture() { setThreadLogSink(std::move(prev)); }

    ThreadLogCapture(const ThreadLogCapture &) = delete;
    ThreadLogCapture &operator=(const ThreadLogCapture &) = delete;

  private:
    LogSink prev;
};

/**
 * Parallel invocation execution: workers run slots speculatively into
 * per-slot buffers; this (committing) thread folds the buffers into
 * the shared sinks and the RunResult in invocation order.
 *
 * Speculation: a worker cannot know the run's reference checksum (it
 * is established by the *earliest successful* invocation), so slots
 * run without cross-invocation verification. The committer performs
 * the check on the ordered stream; on a mismatch — only possible with
 * checksum-corrupting faults — it discards the slot's buffers and
 * re-executes the slot in-line with the true reference, which
 * reproduces the speculative attempts bit for bit (attempt seeds are
 * pure functions of the config) before diverging into the retry path
 * a serial run would have taken.
 */
void
extendParallel(const workloads::WorkloadSpec &spec,
               const RunnerConfig &config, RunResult &run, int start,
               int additional, const vm::Program &prog, int64_t size)
{
    struct Unit
    {
        SlotOutcome outcome;
        std::unique_ptr<MetricsRegistry> metrics;
        std::unique_ptr<TraceEmitter> trace;
        std::vector<std::pair<LogLevel, std::string>> logs;
        std::exception_ptr error;
        bool done = false;  ///< guarded by mu
    };

    const int n = additional;
    std::vector<Unit> units(static_cast<size_t>(n));
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<int> next{0};
    std::atomic<bool> cancelled{false};

    // Workers inherit the spawning thread's effective quiet state:
    // a per-thread quiet override (the serve daemon's way of honoring
    // one job's --quiet among concurrently streaming jobs) must apply
    // to the worker-side warnTraced() calls too, or a quiet parallel
    // job would mirror log instants into the trace that a quiet
    // serial run suppresses.
    const bool parentQuiet = quietEnabled();
    auto workerMain = [&]() {
        bool prevQuiet = setThreadQuiet(parentQuiet);
        // Each worker compiles its own program: compiled constants
        // hold refcounted Values, and refcounts are not atomic, so a
        // Program must never be shared across threads.
        std::unique_ptr<vm::Program> wprog;
        for (;;) {
            int u = next.fetch_add(1, std::memory_order_relaxed);
            if (u >= n || cancelled.load(std::memory_order_relaxed))
                break;
            Unit &unit = units[static_cast<size_t>(u)];
            try {
                if (!wprog)
                    wprog = std::make_unique<vm::Program>(
                        vm::compileSource(spec.source, spec.name));
                RunnerConfig ucfg = config;
                if (config.metrics) {
                    // Buffered: merge() then replays histogram
                    // observations in order for bit-exact sums.
                    unit.metrics =
                        std::make_unique<MetricsRegistry>(true);
                    ucfg.metrics = unit.metrics.get();
                }
                if (config.trace) {
                    unit.trace =
                        std::make_unique<TraceEmitter>(true);
                    ucfg.trace = unit.trace.get();
                }
                ThreadLogCapture capture(&unit.logs);
                unit.outcome = runInvocationSlot(
                    *wprog, spec, ucfg, size, start + u, nullptr);
            } catch (...) {
                unit.error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mu);
                unit.done = true;
            }
            cv.notify_all();
        }
        setThreadQuiet(prevQuiet);
    };

    int nthreads = std::min(config.jobs, n);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t)
        pool.emplace_back(workerMain);
    auto joinAll = [&]() {
        cancelled.store(true, std::memory_order_relaxed);
        for (auto &t : pool)
            if (t.joinable())
                t.join();
    };

    try {
        for (int u = 0; u < n; ++u) {
            Unit &unit = units[static_cast<size_t>(u)];
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock, [&] { return unit.done; });
            }
            if (unit.error)
                std::rethrow_exception(unit.error);
            int inv = start + u;
            const int64_t *ref = run.invocations.empty()
                ? nullptr
                : &run.invocations.front().checksum;
            if (unit.outcome.succeeded && ref &&
                unit.outcome.result.checksum != *ref) {
                SlotOutcome redo = runInvocationSlot(
                    prog, spec, config, size, inv, ref);
                commitSlot(spec, config, run, std::move(redo), inv);
            } else {
                if (config.trace && unit.trace)
                    config.trace->append(std::move(*unit.trace));
                if (config.metrics && unit.metrics)
                    config.metrics->merge(*unit.metrics);
                for (const auto &[level, msg] : unit.logs)
                    emitLogMessage(level, msg);
                commitSlot(spec, config, run,
                           std::move(unit.outcome), inv);
            }
            if (afterCommit(config, run) || run.quarantined)
                break;
        }
    } catch (...) {
        joinAll();
        throw;
    }
    joinAll();
}

} // namespace

RunResult
runExperiment(const workloads::WorkloadSpec &spec,
              const RunnerConfig &config)
{
    RunResult result;
    result.workload = spec.name;
    result.tier = config.tier;
    result.size = config.size > 0 ? config.size : spec.defaultSize;

    TraceEmitter *tr = config.trace;
    size_t depth = tr ? tr->openSpans() : 0;
    if (tr) {
        Json args = Json::object();
        args.set("tier", vm::tierName(config.tier));
        args.set("size", result.size);
        tr->beginSpan(spec.name, "workload", std::move(args));
    }
    try {
        extendExperiment(spec, config, result, config.invocations);
    } catch (...) {
        if (tr)
            tr->endSpansTo(depth);
        throw;
    }
    if (tr)
        tr->endSpansTo(depth);
    return result;
}

void
extendExperiment(const workloads::WorkloadSpec &spec,
                 const RunnerConfig &config, RunResult &run,
                 int additional)
{
    if (run.quarantined)
        return;

    vm::Program prog = vm::compileSource(spec.source, spec.name);
    int64_t size = run.size > 0
        ? run.size
        : (config.size > 0 ? config.size : spec.defaultSize);
    run.size = size;

    int start = std::max(run.invocationsAttempted,
                         static_cast<int>(run.invocations.size()));
    if (config.jobs > 1 && additional > 1) {
        extendParallel(spec, config, run, start, additional, prog,
                       size);
        return;
    }
    for (int inv = start; inv < start + additional; ++inv) {
        const int64_t *ref = run.invocations.empty()
            ? nullptr
            : &run.invocations.front().checksum;
        SlotOutcome out =
            runInvocationSlot(prog, spec, config, size, inv, ref);
        commitSlot(spec, config, run, std::move(out), inv);
        if (afterCommit(config, run) || run.quarantined)
            return;
    }
}

void
resumeExperiment(const workloads::WorkloadSpec &spec,
                 const RunnerConfig &config, RunResult &run)
{
    TraceEmitter *tr = config.trace;
    // The restored checkpoint holds the workload span open (it was
    // open when the checkpoint was taken); close down to just outside
    // it on exit, mirroring runExperiment.
    size_t depth = tr && tr->openSpans() > 0 ? tr->openSpans() - 1 : 0;
    int additional = config.invocations - run.invocationsAttempted;
    try {
        if (additional > 0)
            extendExperiment(spec, config, run, additional);
    } catch (...) {
        if (tr)
            tr->endSpansTo(depth);
        throw;
    }
    if (tr)
        tr->endSpansTo(depth);
}

RunResult
runExperiment(const std::string &workload_name,
              const RunnerConfig &config)
{
    return runExperiment(workloads::findWorkload(workload_name),
                         config);
}

} // namespace harness
} // namespace rigor
