#include "harness/runner.hh"

#include <chrono>

#include "support/logging.hh"
#include "vm/compiler.hh"

namespace rigor {
namespace harness {

namespace {

uint64_t
deriveSeed(uint64_t master, uint64_t stream, uint64_t index)
{
    SplitMix64 sm(master ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                  (index + 1));
    return sm.next();
}

/** Execute one fresh VM invocation of the experiment design. */
InvocationResult
runOneInvocation(const vm::Program &prog,
                 const workloads::WorkloadSpec &spec,
                 const RunnerConfig &config, int64_t size,
                 int invocation_index)
{
    uint64_t inv_seed =
        deriveSeed(config.seed, 1,
                   static_cast<uint64_t>(invocation_index));

    vm::InterpConfig icfg;
    icfg.tier = config.tier;
    icfg.jitThreshold = config.jitThreshold;
    icfg.dispatchUops = config.dispatchUops;
    icfg.hashSeed = deriveSeed(inv_seed, 2, 0);
    icfg.aslrSeed = deriveSeed(inv_seed, 3, 0);
    icfg.captureOutput = false;

    uarch::PerfModel model(config.uarch);
    vm::Interp interp(prog, icfg, &model);
    interp.runModule();

    NoiseModel noise(config.noise, inv_seed);

    InvocationResult inv_result;
    inv_result.invocationSeed = inv_seed;
    inv_result.samples.reserve(
        static_cast<size_t>(config.iterations));

    uarch::CounterSet prev = model.snapshot();
    for (int it = 0; it < config.iterations; ++it) {
        auto wall_start = std::chrono::steady_clock::now();
        vm::Value r =
            interp.callGlobal("run", {vm::Value::makeInt(size)});
        auto wall_end = std::chrono::steady_clock::now();

        int64_t checksum = r.isInt()
            ? r.asInt()
            : static_cast<int64_t>(r.numeric());
        if (inv_result.samples.empty()) {
            inv_result.checksum = checksum;
        } else if (inv_result.checksum != checksum) {
            panic("workload %s: checksum changed between iterations "
                  "(%lld vs %lld)",
                  spec.name.c_str(),
                  static_cast<long long>(inv_result.checksum),
                  static_cast<long long>(checksum));
        }

        uarch::CounterSet now = model.snapshot();
        IterationSample sample;
        sample.counters = now.diff(prev);
        prev = now;
        sample.simCycles = sample.counters.cycles;
        sample.timeMs = static_cast<double>(sample.simCycles) /
            config.cyclesPerMs * noise.nextIterationFactor();
        sample.wallNanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                wall_end - wall_start)
                .count());
        inv_result.samples.push_back(std::move(sample));
    }
    inv_result.vmStats = interp.stats();
    return inv_result;
}

} // namespace

RunResult
runExperiment(const workloads::WorkloadSpec &spec,
              const RunnerConfig &config)
{
    RunResult result;
    result.workload = spec.name;
    result.tier = config.tier;
    result.size = config.size > 0 ? config.size : spec.defaultSize;
    extendExperiment(spec, config, result, config.invocations);
    return result;
}

void
extendExperiment(const workloads::WorkloadSpec &spec,
                 const RunnerConfig &config, RunResult &run,
                 int additional)
{
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    int64_t size = run.size > 0
        ? run.size
        : (config.size > 0 ? config.size : spec.defaultSize);
    run.size = size;

    int start = static_cast<int>(run.invocations.size());
    for (int inv = start; inv < start + additional; ++inv) {
        run.invocations.push_back(
            runOneInvocation(prog, spec, config, size, inv));
        // Cross-invocation checksum verification.
        if (run.invocations.back().checksum !=
            run.invocations.front().checksum) {
            panic("workload %s: checksum differs across invocations",
                  spec.name.c_str());
        }
    }
}

RunResult
runExperiment(const std::string &workload_name,
              const RunnerConfig &config)
{
    return runExperiment(workloads::findWorkload(workload_name),
                         config);
}

} // namespace harness
} // namespace rigor
