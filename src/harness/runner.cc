#include "harness/runner.hh"

#include <algorithm>
#include <chrono>

#include "harness/fault.hh"
#include "support/logging.hh"
#include "vm/compiler.hh"
#include "vm/metrics_observer.hh"

namespace rigor {
namespace harness {

namespace {

uint64_t
deriveSeed(uint64_t master, uint64_t stream, uint64_t index)
{
    SplitMix64 sm(master ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                  (index + 1));
    return sm.next();
}

/**
 * Seed for one invocation attempt. Attempt 0 reproduces the original
 * single-attempt derivation bit for bit (fault-free runs are
 * byte-identical to the pre-fault-tolerance harness); retries fork a
 * fresh stream off the invocation seed.
 */
uint64_t
attemptSeed(const RunnerConfig &config, int invocation, int attempt)
{
    uint64_t inv_seed =
        deriveSeed(config.seed, 1, static_cast<uint64_t>(invocation));
    if (attempt == 0)
        return inv_seed;
    return deriveSeed(inv_seed, 4, static_cast<uint64_t>(attempt));
}

/** Internal control-flow signal: this attempt failed; retry it. */
struct InvocationAbort
{
    FailureKind kind;
    std::string message;
};

/** Bucket bounds shared by the harness duration histograms. */
std::vector<double>
durationBucketsMs()
{
    return MetricsRegistry::exponentialBuckets(0.001, 4.0, 16);
}

/** Execute one VM invocation attempt of the experiment design. */
InvocationResult
runOneInvocation(const vm::Program &prog,
                 const workloads::WorkloadSpec &spec,
                 const RunnerConfig &config, int64_t size,
                 int invocation_index, int attempt, uint64_t inv_seed)
{
    MetricsRegistry *metrics = config.metrics;
    TraceEmitter *tr = config.trace;

    const FaultSpec *fault = config.faults
        ? config.faults->query(spec.name, invocation_index, attempt)
        : nullptr;
    if (fault) {
        if (metrics)
            metrics->counter("harness.faults_injected").inc();
        if (tr) {
            Json args = Json::object();
            args.set("kind", faultKindName(fault->kind));
            args.set("invocation", invocation_index);
            args.set("attempt", attempt);
            tr->instant("fault_injected", "harness", std::move(args));
        }
    }
    if (fault && fault->kind == FaultKind::Throw)
        throw vm::VmError(strprintf(
            "injected fault: VmError in %s invocation %d attempt %d",
            spec.name.c_str(), invocation_index, attempt));

    vm::InterpConfig icfg;
    icfg.tier = config.tier;
    icfg.jitThreshold = config.jitThreshold;
    icfg.dispatchUops = config.dispatchUops;
    icfg.hashSeed = deriveSeed(inv_seed, 2, 0);
    icfg.aslrSeed = deriveSeed(inv_seed, 3, 0);
    icfg.captureOutput = false;

    uarch::PerfModel model(config.uarch);
    // The uarch model is the only observer on plain runs; metrics /
    // trace runs multiplex a MetricsObserver alongside it.
    vm::MetricsObserver mobs(
        metrics, strprintf("vm.%s", vm::tierName(config.tier)), tr);
    vm::MultiplexObserver mux;
    vm::ExecutionObserver *observer = &model;
    if (metrics || tr) {
        mux.add(&model);
        mux.add(&mobs);
        observer = &mux;
    }
    vm::Interp interp(prog, icfg, observer);
    interp.runModule();

    NoiseModel noise(config.noise, inv_seed);

    InvocationResult inv_result;
    inv_result.invocationSeed = inv_seed;
    inv_result.samples.reserve(
        static_cast<size_t>(config.iterations));

    double elapsed_ms = 0.0;
    uarch::CounterSet prev = model.snapshot();
    for (int it = 0; it < config.iterations; ++it) {
        if (tr) {
            Json args = Json::object();
            args.set("index", it);
            tr->beginSpan("iteration", "harness", std::move(args));
        }
        auto wall_start = std::chrono::steady_clock::now();
        vm::Value r =
            interp.callGlobal("run", {vm::Value::makeInt(size)});
        auto wall_end = std::chrono::steady_clock::now();

        int64_t checksum = r.isInt()
            ? r.asInt()
            : static_cast<int64_t>(r.numeric());
        if (inv_result.samples.empty()) {
            inv_result.checksum = checksum;
        } else if (inv_result.checksum != checksum) {
            throw InvocationAbort{
                FailureKind::ChecksumMismatch,
                strprintf("workload %s: checksum changed between "
                          "iterations (%lld vs %lld)",
                          spec.name.c_str(),
                          static_cast<long long>(inv_result.checksum),
                          static_cast<long long>(checksum))};
        }

        uarch::CounterSet now = model.snapshot();
        IterationSample sample;
        sample.counters = now.diff(prev);
        prev = now;
        sample.simCycles = sample.counters.cycles;
        sample.timeMs = static_cast<double>(sample.simCycles) /
            config.cyclesPerMs * noise.nextIterationFactor();
        if (fault)
            sample.timeMs *= FaultInjector::timeFactor(*fault, it);
        sample.wallNanos = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                wall_end - wall_start)
                .count());
        elapsed_ms += sample.timeMs;
        // The modelled clock advances even when the deadline check
        // below aborts: the aborted iteration's time did pass.
        if (tr)
            tr->advanceMs(sample.timeMs);
        if (metrics) {
            metrics->counter("harness.iterations").inc();
            metrics
                ->histogram("harness.iteration_ms",
                            durationBucketsMs())
                .observe(sample.timeMs);
        }
        if (config.deadlineMs > 0.0 && elapsed_ms > config.deadlineMs)
            throw InvocationAbort{
                FailureKind::DeadlineExceeded,
                strprintf("workload %s: invocation %d exceeded the "
                          "%.1f ms deadline after %d iterations "
                          "(%.1f ms modelled)",
                          spec.name.c_str(), invocation_index,
                          config.deadlineMs, it + 1, elapsed_ms)};
        if (tr)
            tr->endSpan();
        inv_result.samples.push_back(std::move(sample));
    }
    if (metrics)
        metrics
            ->histogram("harness.invocation_ms", durationBucketsMs())
            .observe(elapsed_ms);
    inv_result.vmStats = interp.stats();

    if (fault && fault->kind == FaultKind::CorruptChecksum)
        inv_result.checksum ^= 0x5A5A5A5ALL;
    return inv_result;
}

/** Capped exponential backoff charged before retry `attempt + 1`. */
double
backoffMs(const RunnerConfig &config, int attempt)
{
    double delay = config.backoffBaseMs;
    for (int i = 0; i < attempt && delay < config.backoffCapMs; ++i)
        delay *= 2.0;
    return std::min(delay, config.backoffCapMs);
}

} // namespace

RunResult
runExperiment(const workloads::WorkloadSpec &spec,
              const RunnerConfig &config)
{
    RunResult result;
    result.workload = spec.name;
    result.tier = config.tier;
    result.size = config.size > 0 ? config.size : spec.defaultSize;

    TraceEmitter *tr = config.trace;
    size_t depth = tr ? tr->openSpans() : 0;
    if (tr) {
        Json args = Json::object();
        args.set("tier", vm::tierName(config.tier));
        args.set("size", result.size);
        tr->beginSpan(spec.name, "workload", std::move(args));
    }
    try {
        extendExperiment(spec, config, result, config.invocations);
    } catch (...) {
        if (tr)
            tr->endSpansTo(depth);
        throw;
    }
    if (tr)
        tr->endSpansTo(depth);
    return result;
}

void
extendExperiment(const workloads::WorkloadSpec &spec,
                 const RunnerConfig &config, RunResult &run,
                 int additional)
{
    if (run.quarantined)
        return;

    vm::Program prog = vm::compileSource(spec.source, spec.name);
    int64_t size = run.size > 0
        ? run.size
        : (config.size > 0 ? config.size : spec.defaultSize);
    run.size = size;

    MetricsRegistry *metrics = config.metrics;
    TraceEmitter *tr = config.trace;

    int start = std::max(run.invocationsAttempted,
                         static_cast<int>(run.invocations.size()));
    for (int inv = start; inv < start + additional; ++inv) {
        bool succeeded = false;
        if (metrics)
            metrics->counter("harness.invocations_attempted").inc();
        for (int attempt = 0; attempt <= config.maxRetries;
             ++attempt) {
            uint64_t seed = attemptSeed(config, inv, attempt);
            InvocationFailure failure;
            failure.invocation = inv;
            failure.attempt = attempt;
            failure.seed = seed;
            size_t spanDepth = tr ? tr->openSpans() : 0;
            if (tr) {
                Json args = Json::object();
                args.set("index", inv);
                args.set("attempt", attempt);
                tr->beginSpan("invocation", "harness",
                              std::move(args));
            }
            try {
                InvocationResult r = runOneInvocation(
                    prog, spec, config, size, inv, attempt, seed);
                // Cross-invocation checksum verification against the
                // first successful invocation. With a single prior
                // invocation the blame is ambiguous; we presume the
                // established reference is correct.
                if (!run.invocations.empty() &&
                    r.checksum != run.invocations.front().checksum) {
                    throw InvocationAbort{
                        FailureKind::ChecksumMismatch,
                        strprintf(
                            "workload %s: checksum differs across "
                            "invocations (%lld vs %lld)",
                            spec.name.c_str(),
                            static_cast<long long>(r.checksum),
                            static_cast<long long>(
                                run.invocations.front().checksum))};
                }
                run.invocations.push_back(std::move(r));
                succeeded = true;
                if (metrics)
                    metrics->counter("harness.invocations").inc();
                if (tr)
                    tr->endSpan();
                break;
            } catch (const vm::VmError &e) {
                failure.kind = FailureKind::VmError;
                failure.message = e.what();
            } catch (const InvocationAbort &a) {
                failure.kind = a.kind;
                failure.message = a.message;
            }
            if (attempt < config.maxRetries)
                failure.backoffMs = backoffMs(config, attempt);
            if (metrics) {
                metrics->counter("harness.failures").inc();
                metrics
                    ->counter(strprintf(
                        "harness.failures.%s",
                        failureKindName(failure.kind)))
                    .inc();
                if (attempt < config.maxRetries)
                    metrics->counter("harness.retries").inc();
            }
            if (tr) {
                Json args = Json::object();
                args.set("kind", failureKindName(failure.kind));
                args.set("invocation", inv);
                args.set("attempt", attempt);
                args.set("message", failure.message);
                tr->instant("invocation_failure", "harness",
                            std::move(args));
                // Close the aborted iteration + invocation spans.
                tr->endSpansTo(spanDepth);
                if (attempt < config.maxRetries) {
                    tr->advanceMs(failure.backoffMs);
                    Json rargs = Json::object();
                    rargs.set("invocation", inv);
                    rargs.set("next_attempt", attempt + 1);
                    rargs.set("backoff_ms", failure.backoffMs);
                    tr->instant("retry", "harness",
                                std::move(rargs));
                }
            }
            warn("workload %s: invocation %d attempt %d failed "
                 "(%s): %s",
                 spec.name.c_str(), inv, attempt,
                 failureKindName(failure.kind),
                 failure.message.c_str());
            run.failures.push_back(std::move(failure));
        }
        run.invocationsAttempted = inv + 1;
        if (succeeded) {
            run.consecutiveFailures = 0;
        } else if (++run.consecutiveFailures >=
                       config.quarantineAfter &&
                   config.quarantineAfter > 0) {
            run.quarantined = true;
            run.quarantineReason = strprintf(
                "%d consecutive invocations failed all %d attempt(s)",
                run.consecutiveFailures, config.maxRetries + 1);
            if (metrics)
                metrics->counter("harness.quarantines").inc();
            if (tr) {
                Json args = Json::object();
                args.set("workload", spec.name);
                args.set("reason", run.quarantineReason);
                tr->instant("quarantine", "harness",
                            std::move(args));
            }
            warn("workload %s quarantined: %s", spec.name.c_str(),
                 run.quarantineReason.c_str());
            return;
        }
    }
}

RunResult
runExperiment(const std::string &workload_name,
              const RunnerConfig &config)
{
    return runExperiment(workloads::findWorkload(workload_name),
                         config);
}

} // namespace harness
} // namespace rigor
