/**
 * @file
 * Benchmarking-environment sanity checks (Krun-style).
 *
 * Real rigorous-benchmarking practice inspects the host before
 * measuring: CPU frequency scaling, SMT, load average, ASLR, turbo.
 * This module reads the usual Linux interfaces and reports findings.
 * The parsing functions take the file *contents* as arguments so unit
 * tests can exercise every code path without root or specific
 * hardware; collect() wires them to the real /proc and /sys paths and
 * degrades gracefully when files are absent (containers).
 */

#ifndef RIGOR_HARNESS_ENVCHECK_HH
#define RIGOR_HARNESS_ENVCHECK_HH

#include <string>
#include <vector>

namespace rigor {
namespace harness {

/** Severity of one environment finding. */
enum class EnvSeverity
{
    Info,     ///< good / neutral condition
    Warning,  ///< may perturb measurements
    Unknown,  ///< interface not readable (e.g. container)
};

/** One environment finding. */
struct EnvFinding
{
    std::string check;    ///< e.g. "cpu-governor"
    EnvSeverity severity = EnvSeverity::Unknown;
    std::string detail;   ///< human-readable explanation
};

/** A full environment report. */
struct EnvReport
{
    std::vector<EnvFinding> findings;

    /** Number of findings at Warning severity. */
    int warningCount() const;
    /** Render as a short multi-line string. */
    std::string render() const;
};

// --- Testable parsers (pure functions of file contents) -----------------

/** Evaluate a scaling_governor value ("performance" is quiet). */
EnvFinding checkGovernor(const std::string &contents);

/** Evaluate /proc/loadavg (1-minute load vs CPU count). */
EnvFinding checkLoadAverage(const std::string &contents,
                            int cpu_count);

/** Evaluate /proc/sys/kernel/randomize_va_space (ASLR). */
EnvFinding checkAslr(const std::string &contents);

/** Evaluate /sys/devices/system/cpu/smt/control. */
EnvFinding checkSmt(const std::string &contents);

/** Evaluate turbo state from intel_pstate/no_turbo ("1" = off). */
EnvFinding checkTurbo(const std::string &contents);

// --- Collection -----------------------------------------------------------

/**
 * Read the real system interfaces and produce a report. Missing
 * files yield Unknown findings rather than errors.
 */
EnvReport collectEnvironment();

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_ENVCHECK_HH
