/**
 * @file
 * Sequential (adaptive) experiment design: instead of fixing the
 * number of VM invocations upfront, keep adding invocations until the
 * rigorous estimate's confidence interval reaches a target relative
 * half-width — or a budget cap is hit. This is the methodology's
 * "run until you know enough" extension: it spends measurement time
 * where variance demands it.
 */

#ifndef RIGOR_HARNESS_SEQUENTIAL_HH
#define RIGOR_HARNESS_SEQUENTIAL_HH

#include "harness/analysis.hh"
#include "harness/runner.hh"

namespace rigor {
namespace harness {

/** Stopping rule parameters. */
struct SequentialConfig
{
    /** Invocations to run before the first convergence check. */
    int minInvocations = 4;
    /** Hard budget cap. */
    int maxInvocations = 60;
    /** Invocations added per round between checks. */
    int batchSize = 2;
    /** Stop once relativeHalfWidth() <= this. */
    double targetRelativeHalfWidth = 0.02;
    /** Confidence level of the interval being tightened. */
    double confidence = 0.95;
};

/** Outcome of a sequential run. */
struct SequentialResult
{
    RunResult run;
    RigorousEstimate estimate;
    /** True if the target precision was reached within budget. */
    bool converged = false;
    /** Number of invocations actually executed. */
    int invocationsUsed = 0;
    /** Relative half-width at each convergence check (trajectory). */
    std::vector<double> widthTrajectory;
};

/**
 * Run the sequential design for one workload. `base` supplies the
 * per-invocation design (iterations, tier, noise, seed); its
 * `invocations` field is ignored in favour of the stopping rule.
 */
SequentialResult runSequential(const workloads::WorkloadSpec &spec,
                               const RunnerConfig &base,
                               const SequentialConfig &seq = {});

/** Convenience overload by workload name. */
SequentialResult runSequential(const std::string &workload_name,
                               const RunnerConfig &base,
                               const SequentialConfig &seq = {});

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_SEQUENTIAL_HH
