/**
 * @file
 * The benchmark runner: executes the (invocation x iteration) design
 * for one workload on one runtime tier, collecting per-iteration
 * modelled times and perf counters.
 */

#ifndef RIGOR_HARNESS_RUNNER_HH
#define RIGOR_HARNESS_RUNNER_HH

#include <string>

#include "harness/measurement.hh"
#include "harness/noise.hh"
#include "uarch/perf_model.hh"
#include "workloads/workloads.hh"

namespace rigor {
namespace harness {

/** Configuration of one experiment run. */
struct RunnerConfig
{
    /** Number of fresh VM invocations. */
    int invocations = 10;
    /** In-process iterations per invocation. */
    int iterations = 30;
    /** Runtime tier to measure. */
    vm::Tier tier = vm::Tier::Interp;
    /** JIT hot threshold (adaptive tier). */
    int jitThreshold = 64;
    /** Interpreter dispatch cost in micro-ops (see InterpConfig). */
    uint32_t dispatchUops = 6;
    /** Workload size (0 = the workload's defaultSize). */
    int64_t size = 0;
    /** Master seed; all invocation seeds derive from it. */
    uint64_t seed = 0xc0ffee;
    /** Noise model parameters. */
    NoiseConfig noise;
    /** Microarchitecture model parameters. */
    uarch::PerfModelConfig uarch;
    /** Modelled clock in cycles per millisecond (3 GHz default). */
    double cyclesPerMs = 3.0e6;
};

/**
 * Run the full experiment design for one workload.
 * Checksums are verified to be identical across invocations; a
 * mismatch raises PanicError (it would indicate a VM bug).
 */
RunResult runExperiment(const workloads::WorkloadSpec &spec,
                        const RunnerConfig &config);

/** Convenience: look up the workload by name and run it. */
RunResult runExperiment(const std::string &workload_name,
                        const RunnerConfig &config);

/**
 * Append `additional` fresh invocations to an existing run (the new
 * invocation seeds continue the original sequence, so extending a run
 * equals having asked for more invocations upfront). Used by the
 * sequential-stopping design.
 */
void extendExperiment(const workloads::WorkloadSpec &spec,
                      const RunnerConfig &config, RunResult &run,
                      int additional);

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_RUNNER_HH
