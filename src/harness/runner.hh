/**
 * @file
 * The benchmark runner: executes the (invocation x iteration) design
 * for one workload on one runtime tier, collecting per-iteration
 * modelled times and perf counters.
 */

#ifndef RIGOR_HARNESS_RUNNER_HH
#define RIGOR_HARNESS_RUNNER_HH

#include <functional>
#include <string>

#include "harness/measurement.hh"
#include "harness/noise.hh"
#include "support/metrics.hh"
#include "support/trace.hh"
#include "uarch/perf_model.hh"
#include "workloads/workloads.hh"

namespace rigor {
namespace harness {

class FaultInjector;

/**
 * Default JIT hot threshold, matching vm::InterpConfig. This is the
 * single source of truth: RunnerConfig and the rigorbench CLI both
 * reference it (they used to disagree, 64 vs 4000).
 */
inline constexpr int kDefaultJitThreshold = 4000;

/**
 * Dispatch parameters for the direct-threaded tier. Threaded code
 * skips the bounds check, table load and shared re-branch of a switch
 * loop: each handler ends in a single indirect jump (the operand
 * fetch is already charged in the opcode base cost), so dispatch is
 * 1 uop instead of 6. Each handler's own jump also gives the host
 * branch predictor a per-opcode context, modelled as a deeper opcode
 * history for the dispatch predictor. Applied by the runner/profiler
 * whenever the configured tier is Tier::Threaded.
 */
inline constexpr uint32_t kThreadedDispatchUops = 1;
inline constexpr unsigned kThreadedDispatchHistoryOps = 6;

/** Configuration of one experiment run. */
struct RunnerConfig
{
    /** Number of fresh VM invocations. */
    int invocations = 10;
    /** In-process iterations per invocation. */
    int iterations = 30;
    /** Runtime tier to measure. */
    vm::Tier tier = vm::Tier::Interp;
    /** JIT hot threshold (adaptive tier). */
    int jitThreshold = kDefaultJitThreshold;
    /** Interpreter dispatch cost in micro-ops (see InterpConfig). */
    uint32_t dispatchUops = 6;
    /** Workload size (0 = the workload's defaultSize). */
    int64_t size = 0;
    /** Master seed; all invocation seeds derive from it. */
    uint64_t seed = 0xc0ffee;
    /** Noise model parameters. */
    NoiseConfig noise;
    /** Microarchitecture model parameters. */
    uarch::PerfModelConfig uarch;
    /** Modelled clock in cycles per millisecond (3 GHz default). */
    double cyclesPerMs = 3.0e6;

    /**
     * Worker threads executing invocations (1 = serial). Every
     * invocation derives an independent seed, so invocations are
     * sharded across a pool and their results committed in invocation
     * order; report, metrics, trace and resume artifacts are
     * byte-identical to a serial run (see docs/METHODOLOGY.md §11).
     */
    int jobs = 1;

    // --- fault tolerance ---------------------------------------------

    /** Retries per invocation after a failed attempt (0 = fail fast). */
    int maxRetries = 2;
    /** Base modelled backoff before the first retry; doubles per
     *  retry. Charged to the failure record, not slept. */
    double backoffBaseMs = 1.0;
    /** Backoff cap (exponential growth stops here). */
    double backoffCapMs = 64.0;
    /**
     * Quarantine the workload after this many *consecutive*
     * invocations whose every attempt failed (0 disables quarantine;
     * the run then keeps trying every requested invocation).
     */
    int quarantineAfter = 3;
    /** Per-invocation modelled-time deadline in ms (0 = none). A
     *  stalled invocation is aborted once its summed modelled time
     *  passes this. */
    double deadlineMs = 0.0;
    /** Optional fault injector (not owned); nullptr injects nothing. */
    const FaultInjector *faults = nullptr;

    // --- observability -----------------------------------------------

    /**
     * Optional metrics destination (not owned). When set, the harness
     * records invocation/iteration durations and retry / quarantine /
     * fault counts under "harness.*", and a MetricsObserver is
     * multiplexed onto the VM so per-tier execution totals land under
     * "vm.<tier>.*". See docs/OBSERVABILITY.md for the schema.
     */
    MetricsRegistry *metrics = nullptr;
    /**
     * Optional trace destination (not owned). When set, the run emits
     * workload / invocation / iteration spans and instant events for
     * JIT compiles, deopts, injected faults, retries and quarantines,
     * all timestamped with the modelled clock.
     */
    TraceEmitter *trace = nullptr;

    // --- durability --------------------------------------------------

    /**
     * Fire onCheckpoint every this many committed invocation slots
     * (0 disables periodic checkpoints). Checkpoints happen at commit
     * boundaries on both the serial and the parallel committer path,
     * so the captured state is exactly what a fresh run would have
     * after that many invocations — which is why the final artifacts
     * are invariant under checkpoint cadence.
     */
    int checkpointEvery = 0;
    /**
     * Called with the partial run at each checkpoint boundary and,
     * regardless of cadence, when an interrupt stops the run (so the
     * last checkpoint always reflects the final committed slot). The
     * callback runs on the committing thread while the shared
     * metrics/trace sinks are quiescent; snapshotting them inside the
     * callback is race-free.
     */
    std::function<void(const RunResult &)> onCheckpoint;

    // --- progress ----------------------------------------------------

    /**
     * Called after *every* committed invocation slot, on the
     * committing thread, before onCheckpoint. Purely observational:
     * the serve daemon streams these as per-job progress events to
     * subscribed clients. Must not mutate the run or touch the
     * metrics/trace sinks in ways that alter artifacts — byte-identity
     * between hooked and unhooked runs is part of the contract.
     */
    std::function<void(const RunResult &)> onProgress;
};

/**
 * Run the full experiment design for one workload.
 *
 * Parallelism: with config.jobs > 1 the (independent-seeded)
 * invocations are executed by a worker pool. Workers run invocation
 * slots speculatively into per-worker metric/trace/log buffers; a
 * single committer folds the buffers into the shared sinks in
 * invocation order, so retry, checksum-verification and quarantine
 * decisions are made on the ordered result stream and every artifact
 * is byte-identical to jobs == 1.
 *
 * Failure handling: a VmError, a checksum divergence (between
 * iterations or across invocations) or a blown deadline no longer
 * aborts the run. The attempt is recorded as an InvocationFailure and
 * retried with a freshly derived seed, up to maxRetries times with
 * capped exponential backoff. After quarantineAfter consecutive
 * permanently-failed invocations the workload is quarantined and the
 * partial run returned. Failed attempts never contribute samples, so
 * every estimate is computed from successful invocations only.
 */
RunResult runExperiment(const workloads::WorkloadSpec &spec,
                        const RunnerConfig &config);

/** Convenience: look up the workload by name and run it. */
RunResult runExperiment(const std::string &workload_name,
                        const RunnerConfig &config);

/**
 * Append `additional` fresh invocations to an existing run (the new
 * invocation seeds continue the original sequence, so extending a run
 * equals having asked for more invocations upfront). Used by the
 * sequential-stopping design.
 */
void extendExperiment(const workloads::WorkloadSpec &spec,
                      const RunnerConfig &config, RunResult &run,
                      int additional);

/**
 * Continue an incomplete (checkpointed, then restored) run up to
 * config.invocations total attempted slots. Invocation seeds are pure
 * functions of (config.seed, slot index, attempt), so the continuation
 * reproduces exactly what an uninterrupted run would have done.
 *
 * Precondition: `run` is incomplete (not quarantined and
 * invocationsAttempted < config.invocations) and, when config.trace is
 * set, the emitter holds the restored checkpoint with the workload
 * span still open; the span is closed on return like runExperiment
 * does.
 */
void resumeExperiment(const workloads::WorkloadSpec &spec,
                      const RunnerConfig &config, RunResult &run);

} // namespace harness
} // namespace rigor

#endif // RIGOR_HARNESS_RUNNER_HH
