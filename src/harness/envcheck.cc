#include "harness/envcheck.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/str.hh"

namespace rigor {
namespace harness {

int
EnvReport::warningCount() const
{
    int n = 0;
    for (const auto &f : findings)
        if (f.severity == EnvSeverity::Warning)
            ++n;
    return n;
}

std::string
EnvReport::render() const
{
    std::string out;
    for (const auto &f : findings) {
        const char *tag = f.severity == EnvSeverity::Warning
            ? "WARN"
            : (f.severity == EnvSeverity::Info ? "ok  " : "n/a ");
        out += std::string(tag) + "  " + padRight(f.check, 16) +
            f.detail + "\n";
    }
    return out;
}

EnvFinding
checkGovernor(const std::string &contents)
{
    EnvFinding f;
    f.check = "cpu-governor";
    std::string governor = trim(contents);
    if (governor.empty()) {
        f.severity = EnvSeverity::Unknown;
        f.detail = "governor not readable";
        return f;
    }
    if (governor == "performance") {
        f.severity = EnvSeverity::Info;
        f.detail = "governor is 'performance'";
    } else {
        f.severity = EnvSeverity::Warning;
        f.detail = "governor is '" + governor +
            "'; frequency scaling will add between-run variance";
    }
    return f;
}

EnvFinding
checkLoadAverage(const std::string &contents, int cpu_count)
{
    EnvFinding f;
    f.check = "load-average";
    std::istringstream is(contents);
    double load1 = -1.0;
    is >> load1;
    if (!is || load1 < 0.0) {
        f.severity = EnvSeverity::Unknown;
        f.detail = "loadavg not readable";
        return f;
    }
    double per_cpu = cpu_count > 0
        ? load1 / static_cast<double>(cpu_count)
        : load1;
    if (per_cpu > 0.5) {
        f.severity = EnvSeverity::Warning;
        f.detail = "1-min load " + fmtDouble(load1, 2) + " on " +
            std::to_string(cpu_count) +
            " CPUs; co-located work will perturb timings";
    } else {
        f.severity = EnvSeverity::Info;
        f.detail = "1-min load " + fmtDouble(load1, 2) + " on " +
            std::to_string(cpu_count) + " CPUs";
    }
    return f;
}

EnvFinding
checkAslr(const std::string &contents)
{
    EnvFinding f;
    f.check = "aslr";
    std::string v = trim(contents);
    if (v.empty()) {
        f.severity = EnvSeverity::Unknown;
        f.detail = "randomize_va_space not readable";
        return f;
    }
    if (v == "0") {
        f.severity = EnvSeverity::Info;
        f.detail = "ASLR disabled (deterministic layout; remember "
                   "the layout itself is then a fixed bias)";
    } else {
        // ASLR on is *fine* for the methodology — it is exactly why
        // multiple VM invocations are needed — but worth surfacing.
        f.severity = EnvSeverity::Info;
        f.detail = "ASLR enabled (mode " + v +
            "); address layout varies per invocation — use multiple "
            "invocations";
    }
    return f;
}

EnvFinding
checkSmt(const std::string &contents)
{
    EnvFinding f;
    f.check = "smt";
    std::string v = trim(contents);
    if (v.empty()) {
        f.severity = EnvSeverity::Unknown;
        f.detail = "SMT control not readable";
        return f;
    }
    if (v == "off" || v == "forceoff" || v == "notsupported") {
        f.severity = EnvSeverity::Info;
        f.detail = "SMT is off";
    } else {
        f.severity = EnvSeverity::Warning;
        f.detail = "SMT is '" + v +
            "'; sibling-thread interference can distort counters";
    }
    return f;
}

EnvFinding
checkTurbo(const std::string &contents)
{
    EnvFinding f;
    f.check = "turbo";
    std::string v = trim(contents);
    if (v.empty()) {
        f.severity = EnvSeverity::Unknown;
        f.detail = "turbo state not readable";
        return f;
    }
    if (v == "1") {
        f.severity = EnvSeverity::Info;
        f.detail = "turbo disabled (no_turbo=1)";
    } else {
        f.severity = EnvSeverity::Warning;
        f.detail = "turbo enabled; opportunistic frequency boosts add "
                   "thermal-state-dependent variance";
    }
    return f;
}

namespace {

std::string
readFileOrEmpty(const char *path)
{
    std::ifstream is(path);
    if (!is)
        return "";
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

} // namespace

EnvReport
collectEnvironment()
{
    EnvReport report;
    int cpus = static_cast<int>(std::thread::hardware_concurrency());

    report.findings.push_back(checkGovernor(readFileOrEmpty(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")));
    report.findings.push_back(
        checkLoadAverage(readFileOrEmpty("/proc/loadavg"), cpus));
    report.findings.push_back(checkAslr(
        readFileOrEmpty("/proc/sys/kernel/randomize_va_space")));
    report.findings.push_back(checkSmt(
        readFileOrEmpty("/sys/devices/system/cpu/smt/control")));
    report.findings.push_back(checkTurbo(readFileOrEmpty(
        "/sys/devices/system/cpu/intel_pstate/no_turbo")));
    return report;
}

} // namespace harness
} // namespace rigor
