/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket
 * histograms with near-zero-cost updates and JSON snapshot export.
 *
 * Instrumented code looks its metric up once (a map lookup) and holds
 * a reference; the hot-path update is then a single add on an atomic
 * integer. The registry owns every metric, keeps registration order
 * deterministic (std::map), and serializes to a stable JSON schema so
 * two identical runs produce byte-identical snapshots
 * (see docs/OBSERVABILITY.md for the schema).
 *
 * Thread safety: metric updates are atomic (counters, gauges) or
 * mutex-guarded (histograms), and registry lookups are guarded, so
 * concurrent workers may share one registry. Counter and histogram
 * updates commute, which means a shared snapshot is deterministic
 * regardless of interleaving; for full byte-identity including gauges
 * the parallel harness instead gives each worker a private registry
 * and merge()s them in canonical order.
 */

#ifndef RIGOR_SUPPORT_METRICS_HH
#define RIGOR_SUPPORT_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hh"

namespace rigor {

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add `n` to the counter. */
    void inc(uint64_t n = 1)
    {
        val.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return val.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> val{0};
};

/** Last-write-wins scalar (e.g. a high-water mark or a config knob). */
class Gauge
{
  public:
    void set(double v) { val.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return val.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> val{0.0};
};

/**
 * Fixed-bucket histogram. Buckets are defined by their inclusive
 * upper bounds; one implicit overflow bucket (+inf) catches the rest.
 */
class Histogram
{
  public:
    /**
     * @param upper_bounds strictly increasing bucket upper bounds.
     * @param buffered record every observation so merge() can replay
     * them one by one (used by per-worker registries; see below).
     */
    explicit Histogram(std::vector<double> upper_bounds,
                       bool buffered = false);

    /** Record one observation. */
    void observe(double v);

    uint64_t count() const;
    double sum() const;
    /** Bucket bounds (immutable after construction; lock-free). */
    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts; back() is the +inf overflow bucket. */
    std::vector<uint64_t> bucketCounts() const;

    /**
     * Overwrite this (empty, unbuffered) histogram's state with
     * checkpointed data: per-bucket counts, total count and the exact
     * partial sum. Later observe() calls continue the very same
     * floating-point accumulation a never-checkpointed histogram
     * would have performed, which is what keeps a resumed run's
     * metrics snapshot byte-identical to an uninterrupted one.
     */
    void restore(const std::vector<uint64_t> &bucket_counts,
                 uint64_t count, double sum);

    /**
     * Fold another histogram's observations into this one. The bucket
     * bounds must match exactly (it is a bug if they do not). When
     * `other` is buffered its observations are replayed one by one,
     * so `sum` accumulates in the same floating-point order a direct
     * sequence of observe() calls would have used — this is what
     * keeps merged snapshots bit-identical to serial ones. A
     * non-buffered source merges additively instead (counts exact,
     * sum correct up to FP reassociation).
     */
    void merge(const Histogram &other);

  private:
    std::vector<double> bounds_;
    const bool buffered_;
    mutable std::mutex mu;
    std::vector<uint64_t> counts;  ///< bounds_.size() + 1 entries
    std::vector<double> log_;      ///< observations (buffered only)
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Owner and namespace of all metrics for one process/run. Lookups
 * create the metric on first use; returned references stay valid for
 * the registry's lifetime. Registering the same name as two different
 * metric kinds panics (it is a bug, not an input error).
 */
class MetricsRegistry
{
  public:
    /**
     * @param buffered create buffered histograms (see Histogram) so
     * merge()ing this registry into another replays observations in
     * their original order. The parallel harness gives each worker a
     * buffered registry.
     */
    explicit MetricsRegistry(bool buffered = false)
        : buffered_(buffered)
    {}

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * Find-or-create a histogram. `upper_bounds` is used only on
     * first registration; later lookups ignore it.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    /** Counter value, or 0 if never registered (for tests/reports). */
    uint64_t counterValue(const std::string &name) const;

    /**
     * Fold another registry into this one: counter values and
     * histogram observations add; gauges are last-write-wins (the
     * merged-in value overwrites). Because std::map keeps name order
     * canonical, merging per-worker registries in a fixed order
     * reproduces a serial run's snapshot byte for byte.
     */
    void merge(const MetricsRegistry &other);

    /**
     * Snapshot every metric:
     *   {"counters": {name: value, ...},
     *    "gauges": {name: value, ...},
     *    "histograms": {name: {"count": n, "sum": s,
     *                          "buckets": [{"le": bound|"+inf",
     *                                       "count": n}, ...]}}}
     */
    Json toJson() const;

    /**
     * Rebuild a registry from a toJson() snapshot (resume after a
     * checkpoint). Must be called on a freshly-constructed, unbuffered
     * registry (panics otherwise): counters, gauges and histograms —
     * bucket bounds included — are recreated exactly as dumped, so
     * toJson() of the restored registry reproduces the snapshot byte
     * for byte and further updates continue the original accumulation.
     */
    void restoreFromJson(const Json &doc);

    /**
     * `count` upper bounds starting at `start`, each `factor` times
     * the previous (the standard decades-spanning time buckets).
     */
    static std::vector<double> exponentialBuckets(double start,
                                                  double factor,
                                                  int count);

  private:
    const bool buffered_ = false;
    mutable std::mutex mu;  ///< guards the three maps
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_METRICS_HH
