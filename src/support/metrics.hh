/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket
 * histograms with near-zero-cost updates and JSON snapshot export.
 *
 * Instrumented code looks its metric up once (a map lookup) and holds
 * a reference; the hot-path update is then a single add on a plain
 * integer. The registry owns every metric, keeps registration order
 * deterministic (std::map), and serializes to a stable JSON schema so
 * two identical runs produce byte-identical snapshots
 * (see docs/OBSERVABILITY.md for the schema).
 */

#ifndef RIGOR_SUPPORT_METRICS_HH
#define RIGOR_SUPPORT_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/json.hh"

namespace rigor {

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add `n` to the counter. */
    void inc(uint64_t n = 1) { val += n; }

    uint64_t value() const { return val; }

  private:
    uint64_t val = 0;
};

/** Last-write-wins scalar (e.g. a high-water mark or a config knob). */
class Gauge
{
  public:
    void set(double v) { val = v; }

    double value() const { return val; }

  private:
    double val = 0.0;
};

/**
 * Fixed-bucket histogram. Buckets are defined by their inclusive
 * upper bounds; one implicit overflow bucket (+inf) catches the rest.
 */
class Histogram
{
  public:
    /** @param upper_bounds strictly increasing bucket upper bounds. */
    explicit Histogram(std::vector<double> upper_bounds);

    /** Record one observation. */
    void observe(double v);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts; back() is the +inf overflow bucket. */
    const std::vector<uint64_t> &bucketCounts() const { return counts; }

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts;  ///< bounds_.size() + 1 entries
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Owner and namespace of all metrics for one process/run. Lookups
 * create the metric on first use; returned references stay valid for
 * the registry's lifetime. Registering the same name as two different
 * metric kinds panics (it is a bug, not an input error).
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * Find-or-create a histogram. `upper_bounds` is used only on
     * first registration; later lookups ignore it.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    /** Counter value, or 0 if never registered (for tests/reports). */
    uint64_t counterValue(const std::string &name) const;

    /**
     * Snapshot every metric:
     *   {"counters": {name: value, ...},
     *    "gauges": {name: value, ...},
     *    "histograms": {name: {"count": n, "sum": s,
     *                          "buckets": [{"le": bound|"+inf",
     *                                       "count": n}, ...]}}}
     */
    Json toJson() const;

    /**
     * `count` upper bounds starting at `start`, each `factor` times
     * the previous (the standard decades-spanning time buckets).
     */
    static std::vector<double> exponentialBuckets(double start,
                                                  double factor,
                                                  int count);

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_METRICS_HH
