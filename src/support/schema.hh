/**
 * @file
 * Artifact schema identifiers and versions.
 *
 * Every machine-readable artifact the framework emits (run JSON, CSV
 * series, archive entries, compare reports) carries a `schema` name
 * and a `version` so a reader can tell what it is holding *before*
 * interpreting a single number. Consumers reject mismatches loudly
 * instead of silently mis-parsing measurements from a different
 * layout — the compare engine in particular refuses to put a number
 * on two artifacts it cannot prove comparable.
 *
 * Versions bump when a field changes meaning or layout, not when an
 * optional field is added (readers use Json::get for those).
 */

#ifndef RIGOR_SUPPORT_SCHEMA_HH
#define RIGOR_SUPPORT_SCHEMA_HH

namespace rigor {

/**
 * The binary's own version, printed by `rigorbench version` next to
 * every schema version below so clients (and the serve protocol
 * handshake) can negotiate compatibility.
 */
inline constexpr const char *kRigorbenchVersion = "0.10.0";

/** One experiment run as dumped by harness::runToJson / --json. */
inline constexpr const char *kRunSchema = "rigorbench-run";
inline constexpr int kRunSchemaVersion = 1;

/** Per-iteration sample series as written by --csv. */
inline constexpr const char *kSeriesCsvSchema = "rigorbench-series";
inline constexpr int kSeriesCsvVersion = 1;

/**
 * One archived suite/run entry (archive::RunArchive).
 *
 * v1: fingerprint + config + runs.
 * v2: adds an optional "profiles" array (behavior profiles aligned
 *     with "runs"). Readers accept 1..kArchiveEntryVersion; v1
 *     entries load with no profiles and `explain` degrades loudly.
 */
inline constexpr const char *kArchiveEntrySchema =
    "rigorbench-archive-entry";
inline constexpr int kArchiveEntryVersion = 2;
inline constexpr int kArchiveEntryMinVersion = 1;

/** A compare/gate report (compare::reportToJson). */
inline constexpr const char *kCompareReportSchema =
    "rigorbench-compare";
inline constexpr int kCompareReportVersion = 1;

/** A per-(workload, tier) behavior profile (explain::profileToJson). */
inline constexpr const char *kBehaviorProfileSchema =
    "rigorbench-behavior-profile";
inline constexpr int kBehaviorProfileVersion = 1;

/** A differential explain report (explain::reportToJson). */
inline constexpr const char *kExplainReportSchema =
    "rigorbench-explain";
inline constexpr int kExplainReportVersion = 1;

/** An archive fsck report (archive::fsckToJson). */
inline constexpr const char *kFsckReportSchema = "rigorbench-fsck";
inline constexpr int kFsckReportVersion = 1;

/** A machine-readable archive listing (`archive list --json`). */
inline constexpr const char *kArchiveListSchema =
    "rigorbench-archive-list";
inline constexpr int kArchiveListVersion = 1;

/** A serialized run/suite job specification (serve::JobSpec). */
inline constexpr const char *kJobSpecSchema = "rigorbench-job";
inline constexpr int kJobSpecVersion = 1;

/** The `rigorbench serve` NDJSON request/response protocol. */
inline constexpr const char *kServeProtocolSchema =
    "rigorbench-serve";
inline constexpr int kServeProtocolVersion = 1;

/** The daemon's durable queue state (drain / `serve --resume`). */
inline constexpr const char *kServeQueueSchema =
    "rigorbench-serve-queue";
inline constexpr int kServeQueueVersion = 1;

} // namespace rigor

#endif // RIGOR_SUPPORT_SCHEMA_HH
