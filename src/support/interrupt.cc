#include "support/interrupt.hh"

#include <atomic>
#include <csignal>
#include <cstring>

#include <unistd.h>

namespace rigor {

namespace {

/** Signals received so far; lock-free atomics are signal-safe. */
std::atomic<int> g_interrupts{0};

void
onSignal(int)
{
    int n = g_interrupts.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= 2) {
        static const char kHard[] =
            "\nrigorbench: second signal, exiting immediately\n";
        ssize_t ignored = ::write(2, kHard, sizeof(kHard) - 1);
        (void)ignored;
        ::_exit(kExitInterrupted);
    }
    static const char kSoft[] =
        "\nrigorbench: interrupt requested; stopping at the next "
        "commit boundary (signal again to exit immediately)\n";
    ssize_t ignored = ::write(2, kSoft, sizeof(kSoft) - 1);
    (void)ignored;
}

} // namespace

void
installInterruptHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    // SA_RESTART: a mid-write artifact flush must not see EINTR; the
    // runner notices the flag at its next commit boundary anyway.
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
interruptRequested()
{
    return g_interrupts.load(std::memory_order_relaxed) > 0;
}

void
requestInterrupt()
{
    g_interrupts.fetch_add(1, std::memory_order_relaxed);
}

void
clearInterruptRequest()
{
    g_interrupts.store(0, std::memory_order_relaxed);
}

} // namespace rigor
