/**
 * @file
 * Minimal Unix-domain stream sockets for the serve daemon and its
 * clients: bind/listen with stale-socket recovery, connect, and a
 * buffered newline-delimited channel (the NDJSON protocol's framing).
 *
 * Deliberately tiny: no readiness abstraction, no timeouts beyond
 * what callers poll() themselves — the daemon owns its event loop and
 * clients are strictly request/response.
 */

#ifndef RIGOR_SUPPORT_UNIX_SOCKET_HH
#define RIGOR_SUPPORT_UNIX_SOCKET_HH

#include <string>

namespace rigor {

/**
 * Bind and listen on a Unix-domain stream socket at `path`. A stale
 * socket file (left by a crashed daemon — nothing accepts on it) is
 * detected by a probe connect and replaced; a *live* one is a loud
 * error, not a takeover.
 * @return the listening fd.
 * @throws FatalError naming the path and failing step.
 */
int listenUnixSocket(const std::string &path);

/**
 * Connect to the daemon at `path`.
 * @return the connected fd, or -1 with errno set (callers map this
 * to the "daemon unavailable" exit code instead of aborting).
 */
int connectUnixSocket(const std::string &path);

/**
 * A buffered line channel over a connected socket. Owns the fd.
 * Writes never raise SIGPIPE (a vanished peer is a false return, not
 * a dead process).
 */
class LineChannel
{
  public:
    explicit LineChannel(int fd) : fd_(fd) {}
    ~LineChannel();

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /**
     * Read the next newline-terminated line (newline stripped).
     * @return false on EOF or error (the connection is done).
     */
    bool readLine(std::string &line);

    /** Write `line` plus a newline. @return false when the peer is gone. */
    bool writeLine(const std::string &line);

    int fd() const { return fd_; }

    /** Close early (idempotent; the destructor also closes). */
    void close();

  private:
    int fd_;
    std::string buf_;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_UNIX_SOCKET_HH
