#include "support/rng.hh"

#include <cmath>

#include "support/logging.hh"

namespace rigor {

Rng::Rng(uint64_t seed)
    : gaussCache(0.0), gaussHave(false)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

uint64_t
Rng::nextU64()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded: bound must be positive");
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
        uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 random bits scaled into [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::nextUniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (gaussHave) {
        gaussHave = false;
        return gaussCache;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    gaussCache = r * std::sin(theta);
    gaussHave = true;
    return r * std::cos(theta);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

double
Rng::nextExponential(double lambda)
{
    if (lambda <= 0.0)
        panic("Rng::nextExponential: lambda must be positive");
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(nextGaussian(mu, sigma));
}

bool
Rng::nextBernoulli(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(nextU64() ^ 0xa02bdbf7bb3c0a7ULL);
}

} // namespace rigor
