/**
 * @file
 * Durable file I/O: atomic whole-file replacement (write to a
 * temporary, flush, fsync, rename) with explicit error propagation,
 * and a checksummed, versioned envelope for resume/checkpoint state.
 *
 * The harness' artifacts used to be written with an unchecked
 * std::ofstream at the end of a run: a full disk silently produced
 * truncated or empty files, and a crash mid-write destroyed the
 * previous good state. Every artifact and checkpoint now goes through
 * this layer, so on-disk state is always either the old complete file
 * or the new complete file, never a torn mixture, and every write
 * failure surfaces as a FatalError naming the path and the failing
 * operation.
 */

#ifndef RIGOR_SUPPORT_DURABLE_IO_HH
#define RIGOR_SUPPORT_DURABLE_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include <sys/types.h>

#include "support/json.hh"

namespace rigor {

/** CRC-32 (IEEE 802.3 polynomial, as used by zip/png) of a buffer. */
uint32_t crc32(const void *data, size_t len);

/** CRC-32 of a string's bytes. */
uint32_t crc32(const std::string &s);

// --- filesystem-operation seam --------------------------------------

/**
 * The mutating filesystem operations every durable write goes
 * through. The default implementation forwards to the real syscalls;
 * tests and the `--inject io:*` fault framework install a wrapper
 * that makes writes fail short, report ENOSPC, tear renames, or kill
 * the process at an exact call index — so every crash-consistency
 * guarantee this layer makes can be checked at every call site
 * instead of trusted.
 *
 * Reads are deliberately outside the seam: all fault kinds model
 * write-side failures, and keeping loads direct means a recovery path
 * can never be starved by the very injector that created the damage.
 */
class FsOps
{
  public:
    virtual ~FsOps() = default;

    virtual int open(const char *path, int flags, mode_t mode);
    virtual ssize_t write(int fd, const void *buf, size_t n);
    virtual int fsync(int fd);
    virtual int close(int fd);
    virtual int rename(const char *from, const char *to);
    virtual int unlink(const char *path);
};

/** The active seam (the process-wide default unless replaced). */
FsOps &fsOps();

/**
 * Replace the process-wide FsOps (nullptr restores the default).
 * @return the previously installed override (nullptr if default).
 * Not thread-safe against concurrent durable writes; install before
 * work starts, as the CLI does.
 */
FsOps *setFsOps(FsOps *ops);

/**
 * Atomically replace `path` with `content`: the bytes are written to
 * `path.tmp`, flushed and fsync'd, then renamed over `path`. A reader
 * (or a crash) can never observe a partially-written file. The
 * containing directory is fsync'd best-effort after the rename so the
 * replacement itself survives power loss on POSIX filesystems.
 * @throws FatalError naming the path and failing step (open, write,
 * fsync, close or rename) — a full disk is a loud error, not an empty
 * file.
 */
void atomicWriteFile(const std::string &path,
                     const std::string &content);

/**
 * Read a whole file into `out`.
 * @return false if the file cannot be opened or read (out is then
 * unspecified); never throws.
 */
bool readFile(const std::string &path, std::string &out);

// --- checksummed state envelope -------------------------------------

/** Envelope format tag; rejects files that are not rigorbench state. */
inline constexpr const char *kStateFormat = "rigorbench-state";

/** Current envelope schema version. */
inline constexpr int kStateVersion = 1;

/** The backup a checkpoint write rotates the previous file to. */
std::string stateBackupPath(const std::string &path);

/**
 * Wrap `payload` in a `{format, version, crc32, payload}` envelope and
 * atomically write it to `path`. If `path` already holds a *valid*
 * envelope it is first rotated to `path.bak`, so the last good
 * checkpoint survives even a crash between the rotation and the
 * rename (the loader falls back to the backup). An invalid existing
 * file is never rotated — corruption must not clobber a good backup.
 * The CRC covers the compact dump of the payload, which is canonical
 * (object keys are sorted, doubles print round-trip exact).
 * @throws FatalError on any I/O failure.
 */
void writeStateFile(const std::string &path, const Json &payload);

/** Result of loading a checksummed state file. */
struct StateLoad
{
    /** The verified payload. */
    Json payload;
    /** True when `path` was unusable and `path.bak` was used. */
    bool usedBackup = false;
    /** Human-readable recovery note (non-empty iff usedBackup). */
    std::string warning;
};

/**
 * Load and verify a state envelope. A main file that is missing,
 * unparseable, truncated, checksum-mismatched or version-mismatched
 * triggers a fallback to `path.bak` (verified the same way).
 * @throws FatalError describing both failures when neither file is
 * usable.
 */
StateLoad loadStateFile(const std::string &path);

/**
 * Non-throwing verification of one envelope's raw text, for callers
 * (fsck, tests) that need to classify damage instead of recovering
 * from it. On success fills `payload` (when non-null) and returns
 * true; on any defect returns false with a one-line diagnosis in
 * `why`.
 */
bool verifyStateText(const std::string &text, Json *payload,
                     std::string *why);

/** True when `path` or its `.bak` exists (resume should be tried). */
bool stateFileExists(const std::string &path);

} // namespace rigor

#endif // RIGOR_SUPPORT_DURABLE_IO_HH
