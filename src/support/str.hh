/**
 * @file
 * Small string utilities shared across the framework.
 */

#ifndef RIGOR_SUPPORT_STR_HH
#define RIGOR_SUPPORT_STR_HH

#include <string>
#include <string_view>
#include <vector>

namespace rigor {

/** Split a string on a single-character delimiter. */
std::vector<std::string> split(std::string_view s, char delim);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** True if s starts with prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if s ends with suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Left-pad with spaces to the given width. */
std::string padLeft(std::string_view s, size_t width);

/** Right-pad with spaces to the given width. */
std::string padRight(std::string_view s, size_t width);

/** Format a double with the given number of decimal places. */
std::string fmtDouble(double v, int places);

/** Format a count with thousands separators (e.g. 1,234,567). */
std::string fmtCount(uint64_t v);

/** Repeat a character n times. */
std::string repeat(char c, size_t n);

} // namespace rigor

#endif // RIGOR_SUPPORT_STR_HH
