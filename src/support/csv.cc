#include "support/csv.hh"

#include <cstdio>

namespace rigor {

std::string
CsvWriter::quote(const std::string &v)
{
    bool needs = false;
    for (char c : v) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs = true;
            break;
        }
    }
    if (!needs)
        return v;
    std::string out = "\"";
    for (char c : v) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (const auto &f : fields)
        field(f);
    endRow();
}

CsvWriter &
CsvWriter::field(const std::string &v)
{
    if (rowStarted)
        out << ',';
    out << quote(v);
    rowStarted = true;
    return *this;
}

CsvWriter &
CsvWriter::field(int64_t v)
{
    return field(std::to_string(v));
}

CsvWriter &
CsvWriter::field(uint64_t v)
{
    return field(std::to_string(v));
}

CsvWriter &
CsvWriter::field(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return field(std::string(buf));
}

void
CsvWriter::endRow()
{
    out << '\n';
    rowStarted = false;
}

} // namespace rigor
