/**
 * @file
 * Advisory file locking with bounded retry and capped exponential
 * backoff.
 *
 * The archive must stay safe when two processes append at once: both
 * compute the next entry id from a directory scan, so an unlocked
 * race would assign the same id twice and one entry would clobber the
 * other. A BSD flock(2) on a `.lock` file inside the directory makes
 * the scan-then-write sequence atomic between cooperating writers,
 * and — unlike pid files — releases itself when the holder exits or
 * crashes, so a killed writer can never wedge the archive.
 *
 * Acquisition retries with the same capped-doubling backoff policy
 * the harness uses for invocation retries (base doubling up to a
 * cap), but in real time: lock contention is a property of the host,
 * not of the modelled experiment.
 */

#ifndef RIGOR_SUPPORT_FILELOCK_HH
#define RIGOR_SUPPORT_FILELOCK_HH

#include <string>

namespace rigor {

/** RAII holder of one advisory flock; released on destruction. */
class FileLock
{
  public:
    FileLock() = default;
    ~FileLock() { release(); }

    FileLock(FileLock &&other) noexcept;
    FileLock &operator=(FileLock &&other) noexcept;
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** True when this object holds the lock. */
    bool held() const { return fd_ >= 0; }

    /** Path of the lock file ("" when not held). */
    const std::string &path() const { return path_; }

    /** Drop the lock (no-op when not held). */
    void release();

    /**
     * One non-blocking acquisition attempt. Returns an unheld lock
     * when another process (or another fd in this one) holds it.
     * The lock file is created if missing; its content is irrelevant
     * — only the flock matters, so a crashed holder leaves nothing
     * stale behind.
     * @throws FatalError when the lock file cannot be created.
     */
    static FileLock tryAcquire(const std::string &path);

    /**
     * Acquire with bounded retry: up to `maxRetries` further attempts
     * after the first, sleeping a capped exponential backoff
     * (baseMs, 2*baseMs, ... capped at capMs) between attempts.
     * Returns an unheld lock when the budget is exhausted — the
     * caller decides whether that is fatal.
     */
    static FileLock acquire(const std::string &path,
                            int maxRetries = 100,
                            double baseMs = 1.0,
                            double capMs = 100.0);

  private:
    FileLock(int fd, std::string path)
        : fd_(fd), path_(std::move(path))
    {}

    int fd_ = -1;
    std::string path_;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_FILELOCK_HH
