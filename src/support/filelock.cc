#include "support/filelock.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "support/durable_io.hh"
#include "support/logging.hh"

namespace rigor {

FileLock::FileLock(FileLock &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_))
{
    other.path_.clear();
}

FileLock &
FileLock::operator=(FileLock &&other) noexcept
{
    if (this != &other) {
        release();
        fd_ = std::exchange(other.fd_, -1);
        path_ = std::move(other.path_);
        other.path_.clear();
    }
    return *this;
}

void
FileLock::release()
{
    if (fd_ < 0)
        return;
    // closing the fd drops the flock; the lock file itself stays (a
    // concurrent acquirer may already have it open, so unlinking
    // would hand out two "exclusive" locks on different inodes).
    (void)::close(fd_);
    fd_ = -1;
    path_.clear();
}

FileLock
FileLock::tryAcquire(const std::string &path)
{
    // The open goes through the FsOps seam so crash-point enumeration
    // covers "died while taking the lock" (the flock vanishes with
    // the fd, so that crash point needs no recovery at all).
    int fd = fsOps().open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                          0644);
    if (fd < 0)
        fatal("cannot create lock file %s: %s", path.c_str(),
              std::strerror(errno));
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        int err = errno;
        (void)::close(fd);
        if (err == EWOULDBLOCK || err == EINTR)
            return FileLock();
        fatal("cannot lock %s: %s", path.c_str(),
              std::strerror(err));
    }
    return FileLock(fd, path);
}

FileLock
FileLock::acquire(const std::string &path, int maxRetries,
                  double baseMs, double capMs)
{
    double delay = baseMs;
    for (int attempt = 0;; ++attempt) {
        FileLock lock = tryAcquire(path);
        if (lock.held() || attempt >= maxRetries)
            return lock;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay));
        delay = std::min(delay * 2.0, capMs);
    }
}

} // namespace rigor
