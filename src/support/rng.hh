/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * The whole framework must be reproducible from a single seed, so we avoid
 * std::mt19937 (whose distributions are not portable across standard
 * libraries) and implement xoshiro256** with explicitly specified
 * distribution transforms.
 */

#ifndef RIGOR_SUPPORT_RNG_HH
#define RIGOR_SUPPORT_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rigor {

/**
 * SplitMix64 generator, used to seed xoshiro and for cheap stateless
 * hashing of seed material.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state(seed) {}

    /** Next 64 random bits. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state;
};

/**
 * xoshiro256** PRNG with explicit distribution helpers.
 *
 * All distribution transforms are implemented in this class so that a
 * given seed produces bit-identical streams on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64 random bits. */
    uint64_t nextU64();

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextUniform(double lo, double hi);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double nextGaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Exponential deviate with the given rate lambda. */
    double nextExponential(double lambda);

    /** Log-normal deviate: exp(N(mu, sigma)). */
    double nextLogNormal(double mu, double sigma);

    /** Bernoulli trial with success probability p. */
    bool nextBernoulli(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBounded(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Split off an independent child generator. The child stream is a
     * deterministic function of the parent state, and advancing the child
     * never perturbs the parent.
     */
    Rng split();

  private:
    uint64_t s[4];
    double gaussCache;
    bool gaussHave;

    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }
};

} // namespace rigor

#endif // RIGOR_SUPPORT_RNG_HH
