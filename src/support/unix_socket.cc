#include "support/unix_socket.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/logging.hh"

namespace rigor {

namespace {

/** Fill a sockaddr_un, rejecting paths that do not fit. */
sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty())
        fatal("socket path must not be empty");
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path too long (%zu bytes; the OS limit is "
              "%zu): %s",
              path.size(), sizeof(addr.sun_path) - 1, path.c_str());
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

int
newSocket()
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket(AF_UNIX): %s", std::strerror(errno));
    return fd;
}

} // namespace

int
listenUnixSocket(const std::string &path)
{
    sockaddr_un addr = unixAddr(path);
    int fd = newSocket();
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int bindErrno = errno;
        ::close(fd);
        if (bindErrno != EADDRINUSE)
            fatal("bind(%s): %s", path.c_str(),
                  std::strerror(bindErrno));
        // The file exists. A live daemon accepts the probe connect;
        // a stale socket (crashed daemon) refuses it and is safe to
        // replace.
        int probe = connectUnixSocket(path);
        if (probe >= 0) {
            ::close(probe);
            fatal("another daemon is already serving on %s",
                  path.c_str());
        }
        if (::unlink(path.c_str()) != 0)
            fatal("cannot remove stale socket %s: %s", path.c_str(),
                  std::strerror(errno));
        fd = newSocket();
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            int e = errno;
            ::close(fd);
            fatal("bind(%s): %s", path.c_str(), std::strerror(e));
        }
    }
    if (::listen(fd, 64) != 0) {
        int e = errno;
        ::close(fd);
        ::unlink(path.c_str());
        fatal("listen(%s): %s", path.c_str(), std::strerror(e));
    }
    return fd;
}

int
connectUnixSocket(const std::string &path)
{
    sockaddr_un addr = unixAddr(path);
    int fd = newSocket();
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        return -1;
    }
    return fd;
}

LineChannel::~LineChannel() { close(); }

void
LineChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
LineChannel::readLine(std::string &line)
{
    for (;;) {
        size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (fd_ < 0)
            return false;
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;  // EOF; a partial trailing line is dropped
        buf_.append(chunk, static_cast<size_t>(n));
    }
}

bool
LineChannel::writeLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string out = line;
    out.push_back('\n');
    size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd_, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace rigor
