/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (aborts), fatal() for user errors (clean exit), warn()/inform() for
 * status messages that never stop execution.
 */

#ifndef RIGOR_SUPPORT_LOGGING_HH
#define RIGOR_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <stdexcept>
#include <string>

namespace rigor {

/** Exception thrown by fatal() so user errors are testable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic() so invariant violations are testable. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * printf-style formatting into a std::string.
 *
 * @param fmt printf format string.
 * @return the formatted string.
 */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style counterpart of strprintf(). */
std::string vstrprintf(const char *fmt, va_list ap);

/**
 * Report an unrecoverable internal error (a bug in this library).
 * Throws PanicError; never returns normally.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad input, bad configuration).
 * Throws FatalError; never returns normally.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/**
 * Thread-local quiet override: silences this thread's warn()/inform()
 * (and everything that checks quietEnabled()) without touching other
 * threads. The serve daemon uses it to honor one job's --quiet while
 * other jobs stream normally; the parallel runner propagates it to
 * its workers so a quiet job stays quiet at any --jobs value.
 * @return the previous thread-local value, for RAII restoration.
 */
bool setThreadQuiet(bool quiet);

/** Whether setQuiet(true) or this thread's override is in effect. */
bool quietEnabled();

/** Severity of a status message routed through the log sink. */
enum class LogLevel
{
    Warn,
    Info,
};

/** Short name of a level ("warn" / "info"). */
const char *logLevelName(LogLevel level);

/**
 * Destination of warn()/inform() messages. `msg` is the formatted
 * message without the level prefix or trailing newline.
 */
using LogSink = std::function<void(LogLevel level,
                                   const std::string &msg)>;

/**
 * Replace the log sink (default: "level: msg" lines on stderr).
 * Passing an empty function restores the default. Tests use this to
 * capture log output; the CLI uses it to mirror warnings into the
 * trace as instant events. setQuiet() is applied *before* the sink,
 * so a quiet process stays quiet whatever sink is installed.
 * @return the previously installed sink (empty if it was the
 *         default), so callers can chain or restore it.
 */
LogSink setLogSink(LogSink sink);

/**
 * Install a *thread-local* sink that takes precedence over the
 * process-global one on this thread. The parallel harness gives each
 * worker a capture sink so messages from concurrent invocations can
 * be buffered and replayed in deterministic order instead of
 * interleaving racily. Passing an empty function removes the
 * override. setQuiet() still applies first.
 * @return the previously installed thread-local sink.
 */
LogSink setThreadLogSink(LogSink sink);

/**
 * Deliver an already-formatted message through the normal sink chain
 * (thread-local sink, then global sink, then stderr), respecting
 * setQuiet(). Used to replay buffered worker messages at commit time.
 */
void emitLogMessage(LogLevel level, const std::string &msg);

} // namespace rigor

#endif // RIGOR_SUPPORT_LOGGING_HH
