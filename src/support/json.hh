/**
 * @file
 * Minimal JSON value model, serializer and parser.
 *
 * Used to dump experiment results in a machine-readable form and to read
 * experiment configurations. Only the JSON subset needed by the framework
 * is supported (no \\u escapes beyond ASCII, numbers as double/int64).
 */

#ifndef RIGOR_SUPPORT_JSON_HH
#define RIGOR_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rigor {

/** A JSON value: null, bool, int, double, string, array or object. */
class Json
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    /** Construct null. */
    Json() : type_(Type::Null) {}
    /** Construct a boolean. */
    Json(bool b) : type_(Type::Bool), boolVal(b) {}
    /** Construct an integer. */
    Json(int64_t i) : type_(Type::Int), intVal(i) {}
    /** Construct an integer from int. */
    Json(int i) : type_(Type::Int), intVal(i) {}
    /** Construct an integer from uint64 (must fit in int64). */
    Json(uint64_t u);
    /** Construct a double. */
    Json(double d) : type_(Type::Double), dblVal(d) {}
    /** Construct a string. */
    Json(std::string s) : type_(Type::String), strVal(std::move(s)) {}
    /** Construct a string from a literal. */
    Json(const char *s) : type_(Type::String), strVal(s) {}

    /** Make an empty array. */
    static Json array();
    /** Make an empty object. */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    /** Append to an array (panics if not an array). */
    void push(Json v);
    /** Set an object key (panics if not an object). */
    void set(const std::string &key, Json v);
    /** Remove an object key if present (panics if not an object). */
    void erase(const std::string &key);

    /** Array/object size. */
    size_t size() const;
    /** Array element access (panics on type/range errors). */
    const Json &at(size_t idx) const;
    /** Object member access (panics if missing). */
    const Json &at(const std::string &key) const;
    /** True if object has the key. */
    bool has(const std::string &key) const;
    /**
     * Object member lookup for optional fields: nullptr when the key
     * is absent or this value is not an object. Lets readers of
     * evolving documents (run archives, suite resume state) accept
     * older files that predate a field.
     */
    const Json *get(const std::string &key) const;
    /**
     * Object keys in canonical (sorted) order; panics on non-objects.
     * Used by readers of open-ended maps, e.g. restoring a metrics
     * snapshot whose counter names are data, not schema.
     */
    std::vector<std::string> keys() const;

    bool asBool() const;
    int64_t asInt() const;
    /** Numeric access: works for Int and Double. */
    double asDouble() const;
    const std::string &asString() const;

    /** Serialize; indent < 0 means compact single-line output. */
    std::string dump(int indent = -1) const;

    /** Parse a JSON document; throws FatalError on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool boolVal = false;
    int64_t intVal = 0;
    double dblVal = 0.0;
    std::string strVal;
    std::vector<Json> arr;
    // std::map keeps key order deterministic, which keeps dumps diffable.
    std::map<std::string, Json> obj;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_JSON_HH
