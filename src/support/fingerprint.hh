/**
 * @file
 * Stable content fingerprints for configurations and string keys.
 *
 * The run archive keys every entry by a fingerprint of the
 * measurement-determining configuration (workload set, tiers, seeds,
 * jitThreshold, fault plan, schema version). Two entries with equal
 * fingerprints were produced by byte-identical configurations, so
 * comparing them answers "did performance change?" rather than "did
 * the experiment change?". The hash must therefore be a pure function
 * of the bytes — the same on every platform and in every process —
 * which rules out std::hash.
 */

#ifndef RIGOR_SUPPORT_FINGERPRINT_HH
#define RIGOR_SUPPORT_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "support/json.hh"

namespace rigor {

/** FNV-1a 64-bit hash of a byte string (stable across platforms). */
uint64_t fnv1a64(std::string_view bytes);

/**
 * Fingerprint of a JSON document: FNV-1a 64 of its canonical compact
 * dump (object keys sorted, round-trip-exact doubles), rendered as 16
 * lower-case hex digits. Equal documents fingerprint equal on every
 * platform; any semantic difference changes the dump and thus the
 * fingerprint (modulo the 64-bit collision probability).
 */
std::string fingerprintJson(const Json &doc);

} // namespace rigor

#endif // RIGOR_SUPPORT_FINGERPRINT_HH
