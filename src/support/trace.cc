#include "support/trace.hh"

#include "support/logging.hh"

namespace rigor {

void
TraceEmitter::advanceMs(double ms)
{
    clockMs += ms;
    if (buffered_) {
        TraceOp op;
        op.advanceMs = ms;
        ops.push_back(op);
    }
}

void
TraceEmitter::pushEvent(Json e)
{
    if (buffered_) {
        TraceOp op;
        op.eventIndex = static_cast<int>(events.size());
        ops.push_back(op);
    }
    events.push_back(std::move(e));
}

Json
TraceEmitter::makeEvent(const char *phase, const std::string &name,
                        const std::string &cat) const
{
    Json e = Json::object();
    e.set("name", name);
    e.set("cat", cat);
    e.set("ph", phase);
    e.set("ts", nowUs());
    e.set("pid", 1);
    e.set("tid", 1);
    return e;
}

void
TraceEmitter::beginSpan(const std::string &name,
                        const std::string &cat, Json args)
{
    Json e = makeEvent("B", name, cat);
    if (!args.isNull())
        e.set("args", std::move(args));
    pushEvent(std::move(e));
    openNames.push_back(name);
}

void
TraceEmitter::endSpan(Json args)
{
    if (openNames.empty())
        panic("TraceEmitter::endSpan: no open span");
    // The E event inherits name/cat from its B partner; repeating
    // the name keeps the file greppable.
    Json e = makeEvent("E", openNames.back(), "");
    if (!args.isNull())
        e.set("args", std::move(args));
    pushEvent(std::move(e));
    openNames.pop_back();
}

void
TraceEmitter::instant(const std::string &name, const std::string &cat,
                      Json args)
{
    Json e = makeEvent("i", name, cat);
    e.set("s", "t");  // thread-scoped instant
    if (!args.isNull())
        e.set("args", std::move(args));
    pushEvent(std::move(e));
}

void
TraceEmitter::logInstant(const std::string &level,
                         const std::string &msg)
{
    Json args = Json::object();
    args.set("message", msg);
    instant(level, "log", std::move(args));
}

void
TraceEmitter::append(TraceEmitter &&sub)
{
    if (!sub.buffered_)
        panic("TraceEmitter::append: source emitter is not buffered");
    if (!sub.openNames.empty())
        panic("TraceEmitter::append: source has %zu open span(s)",
              sub.openNames.size());
    for (const TraceOp &op : sub.ops) {
        if (op.eventIndex < 0) {
            advanceMs(op.advanceMs);
        } else {
            Json &e = sub.events[static_cast<size_t>(op.eventIndex)];
            e.set("ts", nowUs());
            pushEvent(std::move(e));
        }
    }
    sub.events.clear();
    sub.ops.clear();
    sub.clockMs = 0.0;
}

void
TraceEmitter::endSpansTo(size_t depth)
{
    while (openNames.size() > depth)
        endSpan();
}

Json
TraceEmitter::toJson() const
{
    Json root = Json::object();
    root.set("displayTimeUnit", "ms");
    Json evs = Json::array();
    for (const auto &e : events)
        evs.push(e);
    root.set("traceEvents", std::move(evs));
    return root;
}

Json
TraceEmitter::checkpointJson() const
{
    Json root = Json::object();
    root.set("clock_ms", clockMs);
    Json open = Json::array();
    for (const auto &name : openNames)
        open.push(name);
    root.set("open_spans", std::move(open));
    Json evs = Json::array();
    for (const auto &e : events)
        evs.push(e);
    root.set("events", std::move(evs));
    return root;
}

void
TraceEmitter::restoreCheckpoint(const Json &doc)
{
    if (buffered_)
        panic("TraceEmitter::restoreCheckpoint on a buffered emitter");
    if (!events.empty() || !openNames.empty() || clockMs != 0.0)
        panic("TraceEmitter::restoreCheckpoint: emitter is not "
              "pristine");
    clockMs = doc.at("clock_ms").asDouble();
    const Json &open = doc.at("open_spans");
    for (size_t i = 0; i < open.size(); ++i)
        openNames.push_back(open.at(i).asString());
    const Json &evs = doc.at("events");
    for (size_t i = 0; i < evs.size(); ++i)
        events.push_back(evs.at(i));
}

} // namespace rigor
