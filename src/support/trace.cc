#include "support/trace.hh"

#include "support/logging.hh"

namespace rigor {

void
TraceEmitter::advanceMs(double ms)
{
    clockMs += ms;
}

Json
TraceEmitter::makeEvent(const char *phase, const std::string &name,
                        const std::string &cat) const
{
    Json e = Json::object();
    e.set("name", name);
    e.set("cat", cat);
    e.set("ph", phase);
    e.set("ts", nowUs());
    e.set("pid", 1);
    e.set("tid", 1);
    return e;
}

void
TraceEmitter::beginSpan(const std::string &name,
                        const std::string &cat, Json args)
{
    Json e = makeEvent("B", name, cat);
    if (!args.isNull())
        e.set("args", std::move(args));
    events.push_back(std::move(e));
    openNames.push_back(name);
}

void
TraceEmitter::endSpan(Json args)
{
    if (openNames.empty())
        panic("TraceEmitter::endSpan: no open span");
    // The E event inherits name/cat from its B partner; repeating
    // the name keeps the file greppable.
    Json e = makeEvent("E", openNames.back(), "");
    if (!args.isNull())
        e.set("args", std::move(args));
    events.push_back(std::move(e));
    openNames.pop_back();
}

void
TraceEmitter::instant(const std::string &name, const std::string &cat,
                      Json args)
{
    Json e = makeEvent("i", name, cat);
    e.set("s", "t");  // thread-scoped instant
    if (!args.isNull())
        e.set("args", std::move(args));
    events.push_back(std::move(e));
}

void
TraceEmitter::endSpansTo(size_t depth)
{
    while (openNames.size() > depth)
        endSpan();
}

Json
TraceEmitter::toJson() const
{
    Json root = Json::object();
    root.set("displayTimeUnit", "ms");
    Json evs = Json::array();
    for (const auto &e : events)
        evs.push(e);
    root.set("traceEvents", std::move(evs));
    return root;
}

} // namespace rigor
