/**
 * @file
 * Cooperative interruption: SIGINT/SIGTERM set an atomic flag that
 * long-running code polls at safe points (the runner polls at
 * invocation-commit boundaries). The first signal requests a clean
 * stop — flush a checkpoint, write partial artifacts, exit with the
 * distinct "interrupted, resumable" code; a second signal exits
 * immediately for users who really mean it.
 *
 * The flag is process-global and defaults to clear, so library users
 * and tests that never install the handlers see no behavior change.
 */

#ifndef RIGOR_SUPPORT_INTERRUPT_HH
#define RIGOR_SUPPORT_INTERRUPT_HH

namespace rigor {

/**
 * Process exit code meaning "interrupted; on-disk state is resumable"
 * (see the exit-code table in README.md). Lives here rather than in
 * the CLI because the second-signal immediate _exit() in the handler
 * uses it too.
 */
inline constexpr int kExitInterrupted = 3;

/**
 * Install SIGINT/SIGTERM handlers: the first signal sets the
 * interrupt flag (and prints a short async-signal-safe notice), the
 * second calls _exit(kExitInterrupted) immediately.
 */
void installInterruptHandlers();

/** True once an interrupt has been requested (signal or manual). */
bool interruptRequested();

/** Request an interrupt programmatically (tests, embedders). */
void requestInterrupt();

/** Clear a pending request (tests; a process resumes nothing). */
void clearInterruptRequest();

} // namespace rigor

#endif // RIGOR_SUPPORT_INTERRUPT_HH
