/**
 * @file
 * CSV writing with RFC-4180-style quoting.
 */

#ifndef RIGOR_SUPPORT_CSV_HH
#define RIGOR_SUPPORT_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace rigor {

/**
 * Streams rows of fields to an ostream as CSV. Fields containing commas,
 * quotes or newlines are quoted and embedded quotes are doubled.
 */
class CsvWriter
{
  public:
    /** Write to the given stream; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &os) : out(os) {}

    /** Write a full row of string fields. */
    void writeRow(const std::vector<std::string> &fields);

    /** Append one field to the current row. */
    CsvWriter &field(const std::string &v);
    /** Append an integer field. */
    CsvWriter &field(int64_t v);
    /** Append an unsigned field. */
    CsvWriter &field(uint64_t v);
    /** Append a double field rendered with full precision. */
    CsvWriter &field(double v);

    /** Terminate the current row. */
    void endRow();

    /** Quote a single field per RFC 4180 if needed. */
    static std::string quote(const std::string &v);

  private:
    std::ostream &out;
    bool rowStarted = false;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_CSV_HH
