/**
 * @file
 * ASCII table formatting for bench/example report output.
 */

#ifndef RIGOR_SUPPORT_TABLE_HH
#define RIGOR_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace rigor {

/**
 * Builds fixed-width ASCII tables like the rows a paper's table reports.
 * Column alignment is inferred: numeric-looking cells are right-aligned.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Optional caption printed above the table. */
    void setCaption(std::string caption);

    /** Render the full table to a string. */
    std::string render() const;

    /** Number of data rows. */
    size_t numRows() const { return rows.size(); }

  private:
    static bool looksNumeric(const std::string &cell);

    std::string caption;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_TABLE_HH
