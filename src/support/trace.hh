/**
 * @file
 * Structured trace emission in the Chrome trace-event JSON format
 * (loadable in Perfetto / chrome://tracing).
 *
 * Timestamps come from a *modelled* clock that instrumented code
 * advances explicitly (the harness advances it by each iteration's
 * modelled duration and each retry's modelled backoff), never from
 * the host clock. Traces of two identical runs are therefore
 * byte-identical and diffable, which turns a trace into a regression
 * artifact, not just a debugging aid.
 *
 * Supported event phases: duration spans (B/E pairs, which nest) and
 * thread-scoped instant events (i).
 */

#ifndef RIGOR_SUPPORT_TRACE_HH
#define RIGOR_SUPPORT_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "support/json.hh"

namespace rigor {

/** Builds one Chrome trace-event document for a run. */
class TraceEmitter
{
  public:
    /** Advance the modelled clock by `ms` milliseconds. */
    void advanceMs(double ms);

    /** Current modelled time in trace units (microseconds). */
    double nowUs() const { return clockMs * 1000.0; }

    /**
     * Open a duration span at the current modelled time.
     * @param name event name (e.g. "iteration").
     * @param cat event category (e.g. "harness", "vm").
     * @param args optional JSON object attached to the event.
     */
    void beginSpan(const std::string &name, const std::string &cat,
                   Json args = Json());

    /** Close the innermost open span (panics if none is open). */
    void endSpan(Json args = Json());

    /** Emit an instant event at the current modelled time. */
    void instant(const std::string &name, const std::string &cat,
                 Json args = Json());

    /** Number of currently open spans. */
    size_t openSpans() const { return openNames.size(); }

    /**
     * Close spans until only `depth` remain open. Exception-unwind
     * helper: callers snapshot openSpans() before a fallible region
     * and restore it on failure so the document stays well formed.
     */
    void endSpansTo(size_t depth);

    /** Total events emitted so far. */
    size_t eventCount() const { return events.size(); }

    /**
     * The complete document:
     *   {"displayTimeUnit": "ms", "traceEvents": [...]}
     * Open spans are not closed; call endSpansTo(0) first if the
     * emitter is mid-run.
     */
    Json toJson() const;

  private:
    Json makeEvent(const char *phase, const std::string &name,
                   const std::string &cat) const;

    std::vector<Json> events;
    std::vector<std::string> openNames;  ///< span-nesting stack
    double clockMs = 0.0;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_TRACE_HH
