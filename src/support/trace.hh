/**
 * @file
 * Structured trace emission in the Chrome trace-event JSON format
 * (loadable in Perfetto / chrome://tracing).
 *
 * Timestamps come from a *modelled* clock that instrumented code
 * advances explicitly (the harness advances it by each iteration's
 * modelled duration and each retry's modelled backoff), never from
 * the host clock. Traces of two identical runs are therefore
 * byte-identical and diffable, which turns a trace into a regression
 * artifact, not just a debugging aid.
 *
 * Supported event phases: duration spans (B/E pairs, which nest) and
 * thread-scoped instant events (i).
 */

#ifndef RIGOR_SUPPORT_TRACE_HH
#define RIGOR_SUPPORT_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "support/json.hh"

namespace rigor {

/** Builds one Chrome trace-event document for a run. */
class TraceEmitter
{
  public:
    /**
     * @param buffered a buffered emitter additionally records the
     * sequence of clock advances and emissions so append() can replay
     * it into another emitter later. The parallel harness hands each
     * worker a buffered emitter (clock starting at 0) and appends the
     * buffers to the main emitter in canonical invocation order;
     * because the replay repeats the exact advance-by-advance clock
     * arithmetic of a serial run, the merged document is
     * byte-identical to single-threaded execution.
     */
    explicit TraceEmitter(bool buffered = false)
        : buffered_(buffered)
    {}

    /** Advance the modelled clock by `ms` milliseconds. */
    void advanceMs(double ms);

    /** Current modelled time in trace units (microseconds). */
    double nowUs() const { return clockMs * 1000.0; }

    /**
     * Open a duration span at the current modelled time.
     * @param name event name (e.g. "iteration").
     * @param cat event category (e.g. "harness", "vm").
     * @param args optional JSON object attached to the event.
     */
    void beginSpan(const std::string &name, const std::string &cat,
                   Json args = Json());

    /** Close the innermost open span (panics if none is open). */
    void endSpan(Json args = Json());

    /** Emit an instant event at the current modelled time. */
    void instant(const std::string &name, const std::string &cat,
                 Json args = Json());

    /**
     * Emit the canonical log-mirror instant for a status message:
     * name = the level ("warn"/"info"), category "log", args
     * {"message": msg}. Every place that mirrors a status message
     * into a trace (the runner for its own warnings, the CLI for
     * suite progress) uses this single helper so serial and parallel
     * runs mirror messages in an identical format.
     */
    void logInstant(const std::string &level, const std::string &msg);

    /** Number of currently open spans. */
    size_t openSpans() const { return openNames.size(); }

    /**
     * Close spans until only `depth` remain open. Exception-unwind
     * helper: callers snapshot openSpans() before a fallible region
     * and restore it on failure so the document stays well formed.
     */
    void endSpansTo(size_t depth);

    /** Total events emitted so far. */
    size_t eventCount() const { return events.size(); }

    /** True if this emitter records a replayable op log. */
    bool buffered() const { return buffered_; }

    /**
     * Replay a *buffered* emitter's recorded ops into this emitter:
     * clock advances advance this clock, events are re-stamped with
     * this clock and appended. The replay performs the same sequence
     * of floating-point additions a serial run would, so timestamps
     * come out bit-identical. `sub` must be buffered, must have no
     * open spans, and is drained by the call (left empty, clock 0).
     */
    void append(TraceEmitter &&sub);

    /**
     * The complete document:
     *   {"displayTimeUnit": "ms", "traceEvents": [...]}
     * Open spans are not closed; call endSpansTo(0) first if the
     * emitter is mid-run.
     */
    Json toJson() const;

    /**
     * Mid-run snapshot for a resume checkpoint:
     *   {"clock_ms": c, "open_spans": [names...], "events": [...]}
     * Unlike toJson() this captures the emitter's full state — the
     * modelled clock (serialized directly, because re-deriving it from
     * the last event's microsecond timestamp would not be bit-exact)
     * and the span-nesting stack — so restoreCheckpoint() can continue
     * the very document an interrupted run was building.
     */
    Json checkpointJson() const;

    /**
     * Rebuild emitter state from a checkpointJson() snapshot. Must be
     * called on a pristine, unbuffered emitter (panics otherwise).
     * After the restore, further emissions continue the original
     * clock arithmetic, so a resumed run's final trace is
     * byte-identical to an uninterrupted one.
     */
    void restoreCheckpoint(const Json &doc);

  private:
    /**
     * One replay-log entry of a buffered emitter: either a clock
     * advance (eventIndex < 0) or the emission of events[eventIndex].
     */
    struct TraceOp
    {
        double advanceMs = 0.0;
        int eventIndex = -1;
    };

    Json makeEvent(const char *phase, const std::string &name,
                   const std::string &cat) const;
    /** Append an event, recording it in the op log when buffered. */
    void pushEvent(Json e);

    std::vector<Json> events;
    std::vector<std::string> openNames;  ///< span-nesting stack
    std::vector<TraceOp> ops;            ///< replay log (buffered only)
    double clockMs = 0.0;
    bool buffered_ = false;
};

} // namespace rigor

#endif // RIGOR_SUPPORT_TRACE_HH
