#include "support/table.hh"

#include <algorithm>
#include <cctype>

#include "support/logging.hh"
#include "support/str.hh"

namespace rigor {

Table::Table(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    if (headers.empty())
        panic("Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != headers.size())
        panic("Table::addRow: expected %zu cells, got %zu",
              headers.size(), row.size());
    rows.push_back(std::move(row));
}

void
Table::setCaption(std::string c)
{
    caption = std::move(c);
}

bool
Table::looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    bool digit = false;
    for (char c : cell) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c != '.' && c != '-' && c != '+' && c != '%' &&
                   c != ',' && c != 'e' && c != 'E' && c != 'x') {
            return false;
        }
    }
    return digit;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    // A column is right-aligned if every non-empty cell looks numeric.
    std::vector<bool> rightAlign(headers.size(), true);
    for (size_t c = 0; c < headers.size(); ++c) {
        bool any = false;
        for (const auto &row : rows) {
            if (row[c].empty())
                continue;
            any = true;
            if (!looksNumeric(row[c])) {
                rightAlign[c] = false;
                break;
            }
        }
        if (!any)
            rightAlign[c] = false;
    }

    std::string sep = "+";
    for (size_t w : widths)
        sep += repeat('-', w + 2) + "+";
    sep += '\n';

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (size_t c = 0; c < row.size(); ++c) {
            line += ' ';
            line += rightAlign[c] ? padLeft(row[c], widths[c])
                                  : padRight(row[c], widths[c]);
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string out;
    if (!caption.empty())
        out += caption + '\n';
    out += sep;
    out += renderRow(headers);
    out += sep;
    for (const auto &row : rows)
        out += renderRow(row);
    out += sep;
    return out;
}

} // namespace rigor
