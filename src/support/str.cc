#include "support/str.hh"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace rigor {

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
        s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
        s.substr(s.size() - suffix.size()) == suffix;
}

std::string
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
padLeft(std::string_view s, size_t width)
{
    if (s.size() >= width)
        return std::string(s);
    return std::string(width - s.size(), ' ') + std::string(s);
}

std::string
padRight(std::string_view s, size_t width)
{
    if (s.size() >= width)
        return std::string(s);
    return std::string(s) + std::string(width - s.size(), ' ');
}

std::string
fmtDouble(double v, int places)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", places, v);
    return buf;
}

std::string
fmtCount(uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
repeat(char c, size_t n)
{
    return std::string(n, c);
}

} // namespace rigor
