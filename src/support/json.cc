#include "support/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <system_error>

#include "support/logging.hh"

namespace rigor {

Json::Json(uint64_t u)
    : type_(Type::Int)
{
    if (u > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()))
        panic("Json: uint64 value does not fit in int64");
    intVal = static_cast<int64_t>(u);
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

void
Json::push(Json v)
{
    if (type_ != Type::Array)
        panic("Json::push on non-array");
    arr.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ != Type::Object)
        panic("Json::set on non-object");
    obj[key] = std::move(v);
}

void
Json::erase(const std::string &key)
{
    if (type_ != Type::Object)
        panic("Json::erase on non-object");
    obj.erase(key);
}

size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr.size();
    if (type_ == Type::Object)
        return obj.size();
    panic("Json::size on scalar");
}

const Json &
Json::at(size_t idx) const
{
    if (type_ != Type::Array)
        panic("Json::at(index) on non-array");
    if (idx >= arr.size())
        panic("Json::at: index %zu out of range", idx);
    return arr[idx];
}

const Json &
Json::at(const std::string &key) const
{
    if (type_ != Type::Object)
        panic("Json::at(key) on non-object");
    auto it = obj.find(key);
    if (it == obj.end())
        panic("Json::at: missing key '%s'", key.c_str());
    return it->second;
}

bool
Json::has(const std::string &key) const
{
    return type_ == Type::Object && obj.count(key) > 0;
}

const Json *
Json::get(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

std::vector<std::string>
Json::keys() const
{
    if (type_ != Type::Object)
        panic("Json::keys on non-object");
    std::vector<std::string> out;
    out.reserve(obj.size());
    for (const auto &[k, v] : obj)
        out.push_back(k);
    return out;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        panic("Json::asBool on non-bool");
    return boolVal;
}

int64_t
Json::asInt() const
{
    if (type_ == Type::Int)
        return intVal;
    panic("Json::asInt on non-int");
}

double
Json::asDouble() const
{
    if (type_ == Type::Double)
        return dblVal;
    if (type_ == Type::Int)
        return static_cast<double>(intVal);
    panic("Json::asDouble on non-numeric");
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        panic("Json::asString on non-string");
    return strVal;
}

namespace {

void
escapeInto(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(intVal);
        break;
      case Type::Double: {
        if (std::isnan(dblVal) || std::isinf(dblVal)) {
            out += "null";
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", dblVal);
            out += buf;
        }
        break;
      }
      case Type::String:
        escapeInto(out, strVal);
        break;
      case Type::Array: {
        out += '[';
        bool first = true;
        for (const auto &v : arr) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr.empty())
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj) {
            if (!first)
                out += ',';
            first = false;
            newlineIndent(out, indent, depth + 1);
            escapeInto(out, k);
            out += indent < 0 ? ":" : ": ";
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj.empty())
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a flat buffer. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text), pos(0) {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        fatal("JSON parse error at offset %zu: %s", pos, what);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (s.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (consumeLiteral("true"))
            return Json(true);
        if (consumeLiteral("false"))
            return Json(false);
        if (consumeLiteral("null"))
            return Json();
        return parseNumber();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= s.size())
                    fail("bad escape");
                char e = s[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad hex digit");
                    }
                    if (code > 0x7f)
                        fail("non-ASCII \\u escape unsupported");
                    out += static_cast<char>(code);
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    Json
    parseNumber()
    {
        size_t start = pos;
        if (peek() == '-')
            ++pos;
        bool isDouble = false;
        while (pos < s.size()) {
            char c = s[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isDouble = true;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start)
            fail("expected number");
        // std::from_chars, not std::stod/stoll: from_chars is
        // locale-independent (std::stod honors LC_NUMERIC, so under a
        // comma-decimal locale "1.5" silently truncated to 1) and
        // reports range errors as error codes instead of exceptions
        // (std::stod threw an uncaught std::out_of_range on "1e999").
        const char *first = s.data() + start;
        const char *last = s.data() + pos;
        if (!isDouble) {
            int64_t iv = 0;
            auto [p, ec] = std::from_chars(first, last, iv);
            if (ec == std::errc() && p == last)
                return Json(iv);
            if (ec != std::errc::result_out_of_range && p != last)
                fail("malformed number");
            // Out-of-int64-range integer literal: fall through and
            // keep it as a double, matching the previous behavior.
        }
        double dv = 0.0;
        auto [p, ec] = std::from_chars(first, last, dv);
        if (p != last || ec == std::errc::invalid_argument)
            fail("malformed number");
        if (ec == std::errc::result_out_of_range)
            fail("number out of range");
        return Json(dv);
    }

    Json
    parseArray()
    {
        expect('[');
        Json out = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos;
            return out;
        }
        for (;;) {
            out.push(parseValue());
            skipWs();
            char c = peek();
            ++pos;
            if (c == ']')
                return out;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json out = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos;
            return out;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            out.set(key, parseValue());
            skipWs();
            char c = peek();
            ++pos;
            if (c == '}')
                return out;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    const std::string &s;
    size_t pos;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

} // namespace rigor
