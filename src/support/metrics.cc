#include "support/metrics.hh"

#include <algorithm>

#include "support/logging.hh"

namespace rigor {

Histogram::Histogram(std::vector<double> upper_bounds, bool buffered)
    : bounds_(std::move(upper_bounds)), buffered_(buffered)
{
    if (bounds_.empty())
        panic("Histogram: at least one bucket bound required");
    for (size_t i = 1; i < bounds_.size(); ++i)
        if (bounds_[i] <= bounds_[i - 1])
            panic("Histogram: bucket bounds must be strictly "
                  "increasing (%g after %g)",
                  bounds_[i], bounds_[i - 1]);
    counts.assign(bounds_.size() + 1, 0);
}

void
Histogram::observe(double v)
{
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    std::lock_guard<std::mutex> lock(mu);
    ++counts[static_cast<size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
    if (buffered_)
        log_.push_back(v);
}

uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mu);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mu);
    return sum_;
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counts;
}

void
Histogram::restore(const std::vector<uint64_t> &bucket_counts,
                   uint64_t count, double sum)
{
    std::lock_guard<std::mutex> lock(mu);
    if (buffered_)
        panic("Histogram::restore on a buffered histogram (the "
              "replay log cannot be reconstructed)");
    if (count_ != 0)
        panic("Histogram::restore: histogram already has "
              "observations");
    if (bucket_counts.size() != counts.size())
        panic("Histogram::restore: %zu bucket counts for %zu buckets",
              bucket_counts.size(), counts.size());
    counts = bucket_counts;
    count_ = count;
    sum_ = sum;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.bounds_ != bounds_)
        panic("Histogram::merge: bucket bounds differ");
    if (other.buffered_) {
        // Replay the source's observations one by one: summing in
        // the original observation order reproduces the exact
        // floating-point value a serial sequence of observe() calls
        // produces (addition is not associative, so adding the
        // source's partial sum in one step would not).
        std::vector<double> log;
        {
            std::lock_guard<std::mutex> lock(other.mu);
            log = other.log_;
        }
        for (double v : log)
            observe(v);
        return;
    }
    uint64_t other_count;
    double other_sum;
    std::vector<uint64_t> other_counts;
    {
        std::lock_guard<std::mutex> lock(other.mu);
        other_count = other.count_;
        other_sum = other.sum_;
        other_counts = other.counts;
    }
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other_counts[i];
    count_ += other_count;
    sum_ += other_sum;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = counters.find(name);
    if (it != counters.end())
        return *it->second;
    if (gauges.count(name) || histograms.count(name))
        panic("metric '%s' already registered with another kind",
              name.c_str());
    return *counters.emplace(name, std::make_unique<Counter>())
                .first->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = gauges.find(name);
    if (it != gauges.end())
        return *it->second;
    if (counters.count(name) || histograms.count(name))
        panic("metric '%s' already registered with another kind",
              name.c_str());
    return *gauges.emplace(name, std::make_unique<Gauge>())
                .first->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = histograms.find(name);
    if (it != histograms.end())
        return *it->second;
    if (counters.count(name) || gauges.count(name))
        panic("metric '%s' already registered with another kind",
              name.c_str());
    return *histograms
                .emplace(name,
                         std::make_unique<Histogram>(
                             std::move(upper_bounds), buffered_))
                .first->second;
}

uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second->value();
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    // Lock ordering: `other` belongs to a finished worker with no
    // concurrent writers, but take its lock anyway for safety; the
    // committer is the only caller, so there is no lock-order cycle.
    std::lock_guard<std::mutex> other_lock(other.mu);
    for (const auto &[name, c] : other.counters)
        counter(name).inc(c->value());
    for (const auto &[name, g] : other.gauges)
        gauge(name).set(g->value());
    for (const auto &[name, h] : other.histograms)
        histogram(name, h->bounds()).merge(*h);
}

Json
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    Json root = Json::object();
    Json cs = Json::object();
    for (const auto &[name, c] : counters)
        cs.set(name, c->value());
    root.set("counters", std::move(cs));

    Json gs = Json::object();
    for (const auto &[name, g] : gauges)
        gs.set(name, g->value());
    root.set("gauges", std::move(gs));

    Json hs = Json::object();
    for (const auto &[name, h] : histograms) {
        Json j = Json::object();
        j.set("count", h->count());
        j.set("sum", h->sum());
        Json buckets = Json::array();
        const auto &bounds = h->bounds();
        const auto counts = h->bucketCounts();
        for (size_t i = 0; i < counts.size(); ++i) {
            Json b = Json::object();
            if (i < bounds.size())
                b.set("le", bounds[i]);
            else
                b.set("le", "+inf");
            b.set("count", counts[i]);
            buckets.push(std::move(b));
        }
        j.set("buckets", std::move(buckets));
        hs.set(name, std::move(j));
    }
    root.set("histograms", std::move(hs));
    return root;
}

void
MetricsRegistry::restoreFromJson(const Json &doc)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (buffered_)
            panic("MetricsRegistry::restoreFromJson on a buffered "
                  "registry");
        if (!counters.empty() || !gauges.empty() ||
            !histograms.empty())
            panic("MetricsRegistry::restoreFromJson: registry is "
                  "not empty");
    }
    const Json &cs = doc.at("counters");
    for (const auto &name : cs.keys())
        counter(name).inc(
            static_cast<uint64_t>(cs.at(name).asInt()));
    const Json &gs = doc.at("gauges");
    for (const auto &name : gs.keys())
        gauge(name).set(gs.at(name).asDouble());
    const Json &hs = doc.at("histograms");
    for (const auto &name : hs.keys()) {
        const Json &h = hs.at(name);
        const Json &buckets = h.at("buckets");
        std::vector<double> bounds;
        std::vector<uint64_t> counts;
        for (size_t i = 0; i < buckets.size(); ++i) {
            const Json &b = buckets.at(i);
            const Json &le = b.at("le");
            // The "+inf" overflow bucket has no explicit bound.
            if (le.type() != Json::Type::String)
                bounds.push_back(le.asDouble());
            counts.push_back(
                static_cast<uint64_t>(b.at("count").asInt()));
        }
        histogram(name, std::move(bounds))
            .restore(counts, static_cast<uint64_t>(
                                 h.at("count").asInt()),
                     h.at("sum").asDouble());
    }
}

std::vector<double>
MetricsRegistry::exponentialBuckets(double start, double factor,
                                    int count)
{
    if (start <= 0.0 || factor <= 1.0 || count < 1)
        panic("exponentialBuckets(%g, %g, %d): need start > 0, "
              "factor > 1, count >= 1",
              start, factor, count);
    std::vector<double> bounds;
    bounds.reserve(static_cast<size_t>(count));
    double b = start;
    for (int i = 0; i < count; ++i, b *= factor)
        bounds.push_back(b);
    return bounds;
}

} // namespace rigor
