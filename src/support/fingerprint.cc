#include "support/fingerprint.hh"

#include "support/logging.hh"

namespace rigor {

uint64_t
fnv1a64(std::string_view bytes)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
fingerprintJson(const Json &doc)
{
    return strprintf("%016llx",
                     static_cast<unsigned long long>(
                         fnv1a64(doc.dump())));
}

} // namespace rigor
