#include "support/durable_io.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/str.hh"

namespace rigor {

namespace {

/** Lazily-built CRC-32 lookup table (reflected 0xEDB88320). */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t len)
{
    const auto &table = crcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const std::string &s)
{
    return crc32(s.data(), s.size());
}

int
FsOps::open(const char *path, int flags, mode_t mode)
{
    return ::open(path, flags, mode);
}

ssize_t
FsOps::write(int fd, const void *buf, size_t n)
{
    return ::write(fd, buf, n);
}

int
FsOps::fsync(int fd)
{
    return ::fsync(fd);
}

int
FsOps::close(int fd)
{
    return ::close(fd);
}

int
FsOps::rename(const char *from, const char *to)
{
    return ::rename(from, to);
}

int
FsOps::unlink(const char *path)
{
    return ::unlink(path);
}

namespace {

FsOps &
defaultFsOps()
{
    static FsOps ops;
    return ops;
}

FsOps *activeFsOps = nullptr;

} // namespace

FsOps &
fsOps()
{
    return activeFsOps ? *activeFsOps : defaultFsOps();
}

FsOps *
setFsOps(FsOps *ops)
{
    FsOps *prev = activeFsOps;
    activeFsOps = ops;
    return prev;
}

namespace {

/** fsync the directory containing `path` so a rename is durable.
 *  Best-effort: some filesystems refuse directory fsync; the file
 *  data itself was already fsync'd, so failure here only widens the
 *  power-loss window, it cannot corrupt state. */
void
fsyncParentDir(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    FsOps &fs = fsOps();
    int fd = fs.open(dir.c_str(), O_RDONLY, 0);
    if (fd < 0)
        return;
    (void)fs.fsync(fd);
    (void)fs.close(fd);
}

[[noreturn]] void
writeFailed(const std::string &tmp, const char *step, int err,
            int fd)
{
    // Best-effort cleanup so a failed write does not leave a stale
    // .tmp behind; a *crash* between the write and the rename still
    // can, which is why archive append and fsck sweep for orphans.
    if (fd >= 0)
        (void)fsOps().close(fd);
    (void)fsOps().unlink(tmp.c_str());
    fatal("atomic write failed: path=%s step=%s error=%s",
          tmp.c_str(), step, std::strerror(err));
}

} // namespace

void
atomicWriteFile(const std::string &path, const std::string &content)
{
    FsOps &fs = fsOps();
    // O_TRUNC doubles as the cleanup of a stale .tmp a crashed
    // previous writer may have left at this path.
    std::string tmp = path + ".tmp";
    int fd = fs.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        fatal("atomic write failed: path=%s step=open error=%s",
              tmp.c_str(), std::strerror(errno));
    size_t off = 0;
    while (off < content.size()) {
        ssize_t n =
            fs.write(fd, content.data() + off, content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            writeFailed(tmp, "write", errno, fd);
        }
        off += static_cast<size_t>(n);
    }
    if (fs.fsync(fd) != 0)
        writeFailed(tmp, "fsync", errno, fd);
    if (fs.close(fd) != 0)
        writeFailed(tmp, "close", errno, -1);
    if (fs.rename(tmp.c_str(), path.c_str()) != 0)
        writeFailed(tmp, "rename", errno, -1);
    fsyncParentDir(path);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    if (is.bad())
        return false;
    out = buf.str();
    return true;
}

std::string
stateBackupPath(const std::string &path)
{
    return path + ".bak";
}

namespace {

/**
 * Parse and verify one envelope file's text. On success fills
 * `payload` (when non-null) and returns true; on any defect returns
 * false with a one-line diagnosis in `why`.
 */
bool
verifyEnvelope(const std::string &text, Json *payload,
               std::string *why)
{
    Json doc;
    try {
        doc = Json::parse(text);
    } catch (const std::exception &e) {
        *why = strprintf("unparseable (%s)", e.what());
        return false;
    }
    const Json *format = doc.get("format");
    if (!format || format->type() != Json::Type::String ||
        format->asString() != kStateFormat) {
        *why = "not a rigorbench state envelope";
        return false;
    }
    const Json *version = doc.get("version");
    if (!version || version->type() != Json::Type::Int) {
        *why = "missing schema version";
        return false;
    }
    if (version->asInt() != kStateVersion) {
        *why = strprintf("unsupported schema version %lld "
                         "(this build reads version %d)",
                         static_cast<long long>(version->asInt()),
                         kStateVersion);
        return false;
    }
    const Json *crc = doc.get("crc32");
    if (!crc || crc->type() != Json::Type::String) {
        *why = "missing crc32";
        return false;
    }
    const Json *body = doc.get("payload");
    if (!body) {
        *why = "missing payload";
        return false;
    }
    char *end = nullptr;
    errno = 0;
    unsigned long stored =
        std::strtoul(crc->asString().c_str(), &end, 16);
    if (end == crc->asString().c_str() || *end != '\0' ||
        errno == ERANGE) {
        *why = strprintf("malformed crc32 '%s'",
                         crc->asString().c_str());
        return false;
    }
    uint32_t computed = crc32(body->dump());
    if (computed != static_cast<uint32_t>(stored)) {
        *why = strprintf("checksum mismatch (stored 0x%08lx, "
                         "computed 0x%08x)",
                         stored, computed);
        return false;
    }
    if (payload)
        *payload = *body;
    return true;
}

} // namespace

bool
verifyStateText(const std::string &text, Json *payload,
                std::string *why)
{
    std::string scratch;
    return verifyEnvelope(text, payload, why ? why : &scratch);
}

void
writeStateFile(const std::string &path, const Json &payload)
{
    Json envelope = Json::object();
    envelope.set("format", kStateFormat);
    envelope.set("version", kStateVersion);
    envelope.set("crc32", strprintf("%08x", crc32(payload.dump())));
    envelope.set("payload", payload);

    // Rotate the previous checkpoint to .bak, but only if it still
    // verifies: a corrupt main file must not clobber a good backup.
    std::string prev, why;
    if (readFile(path, prev) && verifyEnvelope(prev, nullptr, &why)) {
        std::string bak = stateBackupPath(path);
        if (fsOps().rename(path.c_str(), bak.c_str()) != 0)
            fatal("cannot rotate %s to %s: %s", path.c_str(),
                  bak.c_str(), std::strerror(errno));
    }
    atomicWriteFile(path, envelope.dump(2) + "\n");
}

StateLoad
loadStateFile(const std::string &path)
{
    StateLoad out;
    std::string text;
    std::string mainWhy;
    if (!readFile(path, text))
        mainWhy = "cannot read file";
    else if (verifyEnvelope(text, &out.payload, &mainWhy))
        return out;

    std::string bak = stateBackupPath(path);
    std::string bakText, bakWhy;
    if (!readFile(bak, bakText))
        bakWhy = "cannot read file";
    else if (verifyEnvelope(bakText, &out.payload, &bakWhy)) {
        out.usedBackup = true;
        out.warning = strprintf(
            "state file %s is unusable (%s); recovered the last "
            "good checkpoint from %s",
            path.c_str(), mainWhy.c_str(), bak.c_str());
        return out;
    }
    fatal("cannot load state: %s (%s); %s (%s)", path.c_str(),
          mainWhy.c_str(), bak.c_str(), bakWhy.c_str());
}

bool
stateFileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0 ||
        ::access(stateBackupPath(path).c_str(), F_OK) == 0;
}

} // namespace rigor
