#include "support/logging.hh"

#include <cstdio>
#include <vector>

namespace rigor {

namespace {
bool quietFlag = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    throw PanicError("panic: " + s);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    throw FatalError("fatal: " + s);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

} // namespace rigor
