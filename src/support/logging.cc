#include "support/logging.hh"

#include <cstdio>
#include <vector>

namespace rigor {

namespace {

bool quietFlag = false;
thread_local bool threadQuietFlag = false;
LogSink sinkFn;
thread_local LogSink threadSinkFn;

/** Deliver one formatted message to the installed or default sink. */
void
emitLog(LogLevel level, const std::string &msg)
{
    if (quietFlag || threadQuietFlag)
        return;
    if (threadSinkFn)
        threadSinkFn(level, msg);
    else if (sinkFn)
        sinkFn(level, msg);
    else
        std::fprintf(stderr, "%s: %s\n", logLevelName(level),
                     msg.c_str());
}

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
setThreadQuiet(bool quiet)
{
    bool prev = threadQuietFlag;
    threadQuietFlag = quiet;
    return prev;
}

bool
quietEnabled()
{
    return quietFlag || threadQuietFlag;
}

const char *
logLevelName(LogLevel level)
{
    return level == LogLevel::Warn ? "warn" : "info";
}

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = std::move(sinkFn);
    sinkFn = std::move(sink);
    return prev;
}

LogSink
setThreadLogSink(LogSink sink)
{
    LogSink prev = std::move(threadSinkFn);
    threadSinkFn = std::move(sink);
    return prev;
}

void
emitLogMessage(LogLevel level, const std::string &msg)
{
    emitLog(level, msg);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    throw PanicError("panic: " + s);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    throw FatalError("fatal: " + s);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag || threadQuietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    emitLog(LogLevel::Warn, s);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag || threadQuietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    emitLog(LogLevel::Info, s);
}

} // namespace rigor
