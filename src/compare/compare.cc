#include "compare/compare.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "stats/descriptive.hh"
#include "stats/hierarchy.hh"
#include "support/fingerprint.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/schema.hh"
#include "support/str.hh"
#include "vm/interp.hh"

namespace rigor {
namespace compare {

const char *
verdictName(Verdict v)
{
    switch (v) {
    case Verdict::Faster: return "faster";
    case Verdict::Slower: return "slower";
    case Verdict::Inconclusive: return "inconclusive";
    }
    panic("unknown verdict");
}

const char *
effectSizeName(EffectSize e)
{
    switch (e) {
    case EffectSize::Negligible: return "negligible";
    case EffectSize::Small: return "small";
    case EffectSize::Medium: return "medium";
    case EffectSize::Large: return "large";
    }
    panic("unknown effect size");
}

EffectSize
classifyEffect(double speedup)
{
    if (speedup <= 0.0)
        panic("classifyEffect: non-positive speedup %g", speedup);
    double d = std::fabs(std::log(speedup));
    if (d < std::log(1.01))
        return EffectSize::Negligible;
    if (d < std::log(1.05))
        return EffectSize::Small;
    if (d < std::log(1.15))
        return EffectSize::Medium;
    return EffectSize::Large;
}

namespace {

/**
 * Steady-state two-level sample of a run: each invocation contributes
 * its iterations from the detected steady-state start (its full
 * series when no steady state was found — reported, not discarded,
 * matching rigorousEstimate's fallback).
 */
std::vector<std::vector<double>>
steadySamples(const harness::RunResult &run)
{
    auto summary = harness::analyzeSteadyState(run);
    std::vector<std::vector<double>> out;
    out.reserve(run.invocations.size());
    for (size_t i = 0; i < run.invocations.size(); ++i) {
        std::vector<double> times = run.invocations[i].times();
        const auto &ss = summary.perInvocation[i];
        size_t start =
            ss.hasSteadyState() && ss.steadyStart < times.size()
                ? ss.steadyStart
                : 0;
        out.emplace_back(times.begin() +
                             static_cast<ptrdiff_t>(start),
                         times.end());
    }
    return out;
}

using RunKey = std::pair<std::string, std::string>;

/**
 * Runs of an entry keyed by (workload, tier); later duplicates win.
 * With a tier filter (cross-tier pairing) only that tier's runs are
 * kept, keyed under `display_tier` so both sides produce matching
 * keys even though their runs are on different tiers.
 */
std::map<RunKey, const harness::RunResult *>
runsByKey(const archive::Entry &entry, const std::string &tier_filter,
          const std::string &display_tier)
{
    std::map<RunKey, const harness::RunResult *> out;
    for (const auto &r : entry.runs) {
        const char *tn = vm::tierName(r.tier);
        if (!tier_filter.empty() && tier_filter != tn)
            continue;
        out[{r.workload,
             tier_filter.empty() ? std::string(tn) : display_tier}] =
            &r;
    }
    return out;
}

std::string
keyName(const RunKey &key)
{
    return key.first + "/" + key.second;
}

/**
 * Per-pair resampling seed: a pure function of the master seed and
 * the pair's name, so every pair gets an independent stream and the
 * whole report is reproducible no matter which pairs both entries
 * happen to share.
 */
uint64_t
pairSeed(uint64_t master, const RunKey &key)
{
    SplitMix64 mix(master ^ fnv1a64(keyName(key)));
    return mix.next();
}

std::string
fmtSeed(uint64_t seed)
{
    return strprintf("0x%016llx",
                     static_cast<unsigned long long>(seed));
}

} // namespace

CompareReport
compareEntries(const archive::Entry &baseline,
               const archive::Entry &candidate,
               const CompareConfig &cfg)
{
    CompareReport report;
    report.baselineId = baseline.summary.id;
    report.candidateId = candidate.summary.id;
    report.baselineFingerprint = baseline.summary.fingerprint;
    report.candidateFingerprint = candidate.summary.fingerprint;
    report.sameConfig =
        baseline.summary.fingerprint == candidate.summary.fingerprint;
    report.confidence = cfg.confidence;
    report.resamples = cfg.resamples;
    report.seed = cfg.seed;

    if (cfg.baselineTier.empty() != cfg.candidateTier.empty())
        fatal("cross-tier comparison needs both tiers (got "
              "baseline '%s', candidate '%s')",
              cfg.baselineTier.c_str(), cfg.candidateTier.c_str());
    // Validate loudly before filtering: a typo'd tier name would
    // otherwise just filter everything out and report "no pairs".
    if (!cfg.baselineTier.empty()) {
        vm::tierFromName(cfg.baselineTier);
        vm::tierFromName(cfg.candidateTier);
    }
    report.baselineTier = cfg.baselineTier;
    report.candidateTier = cfg.candidateTier;
    std::string display = cfg.baselineTier.empty()
        ? std::string()
        : cfg.baselineTier + "->" + cfg.candidateTier;

    auto baseRuns = runsByKey(baseline, cfg.baselineTier, display);
    auto candRuns = runsByKey(candidate, cfg.candidateTier, display);

    std::vector<double> pointSpeedups;
    for (const auto &[key, baseRun] : baseRuns) {
        auto it = candRuns.find(key);
        bool baseUsable = !baseRun->invocations.empty();
        bool candUsable =
            it != candRuns.end() && !it->second->invocations.empty();
        if (!candUsable) {
            if (baseUsable)
                report.baselineOnly.push_back(keyName(key));
            continue;
        }
        if (!baseUsable) {
            report.candidateOnly.push_back(keyName(key));
            continue;
        }
        const harness::RunResult *candRun = it->second;

        WorkloadComparison wc;
        wc.workload = key.first;
        wc.tier = key.second;
        auto baseSamples = steadySamples(*baseRun);
        auto candSamples = steadySamples(*candRun);
        wc.baselineMs =
            stats::mean(stats::invocationMeans(baseSamples));
        wc.candidateMs =
            stats::mean(stats::invocationMeans(candSamples));
        wc.baselineInvocations = baseSamples.size();
        wc.candidateInvocations = candSamples.size();

        Rng rng(pairSeed(cfg.seed, key));
        wc.speedup = stats::hierarchicalRatioInterval(
            baseSamples, candSamples, rng, cfg.confidence,
            cfg.resamples);
        if (wc.speedup.lower > 1.0)
            wc.verdict = Verdict::Faster;
        else if (wc.speedup.upper < 1.0)
            wc.verdict = Verdict::Slower;
        else
            wc.verdict = Verdict::Inconclusive;
        wc.effect = classifyEffect(wc.speedup.estimate);
        pointSpeedups.push_back(wc.speedup.estimate);
        report.workloads.push_back(std::move(wc));
    }
    for (const auto &[key, candRun] : candRuns)
        if (!baseRuns.count(key) && !candRun->invocations.empty())
            report.candidateOnly.push_back(keyName(key));

    if (report.workloads.empty())
        fatal("entries #%d and #%d share no comparable "
              "(workload, tier) pair",
              report.baselineId, report.candidateId);
    report.geomean =
        stats::geomeanInterval(pointSpeedups, cfg.confidence);
    report.geomeanValid = true;
    return report;
}

std::string
renderMarkdown(const CompareReport &report)
{
    std::string md;
    md += strprintf("# rigorbench compare: %s vs %s\n\n",
                    report.baselineRef.c_str(),
                    report.candidateRef.c_str());
    md += "|  | baseline | candidate |\n|---|---|---|\n";
    md += strprintf("| ref | %s (#%d) | %s (#%d) |\n",
                    report.baselineRef.c_str(), report.baselineId,
                    report.candidateRef.c_str(), report.candidateId);
    md += strprintf("| config fingerprint | `%s` | `%s` |\n\n",
                    report.baselineFingerprint.c_str(),
                    report.candidateFingerprint.c_str());
    if (report.sameConfig) {
        md += "Configurations are **identical**: any difference "
              "below is a performance change, not an experiment "
              "change.\n\n";
    } else {
        md += "Configurations **differ** (A/B comparison): "
              "differences below mix the config change with any "
              "performance change.\n\n";
    }
    if (!report.baselineTier.empty())
        md += strprintf(
            "Cross-tier pairing: baseline `%s` runs vs candidate "
            "`%s` runs, paired by workload.\n\n",
            report.baselineTier.c_str(),
            report.candidateTier.c_str());
    md += strprintf(
        "%s%% hierarchical-bootstrap CIs (invocations, then "
        "iterations), %d resamples, seed %s.\n\n",
        fmtDouble(100.0 * report.confidence, 0).c_str(),
        report.resamples, fmtSeed(report.seed).c_str());

    md += "| workload | tier | baseline ms | candidate ms | "
          "speedup (CI) | effect | verdict |\n";
    md += "|---|---|---|---|---|---|---|\n";
    for (const auto &wc : report.workloads) {
        md += strprintf(
            "| %s | %s | %s | %s | %s | %s | %s |\n",
            wc.workload.c_str(), wc.tier.c_str(),
            fmtDouble(wc.baselineMs, 4).c_str(),
            fmtDouble(wc.candidateMs, 4).c_str(),
            harness::formatCi(wc.speedup, 3).c_str(),
            effectSizeName(wc.effect), verdictName(wc.verdict));
    }
    md += "\n";
    if (report.geomeanValid)
        md += strprintf("Geomean speedup over %zu pair(s): %s.\n",
                        report.workloads.size(),
                        harness::formatCi(report.geomean, 3).c_str());
    if (!report.baselineOnly.empty())
        md += strprintf("\nOnly in baseline (not compared): %s.\n",
                        join(report.baselineOnly, ", ").c_str());
    if (!report.candidateOnly.empty())
        md += strprintf("\nOnly in candidate (not compared): %s.\n",
                        join(report.candidateOnly, ", ").c_str());
    return md;
}

Json
reportToJson(const CompareReport &report)
{
    Json root = Json::object();
    root.set("schema", kCompareReportSchema);
    root.set("version", kCompareReportVersion);
    Json base = Json::object();
    base.set("ref", report.baselineRef);
    base.set("id", report.baselineId);
    base.set("fingerprint", report.baselineFingerprint);
    root.set("baseline", std::move(base));
    Json cand = Json::object();
    cand.set("ref", report.candidateRef);
    cand.set("id", report.candidateId);
    cand.set("fingerprint", report.candidateFingerprint);
    root.set("candidate", std::move(cand));
    root.set("same_config", report.sameConfig);
    root.set("confidence", report.confidence);
    root.set("resamples", report.resamples);
    root.set("seed", fmtSeed(report.seed));
    // Only present for cross-tier reports, so by-tier reports stay
    // byte-identical to those of earlier builds.
    if (!report.baselineTier.empty()) {
        root.set("baseline_tier", report.baselineTier);
        root.set("candidate_tier", report.candidateTier);
    }

    Json wls = Json::array();
    for (const auto &wc : report.workloads) {
        Json j = Json::object();
        j.set("workload", wc.workload);
        j.set("tier", wc.tier);
        j.set("baseline_ms", wc.baselineMs);
        j.set("candidate_ms", wc.candidateMs);
        Json s = Json::object();
        s.set("estimate", wc.speedup.estimate);
        s.set("lower", wc.speedup.lower);
        s.set("upper", wc.speedup.upper);
        j.set("speedup", std::move(s));
        j.set("verdict", verdictName(wc.verdict));
        j.set("effect", effectSizeName(wc.effect));
        j.set("baseline_invocations",
              static_cast<int64_t>(wc.baselineInvocations));
        j.set("candidate_invocations",
              static_cast<int64_t>(wc.candidateInvocations));
        wls.push(std::move(j));
    }
    root.set("workloads", std::move(wls));
    if (report.geomeanValid) {
        Json g = Json::object();
        g.set("estimate", report.geomean.estimate);
        g.set("lower", report.geomean.lower);
        g.set("upper", report.geomean.upper);
        root.set("geomean_speedup", std::move(g));
    }
    Json onlyA = Json::array();
    for (const auto &k : report.baselineOnly)
        onlyA.push(k);
    root.set("baseline_only", std::move(onlyA));
    Json onlyB = Json::array();
    for (const auto &k : report.candidateOnly)
        onlyB.push(k);
    root.set("candidate_only", std::move(onlyB));
    return root;
}

GateResult
evaluateGate(const CompareReport &report, double thresholdPct)
{
    if (thresholdPct < 0.0)
        fatal("gate threshold must be >= 0, got %g", thresholdPct);
    GateResult gate;
    gate.thresholdPct = thresholdPct;
    // The candidate regressed iff even the *most favorable* end of
    // the speedup interval is slower than threshold allows.
    double bound = 1.0 / (1.0 + thresholdPct / 100.0);
    for (const auto &wc : report.workloads) {
        if (wc.speedup.upper >= bound)
            continue;
        Regression r;
        r.workload = wc.workload;
        r.tier = wc.tier;
        r.slowdownPct = (1.0 / wc.speedup.estimate - 1.0) * 100.0;
        r.speedup = wc.speedup;
        gate.regressions.push_back(std::move(r));
    }
    // Worst regression first, so the top of a failing CI log names
    // the pair that matters most; ties keep (workload, tier) order.
    std::stable_sort(gate.regressions.begin(),
                     gate.regressions.end(),
                     [](const Regression &a, const Regression &b) {
                         return a.slowdownPct > b.slowdownPct;
                     });
    gate.pass = gate.regressions.empty();
    return gate;
}

std::string
renderGate(const GateResult &gate, const CompareReport &report)
{
    std::string out;
    out += strprintf(
        "gate: candidate %s (#%d) vs baseline %s (#%d), "
        "threshold %s%% at %s%% confidence\n",
        report.candidateRef.c_str(), report.candidateId,
        report.baselineRef.c_str(), report.baselineId,
        fmtDouble(gate.thresholdPct, 1).c_str(),
        fmtDouble(100.0 * report.confidence, 0).c_str());
    if (gate.pass) {
        out += strprintf("PASS: no regression beyond %s%% across "
                         "%zu compared pair(s)\n",
                         fmtDouble(gate.thresholdPct, 1).c_str(),
                         report.workloads.size());
        return out;
    }
    const Regression &worst = gate.regressions.front();
    out += strprintf("FAIL: %zu pair(s) regressed beyond %s%% "
                     "(worst: %s/%s, %s%% slower):\n",
                     gate.regressions.size(),
                     fmtDouble(gate.thresholdPct, 1).c_str(),
                     worst.workload.c_str(), worst.tier.c_str(),
                     fmtDouble(worst.slowdownPct, 1).c_str());
    for (const auto &r : gate.regressions)
        out += strprintf("  %s/%s: %s%% slower (speedup %s)\n",
                         r.workload.c_str(), r.tier.c_str(),
                         fmtDouble(r.slowdownPct, 1).c_str(),
                         harness::formatCi(r.speedup, 3).c_str());
    return out;
}

} // namespace compare
} // namespace rigor
