/**
 * @file
 * Statistical comparison of two archived runs, and the regression
 * gate built on top of it.
 *
 * Given a baseline entry A and a candidate entry B, the engine pairs
 * their runs by (workload, tier) and computes a per-pair speedup
 * ratio with a *hierarchical bootstrap* confidence interval that
 * respects the invocation→iteration nesting (invocations are
 * resampled first, then iterations within each chosen invocation).
 * Comparing mean-of-all-iterations against mean-of-all-iterations
 * would treat correlated iterations as independent and produce
 * overconfident verdicts — the exact failure mode the source paper
 * documents for cross-runtime comparisons.
 *
 * Every verdict is honest about uncertainty: when the interval
 * straddles 1.0 the comparison is *inconclusive*, never rounded to
 * "no change". The gate only fails when the entire interval sits
 * beyond the regression threshold at the configured confidence.
 *
 * All resampling is driven by a seeded, portable PRNG keyed on the
 * (workload, tier) pair, so reports are byte-identical across
 * repeats, platforms, and the --jobs value of the source runs.
 */

#ifndef RIGOR_COMPARE_COMPARE_HH
#define RIGOR_COMPARE_COMPARE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "archive/archive.hh"
#include "stats/ci.hh"
#include "support/json.hh"

namespace rigor {
namespace compare {

/** Knobs of the comparison engine. */
struct CompareConfig
{
    /** Confidence level of every interval and the gate decision. */
    double confidence = 0.95;
    /** Hierarchical bootstrap resamples per (workload, tier) pair. */
    int resamples = 2000;
    /** Master seed; per-pair resampling streams derive from it. */
    uint64_t seed = 0xc0ffee;
    /**
     * Cross-tier pairing. When both are set (tier names), the
     * baseline entry contributes only its baselineTier runs and the
     * candidate only its candidateTier runs, paired by workload alone
     * — e.g. baselineTier="interp", candidateTier="threaded" asks
     * "what does the threaded tier buy over the interpreter?". Empty
     * (the default) keeps the by-(workload, tier) pairing. Setting
     * only one of the two is an error.
     */
    std::string baselineTier, candidateTier;
};

/** What a speedup interval allows us to claim. */
enum class Verdict
{
    Faster,        ///< whole CI above 1.0: candidate is faster
    Slower,        ///< whole CI below 1.0: candidate is slower
    Inconclusive,  ///< CI straddles 1.0: no honest claim possible
};

/** Short name: "faster" / "slower" / "inconclusive". */
const char *verdictName(Verdict v);

/**
 * Magnitude classification of the point speedup, by |log ratio|:
 * negligible < 1%, small < 5%, medium < 15%, large otherwise.
 * Orthogonal to the verdict — a 0.5% change can be statistically
 * certain yet practically negligible, and vice versa.
 */
enum class EffectSize
{
    Negligible,
    Small,
    Medium,
    Large,
};

/** Short name: "negligible" / "small" / "medium" / "large". */
const char *effectSizeName(EffectSize e);

/** Classify a speedup ratio into an EffectSize band. */
EffectSize classifyEffect(double speedup);

/** Comparison of one (workload, tier) pair present in both entries. */
struct WorkloadComparison
{
    std::string workload;
    std::string tier;
    /** Steady-state mean-of-means time, baseline entry (ms). */
    double baselineMs = 0.0;
    /** Steady-state mean-of-means time, candidate entry (ms). */
    double candidateMs = 0.0;
    /**
     * Speedup of the candidate over the baseline
     * (baselineMs / candidateMs as a ratio CI; > 1 means faster).
     */
    stats::ConfidenceInterval speedup;
    Verdict verdict = Verdict::Inconclusive;
    EffectSize effect = EffectSize::Negligible;
    size_t baselineInvocations = 0;
    size_t candidateInvocations = 0;
};

/** Full outcome of comparing two archive entries. */
struct CompareReport
{
    /** How the entries were named on the command line. */
    std::string baselineRef, candidateRef;
    /** Archive ids of the resolved entries. */
    int baselineId = 0, candidateId = 0;
    std::string baselineFingerprint, candidateFingerprint;
    /**
     * True when the configurations are identical. A false value is
     * not an error — comparing different jitThresholds or fault
     * plans is the A/B use case — but it is always surfaced, because
     * "did performance change?" and "did the experiment change?" must
     * never be conflated silently.
     */
    bool sameConfig = false;
    double confidence = 0.95;
    int resamples = 0;
    uint64_t seed = 0;
    /**
     * The cross-tier pairing this report was computed under (empty
     * for the default by-(workload, tier) pairing). Pair tiers then
     * read "baselineTier->candidateTier".
     */
    std::string baselineTier, candidateTier;
    /** Pairs in both entries, sorted by (workload, tier). */
    std::vector<WorkloadComparison> workloads;
    /** "(workload, tier)" keys present in only one entry. */
    std::vector<std::string> baselineOnly, candidateOnly;
    /** Geometric-mean speedup over the compared pairs. */
    stats::ConfidenceInterval geomean;
    bool geomeanValid = false;
};

/**
 * Compare candidate against baseline. Pairs runs by (workload, tier);
 * quarantined or failure-scarred runs still compare as long as they
 * hold at least one successful invocation.
 * @throws FatalError when the entries share no comparable pair.
 */
CompareReport compareEntries(const archive::Entry &baseline,
                             const archive::Entry &candidate,
                             const CompareConfig &cfg);

/** Render the report as a Markdown document (tables + verdicts). */
std::string renderMarkdown(const CompareReport &report);

/** Machine-readable report (schema rigorbench-compare v1). */
Json reportToJson(const CompareReport &report);

/** One workload pair whose whole CI regressed past the threshold. */
struct Regression
{
    std::string workload;
    std::string tier;
    /** Point slowdown in percent (1/speedup - 1, as a percentage). */
    double slowdownPct = 0.0;
    stats::ConfidenceInterval speedup;
};

/** Outcome of gating a report against a regression threshold. */
struct GateResult
{
    bool pass = true;
    double thresholdPct = 0.0;
    /** Failing pairs, worst (largest point slowdown) first. */
    std::vector<Regression> regressions;
};

/**
 * Fail iff any pair's *entire* speedup interval shows the candidate
 * slower than the baseline by more than thresholdPct percent — a
 * point estimate past the threshold with an interval that still
 * reaches back inside it stays a pass (possibly-noise is not a
 * verdict). Inconclusive and faster pairs always pass.
 */
GateResult evaluateGate(const CompareReport &report,
                        double thresholdPct);

/** Human-readable gate summary (one line per regression). */
std::string renderGate(const GateResult &gate,
                       const CompareReport &report);

} // namespace compare
} // namespace rigor

#endif // RIGOR_COMPARE_COMPARE_HH
