/**
 * @file
 * Archive fsck: offline verification and repair of a run archive
 * directory.
 *
 * The scan-time quarantine in RunArchive handles damage lazily, as it
 * is met; fsck is the eager counterpart a user reaches for after a
 * crash, a disk scare or a suspicious diff: walk *everything* in the
 * directory — entries, backups, staging temporaries, quarantine
 * copies, strays — classify each defect, and under `--repair` fix
 * what is mechanically fixable (restore a corrupt entry from its
 * valid backup, sweep orphaned temporaries, rename non-canonical
 * filenames, quarantine what nothing can save).
 *
 * fsck never invents data: every repair either copies bytes that
 * verified against their checksum or moves damage aside where `scan`
 * will no longer trip over it. Healthy entries written by a *newer*
 * build are reported as notices and left strictly alone.
 */

#ifndef RIGOR_ARCHIVE_FSCK_HH
#define RIGOR_ARCHIVE_FSCK_HH

#include <string>
#include <vector>

#include "support/json.hh"
#include "support/metrics.hh"

namespace rigor {
namespace archive {

/** One classified observation about one file. */
struct FsckFinding
{
    /** Path of the offending (or notable) file. */
    std::string path;
    /**
     * Defect class: corrupt-entry, corrupt-main, missing-main,
     * orphan-bak, orphan-tmp, bad-payload, non-canonical-name,
     * duplicate-id; or the notice classes future-version and
     * stray-file.
     */
    std::string kind;
    /** One-line diagnosis. */
    std::string detail;
    /** Informational only — does not make the archive unhealthy. */
    bool notice = false;
    /** True when --repair fixed (or safely quarantined) it. */
    bool repaired = false;
    /** What repair did, or would do ("restore from backup", ...). */
    std::string action;
};

/** Outcome of one fsck pass. */
struct FsckReport
{
    std::string dir;
    /** True when the pass ran with --repair. */
    bool repairMode = false;
    /** entry-NNNNNN.json files examined (readable or not). */
    int entriesScanned = 0;
    /** Entries that verified end-to-end (schema included). */
    int entriesOk = 0;
    /** Quarantine copies present in the directory after the pass. */
    int quarantinedPresent = 0;
    /** Newest valid entry id after the pass (-1 when none). */
    int headId = -1;
    std::vector<FsckFinding> findings;

    /** Findings that are defects (notices excluded). */
    int defects() const;
    /** Defects --repair dealt with. */
    int repairedCount() const;
    /** Defects still standing after the pass. */
    int unrepaired() const { return defects() - repairedCount(); }
    /** True when no defect is left standing. */
    bool clean() const { return unrepaired() == 0; }
};

/**
 * Verify (and with `repair`, fix) the archive at `dir`. Without
 * repair the pass is strictly read-only and takes no lock; with
 * repair it holds the archive lock for the duration, exactly like a
 * writer.
 * @param metrics when non-null, receives fsck.* counters
 * (entries_scanned, entries_ok, defects, repaired, orphan_tmp,
 * quarantined_present).
 * @throws FatalError when `dir` does not exist or the lock cannot be
 * acquired in repair mode.
 */
FsckReport fsckArchive(const std::string &dir, bool repair,
                       MetricsRegistry *metrics = nullptr);

/** Human-readable multi-line report. */
std::string renderFsck(const FsckReport &report);

/** Machine-readable report (stable schema, see docs). */
Json fsckToJson(const FsckReport &report);

} // namespace archive
} // namespace rigor

#endif // RIGOR_ARCHIVE_FSCK_HH
