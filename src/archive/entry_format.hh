/**
 * @file
 * On-disk naming rules of the run archive, shared by the archive
 * proper and its fsck.
 *
 * An archive directory holds `entry-NNNNNN.json` state envelopes plus
 * the sidecar files the durability machinery creates around them:
 * `.bak` rotations, `.tmp` staging files from interrupted atomic
 * writes, `.quarantine` copies of entries too damaged to read, and
 * one `.lock` file for advisory inter-process locking. Everything
 * that parses or constructs those names lives here so the archive and
 * fsck can never disagree about what a filename means.
 */

#ifndef RIGOR_ARCHIVE_ENTRY_FORMAT_HH
#define RIGOR_ARCHIVE_ENTRY_FORMAT_HH

#include <cstring>
#include <filesystem>
#include <string>

#include "support/logging.hh"
#include "support/str.hh"

namespace rigor {
namespace archive {

inline constexpr const char *kEntryPrefix = "entry-";
inline constexpr const char *kEntrySuffix = ".json";
/** Suffix appended (possibly with ".2", ".3"...) when quarantining. */
inline constexpr const char *kQuarantineSuffix = ".quarantine";
/** Pre-fsck spelling, still recognized so old archives stay valid. */
inline constexpr const char *kQuarantineSuffixLegacy = ".quarantined";
/** Advisory lock file taken by append/prune/fsck --repair. */
inline constexpr const char *kLockFileName = ".lock";

/** Canonical filename of entry `id` (zero-padded to six digits). */
inline std::string
entryFileName(int id)
{
    return strprintf("%s%06d%s", kEntryPrefix, id, kEntrySuffix);
}

/**
 * Parse an entry id out of a filename of the form entry-DIGITS.json;
 * returns -1 for everything else (backups, temporaries, quarantined
 * files, stray data). Non-canonical digit counts (entry-3.json) still
 * parse — fsck flags them, the scanner must at least see them.
 */
inline int
entryIdFromName(const std::string &name)
{
    if (!startsWith(name, kEntryPrefix) ||
        !endsWith(name, kEntrySuffix))
        return -1;
    std::string digits = name.substr(
        std::strlen(kEntryPrefix),
        name.size() - std::strlen(kEntryPrefix) -
            std::strlen(kEntrySuffix));
    if (digits.empty() || digits.size() > 9)
        return -1;
    int id = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return -1;
        id = id * 10 + (c - '0');
    }
    return id;
}

/**
 * Any id-bearing filename, *including* backup, temporary and
 * quarantined copies (whatever trails the ".json" core). append()
 * uses this so a pruned-then-quarantined id is never reused for a new
 * entry — refs must stay unambiguous forever.
 */
inline int
anyIdFromName(const std::string &name)
{
    auto pos = name.find(kEntrySuffix);
    if (pos == std::string::npos)
        return -1;
    return entryIdFromName(
        name.substr(0, pos + std::strlen(kEntrySuffix)));
}

/** True when `name` is a quarantined copy (either spelling). */
inline bool
isQuarantineName(const std::string &name)
{
    return name.find(kQuarantineSuffix) != std::string::npos;
}

/** True for an interrupted atomic write's staging file. */
inline bool
isTmpName(const std::string &name)
{
    return endsWith(name, ".tmp") && !isQuarantineName(name);
}

/**
 * First free quarantine name for `path`: the plain suffix, then
 * numbered variants, so repeated damage at one path never overwrites
 * earlier forensic copies and re-quarantining is idempotent.
 */
inline std::string
quarantineTarget(const std::string &path)
{
    std::string aside = path + kQuarantineSuffix;
    for (int i = 2; std::filesystem::exists(aside); ++i)
        aside = path + kQuarantineSuffix + "." + std::to_string(i);
    return aside;
}

} // namespace archive
} // namespace rigor

#endif // RIGOR_ARCHIVE_ENTRY_FORMAT_HH
