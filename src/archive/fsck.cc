#include "archive/fsck.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <set>

#include "archive/entry_format.hh"
#include "support/durable_io.hh"
#include "support/filelock.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"

namespace fs = std::filesystem;

namespace rigor {
namespace archive {

namespace {

/** How a payload relates to this build's archive-entry schema. */
enum class PayloadState
{
    Ok,     ///< readable by this build
    Future, ///< healthy data from a newer build — hands off
    Bad,    ///< not an archive entry (or structurally broken)
};

PayloadState
checkPayload(const Json &payload, std::string *why)
{
    const Json *schema = payload.get("schema");
    if (!schema || schema->type() != Json::Type::String ||
        schema->asString() != kArchiveEntrySchema) {
        *why = strprintf("payload is not a %s document",
                         kArchiveEntrySchema);
        return PayloadState::Bad;
    }
    const Json *version = payload.get("version");
    if (!version || version->type() != Json::Type::Int) {
        *why = "payload has no integer version";
        return PayloadState::Bad;
    }
    int64_t v = version->asInt();
    if (v > kArchiveEntryVersion) {
        *why = strprintf("version %lld is newer than this build's "
                         "%d..%d",
                         static_cast<long long>(v),
                         kArchiveEntryMinVersion,
                         kArchiveEntryVersion);
        return PayloadState::Future;
    }
    if (v < kArchiveEntryMinVersion) {
        *why = strprintf("version %lld predates the supported "
                         "%d..%d",
                         static_cast<long long>(v),
                         kArchiveEntryMinVersion,
                         kArchiveEntryVersion);
        return PayloadState::Bad;
    }
    const Json *fp = payload.get("fingerprint");
    const Json *command = payload.get("command");
    const Json *runs = payload.get("runs");
    if (!fp || fp->type() != Json::Type::String) {
        *why = "payload has no fingerprint";
        return PayloadState::Bad;
    }
    if (!command || command->type() != Json::Type::String) {
        *why = "payload has no command";
        return PayloadState::Bad;
    }
    if (!runs || runs->type() != Json::Type::Array ||
        runs->size() == 0) {
        *why = "payload has no runs";
        return PayloadState::Bad;
    }
    return PayloadState::Ok;
}

/**
 * Read `path` and verify envelope + payload in one go.
 * @return Ok/Future/Bad; `payload` and `why` as in the parts.
 */
PayloadState
verifyEntryFile(const std::string &path, Json *payload,
                std::string *why)
{
    std::string text;
    if (!readFile(path, text)) {
        *why = "cannot read file";
        return PayloadState::Bad;
    }
    Json inner;
    if (!verifyStateText(text, &inner, why))
        return PayloadState::Bad;
    PayloadState state = checkPayload(inner, why);
    if (payload)
        *payload = std::move(inner);
    return state;
}

/** Everything fsck needs to know about the directory's contents. */
struct DirListing
{
    /** (id, filename) of every entry-DIGITS.json, sorted. */
    std::vector<std::pair<int, std::string>> mains;
    /** Filenames of entry backups (entry-DIGITS.json.bak). */
    std::vector<std::string> baks;
    /** Staging files from interrupted atomic writes. */
    std::vector<std::string> tmps;
    /** Files that belong to no known category. */
    std::vector<std::string> strays;
    /** Every filename present (for collision checks). */
    std::set<std::string> names;
    int quarantineCount = 0;
};

DirListing
listDir(const std::string &dir)
{
    DirListing out;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir, ec)) {
        std::string name = e.path().filename().string();
        out.names.insert(name);
        if (name == kLockFileName)
            continue;
        if (isQuarantineName(name)) {
            ++out.quarantineCount;
            continue;
        }
        if (isTmpName(name)) {
            out.tmps.push_back(name);
            continue;
        }
        if (endsWith(name, ".bak") &&
            entryIdFromName(name.substr(0, name.size() - 4)) >= 0) {
            out.baks.push_back(name);
            continue;
        }
        int id = entryIdFromName(name);
        if (id >= 0) {
            out.mains.emplace_back(id, name);
            continue;
        }
        out.strays.push_back(name);
    }
    if (ec)
        fatal("cannot scan archive directory %s: %s", dir.c_str(),
              ec.message().c_str());
    std::sort(out.mains.begin(), out.mains.end());
    std::sort(out.baks.begin(), out.baks.end());
    std::sort(out.tmps.begin(), out.tmps.end());
    std::sort(out.strays.begin(), out.strays.end());
    return out;
}

/** fsck working state threaded through the per-category passes. */
struct FsckPass
{
    std::string dir;
    bool repair = false;
    FsckReport *report = nullptr;

    std::string fullPath(const std::string &name) const
    {
        return dir + "/" + name;
    }

    FsckFinding &addFinding(const std::string &name,
                            const std::string &kind,
                            const std::string &detail)
    {
        FsckFinding f;
        f.path = fullPath(name);
        f.kind = kind;
        f.detail = detail;
        report->findings.push_back(std::move(f));
        return report->findings.back();
    }

    /** Quarantine `name`; returns true (and sets action) on success. */
    bool quarantine(const std::string &name, FsckFinding &f)
    {
        std::string path = fullPath(name);
        std::string aside = quarantineTarget(path);
        if (fsOps().rename(path.c_str(), aside.c_str()) != 0) {
            f.action = strprintf("quarantine failed: %s",
                                 std::strerror(errno));
            return false;
        }
        f.action = strprintf("quarantined as %s", aside.c_str());
        f.repaired = true;
        ++report->quarantinedPresent;
        return true;
    }
};

} // namespace

int
FsckReport::defects() const
{
    int n = 0;
    for (const auto &f : findings)
        if (!f.notice)
            ++n;
    return n;
}

int
FsckReport::repairedCount() const
{
    int n = 0;
    for (const auto &f : findings)
        if (!f.notice && f.repaired)
            ++n;
    return n;
}

FsckReport
fsckArchive(const std::string &dir, bool repair,
            MetricsRegistry *metrics)
{
    if (!fs::is_directory(dir))
        fatal("archive directory %s does not exist", dir.c_str());

    FsckReport report;
    report.dir = dir;
    report.repairMode = repair;

    // Repair mutates the directory exactly like a writer, so it takes
    // the writer lock; a verify-only pass is read-only and must never
    // block a live suite run.
    FileLock lock;
    if (repair) {
        lock = FileLock::acquire(dir + "/" + kLockFileName);
        if (!lock.held())
            fatal("archive %s is locked by another process; retry "
                  "when the writer finishes",
                  dir.c_str());
    }

    DirListing listing = listDir(dir);
    report.quarantinedPresent = listing.quarantineCount;

    FsckPass pass;
    pass.dir = dir;
    pass.repair = repair;
    pass.report = &report;

    int orphanTmp = 0;

    // --- staging temporaries -----------------------------------------
    for (const auto &name : listing.tmps) {
        ++orphanTmp;
        FsckFinding &f = pass.addFinding(
            name, "orphan-tmp",
            "staging file left by an interrupted atomic write");
        if (!repair) {
            f.action = "remove";
            continue;
        }
        if (fsOps().unlink(pass.fullPath(name).c_str()) == 0) {
            f.action = "removed";
            f.repaired = true;
        } else {
            f.action = strprintf("remove failed: %s",
                                 std::strerror(errno));
        }
    }

    // --- entry files --------------------------------------------------
    // Names that verified (or were repaired into verifying); baks are
    // matched against this set afterwards.
    std::set<std::string> healthyMains;

    for (auto &[id, name] : listing.mains) {
        ++report.entriesScanned;

        // Naming first: a non-canonical digit count (entry-7.json)
        // aliases the canonical file's id, which would make refs
        // ambiguous. Rename when the canonical slot is free,
        // quarantine when it is taken.
        std::string canonical = entryFileName(id);
        if (name != canonical) {
            bool slotTaken = listing.names.count(canonical) > 0;
            FsckFinding &f = pass.addFinding(
                name, slotTaken ? "duplicate-id" : "non-canonical-name",
                slotTaken
                    ? strprintf("parses to id %d, which %s already "
                                "holds",
                                id, canonical.c_str())
                    : strprintf("parses to id %d but is not the "
                                "canonical %s",
                                id, canonical.c_str()));
            if (!repair) {
                f.action = slotTaken ? "quarantine"
                                     : strprintf("rename to %s",
                                                 canonical.c_str());
                continue;
            }
            if (slotTaken) {
                pass.quarantine(name, f);
                continue;
            }
            if (fsOps().rename(pass.fullPath(name).c_str(),
                               pass.fullPath(canonical).c_str()) !=
                0) {
                f.action = strprintf("rename failed: %s",
                                     std::strerror(errno));
                continue;
            }
            f.action = strprintf("renamed to %s", canonical.c_str());
            f.repaired = true;
            listing.names.insert(canonical);
            name = canonical; // fall through to content checks
        }

        std::string why;
        PayloadState state =
            verifyEntryFile(pass.fullPath(name), nullptr, &why);
        if (state == PayloadState::Ok) {
            ++report.entriesOk;
            report.headId = std::max(report.headId, id);
            healthyMains.insert(name);
            continue;
        }
        if (state == PayloadState::Future) {
            FsckFinding &f =
                pass.addFinding(name, "future-version", why);
            f.notice = true;
            f.action = "left in place";
            healthyMains.insert(name); // its .bak is not orphaned
            continue;
        }

        // Envelope or payload is broken. A valid backup turns this
        // into a restore; otherwise both copies go to quarantine.
        std::string bakName = name + ".bak";
        std::string bakWhy;
        Json bakPayload;
        bool bakOk = listing.names.count(bakName) > 0 &&
            verifyEntryFile(pass.fullPath(bakName), &bakPayload,
                            &bakWhy) == PayloadState::Ok;
        if (bakOk) {
            FsckFinding &f = pass.addFinding(
                name, "corrupt-main",
                strprintf("%s (backup verifies)", why.c_str()));
            healthyMains.insert(name); // bak is accounted for
            if (!repair) {
                f.action = "restore from backup";
                continue;
            }
            // The backup's payload re-wraps in a fresh envelope; the
            // invalid main is not rotated (writeStateFile never
            // rotates corruption over a good backup).
            writeStateFile(pass.fullPath(name), bakPayload);
            f.action = "restored from backup";
            f.repaired = true;
            ++report.entriesOk;
            report.headId = std::max(report.headId, id);
        } else {
            std::string detail = strprintf("main: %s", why.c_str());
            if (listing.names.count(bakName) > 0)
                detail += strprintf("; backup: %s", bakWhy.c_str());
            else
                detail += "; no backup";
            FsckFinding &f =
                pass.addFinding(name, "corrupt-entry", detail);
            healthyMains.insert(name); // its bak joins the quarantine
            if (!repair) {
                f.action = "quarantine";
                continue;
            }
            bool ok = pass.quarantine(name, f);
            if (ok && listing.names.count(bakName) > 0) {
                std::string bakPath = pass.fullPath(bakName);
                std::string aside = quarantineTarget(bakPath);
                if (fsOps().rename(bakPath.c_str(),
                                   aside.c_str()) == 0)
                    ++report.quarantinedPresent;
            }
        }
    }

    // --- backups whose main is gone ----------------------------------
    for (const auto &bakName : listing.baks) {
        std::string mainName = bakName.substr(0, bakName.size() - 4);
        if (healthyMains.count(mainName) > 0)
            continue;
        if (listing.names.count(mainName) > 0)
            continue; // its main was handled (and quarantined) above
        std::string why;
        Json payload;
        PayloadState state =
            verifyEntryFile(pass.fullPath(bakName), &payload, &why);
        if (state == PayloadState::Ok) {
            FsckFinding &f = pass.addFinding(
                bakName, "missing-main",
                strprintf("backup verifies but %s is gone",
                          mainName.c_str()));
            if (!repair) {
                f.action = "restore from backup";
                continue;
            }
            writeStateFile(pass.fullPath(mainName), payload);
            f.action = strprintf("restored %s from backup",
                                 mainName.c_str());
            f.repaired = true;
            ++report.entriesScanned;
            ++report.entriesOk;
            report.headId = std::max(report.headId,
                                     entryIdFromName(mainName));
        } else {
            FsckFinding &f = pass.addFinding(
                bakName, "orphan-bak",
                strprintf("no main entry and the backup is "
                          "unusable (%s)",
                          why.c_str()));
            if (!repair) {
                f.action = "quarantine";
                continue;
            }
            pass.quarantine(bakName, f);
        }
    }

    // --- strays -------------------------------------------------------
    for (const auto &name : listing.strays) {
        FsckFinding &f = pass.addFinding(
            name, "stray-file",
            "not an archive file; fsck never touches it");
        f.notice = true;
        f.action = "left in place";
    }

    if (metrics) {
        metrics->counter("fsck.entries_scanned")
            .inc(static_cast<uint64_t>(report.entriesScanned));
        metrics->counter("fsck.entries_ok")
            .inc(static_cast<uint64_t>(report.entriesOk));
        metrics->counter("fsck.defects")
            .inc(static_cast<uint64_t>(report.defects()));
        metrics->counter("fsck.repaired")
            .inc(static_cast<uint64_t>(report.repairedCount()));
        metrics->counter("fsck.orphan_tmp")
            .inc(static_cast<uint64_t>(orphanTmp));
        metrics->counter("fsck.quarantined_present")
            .inc(static_cast<uint64_t>(report.quarantinedPresent));
    }
    return report;
}

std::string
renderFsck(const FsckReport &report)
{
    std::string out = strprintf(
        "fsck %s: %d entries scanned, %d ok, %d defect(s)",
        report.dir.c_str(), report.entriesScanned, report.entriesOk,
        report.defects());
    if (report.repairMode)
        out += strprintf(", %d repaired", report.repairedCount());
    if (report.quarantinedPresent > 0)
        out += strprintf(", %d quarantined file(s) present",
                         report.quarantinedPresent);
    if (report.headId >= 0)
        out += strprintf(", HEAD %s",
                         entryFileName(report.headId).c_str());
    out += "\n";
    for (const auto &f : report.findings) {
        out += strprintf("  %-18s %s: %s", f.kind.c_str(),
                         f.path.c_str(), f.detail.c_str());
        if (f.notice)
            out += " [notice]";
        else if (f.repaired)
            out += strprintf(" [%s]", f.action.c_str());
        else if (!f.action.empty())
            out += strprintf(" [would: %s]", f.action.c_str());
        out += "\n";
    }
    if (report.clean())
        out += "archive is clean\n";
    else
        out += strprintf("%d defect(s) remain%s\n", report.unrepaired(),
                         report.repairMode
                             ? ""
                             : " (re-run with --repair to fix)");
    return out;
}

Json
fsckToJson(const FsckReport &report)
{
    Json doc = Json::object();
    doc.set("schema", kFsckReportSchema);
    doc.set("version", kFsckReportVersion);
    doc.set("dir", report.dir);
    doc.set("repair", report.repairMode);
    doc.set("entries_scanned", report.entriesScanned);
    doc.set("entries_ok", report.entriesOk);
    doc.set("defects", report.defects());
    doc.set("repaired", report.repairedCount());
    doc.set("unrepaired", report.unrepaired());
    doc.set("quarantined_present", report.quarantinedPresent);
    if (report.headId >= 0)
        doc.set("head_id", report.headId);
    else
        doc.set("head_id", Json());
    Json findings = Json::array();
    for (const auto &f : report.findings) {
        Json j = Json::object();
        j.set("path", f.path);
        j.set("kind", f.kind);
        j.set("detail", f.detail);
        j.set("notice", f.notice);
        j.set("repaired", f.repaired);
        j.set("action", f.action);
        findings.push(std::move(j));
    }
    doc.set("findings", std::move(findings));
    return doc;
}

} // namespace archive
} // namespace rigor
