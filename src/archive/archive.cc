#include "archive/archive.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "archive/entry_format.hh"
#include "harness/report.hh"
#include "support/durable_io.hh"
#include "support/filelock.hh"
#include "support/fingerprint.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"

namespace fs = std::filesystem;

namespace rigor {
namespace archive {

namespace {

/** Validate an entry payload's inner schema against this build. */
void
checkEntrySchema(const Json &payload, const std::string &path)
{
    const Json *schema = payload.get("schema");
    if (!schema || schema->asString() != kArchiveEntrySchema)
        fatal("%s is not a %s document", path.c_str(),
              kArchiveEntrySchema);
    int64_t v = payload.at("version").asInt();
    if (v < kArchiveEntryMinVersion || v > kArchiveEntryVersion)
        fatal("%s has %s version %lld; this build reads versions "
              "%d..%d",
              path.c_str(), kArchiveEntrySchema,
              static_cast<long long>(v), kArchiveEntryMinVersion,
              kArchiveEntryVersion);
}

EntrySummary
summaryFromPayload(const Json &payload, int id,
                   const std::string &path)
{
    EntrySummary s;
    s.id = id;
    s.path = path;
    s.fingerprint = payload.at("fingerprint").asString();
    if (const Json *label = payload.get("label"))
        s.label = label->asString();
    s.command = payload.at("command").asString();
    s.runCount = static_cast<int>(payload.at("runs").size());
    // v2 entries carry a profiles array aligned with runs; a v1
    // entry (or a null slot) simply has no profile for that run.
    if (const Json *profiles = payload.get("profiles"))
        for (size_t i = 0; i < profiles->size(); ++i)
            if (!profiles->at(i).isNull())
                ++s.profileCount;
    // The config's tier list, for machine-readable listings. Guarded:
    // a hand-built or future entry without one still lists.
    if (const Json *config = payload.get("config"))
        if (const Json *tiers = config->get("tiers"))
            for (size_t i = 0; i < tiers->size(); ++i)
                s.tiers.push_back(tiers->at(i).asString());
    std::error_code ec;
    uintmax_t size = fs::file_size(path, ec);
    s.sizeBytes = ec ? 0 : static_cast<uint64_t>(size);
    return s;
}

} // namespace

RunArchive::RunArchive(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("archive directory must not be empty");
}

std::string
RunArchive::entryPath(int id) const
{
    return dir_ + "/" + entryFileName(id);
}

std::string
RunArchive::lockPath() const
{
    return dir_ + "/" + kLockFileName;
}

int
RunArchive::append(const Json &config, const std::string &label,
                   const std::string &command,
                   const std::vector<harness::RunResult> &runs,
                   const std::vector<Json> &profiles)
{
    if (runs.empty())
        fatal("refusing to archive an entry with no runs");
    if (!profiles.empty() && profiles.size() != runs.size())
        fatal("profiles (%zu) do not align with runs (%zu)",
              profiles.size(), runs.size());
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create archive directory %s: %s", dir_.c_str(),
              ec.message().c_str());

    // The scan-then-write below is what the lock protects: two
    // unlocked appenders would compute the same next id and one
    // entry would silently clobber the other.
    FileLock lock = FileLock::acquire(lockPath());
    if (!lock.held())
        fatal("archive %s is locked by another process (lock file "
              "%s); giving up after retries",
              dir_.c_str(), lockPath().c_str());

    int maxId = 0;
    std::vector<std::string> staleTmp;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        std::string name = e.path().filename().string();
        maxId = std::max(maxId, anyIdFromName(name));
        if (isTmpName(name))
            staleTmp.push_back(e.path().string());
    }
    if (ec)
        fatal("cannot scan archive directory %s: %s", dir_.c_str(),
              ec.message().c_str());
    int id = maxId + 1;

    // Sweep staging files orphaned by interrupted writes — but only
    // now, after their ids were counted above, so a crash between
    // staging and rename can never cause an id to be handed out
    // twice.
    for (const auto &tmp : staleTmp)
        if (fsOps().unlink(tmp.c_str()) == 0)
            warn("removed orphaned temporary %s left by an "
                 "interrupted write",
                 tmp.c_str());

    Json payload = Json::object();
    payload.set("schema", kArchiveEntrySchema);
    payload.set("version", kArchiveEntryVersion);
    payload.set("fingerprint", fingerprintJson(config));
    if (!label.empty())
        payload.set("label", label);
    payload.set("command", command);
    payload.set("config", config);
    Json rs = Json::array();
    for (const auto &r : runs)
        rs.push(harness::runToJson(r));
    payload.set("runs", std::move(rs));
    if (!profiles.empty()) {
        Json ps = Json::array();
        for (const auto &p : profiles)
            ps.push(p);
        payload.set("profiles", std::move(ps));
    }
    writeStateFile(entryPath(id), payload);
    return id;
}

ScanResult
RunArchive::scan() const
{
    ScanResult out;
    std::error_code ec;
    std::vector<std::pair<int, std::string>> files;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        std::string name = e.path().filename().string();
        if (isQuarantineName(name))
            ++out.quarantinedPresent;
        int id = entryIdFromName(name);
        if (id >= 0)
            files.emplace_back(id, e.path().string());
    }
    if (ec)
        fatal("cannot scan archive directory %s: %s", dir_.c_str(),
              ec.message().c_str());
    std::sort(files.begin(), files.end());

    // The lock is taken lazily, only if something needs
    // quarantining: clean archives — the overwhelmingly common case —
    // scan without touching the lock at all.
    FileLock lock;
    bool lockTried = false;

    for (const auto &[id, path] : files) {
        try {
            StateLoad load = loadStateFile(path);
            if (load.usedBackup)
                warn("%s", load.warning.c_str());
            const Json *schema = load.payload.get("schema");
            const Json *version = load.payload.get("version");
            if (schema && schema->asString() == kArchiveEntrySchema &&
                version && version->asInt() > kArchiveEntryVersion) {
                // Written by a future build: perfectly healthy data
                // this build cannot interpret. Skip, never
                // quarantine — downgrades must not eat archives.
                warn("%s has %s version %lld; this build reads "
                     "versions %d..%d, leaving it in place",
                     path.c_str(), kArchiveEntrySchema,
                     static_cast<long long>(version->asInt()),
                     kArchiveEntryMinVersion, kArchiveEntryVersion);
                continue;
            }
            checkEntrySchema(load.payload, path);
            out.entries.push_back(
                summaryFromPayload(load.payload, id, path));
        } catch (const FatalError &e) {
            // Both the file and its backup are unusable (or its
            // schema is foreign): quarantine instead of aborting the
            // scan — one rotten entry must not hide the healthy rest
            // of the archive. The rename keeps the bytes around for
            // forensics while taking the file out of future scans.
            if (!lockTried) {
                lockTried = true;
                lock = FileLock::tryAcquire(lockPath());
            }
            if (!lock.held()) {
                warn("archive entry %s is unusable (%s); the archive "
                     "is locked by a writer, leaving the file in "
                     "place (read-only scan)",
                     path.c_str(), e.what());
                continue;
            }
            std::string aside = quarantineTarget(path);
            if (fsOps().rename(path.c_str(), aside.c_str()) == 0) {
                warn("archive entry %s is unusable (%s); "
                     "quarantined as %s",
                     path.c_str(), e.what(), aside.c_str());
                out.quarantined.push_back(aside);
                ++out.quarantinedPresent;
            } else {
                warn("archive entry %s is unusable (%s) and could "
                     "not be quarantined: %s",
                     path.c_str(), e.what(), std::strerror(errno));
            }
        }
    }
    return out;
}

Entry
RunArchive::load(const EntrySummary &summary) const
{
    StateLoad stateLoad = loadStateFile(summary.path);
    if (stateLoad.usedBackup)
        warn("%s", stateLoad.warning.c_str());
    const Json &payload = stateLoad.payload;
    checkEntrySchema(payload, summary.path);
    Entry entry;
    entry.summary = summaryFromPayload(payload, summary.id,
                                       summary.path);
    entry.config = payload.at("config");
    const Json &rs = payload.at("runs");
    for (size_t i = 0; i < rs.size(); ++i)
        entry.runs.push_back(harness::runFromJson(rs.at(i)));
    if (const Json *ps = payload.get("profiles")) {
        for (size_t i = 0; i < ps->size(); ++i)
            entry.profiles.push_back(ps->at(i));
        // Keep the alignment invariant even for a short array
        // written by a buggy producer: pad with nulls, never guess.
        while (entry.profiles.size() < entry.runs.size())
            entry.profiles.push_back(Json());
    }
    return entry;
}

Entry
RunArchive::resolve(const std::string &ref) const
{
    ScanResult scanned = scan();
    const auto &entries = scanned.entries;
    if (entries.empty())
        fatal("archive %s holds no usable entries", dir_.c_str());

    const EntrySummary *hit = nullptr;
    size_t back = 0;
    bool isHead = ref == "HEAD";
    if (!isHead && startsWith(ref, "HEAD~")) {
        std::string digits = ref.substr(5);
        isHead = !digits.empty() &&
            digits.find_first_not_of("0123456789") ==
                std::string::npos;
        if (isHead)
            back = static_cast<size_t>(
                std::strtoul(digits.c_str(), nullptr, 10));
    }
    if (isHead) {
        if (back >= entries.size())
            fatal("ref '%s' reaches past the oldest of %zu "
                  "archived entries",
                  ref.c_str(), entries.size());
        hit = &entries[entries.size() - 1 - back];
    } else if (!ref.empty() &&
               ref.find_first_not_of("0123456789") ==
                   std::string::npos) {
        int id = static_cast<int>(
            std::strtol(ref.c_str(), nullptr, 10));
        for (const auto &e : entries)
            if (e.id == id)
                hit = &e;
        if (!hit)
            fatal("no archive entry with id %d in %s", id,
                  dir_.c_str());
    } else {
        // Labels may be re-used across entries; the newest wins, so a
        // rolling label like "baseline" always names the latest run
        // that was blessed with it.
        for (const auto &e : entries)
            if (e.label == ref)
                hit = &e;
        if (!hit) {
            std::vector<std::string> labels;
            for (const auto &e : entries)
                if (!e.label.empty())
                    labels.push_back(e.label);
            fatal("no archive entry labeled '%s' in %s "
                  "(labels: %s; ids 1..%d; HEAD/HEAD~N)",
                  ref.c_str(), dir_.c_str(),
                  labels.empty() ? "none"
                                 : join(labels, ", ").c_str(),
                  entries.back().id);
        }
    }
    return load(*hit);
}

int
RunArchive::prune(int keep)
{
    if (keep < 1)
        fatal("prune must keep at least one entry (got %d)", keep);
    // Lock before scanning: two unlocked pruners would race to
    // remove the same files and the loser would die on a vanished
    // path. Holding the lock also makes the in-process scan() below
    // read-only (its lazy tryAcquire fails), which is correct —
    // entries it cannot read are not prunable anyway.
    FileLock lock = FileLock::acquire(lockPath());
    if (!lock.held())
        fatal("archive %s is locked by another process (lock file "
              "%s); giving up after retries",
              dir_.c_str(), lockPath().c_str());
    ScanResult scanned = scan();
    int removed = 0;
    size_t n = scanned.entries.size();
    for (size_t i = 0; i + static_cast<size_t>(keep) < n; ++i) {
        const auto &e = scanned.entries[i];
        if (fsOps().unlink(e.path.c_str()) != 0)
            fatal("cannot remove archive entry %s: %s",
                  e.path.c_str(), std::strerror(errno));
        // best-effort: a missing backup is no error
        (void)fsOps().unlink(stateBackupPath(e.path).c_str());
        ++removed;
    }
    return removed;
}

} // namespace archive
} // namespace rigor
