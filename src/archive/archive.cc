#include "archive/archive.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "harness/report.hh"
#include "support/durable_io.hh"
#include "support/fingerprint.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"

namespace fs = std::filesystem;

namespace rigor {
namespace archive {

namespace {

constexpr const char *kEntryPrefix = "entry-";
constexpr const char *kEntrySuffix = ".json";
constexpr const char *kQuarantineSuffix = ".quarantined";

/**
 * Parse an entry id out of a filename of the exact form
 * entry-NNNNNN.json; returns -1 for everything else (backups,
 * temporaries, quarantined files, stray data).
 */
int
entryIdFromName(const std::string &name)
{
    if (!startsWith(name, kEntryPrefix) ||
        !endsWith(name, kEntrySuffix))
        return -1;
    std::string digits = name.substr(
        std::strlen(kEntryPrefix),
        name.size() - std::strlen(kEntryPrefix) -
            std::strlen(kEntrySuffix));
    if (digits.empty())
        return -1;
    int id = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return -1;
        id = id * 10 + (c - '0');
    }
    return id;
}

/**
 * Any id-bearing filename, *including* quarantined and backup copies.
 * append() uses this so a pruned-then-quarantined id is never reused
 * for a new entry (refs must stay unambiguous forever).
 */
int
anyIdFromName(std::string name)
{
    for (const char *suffix : {kQuarantineSuffix, ".bak", ".tmp"})
        if (endsWith(name, suffix))
            name.resize(name.size() - std::strlen(suffix));
    return entryIdFromName(name);
}

/** Validate an entry payload's inner schema against this build. */
void
checkEntrySchema(const Json &payload, const std::string &path)
{
    const Json *schema = payload.get("schema");
    if (!schema || schema->asString() != kArchiveEntrySchema)
        fatal("%s is not a %s document", path.c_str(),
              kArchiveEntrySchema);
    int64_t v = payload.at("version").asInt();
    if (v < kArchiveEntryMinVersion || v > kArchiveEntryVersion)
        fatal("%s has %s version %lld; this build reads versions "
              "%d..%d",
              path.c_str(), kArchiveEntrySchema,
              static_cast<long long>(v), kArchiveEntryMinVersion,
              kArchiveEntryVersion);
}

EntrySummary
summaryFromPayload(const Json &payload, int id,
                   const std::string &path)
{
    EntrySummary s;
    s.id = id;
    s.path = path;
    s.fingerprint = payload.at("fingerprint").asString();
    if (const Json *label = payload.get("label"))
        s.label = label->asString();
    s.command = payload.at("command").asString();
    s.runCount = static_cast<int>(payload.at("runs").size());
    // v2 entries carry a profiles array aligned with runs; a v1
    // entry (or a null slot) simply has no profile for that run.
    if (const Json *profiles = payload.get("profiles"))
        for (size_t i = 0; i < profiles->size(); ++i)
            if (!profiles->at(i).isNull())
                ++s.profileCount;
    std::error_code ec;
    uintmax_t size = fs::file_size(path, ec);
    s.sizeBytes = ec ? 0 : static_cast<uint64_t>(size);
    return s;
}

} // namespace

RunArchive::RunArchive(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("archive directory must not be empty");
}

std::string
RunArchive::entryPath(int id) const
{
    return dir_ + "/" + strprintf("%s%06d%s", kEntryPrefix, id,
                                  kEntrySuffix);
}

int
RunArchive::append(const Json &config, const std::string &label,
                   const std::string &command,
                   const std::vector<harness::RunResult> &runs,
                   const std::vector<Json> &profiles)
{
    if (runs.empty())
        fatal("refusing to archive an entry with no runs");
    if (!profiles.empty() && profiles.size() != runs.size())
        fatal("profiles (%zu) do not align with runs (%zu)",
              profiles.size(), runs.size());
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create archive directory %s: %s", dir_.c_str(),
              ec.message().c_str());

    int maxId = 0;
    for (const auto &e : fs::directory_iterator(dir_, ec))
        maxId = std::max(maxId,
                         anyIdFromName(e.path().filename().string()));
    if (ec)
        fatal("cannot scan archive directory %s: %s", dir_.c_str(),
              ec.message().c_str());
    int id = maxId + 1;

    Json payload = Json::object();
    payload.set("schema", kArchiveEntrySchema);
    payload.set("version", kArchiveEntryVersion);
    payload.set("fingerprint", fingerprintJson(config));
    if (!label.empty())
        payload.set("label", label);
    payload.set("command", command);
    payload.set("config", config);
    Json rs = Json::array();
    for (const auto &r : runs)
        rs.push(harness::runToJson(r));
    payload.set("runs", std::move(rs));
    if (!profiles.empty()) {
        Json ps = Json::array();
        for (const auto &p : profiles)
            ps.push(p);
        payload.set("profiles", std::move(ps));
    }
    writeStateFile(entryPath(id), payload);
    return id;
}

ScanResult
RunArchive::scan() const
{
    ScanResult out;
    std::error_code ec;
    std::vector<std::pair<int, std::string>> files;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        std::string name = e.path().filename().string();
        int id = entryIdFromName(name);
        if (id >= 0)
            files.emplace_back(id, e.path().string());
    }
    if (ec)
        fatal("cannot scan archive directory %s: %s", dir_.c_str(),
              ec.message().c_str());
    std::sort(files.begin(), files.end());

    for (const auto &[id, path] : files) {
        try {
            StateLoad load = loadStateFile(path);
            if (load.usedBackup)
                warn("%s", load.warning.c_str());
            checkEntrySchema(load.payload, path);
            out.entries.push_back(
                summaryFromPayload(load.payload, id, path));
        } catch (const FatalError &e) {
            // Both the file and its backup are unusable (or its
            // schema is foreign): quarantine instead of aborting the
            // scan — one rotten entry must not hide the healthy rest
            // of the archive. The rename keeps the bytes around for
            // forensics while taking the file out of future scans.
            std::string aside = path + kQuarantineSuffix;
            if (std::rename(path.c_str(), aside.c_str()) == 0) {
                warn("archive entry %s is unusable (%s); "
                     "quarantined as %s",
                     path.c_str(), e.what(), aside.c_str());
                out.quarantined.push_back(aside);
            } else {
                warn("archive entry %s is unusable (%s) and could "
                     "not be quarantined: %s",
                     path.c_str(), e.what(), std::strerror(errno));
            }
        }
    }
    return out;
}

Entry
RunArchive::load(const EntrySummary &summary) const
{
    StateLoad stateLoad = loadStateFile(summary.path);
    if (stateLoad.usedBackup)
        warn("%s", stateLoad.warning.c_str());
    const Json &payload = stateLoad.payload;
    checkEntrySchema(payload, summary.path);
    Entry entry;
    entry.summary = summaryFromPayload(payload, summary.id,
                                       summary.path);
    entry.config = payload.at("config");
    const Json &rs = payload.at("runs");
    for (size_t i = 0; i < rs.size(); ++i)
        entry.runs.push_back(harness::runFromJson(rs.at(i)));
    if (const Json *ps = payload.get("profiles")) {
        for (size_t i = 0; i < ps->size(); ++i)
            entry.profiles.push_back(ps->at(i));
        // Keep the alignment invariant even for a short array
        // written by a buggy producer: pad with nulls, never guess.
        while (entry.profiles.size() < entry.runs.size())
            entry.profiles.push_back(Json());
    }
    return entry;
}

Entry
RunArchive::resolve(const std::string &ref) const
{
    ScanResult scanned = scan();
    const auto &entries = scanned.entries;
    if (entries.empty())
        fatal("archive %s holds no usable entries", dir_.c_str());

    const EntrySummary *hit = nullptr;
    size_t back = 0;
    bool isHead = ref == "HEAD";
    if (!isHead && startsWith(ref, "HEAD~")) {
        std::string digits = ref.substr(5);
        isHead = !digits.empty() &&
            digits.find_first_not_of("0123456789") ==
                std::string::npos;
        if (isHead)
            back = static_cast<size_t>(
                std::strtoul(digits.c_str(), nullptr, 10));
    }
    if (isHead) {
        if (back >= entries.size())
            fatal("ref '%s' reaches past the oldest of %zu "
                  "archived entries",
                  ref.c_str(), entries.size());
        hit = &entries[entries.size() - 1 - back];
    } else if (!ref.empty() &&
               ref.find_first_not_of("0123456789") ==
                   std::string::npos) {
        int id = static_cast<int>(
            std::strtol(ref.c_str(), nullptr, 10));
        for (const auto &e : entries)
            if (e.id == id)
                hit = &e;
        if (!hit)
            fatal("no archive entry with id %d in %s", id,
                  dir_.c_str());
    } else {
        // Labels may be re-used across entries; the newest wins, so a
        // rolling label like "baseline" always names the latest run
        // that was blessed with it.
        for (const auto &e : entries)
            if (e.label == ref)
                hit = &e;
        if (!hit) {
            std::vector<std::string> labels;
            for (const auto &e : entries)
                if (!e.label.empty())
                    labels.push_back(e.label);
            fatal("no archive entry labeled '%s' in %s "
                  "(labels: %s; ids 1..%d; HEAD/HEAD~N)",
                  ref.c_str(), dir_.c_str(),
                  labels.empty() ? "none"
                                 : join(labels, ", ").c_str(),
                  entries.back().id);
        }
    }
    return load(*hit);
}

int
RunArchive::prune(int keep)
{
    if (keep < 1)
        fatal("prune must keep at least one entry (got %d)", keep);
    ScanResult scanned = scan();
    int removed = 0;
    size_t n = scanned.entries.size();
    for (size_t i = 0; i + static_cast<size_t>(keep) < n; ++i) {
        const auto &e = scanned.entries[i];
        std::error_code ec;
        if (!fs::remove(e.path, ec) || ec)
            fatal("cannot remove archive entry %s: %s",
                  e.path.c_str(),
                  ec ? ec.message().c_str() : "unknown error");
        fs::remove(stateBackupPath(e.path), ec); // best-effort
        ++removed;
    }
    return removed;
}

} // namespace archive
} // namespace rigor
