/**
 * @file
 * The run archive: an append-only, durable store of suite/run results
 * that outlives the process that measured them.
 *
 * Every entry is one checksummed durable_io state envelope in the
 * archive directory (`entry-NNNNNN.json`), holding the
 * measurement-determining configuration, its fingerprint, and the
 * full per-invocation/per-iteration samples of every run — enough to
 * re-run any analysis offline, not just the summary numbers. Entries
 * are never modified after the append; ids grow monotonically even
 * across prunes, so a ref recorded in a lab notebook stays valid.
 *
 * A corrupted entry (truncated write, bit rot) is recovered from its
 * `.bak` when one exists; when both copies are unusable the file is
 * quarantined — renamed aside with a warning — and the scan
 * continues, so one bad entry cannot take the whole archive down.
 *
 * Mutating operations (append, prune) serialize on an advisory
 * `.lock` flock inside the directory, so two processes appending at
 * once cannot assign the same id. Reads never block on the lock:
 * a scan that would quarantine while another writer holds the lock
 * degrades to read-only and leaves the damaged file for the next
 * scan (or `rigorbench fsck`) to handle.
 */

#ifndef RIGOR_ARCHIVE_ARCHIVE_HH
#define RIGOR_ARCHIVE_ARCHIVE_HH

#include <string>
#include <vector>

#include "harness/measurement.hh"
#include "support/json.hh"

namespace rigor {
namespace archive {

/** Identity and shape of one archived entry (no samples loaded). */
struct EntrySummary
{
    /** Monotonic sequence number; never reused, even after prune. */
    int id = 0;
    /** Path of the entry file inside the archive directory. */
    std::string path;
    /** Fingerprint of the measurement-determining configuration. */
    std::string fingerprint;
    /** Optional user-chosen name ("" when unlabeled). */
    std::string label;
    /** Subcommand that produced the entry ("run" or "suite"). */
    std::string command;
    /** Number of archived (workload, tier) runs. */
    int runCount = 0;
    /** Runs carrying a behavior profile (0 for legacy entries). */
    int profileCount = 0;
    /** On-disk size of the entry file in bytes. */
    uint64_t sizeBytes = 0;
    /** Tiers the entry's configuration names (archived order). */
    std::vector<std::string> tiers;
};

/** One fully-loaded archive entry. */
struct Entry
{
    EntrySummary summary;
    /** The configuration the fingerprint was computed from. */
    Json config;
    /** Full runs, in archived order (workload, then tier). */
    std::vector<harness::RunResult> runs;
    /**
     * Behavior profiles aligned with `runs` (profiles[i] explains
     * runs[i]; null for a run whose profile is missing). Empty for
     * legacy (v1) entries — `explain` then degrades with a loud
     * per-pair note instead of guessing.
     */
    std::vector<Json> profiles;
};

/** Outcome of scanning the archive directory. */
struct ScanResult
{
    /** Valid entries in ascending id order. */
    std::vector<EntrySummary> entries;
    /** Files quarantined during this scan (renamed aside). */
    std::vector<std::string> quarantined;
    /**
     * Quarantined files the directory holds in total (earlier scans
     * and fsck runs included), so `archive list` can point at damage
     * even when this scan quarantined nothing new.
     */
    int quarantinedPresent = 0;
};

/**
 * An archive rooted at one directory. Operations are deterministic:
 * scans sort by id, so two scans of the same directory agree on every
 * platform.
 */
class RunArchive
{
  public:
    /** Open (without touching) the archive at `dir`. */
    explicit RunArchive(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Append a new entry holding `runs` measured under `config`. The
     * directory is created if missing; the entry is written through
     * the durable_io envelope (atomic replace + CRC-32) under the
     * archive lock, and orphaned `.tmp` staging files left by
     * previously interrupted writes are swept first (after their ids
     * are counted, so ids are still never reused).
     * `profiles`, when non-empty, must align with `runs` (one
     * behavior-profile document per run, explain::profileToJson).
     * @return the new entry's id.
     * @throws FatalError on I/O failure, when runs is empty, on a
     * profiles/runs length mismatch, or when the archive lock cannot
     * be acquired within the retry budget.
     */
    int append(const Json &config, const std::string &label,
               const std::string &command,
               const std::vector<harness::RunResult> &runs,
               const std::vector<Json> &profiles = {});

    /**
     * Scan the directory. Unreadable or corrupted entries (after the
     * `.bak` fallback) are quarantined with a warning instead of
     * aborting; entries whose inner schema is from a future build are
     * skipped with a warning but left in place.
     */
    ScanResult scan() const;

    /**
     * Load one entry in full (samples included).
     * @throws FatalError when the file is unusable or its schema
     * does not match this build.
     */
    Entry load(const EntrySummary &summary) const;

    /**
     * Resolve a ref to a loaded entry. Accepted forms: "HEAD" (the
     * newest entry), "HEAD~N" (N entries before the newest), a
     * decimal id, or a label (the newest entry carrying it).
     * @throws FatalError with the available refs when nothing
     * matches.
     */
    Entry resolve(const std::string &ref) const;

    /**
     * Delete all but the newest `keep` valid entries (their `.bak`
     * files included), under the archive lock. Quarantined files are
     * kept for forensics.
     * @return the number of entries removed.
     * @throws FatalError when the lock cannot be acquired within the
     * retry budget.
     */
    int prune(int keep);

    /** Path of the advisory lock file inside the archive. */
    std::string lockPath() const;

  private:
    std::string entryPath(int id) const;

    std::string dir_;
};

} // namespace archive
} // namespace rigor

#endif // RIGOR_ARCHIVE_ARCHIVE_HH
