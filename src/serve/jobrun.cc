/**
 * @file
 * Job execution (moved from tools/rigorbench.cc so the daemon and the
 * one-shot CLI share one code path — see jobrun.hh). The bodies are
 * deliberately unchanged where possible: every output byte and every
 * checkpoint byte is part of the compatibility contract with state
 * files and test goldens written before the move.
 */

#include "serve/jobrun.hh"

#include <array>
#include <cstdarg>
#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "archive/archive.hh"
#include "compare/compare.hh"
#include "explain/behavior_profile.hh"
#include "explain/explain.hh"
#include "harness/analysis.hh"
#include "harness/fault.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/durable_io.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"
#include "support/table.hh"

namespace rigor {
namespace serve {

namespace {

/** printf-style adapter over the caller's output hook. */
class Out
{
  public:
    explicit Out(
        const std::function<void(const std::string &)> &sink)
        : sink_(sink)
    {}

    __attribute__((format(printf, 2, 3))) void
    operator()(const char *fmt, ...) const
    {
        va_list ap;
        va_start(ap, fmt);
        std::string s = vstrprintf(fmt, ap);
        va_end(ap);
        sink_(s);
    }

  private:
    const std::function<void(const std::string &)> &sink_;
};

/** Everything one job execution threads through its helpers. */
struct JobEnv
{
    const JobSpec &spec;
    const JobHooks &hooks;
    Out out;

    // Observability sinks (set only when the spec requests them).
    MetricsRegistry *metrics = nullptr;
    TraceEmitter *trace = nullptr;
    const harness::FaultInjector *faults = nullptr;
};

harness::RunnerConfig
makeConfig(const JobEnv &env, vm::Tier tier)
{
    harness::RunnerConfig cfg = makeRunnerConfig(
        env.spec, tier, env.faults, env.metrics, env.trace);
    if (env.hooks.progress) {
        auto progress = env.hooks.progress;
        int total = env.spec.invocations;
        cfg.onProgress = [progress,
                          total](const harness::RunResult &r) {
            progress(r, total);
        };
    }
    return cfg;
}

// Defined with the other archive plumbing below.
void archiveAppend(const JobEnv &env,
                   const std::vector<harness::RunResult> &runs);

void
dumpOutputs(const JobEnv &env, const harness::RunResult &run)
{
    writeRunArtifacts(env.spec, run, [&env](const std::string &s) {
        env.out("%s", s.c_str());
    });
}

/**
 * inform()/warn() plus a mirror of the message into the trace as a
 * "log" instant, so suite progress lands next to the spans it
 * narrates. The runner mirrors its own messages the same way
 * (caller-owned mirroring keeps serial and parallel traces
 * byte-identical; a sink cannot, because parallel workers buffer
 * their messages and replay them later). The suite heartbeat goes
 * through here — i.e. through the LogSink seam — so a daemon job's
 * heartbeats land in the job's captured log stream, never interleaved
 * into another client's output, and --quiet silences them entirely.
 */
__attribute__((format(printf, 3, 4))) void
logTraced(const JobEnv &env, LogLevel level, const char *fmt, ...)
{
    if (env.spec.quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (env.trace)
        env.trace->logInstant(logLevelName(level), msg);
    if (level == LogLevel::Warn)
        warn("%s", msg.c_str());
    else
        inform("%s", msg.c_str());
}

/**
 * The tiers a suite measures, in execution order. The order is part
 * of the resume-state contract: checkpoints identify the tier in
 * flight by name, and a resumed process walks this list to find where
 * the interrupted one stopped.
 */
constexpr vm::Tier kSuiteTiers[] = {vm::Tier::Interp,
                                    vm::Tier::Adaptive,
                                    vm::Tier::Threaded};
constexpr size_t kSuiteTierCount =
    sizeof(kSuiteTiers) / sizeof(kSuiteTiers[0]);

/**
 * The archived configuration: the resume fingerprint plus what it
 * leaves implicit — which workloads ran on which tiers, and the run
 * schema version. Two entries with equal fingerprints measured the
 * same experiment, so `compare` can promise that any difference is a
 * performance change.
 */
Json
archiveConfigJson(const JobSpec &spec)
{
    Json c = configJson(spec);
    c.set("schema_version", kRunSchemaVersion);
    Json wls = Json::array();
    Json tiers = Json::array();
    if (spec.command == "suite") {
        for (const auto &w : workloads::suite())
            wls.push(w.name);
        for (vm::Tier tier : kSuiteTiers)
            tiers.push(vm::tierName(tier));
    } else {
        wls.push(spec.workload);
        tiers.push(vm::tierName(spec.tier));
    }
    c.set("workloads", std::move(wls));
    c.set("tiers", std::move(tiers));
    return c;
}

/**
 * Append completed runs to --archive DIR and say where they went.
 * Each run is archived with its behavior profile so a later
 * `explain` can attribute measured differences; the profile is a
 * pure function of the committed run, hence byte-identical across
 * repeats and --jobs values. (--archive excludes --resume, so runs
 * here always come from this process with live VM statistics.)
 */
void
archiveAppend(const JobEnv &env,
              const std::vector<harness::RunResult> &runs)
{
    archive::RunArchive ar(env.spec.archiveDir);
    std::vector<Json> profiles;
    for (const auto &r : runs) {
        // Only the uarch/clock parameters matter for the profile;
        // they are tier- and fault-independent.
        harness::RunnerConfig cfg = makeRunnerConfig(
            env.spec, r.tier, nullptr, nullptr, nullptr);
        profiles.push_back(
            explain::profileToJson(explain::buildProfile(r, cfg)));
    }
    int id = ar.append(archiveConfigJson(env.spec), env.spec.label,
                       env.spec.command, runs, profiles);
    env.out("archived as #%d in %s (%zu run(s) with behavior "
            "profiles)\n",
            id, env.spec.archiveDir.c_str(), runs.size());
}

/**
 * Writes the suite's checksummed resume state (durable_io envelope).
 * A checkpoint captures everything a resumed process needs to
 * continue byte-identically: the completed-workload table, the
 * partial run(s) of the workload in flight, and snapshots of the
 * shared metrics registry and trace emitter taken at the same commit
 * boundary (the runner invokes writeInProgress on the committing
 * thread while the shared sinks are quiescent, so the snapshot is
 * race-free at any --jobs value).
 */
class SuiteCheckpointer
{
  public:
    SuiteCheckpointer(const JobEnv &env,
                      const harness::SuiteState &state)
        : env_(env), state_(state)
    {}

    /** A workload's measurement is starting (no tier in flight yet). */
    void beginWorkload(const std::string &name)
    {
        currentName_ = name;
        currentTier_.clear();
        doneTiers_.clear();
    }

    /** The named tier's run is starting; it is now the one in flight. */
    void beginTier(vm::Tier tier) { currentTier_ = vm::tierName(tier); }

    /**
     * The in-flight tier's run finished; `run` outlives the
     * remaining tier runs of this workload.
     */
    void setTierDone(const harness::RunResult *run)
    {
        doneTiers_.emplace_back(vm::tierName(run->tier), run);
        currentTier_.clear();
    }

    /** The workload finished (or failed); nothing is in flight. */
    void endWorkload()
    {
        currentName_.clear();
        currentTier_.clear();
        doneTiers_.clear();
    }

    /** Checkpoint between workloads (after a completed one commits). */
    void writeCompleted() { write(nullptr); }

    /** Mid-run checkpoint (the runner's onCheckpoint callback). */
    void writeInProgress(const harness::RunResult &run)
    {
        write(&run);
    }

  private:
    void
    write(const harness::RunResult *current)
    {
        Json payload = Json::object();
        payload.set("kind", "suite");
        payload.set("config", configJson(env_.spec));
        payload.set("suite", harness::suiteStateToJson(state_));
        if (current) {
            Json ip = Json::object();
            ip.set("name", currentName_);
            // Completed tiers first, then the partial run of the tier
            // in flight — each under its tier name, so a resumed
            // process can walk kSuiteTiers and find where this one
            // stopped.
            for (const auto &[tier, run] : doneTiers_)
                ip.set(tier, harness::runToJson(*run));
            ip.set(currentTier_, harness::runToJson(*current));
            payload.set("in_progress", std::move(ip));
        }
        if (env_.metrics)
            payload.set("metrics", env_.metrics->toJson());
        if (env_.trace)
            payload.set("trace", env_.trace->checkpointJson());
        writeStateFile(env_.spec.resumePath, payload);
    }

    const JobEnv &env_;
    const harness::SuiteState &state_;
    std::string currentName_;
    /** Tier name of the run in flight (empty between tier runs). */
    std::string currentTier_;
    /** Completed (tier name, run) pairs of the current workload. */
    std::vector<std::pair<std::string, const harness::RunResult *>>
        doneTiers_;
};

/** Outcome of measuring (or resuming) one suite workload. */
struct SuiteStep
{
    harness::SuiteWorkloadState ws;
    /** True when an interrupt stopped the measurement mid-way. */
    bool interrupted = false;
    /** Full runs, kept only when the suite is being archived. */
    std::vector<harness::RunResult> runs;
};

/** Runner config for one suite run, wired to the checkpointer. */
harness::RunnerConfig
suiteRunConfig(const JobEnv &env, vm::Tier tier,
               SuiteCheckpointer *ckpt)
{
    harness::RunnerConfig cfg = makeConfig(env, tier);
    if (ckpt) {
        cfg.checkpointEvery = env.spec.checkpointEvery;
        cfg.onCheckpoint = [ckpt](const harness::RunResult &r) {
            ckpt->writeInProgress(r);
        };
    }
    return cfg;
}

/** Estimates and bookkeeping once all tier runs are complete. */
void
finishWorkloadState(harness::SuiteWorkloadState &ws,
                    const harness::RunResult &interp,
                    const harness::RunResult &jit,
                    const harness::RunResult &threaded)
{
    ws.quarantined = interp.quarantined || jit.quarantined ||
        threaded.quarantined;
    ws.failureCount = static_cast<int>(interp.failures.size() +
                                       jit.failures.size() +
                                       threaded.failures.size());
    ws.modelledMs = interp.totalModelledMs() + jit.totalModelledMs() +
        threaded.totalModelledMs();
    if (interp.invocations.size() < 2 || jit.invocations.size() < 2 ||
        threaded.invocations.size() < 2) {
        ws.failed = true;
        return;
    }
    ws.interpMs = harness::rigorousEstimate(interp).ci.estimate;
    ws.adaptiveMs = harness::rigorousEstimate(jit).ci.estimate;
    ws.threadedMs = harness::rigorousEstimate(threaded).ci.estimate;
    ws.speedup = harness::rigorousSpeedup(interp, jit);
    ws.threadedSpeedup = harness::rigorousSpeedup(interp, threaded);
}

/**
 * Measure one workload on every suite tier. Degrades gracefully:
 * failures and quarantines are recorded in the returned state instead
 * of propagating, so one broken workload cannot sink the suite.
 */
SuiteStep
runSuiteWorkload(const workloads::WorkloadSpec &w, const JobEnv &env,
                 SuiteCheckpointer *ckpt)
{
    SuiteStep step;
    step.ws.name = w.name;
    if (ckpt)
        ckpt->beginWorkload(w.name);
    try {
        // Deque, not vector: setTierDone keeps a pointer into the
        // container, so earlier runs must not move when later tiers
        // are appended.
        std::deque<harness::RunResult> runs;
        for (vm::Tier tier : kSuiteTiers) {
            if (ckpt)
                ckpt->beginTier(tier);
            runs.push_back(harness::runExperiment(
                w, suiteRunConfig(env, tier, ckpt)));
            if (runs.back().interrupted) {
                step.interrupted = true;
                return step;
            }
            if (ckpt)
                ckpt->setTierDone(&runs.back());
        }
        if (ckpt)
            ckpt->endWorkload();
        finishWorkloadState(step.ws, runs[0], runs[1], runs[2]);
        if (!env.spec.archiveDir.empty())
            for (auto &r : runs)
                step.runs.push_back(std::move(r));
    } catch (const FatalError &) {
        // Infrastructure failure (a checkpoint write died on a full
        // disk, say), not a workload failure: recording it as
        // "workload failed" would let the suite carry on without the
        // durability the user asked for. Abort loudly instead.
        throw;
    } catch (const std::exception &e) {
        if (ckpt)
            ckpt->endWorkload();
        logTraced(env, LogLevel::Warn, "workload %s failed: %s",
                  w.name.c_str(), e.what());
        step.ws.failed = true;
    }
    return step;
}

/** A checkpointed run is done once every slot ran (or quarantine). */
bool
runComplete(const harness::RunResult &run, const JobSpec &spec)
{
    return run.quarantined ||
        run.invocationsAttempted >= spec.invocations;
}

/**
 * When --trace is given on resume but the checkpoint carried no trace
 * snapshot (the interrupted process ran without --trace), the restored
 * partial run has no open workload span; open one so the span nesting
 * resumeExperiment expects holds. The resulting trace is well formed
 * but starts mid-suite — byte-identity needs identical flags across
 * the interruption, which the config fingerprint cannot enforce for
 * observability sinks.
 */
void
ensureWorkloadSpanOpen(const JobEnv &env,
                       const workloads::WorkloadSpec &w,
                       const harness::RunResult &run)
{
    if (!env.trace || env.trace->openSpans() > 1)
        return;
    Json args = Json::object();
    args.set("tier", vm::tierName(run.tier));
    args.set("size", run.size);
    env.trace->beginSpan(w.name, "workload", std::move(args));
}

/**
 * Continue the workload a checkpoint left in flight. The partial
 * run(s) come from the checkpoint's in_progress record; invocation
 * seeds are pure functions of (seed, slot, attempt), so extending the
 * restored run reproduces exactly what the uninterrupted run would
 * have measured — estimates, metrics and trace come out
 * byte-identical.
 */
SuiteStep
resumeSuiteWorkload(const workloads::WorkloadSpec &w,
                    const JobEnv &env, SuiteCheckpointer *ckpt,
                    const Json &ip)
{
    SuiteStep step;
    step.ws.name = w.name;
    // Deserialize the checkpointed partial run(s) before entering the
    // degrade-gracefully region: a record that cannot be restored
    // (e.g. an unknown tier string in a hand-edited file) means the
    // checkpoint itself cannot be trusted, so the resume must abort
    // loudly instead of re-measuring the workload as merely "failed".
    std::array<std::optional<harness::RunResult>, kSuiteTierCount>
        restored;
    for (size_t i = 0; i < kSuiteTierCount; ++i)
        if (const Json *tj = ip.get(vm::tierName(kSuiteTiers[i])))
            restored[i] = harness::runFromJson(*tj);
    if (ckpt)
        ckpt->beginWorkload(w.name);
    try {
        // Deque for pointer stability, as in runSuiteWorkload.
        std::deque<harness::RunResult> runs;
        for (size_t i = 0; i < kSuiteTierCount; ++i) {
            vm::Tier tier = kSuiteTiers[i];
            if (restored[i]) {
                runs.push_back(std::move(*restored[i]));
                auto &run = runs.back();
                if (!runComplete(run, env.spec)) {
                    ensureWorkloadSpanOpen(env, w, run);
                    if (ckpt)
                        ckpt->beginTier(tier);
                    harness::resumeExperiment(
                        w, suiteRunConfig(env, tier, ckpt), run);
                    if (run.interrupted) {
                        step.interrupted = true;
                        return step;
                    }
                }
                // A restored-complete run still has its workload span
                // open in the restored trace (the checkpoint fired at
                // the final commit boundary, before the span closed);
                // emit the close the uninterrupted run would have
                // emitted. Only when the next tier's run had not
                // started yet, though: once it has, this tier's span
                // was closed before the checkpoint and the open span
                // belongs to the next tier's run.
                bool nextRestored = i + 1 < kSuiteTierCount &&
                    restored[i + 1].has_value();
                if (env.trace && !nextRestored)
                    env.trace->endSpansTo(1);
            } else {
                if (ckpt)
                    ckpt->beginTier(tier);
                runs.push_back(harness::runExperiment(
                    w, suiteRunConfig(env, tier, ckpt)));
                if (runs.back().interrupted) {
                    step.interrupted = true;
                    return step;
                }
            }
            if (ckpt)
                ckpt->setTierDone(&runs.back());
        }
        if (ckpt)
            ckpt->endWorkload();
        finishWorkloadState(step.ws, runs[0], runs[1], runs[2]);
    } catch (const FatalError &) {
        // As in runSuiteWorkload: a dead checkpoint write must stop
        // the suite, not degrade to a "failed" workload.
        throw;
    } catch (const std::exception &e) {
        if (ckpt)
            ckpt->endWorkload();
        logTraced(env, LogLevel::Warn, "workload %s failed: %s",
                  w.name.c_str(), e.what());
        step.ws.failed = true;
    }
    return step;
}

int
runRunJob(JobEnv &env)
{
    auto run = harness::runExperiment(env.spec.workload,
                                      makeConfig(env, env.spec.tier));
    env.out("%s", renderEstimate(run).c_str());
    dumpOutputs(env, run);
    if (run.interrupted)
        return kExitInterrupted;
    if (run.invocations.empty())
        return kExitFailure;
    // Only completed runs are archived: a partial run would later
    // compare as if it were the whole measurement.
    if (!env.spec.archiveDir.empty())
        archiveAppend(env, {run});
    return kExitSuccess;
}

int
runSuiteJob(JobEnv &env)
{
    const JobSpec &spec = env.spec;
    harness::SuiteState state;
    state.seed = spec.seed;
    state.invocations = spec.invocations;
    state.iterations = spec.iterations;

    std::unique_ptr<SuiteCheckpointer> ckpt;
    Json inProgress;  // null unless a checkpoint left a run in flight
    bool resuming = false;
    if (!spec.resumePath.empty()) {
        ckpt = std::make_unique<SuiteCheckpointer>(env, state);
        if (stateFileExists(spec.resumePath)) {
            StateLoad load = loadStateFile(spec.resumePath);
            if (load.usedBackup)
                warn("%s", load.warning.c_str());
            const Json &payload = load.payload;
            if (!payload.has("kind") ||
                payload.at("kind").asString() != "suite")
                fatal("%s does not hold suite resume state",
                      spec.resumePath.c_str());
            Json current = configJson(spec);
            if (payload.at("config").dump() != current.dump())
                fatal("%s was recorded with a different "
                      "configuration; refusing to mix incomparable "
                      "measurements\n  recorded: %s\n  current:  %s",
                      spec.resumePath.c_str(),
                      payload.at("config").dump().c_str(),
                      current.dump().c_str());
            state = harness::suiteStateFromJson(payload.at("suite"));
            if (env.metrics)
                if (const Json *m = payload.get("metrics"))
                    env.metrics->restoreFromJson(*m);
            if (env.trace)
                if (const Json *t = payload.get("trace"))
                    env.trace->restoreCheckpoint(*t);
            if (const Json *ip = payload.get("in_progress"))
                inProgress = *ip;
            resuming = true;
            // Plain inform(), not logTraced(): the bookkeeping
            // message must not land in the trace, or a resumed trace
            // would differ from an uninterrupted one.
            if (!spec.quiet)
                inform("resuming from %s: %zu workload(s) already "
                       "done%s",
                       spec.resumePath.c_str(),
                       state.workloads.size(),
                       inProgress.isNull() ? ""
                                           : ", one in progress");
        }
    }

    // A restored trace checkpoint already has the suite span open.
    if (env.trace && env.trace->openSpans() == 0)
        env.trace->beginSpan("suite", "harness");

    // Heartbeat bookkeeping: long sweeps print one progress line per
    // workload so a terminal (or a daemon client's event stream)
    // shows where the suite is and how much modelled time and how
    // many failures have accumulated.
    size_t total = workloads::suite().size();
    size_t done = 0;
    double modelledMsTotal = 0.0;
    int failuresTotal = 0;
    bool interrupted = false;
    std::vector<harness::RunResult> archiveRuns;
    for (const auto &w : workloads::suite()) {
        ++done;
        if (resuming && state.find(w.name)) {
            const auto *ws = state.find(w.name);
            modelledMsTotal += ws->modelledMs;
            failuresTotal += ws->failureCount;
            continue;
        }
        // Poll between workloads too, so a signal caught outside a
        // run (e.g. while estimates were computed) stops the suite
        // before more measurement work starts.
        if (interruptRequested()) {
            interrupted = true;
            break;
        }
        SuiteStep step;
        if (!inProgress.isNull() &&
            inProgress.at("name").asString() == w.name) {
            Json ip = std::move(inProgress);
            inProgress = Json();
            step = resumeSuiteWorkload(w, env, ckpt.get(), ip);
        } else {
            step = runSuiteWorkload(w, env, ckpt.get());
        }
        if (step.interrupted) {
            // The final checkpoint was already written at the commit
            // boundary that observed the interrupt (with the partial
            // run attached); writing another here would capture
            // post-run state instead.
            interrupted = true;
            break;
        }
        for (auto &r : step.runs)
            archiveRuns.push_back(std::move(r));
        state.workloads.push_back(std::move(step.ws));
        const auto &ws = state.workloads.back();
        modelledMsTotal += ws.modelledMs;
        failuresTotal += ws.failureCount;
        logTraced(env, LogLevel::Info,
                  "suite [%zu/%zu] %s: %s; %.1f ms modelled, "
                  "%d failure(s) so far",
                  done, total, w.name.c_str(),
                  ws.quarantined ? "quarantined"
                      : ws.failed ? "failed"
                                  : "ok",
                  modelledMsTotal, failuresTotal);
        if (env.metrics) {
            env.metrics->gauge("suite.workloads_done")
                .set(static_cast<double>(done));
            env.metrics->gauge("suite.modelled_ms_total")
                .set(modelledMsTotal);
        }
        if (ckpt)
            ckpt->writeCompleted();
    }

    if (env.trace)
        env.trace->endSpansTo(0);

    Table t({"benchmark", "interp ms", "adaptive ms", "threaded ms",
             "adaptive speedup (95% CI)", "sig",
             "threaded speedup (95% CI)", "sig"});
    std::vector<harness::SpeedupResult> speedups;
    std::vector<harness::SpeedupResult> threadedSpeedups;
    int degraded = 0;
    for (const auto &w : workloads::suite()) {
        const auto *ws = state.find(w.name);
        if (!ws)
            continue;
        if (ws->failed) {
            t.addRow({ws->name, "-", "-", "-",
                      ws->quarantined ? "(quarantined)" : "(failed)",
                      "-", "-", "-"});
            ++degraded;
            continue;
        }
        speedups.push_back(ws->speedup);
        threadedSpeedups.push_back(ws->threadedSpeedup);
        t.addRow({ws->name, fmtDouble(ws->interpMs, 4),
                  fmtDouble(ws->adaptiveMs, 4),
                  fmtDouble(ws->threadedMs, 4),
                  harness::formatCi(ws->speedup.ci, 2),
                  ws->speedup.significant ? "y" : "n",
                  harness::formatCi(ws->threadedSpeedup.ci, 2),
                  ws->threadedSpeedup.significant ? "y" : "n"});
        if (ws->quarantined || ws->failureCount > 0)
            ++degraded;
    }
    env.out("%s", t.render().c_str());
    if (!speedups.empty()) {
        auto geo = harness::geomeanSpeedup(speedups);
        env.out("geomean speedup (adaptive over interp): %s\n",
                harness::formatCi(geo, 2).c_str());
        auto tgeo = harness::geomeanSpeedup(threadedSpeedups);
        env.out("geomean speedup (threaded over interp): %s\n",
                harness::formatCi(tgeo, 2).c_str());
    }

    if (degraded > 0) {
        Table ft({"benchmark", "status", "failures"});
        for (const auto &ws : state.workloads) {
            if (!ws.failed && !ws.quarantined &&
                ws.failureCount == 0)
                continue;
            const char *status = ws.quarantined ? "quarantined"
                : ws.failed                     ? "failed"
                                                : "degraded";
            ft.addRow({ws.name, status,
                       std::to_string(ws.failureCount)});
        }
        env.out("\nfailure summary (%d of %zu workloads "
                "affected):\n%s",
                degraded, state.workloads.size(),
                ft.render().c_str());
    }

    if (interrupted) {
        if (!spec.quiet) {
            if (!spec.resumePath.empty())
                inform("interrupted; resume with: rigorbench suite "
                       "--resume %s",
                       spec.resumePath.c_str());
            else
                inform("interrupted; rerun with --resume FILE to "
                       "make interruptions resumable");
        }
        return kExitInterrupted;
    }
    // Partial results are a success; only a suite where *nothing*
    // could be measured exits nonzero.
    if (speedups.empty())
        return kExitFailure;
    if (!spec.archiveDir.empty() && !archiveRuns.empty())
        archiveAppend(env, archiveRuns);
    return kExitSuccess;
}

/** Flush the --metrics / --trace files after the job finished. */
void
writeObservability(const JobEnv &env)
{
    if (env.metrics && !env.spec.metricsPath.empty()) {
        atomicWriteFile(env.spec.metricsPath,
                        env.metrics->toJson().dump(2) + "\n");
        env.out("wrote %s\n", env.spec.metricsPath.c_str());
    }
    if (env.trace && !env.spec.tracePath.empty()) {
        env.trace->endSpansTo(0);
        atomicWriteFile(env.spec.tracePath,
                        env.trace->toJson().dump(1) + "\n");
        env.out("wrote %s\n", env.spec.tracePath.c_str());
    }
}

} // namespace

Json
configJson(const JobSpec &spec)
{
    Json c = Json::object();
    c.set("seed", strprintf("0x%016llx",
                            static_cast<unsigned long long>(
                                spec.seed)));
    c.set("invocations", spec.invocations);
    c.set("iterations", spec.iterations);
    c.set("size", spec.size);
    c.set("jit_threshold", spec.jitThreshold);
    c.set("max_retries", spec.maxRetries);
    c.set("deadline_ms", spec.deadlineMs);
    c.set("no_noise", spec.noNoise);
    // Cosmetic at first sight, but --quiet suppresses the log-mirror
    // instants in the trace, so it changes artifact bytes.
    c.set("quiet", spec.quiet);
    Json inj = Json::array();
    // io:* specs are excluded: they perturb the durability layer,
    // never the measurements, and the main reason to resume is a
    // crash one of them injected — the resume command won't (and must
    // not need to) repeat the flag.
    for (const auto &s : spec.injectSpecs)
        if (!startsWith(s, "io:"))
            inj.push(s);
    c.set("inject", std::move(inj));
    return c;
}

harness::RunnerConfig
makeRunnerConfig(const JobSpec &spec, vm::Tier tier,
                 const harness::FaultInjector *faults,
                 MetricsRegistry *metrics, TraceEmitter *trace)
{
    harness::RunnerConfig cfg;
    cfg.invocations = spec.invocations;
    cfg.iterations = spec.iterations;
    cfg.tier = tier;
    cfg.size = spec.size;
    cfg.seed = spec.seed;
    cfg.jobs = spec.jobs;
    cfg.jitThreshold = spec.jitThreshold;
    cfg.noise.enabled = !spec.noNoise;
    cfg.maxRetries = spec.maxRetries;
    cfg.deadlineMs = spec.deadlineMs;
    cfg.faults = faults;
    cfg.metrics = metrics;
    cfg.trace = trace;
    return cfg;
}

std::string
renderEstimate(const harness::RunResult &run)
{
    std::string s;
    auto add = [&s](const std::string &chunk) { s += chunk; };
    // Failure/quarantine bookkeeping appended after a degraded run.
    auto addFailures = [&]() {
        if (run.failures.empty() && !run.quarantined)
            return;
        add(strprintf("  failures: %zu recorded, %zu invocation(s) "
                      "succeeded of %d attempted\n",
                      run.failures.size(), run.invocations.size(),
                      run.invocationsAttempted));
        for (const auto &f : run.failures)
            add(strprintf("    inv %d attempt %d [%s]: %s\n",
                          f.invocation, f.attempt,
                          harness::failureKindName(f.kind),
                          f.message.c_str()));
        if (run.quarantined)
            add(strprintf("  QUARANTINED: %s\n",
                          run.quarantineReason.c_str()));
    };
    if (run.invocations.empty()) {
        add(strprintf("%s / %s: no successful invocations\n",
                      run.workload.c_str(), vm::tierName(run.tier)));
        addFailures();
        return s;
    }
    auto est = harness::rigorousEstimate(run);
    const auto &ss = est.steadyState;
    add(strprintf("%s / %s  (%zu invocations x %zu iterations, "
                  "size %lld)\n",
                  run.workload.c_str(), vm::tierName(run.tier),
                  run.invocations.size(),
                  run.invocations.front().samples.size(),
                  static_cast<long long>(run.size)));
    add(strprintf("  time/iter: %s ms   (%s)\n",
                  harness::formatCi(est.ci, 4).c_str(),
                  harness::formatCiPercent(est.ci, 4).c_str()));
    add(strprintf("  series: %d flat, %d warmup, %d slowdown, "
                  "%d no-steady-state; mean warmup %.1f iters\n",
                  ss.flat, ss.warmup, ss.slowdown, ss.noSteadyState,
                  ss.meanSteadyStart));
    add(strprintf("  first invocation: %s\n",
                  harness::sparkline(run.invocations.front().times())
                      .c_str()));
    addFailures();
    return s;
}

void
writeRunArtifacts(const JobSpec &spec, const harness::RunResult &run,
                  const std::function<void(const std::string &)> &out)
{
    if (!spec.jsonPath.empty()) {
        atomicWriteFile(spec.jsonPath,
                        harness::runToJson(run).dump(2) + "\n");
        out(strprintf("wrote %s\n", spec.jsonPath.c_str()));
    }
    if (!spec.csvPath.empty()) {
        std::ostringstream os;
        harness::writeSeriesCsv(os, run);
        atomicWriteFile(spec.csvPath, os.str());
        out(strprintf("wrote %s\n", spec.csvPath.c_str()));
    }
}

int
executeJob(const JobSpec &spec, const JobHooks &hooks)
{
    if (!hooks.output)
        panic("executeJob needs an output hook");
    // The same invariant the CLI enforces at flag-parse time: a
    // resumed suite only re-measures what the interrupted process
    // left unfinished, so archiving it would record a partial picture
    // of the suite as if it were complete.
    if (!spec.archiveDir.empty() && !spec.resumePath.empty())
        fatal("a job cannot both archive and resume; archive the "
              "suite in a single uninterrupted run");

    harness::FaultPlan plan;
    for (const auto &s : spec.injectSpecs)
        plan.add(s);
    harness::FaultInjector injector(plan, spec.seed);

    MetricsRegistry metrics;
    TraceEmitter trace;
    JobEnv env{spec, hooks, Out(hooks.output)};
    if (!spec.metricsPath.empty())
        env.metrics = &metrics;
    if (!spec.tracePath.empty())
        env.trace = &trace;
    env.faults = plan.empty() ? nullptr : &injector;

    int rc = spec.command == "suite" ? runSuiteJob(env)
                                     : runRunJob(env);
    // Partial artifacts are flushed even after an interrupt, so what
    // was measured is never lost.
    writeObservability(env);
    return rc;
}

QueryResult
runQuery(const QuerySpec &query)
{
    compare::CompareConfig cfg;
    cfg.confidence = query.confidence;
    cfg.resamples = query.resamples;
    cfg.seed = query.seed;
    cfg.baselineTier = query.baseTier;
    cfg.candidateTier = query.candTier;

    // `gate` defaults the candidate to the newest entry.
    std::string candRef = query.candRef;
    if (candRef.empty() && query.kind == "gate")
        candRef = "HEAD";
    // The same checks the CLI makes before dispatching here, repeated
    // for specs that arrived over the socket.
    if (query.archiveDir.empty())
        fatal("comparing archive entries requires --archive DIR");
    if (query.baseRef.empty() || candRef.empty())
        fatal("%s takes two entry refs, e.g. '%s HEAD~1 HEAD "
              "--archive DIR'",
              query.kind.c_str(), query.kind.c_str());

    archive::RunArchive ar(query.archiveDir);
    archive::Entry base = ar.resolve(query.baseRef);
    archive::Entry cand = ar.resolve(candRef);
    auto report = compare::compareEntries(base, cand, cfg);
    report.baselineRef = query.baseRef;
    report.candidateRef = candRef;

    QueryResult res;
    if (query.kind == "compare") {
        res.text = compare::renderMarkdown(report);
        res.doc = compare::reportToJson(report);
        return res;
    }
    if (query.kind == "explain") {
        auto ex = explain::explainEntries(base, cand, report);
        res.text = explain::renderMarkdown(ex);
        res.doc = explain::reportToJson(ex);
        return res;
    }
    // gate
    auto gate = compare::evaluateGate(report, query.gateThresholdPct);
    res.text = compare::renderGate(gate, report);
    if (query.explainGate && !gate.pass) {
        // Root-cause every failing pair, worst first (the gate's
        // regression order), straight into the CI log.
        auto ex = explain::explainEntries(base, cand, report);
        res.text += "\n";
        for (const auto &r : gate.regressions) {
            const explain::PairExplanation *pe =
                explain::findPair(ex, r.workload, r.tier);
            if (pe)
                res.text += explain::renderPair(*pe) + "\n";
        }
    }
    Json root = compare::reportToJson(report);
    Json g = Json::object();
    g.set("pass", gate.pass);
    g.set("threshold_pct", gate.thresholdPct);
    Json regs = Json::array();
    for (const auto &r : gate.regressions) {
        Json j = Json::object();
        j.set("workload", r.workload);
        j.set("tier", r.tier);
        j.set("slowdown_pct", r.slowdownPct);
        regs.push(std::move(j));
    }
    g.set("regressions", std::move(regs));
    root.set("gate", std::move(g));
    res.doc = std::move(root);
    res.exitCode = gate.pass ? kExitSuccess : kExitRegression;
    return res;
}

} // namespace serve
} // namespace rigor
