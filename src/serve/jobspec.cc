#include "serve/jobspec.hh"

#include <cerrno>
#include <cstdlib>

#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"

namespace rigor {
namespace serve {

namespace {

/** Reject documents that are not the expected schema/version. */
void
checkHeader(const Json &j, const char *what)
{
    if (!j.has("schema") ||
        j.at("schema").asString() != kJobSpecSchema)
        fatal("%s: not a %s document", what, kJobSpecSchema);
    int64_t v = j.at("version").asInt();
    if (v != kJobSpecVersion)
        fatal("%s: unsupported %s version %lld (this build reads "
              "v%d)",
              what, kJobSpecSchema, static_cast<long long>(v),
              kJobSpecVersion);
}

int
intField(const Json &j, const char *key, int64_t min_value)
{
    int64_t v = j.at(key).asInt();
    if (v < min_value)
        fatal("job spec: %s must be >= %lld, got %lld", key,
              static_cast<long long>(min_value),
              static_cast<long long>(v));
    return static_cast<int>(v);
}

} // namespace

Json
jobSpecToJson(const JobSpec &spec)
{
    Json j = Json::object();
    j.set("schema", kJobSpecSchema);
    j.set("version", kJobSpecVersion);
    j.set("command", spec.command);
    j.set("workload", spec.workload);
    j.set("tier", vm::tierName(spec.tier));
    j.set("invocations", spec.invocations);
    j.set("iterations", spec.iterations);
    j.set("jobs", spec.jobs);
    j.set("size", spec.size);
    // Hex like the resume fingerprint: the full uint64 range must
    // survive the round-trip (asInt would lose the top bit).
    j.set("seed",
          strprintf("0x%016llx",
                    static_cast<unsigned long long>(spec.seed)));
    j.set("jit_threshold", spec.jitThreshold);
    j.set("no_noise", spec.noNoise);
    j.set("quiet", spec.quiet);
    j.set("max_retries", spec.maxRetries);
    j.set("deadline_ms", spec.deadlineMs);
    Json inj = Json::array();
    for (const auto &s : spec.injectSpecs)
        inj.push(s);
    j.set("inject", std::move(inj));
    j.set("json_path", spec.jsonPath);
    j.set("csv_path", spec.csvPath);
    j.set("metrics_path", spec.metricsPath);
    j.set("trace_path", spec.tracePath);
    j.set("archive_dir", spec.archiveDir);
    j.set("label", spec.label);
    j.set("resume_path", spec.resumePath);
    j.set("checkpoint_every", spec.checkpointEvery);
    return j;
}

JobSpec
jobSpecFromJson(const Json &j)
{
    checkHeader(j, "job spec");
    JobSpec spec;
    spec.command = j.at("command").asString();
    if (spec.command != "run" && spec.command != "suite")
        fatal("job spec: unknown command '%s' (expected run or "
              "suite)",
              spec.command.c_str());
    spec.workload = j.at("workload").asString();
    if (spec.command == "run" && spec.workload.empty())
        fatal("job spec: 'run' needs a workload");
    // tierFromName is loud on unknown names, as at every other
    // deserialization site.
    spec.tier = vm::tierFromName(j.at("tier").asString());
    spec.invocations = intField(j, "invocations", 1);
    spec.iterations = intField(j, "iterations", 1);
    spec.jobs = intField(j, "jobs", 1);
    spec.size = j.at("size").asInt();
    if (spec.size < 0)
        fatal("job spec: size must be >= 0, got %lld",
              static_cast<long long>(spec.size));
    {
        const std::string &s = j.at("seed").asString();
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(s.c_str(), &end, 0);
        if (end == s.c_str() || *end != '\0' || errno == ERANGE)
            fatal("job spec: bad seed '%s'", s.c_str());
        spec.seed = v;
    }
    spec.jitThreshold = intField(j, "jit_threshold", 1);
    spec.noNoise = j.at("no_noise").asBool();
    spec.quiet = j.at("quiet").asBool();
    spec.maxRetries = intField(j, "max_retries", 0);
    spec.deadlineMs = j.at("deadline_ms").asDouble();
    if (spec.deadlineMs < 0)
        fatal("job spec: deadline_ms must be >= 0");
    const Json &inj = j.at("inject");
    for (size_t i = 0; i < inj.size(); ++i)
        spec.injectSpecs.push_back(inj.at(i).asString());
    spec.jsonPath = j.at("json_path").asString();
    spec.csvPath = j.at("csv_path").asString();
    spec.metricsPath = j.at("metrics_path").asString();
    spec.tracePath = j.at("trace_path").asString();
    spec.archiveDir = j.at("archive_dir").asString();
    spec.label = j.at("label").asString();
    spec.resumePath = j.at("resume_path").asString();
    spec.checkpointEvery = intField(j, "checkpoint_every", 0);
    // A resume path is not required here: a submitted suite arrives
    // without one and the daemon assigns a durable path at admission.
    if (spec.checkpointEvery > 0 && spec.command != "suite")
        fatal("job spec: checkpoint_every requires a suite job");
    return spec;
}

Json
querySpecToJson(const QuerySpec &q)
{
    Json j = Json::object();
    j.set("kind", q.kind);
    j.set("base", q.baseRef);
    j.set("cand", q.candRef);
    j.set("archive_dir", q.archiveDir);
    j.set("resamples", q.resamples);
    j.set("confidence", q.confidence);
    j.set("gate_threshold_pct", q.gateThresholdPct);
    j.set("base_tier", q.baseTier);
    j.set("cand_tier", q.candTier);
    j.set("explain_gate", q.explainGate);
    j.set("seed",
          strprintf("0x%016llx",
                    static_cast<unsigned long long>(q.seed)));
    return j;
}

QuerySpec
querySpecFromJson(const Json &j)
{
    QuerySpec q;
    q.kind = j.at("kind").asString();
    if (q.kind != "compare" && q.kind != "gate" &&
        q.kind != "explain")
        fatal("query spec: unknown kind '%s' (expected compare, "
              "gate or explain)",
              q.kind.c_str());
    q.baseRef = j.at("base").asString();
    q.candRef = j.at("cand").asString();
    q.archiveDir = j.at("archive_dir").asString();
    if (q.archiveDir.empty())
        fatal("query spec: archive_dir is required");
    q.resamples = intField(j, "resamples", 10);
    q.confidence = j.at("confidence").asDouble();
    if (q.confidence <= 0.0 || q.confidence >= 1.0)
        fatal("query spec: confidence must be in (0, 1)");
    q.gateThresholdPct = j.at("gate_threshold_pct").asDouble();
    if (q.gateThresholdPct < 0)
        fatal("query spec: gate_threshold_pct must be >= 0");
    q.baseTier = j.at("base_tier").asString();
    q.candTier = j.at("cand_tier").asString();
    if (q.baseTier.empty() != q.candTier.empty())
        fatal("query spec: base_tier and cand_tier must be given "
              "together");
    q.explainGate = j.at("explain_gate").asBool();
    {
        const std::string &s = j.at("seed").asString();
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(s.c_str(), &end, 0);
        if (end == s.c_str() || *end != '\0' || errno == ERANGE)
            fatal("query spec: bad seed '%s'", s.c_str());
        q.seed = v;
    }
    return q;
}

} // namespace serve
} // namespace rigor
