#include "serve/queue.hh"

#include "support/durable_io.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"

namespace rigor {
namespace serve {

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Cancelled:
        return "cancelled";
      case JobState::Interrupted:
        return "interrupted";
    }
    panic("unhandled JobState %d", static_cast<int>(state));
}

JobState
jobStateFromName(const std::string &name)
{
    for (JobState s :
         {JobState::Queued, JobState::Running, JobState::Done,
          JobState::Failed, JobState::Cancelled,
          JobState::Interrupted})
        if (name == jobStateName(s))
            return s;
    fatal("unknown job state '%s'", name.c_str());
}

JobQueue::JobQueue(std::string stateDir)
    : stateDir_(std::move(stateDir))
{
    if (stateDir_.empty())
        fatal("serve state directory must not be empty");
}

std::string
JobQueue::statePath() const
{
    return stateDir_ + "/queue.json";
}

std::string
JobQueue::resumePath(int id) const
{
    return stateDir_ + strprintf("/job-%d.resume.json", id);
}

std::string
JobQueue::outputPath(int id) const
{
    return stateDir_ + strprintf("/job-%d.out.txt", id);
}

JobRecord &
JobQueue::submit(JobSpec spec, int priority, std::string client)
{
    JobRecord rec;
    rec.id = nextId_++;
    rec.seq = nextSeq_++;
    rec.priority = priority;
    rec.client = std::move(client);
    // Suite jobs become drain-resumable for free: a daemon-assigned
    // resume path makes a SIGTERM mid-suite continue from the last
    // commit-boundary checkpoint after `serve --resume`, with
    // byte-identical artifacts. Archiving jobs are excluded (the
    // archive/resume exclusion the CLI enforces); they restart from
    // scratch on resume, which is byte-identical anyway because runs
    // are deterministic.
    if (spec.command == "suite" && spec.resumePath.empty() &&
        spec.archiveDir.empty())
        spec.resumePath = resumePath(rec.id);
    rec.spec = std::move(spec);
    jobs_.push_back(std::move(rec));
    persist();
    return jobs_.back();
}

JobRecord *
JobQueue::nextRunnable()
{
    JobRecord *best = nullptr;
    for (auto &j : jobs_) {
        if (j.state != JobState::Queued)
            continue;
        if (!best || j.priority < best->priority ||
            (j.priority == best->priority && j.seq < best->seq))
            best = &j;
    }
    return best;
}

JobRecord *
JobQueue::find(int id)
{
    for (auto &j : jobs_)
        if (j.id == id)
            return &j;
    return nullptr;
}

size_t
JobQueue::queuedCount() const
{
    size_t n = 0;
    for (const auto &j : jobs_)
        if (j.state == JobState::Queued)
            ++n;
    return n;
}

size_t
JobQueue::runningCount() const
{
    size_t n = 0;
    for (const auto &j : jobs_)
        if (j.state == JobState::Running)
            ++n;
    return n;
}

void
JobQueue::persist() const
{
    Json payload = Json::object();
    payload.set("kind", kServeQueueSchema);
    payload.set("version", kServeQueueVersion);
    payload.set("next_id", nextId_);
    payload.set("next_seq", static_cast<int64_t>(nextSeq_));
    Json arr = Json::array();
    for (const auto &j : jobs_) {
        Json r = Json::object();
        r.set("id", j.id);
        r.set("priority", j.priority);
        r.set("client", j.client);
        r.set("state", jobStateName(j.state));
        r.set("seq", static_cast<int64_t>(j.seq));
        r.set("exit_code", j.exitCode);
        r.set("error", j.error);
        r.set("archive_id", j.archiveId);
        r.set("spec", jobSpecToJson(j.spec));
        arr.push(std::move(r));
    }
    payload.set("jobs", std::move(arr));
    writeStateFile(statePath(), payload);
}

bool
JobQueue::stateExists() const
{
    return stateFileExists(statePath());
}

void
JobQueue::restore()
{
    if (!stateExists())
        return;
    StateLoad load = loadStateFile(statePath());
    if (load.usedBackup)
        warn("%s", load.warning.c_str());
    const Json &p = load.payload;
    if (!p.has("kind") ||
        p.at("kind").asString() != kServeQueueSchema)
        fatal("%s does not hold serve queue state",
              statePath().c_str());
    int64_t v = p.at("version").asInt();
    if (v != kServeQueueVersion)
        fatal("%s holds %s version %lld (this build reads v%d)",
              statePath().c_str(), kServeQueueSchema,
              static_cast<long long>(v), kServeQueueVersion);
    nextId_ = static_cast<int>(p.at("next_id").asInt());
    nextSeq_ = static_cast<uint64_t>(p.at("next_seq").asInt());
    const Json &arr = p.at("jobs");
    for (size_t i = 0; i < arr.size(); ++i) {
        const Json &r = arr.at(i);
        JobRecord rec;
        rec.id = static_cast<int>(r.at("id").asInt());
        rec.priority = static_cast<int>(r.at("priority").asInt());
        rec.client = r.at("client").asString();
        rec.state = jobStateFromName(r.at("state").asString());
        rec.seq = static_cast<uint64_t>(r.at("seq").asInt());
        rec.exitCode = static_cast<int>(r.at("exit_code").asInt());
        rec.error = r.at("error").asString();
        rec.archiveId =
            static_cast<int>(r.at("archive_id").asInt());
        rec.spec = jobSpecFromJson(r.at("spec"));
        // A job caught mid-flight by the drain starts over (or, for
        // a suite with a resume path, continues from its checkpoint
        // — same bytes either way).
        if (rec.state == JobState::Running ||
            rec.state == JobState::Interrupted) {
            rec.state = JobState::Queued;
            rec.exitCode = -1;
        }
        // Finished jobs reload their persisted report stream so
        // `status --json`/detail queries survive the restart.
        if (rec.state == JobState::Done ||
            rec.state == JobState::Failed)
            readFile(outputPath(rec.id), rec.output);
        jobs_.push_back(std::move(rec));
    }
}

Json
JobQueue::statusJson() const
{
    Json arr = Json::array();
    for (const auto &j : jobs_) {
        Json r = Json::object();
        r.set("id", j.id);
        r.set("priority", j.priority);
        r.set("client", j.client);
        r.set("state", jobStateName(j.state));
        r.set("command", j.spec.command);
        r.set("workload", j.spec.workload);
        r.set("exit_code", j.exitCode);
        r.set("archive_id", j.archiveId);
        if (!j.error.empty())
            r.set("error", j.error);
        arr.push(std::move(r));
    }
    return arr;
}

} // namespace serve
} // namespace rigor
