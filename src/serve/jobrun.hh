/**
 * @file
 * The job execution engine shared by the one-shot CLI and the serve
 * daemon.
 *
 * Everything that turns a JobSpec into measurements and artifacts —
 * runner configuration, the resume-config fingerprint, the suite
 * loop with its checkpointer, archive appends, report rendering —
 * lives here, moved out of tools/rigorbench.cc. The CLI calls
 * executeJob with an output hook that writes to stdout; the daemon
 * calls the *same function* on a worker thread with hooks that stream
 * the output and progress to subscribed clients. That shared path is
 * the multi-tenant determinism guarantee: a job submitted over the
 * socket produces report text, --json/--csv/--metrics/--trace
 * artifacts and archive entries byte-identical to the same
 * configuration run at a shell (docs/METHODOLOGY.md §17).
 */

#ifndef RIGOR_SERVE_JOBRUN_HH
#define RIGOR_SERVE_JOBRUN_HH

#include <functional>
#include <string>

#include "harness/measurement.hh"
#include "serve/jobspec.hh"
#include "support/json.hh"

namespace rigor {
namespace serve {

/**
 * Exit codes shared by the one-shot CLI, daemon-executed jobs and the
 * client mode. The canonical table lives in README.md ("Exit codes");
 * 3 (interrupted) is declared in support/interrupt.hh and 6 (injected
 * crash) in harness/fault.hh, next to the machinery that raises them.
 */
inline constexpr int kExitSuccess = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitFailure = 2;
/** `gate` found a regression beyond the threshold. */
inline constexpr int kExitRegression = 4;
/** `fsck` found corruption (or failed to repair it). */
inline constexpr int kExitCorruption = 5;
/** Client mode: daemon unreachable or spoke a different protocol. */
inline constexpr int kExitServeUnavailable = 7;
/** Client mode: the daemon's admission control rejected the job. */
inline constexpr int kExitRejected = 8;

/** Hooks a caller wires into a job's execution. */
struct JobHooks
{
    /**
     * Receives the job's report stream — exactly the bytes the
     * one-shot CLI writes to stdout. Required.
     */
    std::function<void(const std::string &chunk)> output;
    /**
     * Optional: called after every committed invocation slot with the
     * partial run and the configured total (on the committing thread;
     * see RunnerConfig::onProgress). Purely observational.
     */
    std::function<void(const harness::RunResult &run, int total)>
        progress;
};

/**
 * Execute a run/suite job: measure, render the report through
 * hooks.output, write every requested artifact.
 * @return the exit code the one-shot CLI would have returned
 * (kExitSuccess, kExitFailure, or kExitInterrupted).
 * @throws FatalError for configuration errors (unknown workload,
 * unusable resume state, artifact write failure).
 */
int executeJob(const JobSpec &spec, const JobHooks &hooks);

/** Outcome of an archive query (compare / gate / explain). */
struct QueryResult
{
    /** kExitSuccess, or kExitRegression for a failed gate. */
    int exitCode = kExitSuccess;
    /** The rendered report, as the CLI prints it to stdout. */
    std::string text;
    /** The machine-readable report (--json payload). */
    Json doc;
};

/**
 * Run an archive query. Read-only: safe to run concurrently with
 * appenders — archive scans degrade to read-only while a writer
 * holds the directory lock.
 * @throws FatalError when a ref does not resolve or the archive is
 * unusable.
 */
QueryResult runQuery(const QuerySpec &query);

/**
 * The measurement-determining configuration fingerprint stored in
 * every suite checkpoint and compared verbatim on resume (exposed for
 * the daemon's drain bookkeeping and for tests).
 */
Json configJson(const JobSpec &spec);

/** Render the estimate block `run`/`compare` print per run. */
std::string renderEstimate(const harness::RunResult &run);

/**
 * Runner configuration for one (spec, tier) measurement. Exposed so
 * the CLI's non-queueable commands (`sequential`, the one-shot
 * `compare`) share the exact config mapping queued jobs use.
 */
harness::RunnerConfig
makeRunnerConfig(const JobSpec &spec, vm::Tier tier,
                 const harness::FaultInjector *faults,
                 MetricsRegistry *metrics, TraceEmitter *trace);

/**
 * Write the --json/--csv artifacts `spec` requests for `run`, with a
 * "wrote PATH" line per file through `out`.
 */
void writeRunArtifacts(const JobSpec &spec,
                       const harness::RunResult &run,
                       const std::function<void(const std::string &)>
                           &out);

} // namespace serve
} // namespace rigor

#endif // RIGOR_SERVE_JOBRUN_HH
