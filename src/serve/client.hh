/**
 * @file
 * Thin client side of the serve protocol: the CLI's `submit`,
 * `status`, `cancel` and `shutdown` subcommands, plus socket-routed
 * compare/gate/explain queries.
 *
 * `submitJob` with wait=true reproduces the one-shot CLI's contract
 * byte for byte: streamed output chunks go to stdout verbatim, log
 * events to stderr in the default sink's "level: msg" format, and
 * the process exit code is the job's exit code — so a script (or a
 * test's `diff`) cannot tell a daemon run from a local one.
 *
 * Connection failures exit with kExitServeUnavailable and admission
 * rejections with kExitRejected, so callers can tell "no daemon"
 * from "daemon said no".
 */

#ifndef RIGOR_SERVE_CLIENT_HH
#define RIGOR_SERVE_CLIENT_HH

#include <string>

#include "serve/jobspec.hh"

namespace rigor {
namespace serve {

/** Options of one `submit` invocation. */
struct SubmitOptions
{
    /** Lower runs first (daemon default 10). */
    int priority = 10;
    /** Submitter label shown in `status` ("" = anonymous). */
    std::string client;
    /**
     * Stream the job to completion and exit with its code. When
     * false, print the job id and return immediately (poll with
     * `status`).
     */
    bool wait = true;
};

/** Submit a job; see the file header for the wait contract. */
int submitJob(const std::string &socketPath, const JobSpec &spec,
              const SubmitOptions &opts);

/**
 * Print the queue table (jobId < 0) or one job's detail including
 * its captured report stream (jobId >= 0).
 */
int requestStatus(const std::string &socketPath, int jobId);

/** Cancel a queued job. */
int cancelJob(const std::string &socketPath, int jobId);

/** Ask the daemon to exit: drain (finish accepted jobs) or now. */
int shutdownDaemon(const std::string &socketPath, bool now);

/**
 * Run a compare/gate/explain query through the daemon. Prints the
 * rendered report exactly as the local command would; writes the
 * machine-readable doc to `jsonPath` when non-empty.
 * @return the query's exit code (0, or 4 for a failed gate).
 */
int remoteQuery(const std::string &socketPath, const QuerySpec &query,
                const std::string &jsonPath);

} // namespace serve
} // namespace rigor

#endif // RIGOR_SERVE_CLIENT_HH
