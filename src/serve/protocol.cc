#include "serve/protocol.hh"

#include "support/logging.hh"
#include "support/schema.hh"

namespace rigor {
namespace serve {

namespace {

Json
envelope()
{
    Json j = Json::object();
    j.set("schema", kServeProtocolSchema);
    j.set("version", kServeProtocolVersion);
    return j;
}

} // namespace

Json
makeRequest(const std::string &op)
{
    Json j = envelope();
    j.set("op", op);
    return j;
}

Json
makeResponse(const std::string &op)
{
    Json j = envelope();
    j.set("ok", true);
    j.set("op", op);
    return j;
}

Json
makeError(const std::string &op, const std::string &code,
          const std::string &message)
{
    Json j = envelope();
    j.set("ok", false);
    j.set("op", op);
    j.set("error", code);
    j.set("message", message);
    return j;
}

Json
makeEvent(const std::string &kind, int jobId)
{
    Json j = envelope();
    j.set("event", kind);
    j.set("job_id", jobId);
    return j;
}

void
checkProtocolHeader(const Json &j)
{
    if (!j.has("schema") ||
        j.at("schema").asString() != kServeProtocolSchema)
        fatal("not a %s message", kServeProtocolSchema);
    int64_t v = j.at("version").asInt();
    if (v != kServeProtocolVersion)
        fatal("peer speaks %s v%lld; this build speaks v%d",
              kServeProtocolSchema, static_cast<long long>(v),
              kServeProtocolVersion);
}

} // namespace serve
} // namespace rigor
