#include "serve/client.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "serve/jobrun.hh"
#include "serve/protocol.hh"
#include "support/durable_io.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "support/unix_socket.hh"

namespace rigor {
namespace serve {

namespace {

std::unique_ptr<LineChannel>
dial(const std::string &socketPath)
{
    if (socketPath.empty())
        fatal("this command talks to a daemon; pass --socket PATH");
    int fd = connectUnixSocket(socketPath);
    if (fd < 0) {
        warn("no daemon at %s: %s", socketPath.c_str(),
             std::strerror(errno));
        return nullptr;
    }
    return std::unique_ptr<LineChannel>(new LineChannel(fd));
}

/** One request/response exchange. False when the daemon vanished. */
bool
roundTrip(LineChannel &ch, const Json &req, Json &resp)
{
    if (!ch.writeLine(req.dump()))
        return false;
    std::string line;
    if (!ch.readLine(line))
        return false;
    resp = Json::parse(line);
    checkProtocolHeader(resp);
    return true;
}

int
lostDaemon(const std::string &socketPath)
{
    warn("lost the connection to the daemon at %s",
         socketPath.c_str());
    return kExitServeUnavailable;
}

/**
 * Report a daemon error response and map its machine code to an exit
 * code: admission refusals are kExitRejected (scripts retry or fall
 * back to the one-shot CLI), malformed requests are usage errors,
 * anything else is a plain failure.
 */
int
reportError(const Json &resp)
{
    std::string code = resp.at("error").asString();
    warn("daemon refused: %s [%s]",
         resp.at("message").asString().c_str(), code.c_str());
    if (code == "queue-full" || code == "io-fault-rejected" ||
        code == "shutting-down")
        return kExitRejected;
    if (code == "bad-request" || code == "unknown-op")
        return kExitUsage;
    return kExitFailure;
}

LogLevel
levelFromName(const std::string &name)
{
    return name == "warn" ? LogLevel::Warn : LogLevel::Info;
}

/** Forward one streamed event to this process's stdout/stderr. */
void
replayEvent(const Json &ev, const std::string &kind)
{
    if (kind == "output") {
        const std::string &chunk = ev.at("chunk").asString();
        std::fwrite(chunk.data(), 1, chunk.size(), stdout);
        std::fflush(stdout);
    } else if (kind == "log") {
        // Through the normal sink chain, so the replay is
        // indistinguishable from the message having been emitted
        // locally (same "level: msg" stderr format, same quiet rule).
        emitLogMessage(levelFromName(ev.at("level").asString()),
                       ev.at("message").asString());
    }
    // "progress" and "done" events carry nothing the streamed report
    // does not already say; they exist for non-waiting observers.
}

} // namespace

int
submitJob(const std::string &socketPath, const JobSpec &spec,
          const SubmitOptions &opts)
{
    auto ch = dial(socketPath);
    if (!ch)
        return kExitServeUnavailable;
    Json req = makeRequest("submit");
    req.set("job", jobSpecToJson(spec));
    req.set("priority", opts.priority);
    if (!opts.client.empty())
        req.set("client", opts.client);
    req.set("wait", opts.wait);
    Json ack;
    if (!roundTrip(*ch, req, ack))
        return lostDaemon(socketPath);
    if (!ack.at("ok").asBool())
        return reportError(ack);
    int id = static_cast<int>(ack.at("job_id").asInt());
    if (!opts.wait) {
        std::printf("submitted job #%d\n", id);
        return kExitSuccess;
    }

    std::string line;
    while (ch->readLine(line)) {
        Json msg = Json::parse(line);
        checkProtocolHeader(msg);
        if (const Json *ev = msg.get("event")) {
            replayEvent(msg, ev->asString());
            continue;
        }
        // The final response: the job's result, or the daemon
        // announcing it is stopping with the job persisted.
        if (!msg.at("ok").asBool()) {
            std::string code = msg.at("error").asString();
            warn("%s", msg.at("message").asString().c_str());
            return code == "daemon-stopping" ? kExitInterrupted
                                             : kExitFailure;
        }
        return static_cast<int>(msg.at("exit_code").asInt());
    }
    return lostDaemon(socketPath);
}

int
requestStatus(const std::string &socketPath, int jobId)
{
    auto ch = dial(socketPath);
    if (!ch)
        return kExitServeUnavailable;
    Json req = makeRequest("status");
    if (jobId >= 0)
        req.set("job_id", jobId);
    Json resp;
    if (!roundTrip(*ch, req, resp))
        return lostDaemon(socketPath);
    if (!resp.at("ok").asBool())
        return reportError(resp);

    if (jobId >= 0) {
        const Json &j = resp.at("job");
        std::printf("job #%d: %s\n",
                    static_cast<int>(j.at("id").asInt()),
                    j.at("state").asString().c_str());
        std::printf("  priority: %d\n",
                    static_cast<int>(j.at("priority").asInt()));
        if (!j.at("client").asString().empty())
            std::printf("  client: %s\n",
                        j.at("client").asString().c_str());
        int rc = static_cast<int>(j.at("exit_code").asInt());
        if (rc >= 0)
            std::printf("  exit code: %d\n", rc);
        int archiveId =
            static_cast<int>(j.at("archive_id").asInt());
        if (archiveId >= 0)
            std::printf("  archive entry: #%d\n", archiveId);
        if (const Json *err = j.get("error"))
            std::printf("  error: %s\n", err->asString().c_str());
        const std::string &output = j.at("output").asString();
        if (!output.empty()) {
            std::printf("--- report ---\n");
            std::fwrite(output.data(), 1, output.size(), stdout);
        }
        return kExitSuccess;
    }

    const Json &jobs = resp.at("jobs");
    std::printf("%4s  %-11s  %-7s  %-12s  %4s  %s\n", "id", "state",
                "cmd", "client", "prio", "result");
    for (size_t i = 0; i < jobs.size(); ++i) {
        const Json &j = jobs.at(i);
        int rc = static_cast<int>(j.at("exit_code").asInt());
        int archiveId =
            static_cast<int>(j.at("archive_id").asInt());
        std::string result;
        if (archiveId >= 0)
            result = strprintf("exit %d, archive #%d", rc,
                               archiveId);
        else if (rc >= 0)
            result = strprintf("exit %d", rc);
        std::printf("%4d  %-11s  %-7s  %-12s  %4d  %s\n",
                    static_cast<int>(j.at("id").asInt()),
                    j.at("state").asString().c_str(),
                    j.at("command").asString().c_str(),
                    j.at("client").asString().c_str(),
                    static_cast<int>(j.at("priority").asInt()),
                    result.c_str());
    }
    std::printf("%lld queued, %lld running (max queue %lld, max "
                "active %lld)%s\n",
                static_cast<long long>(resp.at("queued").asInt()),
                static_cast<long long>(resp.at("running").asInt()),
                static_cast<long long>(resp.at("max_queue").asInt()),
                static_cast<long long>(
                    resp.at("max_active").asInt()),
                resp.at("draining").asBool() ? " [draining]" : "");
    return kExitSuccess;
}

int
cancelJob(const std::string &socketPath, int jobId)
{
    auto ch = dial(socketPath);
    if (!ch)
        return kExitServeUnavailable;
    Json req = makeRequest("cancel");
    req.set("job_id", jobId);
    Json resp;
    if (!roundTrip(*ch, req, resp))
        return lostDaemon(socketPath);
    if (!resp.at("ok").asBool())
        return reportError(resp);
    std::printf("cancelled job #%d\n", jobId);
    return kExitSuccess;
}

int
shutdownDaemon(const std::string &socketPath, bool now)
{
    auto ch = dial(socketPath);
    if (!ch)
        return kExitServeUnavailable;
    Json req = makeRequest("shutdown");
    req.set("mode", now ? "now" : "drain");
    Json resp;
    if (!roundTrip(*ch, req, resp))
        return lostDaemon(socketPath);
    if (!resp.at("ok").asBool())
        return reportError(resp);
    std::printf("daemon shutting down (%s)\n",
                resp.at("mode").asString().c_str());
    return kExitSuccess;
}

int
remoteQuery(const std::string &socketPath, const QuerySpec &query,
            const std::string &jsonPath)
{
    auto ch = dial(socketPath);
    if (!ch)
        return kExitServeUnavailable;
    Json req = makeRequest("query");
    req.set("query", querySpecToJson(query));
    Json resp;
    if (!roundTrip(*ch, req, resp))
        return lostDaemon(socketPath);
    if (!resp.at("ok").asBool())
        return reportError(resp);
    // Render exactly as the local command would: report text, then
    // the optional JSON artifact with its "wrote" confirmation.
    std::fputs(resp.at("text").asString().c_str(), stdout);
    if (!jsonPath.empty()) {
        atomicWriteFile(jsonPath, resp.at("doc").dump(2) + "\n");
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return static_cast<int>(resp.at("exit_code").asInt());
}

} // namespace serve
} // namespace rigor
