#include "serve/server.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/jobrun.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "support/durable_io.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "support/schema.hh"
#include "support/str.hh"
#include "support/unix_socket.hh"

namespace fs = std::filesystem;

namespace rigor {
namespace serve {

namespace {

/**
 * Pull the archive entry id out of a job's report stream (the
 * "archived as #N in DIR" line executeJob prints). Parsing our own
 * output is deliberate: it keeps jobrun free of daemon concerns while
 * still letting `status` hand clients a ref they can feed straight to
 * compare/gate/explain.
 */
int
archiveIdFromOutput(const std::string &output)
{
    size_t pos = output.rfind("archived as #");
    if (pos == std::string::npos)
        return -1;
    return std::atoi(output.c_str() + pos +
                     std::strlen("archived as #"));
}

class Server
{
  public:
    explicit Server(const ServerConfig &cfg)
        : cfg_(cfg), queue_(cfg.stateDir)
    {}

    int run();

  private:
    void workerLoop();
    void runJob(int id, std::unique_lock<std::mutex> &l);
    void handleConn(int fd);
    void dispatchRequest(LineChannel &ch, const Json &req,
                         const std::string &op);
    void handleHello(LineChannel &ch);
    void handleSubmit(LineChannel &ch, const Json &req);
    void streamJob(LineChannel &ch, int id);
    void handleStatus(LineChannel &ch, const Json &req);
    void handleCancel(LineChannel &ch, const Json &req);
    void handleQuery(LineChannel &ch, const Json &req);
    void handleShutdown(LineChannel &ch, const Json &req);
    void pushEvent(int id, Json event);

    ServerConfig cfg_;
    JobQueue queue_;

    /** Guards queue_, events_, draining_, stopping_, shutdownOp_. */
    std::mutex mu_;
    std::condition_variable cv_;
    /** Per-job event streams (log/output/progress/done lines). */
    std::map<int, std::vector<Json>> events_;
    /** No new submissions; workers exit once the queue is empty. */
    bool draining_ = false;
    /** The daemon is past its worker join; waiters must give up. */
    bool stopping_ = false;
    /** Shutdown came from the protocol op, not a signal (exit 0). */
    bool shutdownOp_ = false;

    /** Guards connFds_ (connThreads_ is touched only by run()). */
    std::mutex connMu_;
    std::vector<std::thread> connThreads_;
    std::set<int> connFds_;
};

/** Append an event to a job's stream; caller does NOT hold mu_. */
void
Server::pushEvent(int id, Json event)
{
    std::lock_guard<std::mutex> g(mu_);
    events_[id].push_back(std::move(event));
    cv_.notify_all();
}

void
Server::runJob(int id, std::unique_lock<std::mutex> &l)
{
    JobRecord *job = queue_.find(id);
    job->state = JobState::Running;
    queue_.persist();
    JobSpec spec = job->spec;
    l.unlock();
    cv_.notify_all();

    // Per-job-thread sinks: the runner replays its parallel workers'
    // buffered messages on this thread, so one thread-local capture
    // sees the job's whole log stream in deterministic order — and a
    // thread-local quiet honors this job's --quiet without touching
    // concurrently streaming jobs.
    bool prevQuiet = setThreadQuiet(spec.quiet);
    LogSink prevSink = setThreadLogSink(
        [this, id](LogLevel level, const std::string &msg) {
            Json e = makeEvent("log", id);
            e.set("level", logLevelName(level));
            e.set("message", msg);
            pushEvent(id, std::move(e));
        });

    JobHooks hooks;
    hooks.output = [this, id](const std::string &chunk) {
        {
            std::lock_guard<std::mutex> g(mu_);
            queue_.find(id)->output += chunk;
            Json e = makeEvent("output", id);
            e.set("chunk", chunk);
            events_[id].push_back(std::move(e));
        }
        cv_.notify_all();
    };
    hooks.progress = [this, id](const harness::RunResult &run,
                                int total) {
        Json e = makeEvent("progress", id);
        e.set("workload", run.workload);
        e.set("tier", vm::tierName(run.tier));
        e.set("committed", run.invocationsAttempted);
        e.set("total", total);
        pushEvent(id, std::move(e));
    };

    int rc = kExitFailure;
    std::string err;
    try {
        rc = executeJob(spec, hooks);
    } catch (const std::exception &e) {
        err = e.what();
    }
    setThreadLogSink(std::move(prevSink));
    setThreadQuiet(prevQuiet);

    l.lock();
    job = queue_.find(id);
    job->exitCode = rc;
    job->error = err;
    job->state = rc == kExitSuccess ? JobState::Done
        : rc == kExitInterrupted   ? JobState::Interrupted
                                   : JobState::Failed;
    job->archiveId = archiveIdFromOutput(job->output);
    // Persist the report stream for terminal jobs so results survive
    // the daemon (interrupted jobs re-run and re-produce it).
    if (job->state != JobState::Interrupted) {
        try {
            atomicWriteFile(queue_.outputPath(id), job->output);
        } catch (const FatalError &e) {
            warn("cannot persist job %d output: %s", id, e.what());
        }
    }
    queue_.persist();
    Json done = makeEvent("done", id);
    done.set("state", jobStateName(job->state));
    done.set("exit_code", rc);
    if (job->archiveId >= 0)
        done.set("archive_id", job->archiveId);
    if (!err.empty())
        done.set("message", err);
    events_[id].push_back(std::move(done));
    cv_.notify_all();
}

void
Server::workerLoop()
{
    std::unique_lock<std::mutex> l(mu_);
    for (;;) {
        if (interruptRequested())
            return;
        JobRecord *job = queue_.nextRunnable();
        if (job) {
            runJob(job->id, l);
            continue;
        }
        if (draining_)
            return;
        cv_.wait_for(l, std::chrono::milliseconds(200));
    }
}

void
Server::handleHello(LineChannel &ch)
{
    Json resp = makeResponse("hello");
    resp.set("server", kRigorbenchVersion);
    resp.set("job_schema", kJobSpecSchema);
    resp.set("job_version", kJobSpecVersion);
    ch.writeLine(resp.dump());
}

void
Server::handleSubmit(LineChannel &ch, const Json &req)
{
    JobSpec spec;
    try {
        spec = jobSpecFromJson(req.at("job"));
    } catch (const std::exception &e) {
        ch.writeLine(
            makeError("submit", "bad-request", e.what()).dump());
        return;
    }
    // Multi-tenancy guard: io:* faults install a process-global
    // filesystem seam — inside the daemon they would perturb every
    // tenant's durable writes, so they are rejected at admission.
    // Measurement faults (throw/checksum/stall/ramp) are per-run
    // deterministic and fine.
    for (const auto &s : spec.injectSpecs) {
        if (startsWith(s, "io:")) {
            ch.writeLine(makeError("submit", "io-fault-rejected",
                                   "io:* fault injection is "
                                   "process-global and cannot run "
                                   "in a shared daemon; use the "
                                   "one-shot CLI")
                             .dump());
            return;
        }
    }
    int priority = 10;
    if (const Json *p = req.get("priority"))
        priority = static_cast<int>(p->asInt());
    std::string client;
    if (const Json *c = req.get("client"))
        client = c->asString();
    bool wait = false;
    if (const Json *w = req.get("wait"))
        wait = w->asBool();

    int id;
    {
        std::lock_guard<std::mutex> g(mu_);
        if (draining_ || stopping_) {
            ch.writeLine(makeError("submit", "shutting-down",
                                   "the daemon is draining and "
                                   "accepts no new jobs")
                             .dump());
            return;
        }
        if (queue_.queuedCount() >=
            static_cast<size_t>(cfg_.maxQueue)) {
            Json e = makeError(
                "submit", "queue-full",
                strprintf("queue depth limit %d reached",
                          cfg_.maxQueue));
            e.set("queued", static_cast<int64_t>(
                                queue_.queuedCount()));
            ch.writeLine(e.dump());
            return;
        }
        JobRecord &rec = queue_.submit(std::move(spec), priority,
                                       std::move(client));
        id = rec.id;
        events_[id];  // the stream exists from the moment of accept
    }
    cv_.notify_all();
    Json resp = makeResponse("submit");
    resp.set("job_id", id);
    resp.set("state", "queued");
    if (!ch.writeLine(resp.dump()))
        return;
    if (wait)
        streamJob(ch, id);
}

/** Forward a job's events until it reaches a terminal state. */
void
Server::streamJob(LineChannel &ch, int id)
{
    size_t next = 0;
    for (;;) {
        std::vector<Json> batch;
        bool terminal = false;
        Json result;
        {
            std::unique_lock<std::mutex> l(mu_);
            cv_.wait_for(l, std::chrono::milliseconds(200));
            auto &ev = events_[id];
            while (next < ev.size())
                batch.push_back(ev[next++]);
            JobRecord *j = queue_.find(id);
            bool settled = j && j->state != JobState::Queued &&
                j->state != JobState::Running;
            if (settled && next >= ev.size()) {
                terminal = true;
                result = makeResponse("result");
                result.set("job_id", id);
                result.set("state", jobStateName(j->state));
                result.set("exit_code", j->exitCode);
                if (j->archiveId >= 0)
                    result.set("archive_id", j->archiveId);
                if (!j->error.empty())
                    result.set("message", j->error);
            } else if (stopping_ && next >= ev.size()) {
                // The daemon is exiting with this job unfinished
                // (signal drain with the job still queued, say). Its
                // state is persisted; tell the waiter instead of
                // hanging it.
                terminal = true;
                result = makeError(
                    "result", "daemon-stopping",
                    strprintf("daemon is stopping; job %d is %s and "
                              "will continue under 'serve --resume'",
                              id,
                              j ? jobStateName(j->state)
                                : "unknown"));
                result.set("job_id", id);
                if (j)
                    result.set("state", jobStateName(j->state));
            }
        }
        for (const auto &b : batch)
            if (!ch.writeLine(b.dump()))
                return;
        if (terminal) {
            ch.writeLine(result.dump());
            return;
        }
    }
}

void
Server::handleStatus(LineChannel &ch, const Json &req)
{
    std::lock_guard<std::mutex> g(mu_);
    if (const Json *jid = req.get("job_id")) {
        JobRecord *j = queue_.find(static_cast<int>(jid->asInt()));
        if (!j) {
            ch.writeLine(
                makeError("status", "unknown-job",
                          strprintf("no job #%lld",
                                    static_cast<long long>(
                                        jid->asInt())))
                    .dump());
            return;
        }
        Json resp = makeResponse("status");
        Json d = Json::object();
        d.set("id", j->id);
        d.set("state", jobStateName(j->state));
        d.set("priority", j->priority);
        d.set("client", j->client);
        d.set("exit_code", j->exitCode);
        d.set("archive_id", j->archiveId);
        if (!j->error.empty())
            d.set("error", j->error);
        d.set("output", j->output);
        d.set("spec", jobSpecToJson(j->spec));
        resp.set("job", std::move(d));
        ch.writeLine(resp.dump());
        return;
    }
    Json resp = makeResponse("status");
    resp.set("jobs", queue_.statusJson());
    resp.set("queued", static_cast<int64_t>(queue_.queuedCount()));
    resp.set("running",
             static_cast<int64_t>(queue_.runningCount()));
    resp.set("max_queue", cfg_.maxQueue);
    resp.set("max_active", cfg_.maxActive);
    resp.set("draining", draining_);
    ch.writeLine(resp.dump());
}

void
Server::handleCancel(LineChannel &ch, const Json &req)
{
    int id = static_cast<int>(req.at("job_id").asInt());
    {
        std::lock_guard<std::mutex> g(mu_);
        JobRecord *j = queue_.find(id);
        if (!j) {
            ch.writeLine(makeError("cancel", "unknown-job",
                                   strprintf("no job #%d", id))
                             .dump());
            return;
        }
        if (j->state == JobState::Running) {
            // The interrupt flag is process-global; firing it for
            // one tenant would stop every tenant's job. An honest
            // refusal beats a lying success.
            ch.writeLine(
                makeError("cancel", "already-running",
                          strprintf("job #%d is running; running "
                                    "jobs cannot be cancelled",
                                    id))
                    .dump());
            return;
        }
        if (j->state != JobState::Queued) {
            ch.writeLine(makeError("cancel", "already-finished",
                                   strprintf("job #%d is %s", id,
                                             jobStateName(j->state)))
                             .dump());
            return;
        }
        j->state = JobState::Cancelled;
        queue_.persist();
        Json done = makeEvent("done", id);
        done.set("state", jobStateName(j->state));
        done.set("exit_code", -1);
        events_[id].push_back(std::move(done));
    }
    cv_.notify_all();
    Json resp = makeResponse("cancel");
    resp.set("job_id", id);
    ch.writeLine(resp.dump());
}

void
Server::handleQuery(LineChannel &ch, const Json &req)
{
    QuerySpec q;
    try {
        q = querySpecFromJson(req.at("query"));
    } catch (const std::exception &e) {
        ch.writeLine(
            makeError("query", "bad-request", e.what()).dump());
        return;
    }
    // Deliberately outside mu_: queries are read-only archive scans
    // and run concurrently with appending jobs — the archive's flock
    // discipline (readers degrade to read-only scans while a writer
    // holds the lock) is the synchronization.
    QueryResult res;
    try {
        res = runQuery(q);
    } catch (const std::exception &e) {
        ch.writeLine(
            makeError("query", "query-failed", e.what()).dump());
        return;
    }
    Json resp = makeResponse("query");
    resp.set("exit_code", res.exitCode);
    resp.set("text", res.text);
    resp.set("doc", res.doc);
    ch.writeLine(resp.dump());
}

void
Server::handleShutdown(LineChannel &ch, const Json &req)
{
    std::string mode = "drain";
    if (const Json *m = req.get("mode"))
        mode = m->asString();
    if (mode != "drain" && mode != "now") {
        ch.writeLine(makeError("shutdown", "bad-request",
                               "mode must be drain or now")
                         .dump());
        return;
    }
    {
        std::lock_guard<std::mutex> g(mu_);
        draining_ = true;
        shutdownOp_ = true;
    }
    if (mode == "now")
        requestInterrupt();  // running jobs stop at the next commit
    cv_.notify_all();
    Json resp = makeResponse("shutdown");
    resp.set("mode", mode);
    ch.writeLine(resp.dump());
}

void
Server::dispatchRequest(LineChannel &ch, const Json &req,
                        const std::string &op)
{
    if (op == "hello")
        handleHello(ch);
    else if (op == "submit")
        handleSubmit(ch, req);
    else if (op == "status")
        handleStatus(ch, req);
    else if (op == "cancel")
        handleCancel(ch, req);
    else if (op == "query")
        handleQuery(ch, req);
    else if (op == "shutdown")
        handleShutdown(ch, req);
    else
        ch.writeLine(makeError(op, "unknown-op",
                               "unknown op '" + op + "'")
                         .dump());
}

void
Server::handleConn(int fd)
{
    {
        LineChannel ch(fd);
        std::string line;
        while (ch.readLine(line)) {
            Json req;
            std::string op = "?";
            try {
                req = Json::parse(line);
                checkProtocolHeader(req);
                op = req.at("op").asString();
            } catch (const std::exception &e) {
                if (!ch.writeLine(makeError(op, "protocol-error",
                                            e.what())
                                      .dump()))
                    break;
                continue;
            }
            try {
                dispatchRequest(ch, req, op);
            } catch (const std::exception &e) {
                if (!ch.writeLine(
                        makeError(op, "failed", e.what()).dump()))
                    break;
            }
        }
        // Deregister before the channel closes the fd: once the fd
        // is closed the number can be reused, and the exit path's
        // wake-up shutdown() must never hit a stranger's socket.
        std::lock_guard<std::mutex> g(connMu_);
        connFds_.erase(fd);
    }
}

int
Server::run()
{
    std::error_code ec;
    fs::create_directories(cfg_.stateDir, ec);
    if (ec)
        fatal("cannot create state directory %s: %s",
              cfg_.stateDir.c_str(), ec.message().c_str());
    if (cfg_.resume) {
        queue_.restore();
    } else if (queue_.stateExists()) {
        fatal("%s holds a previous daemon's queue; start with "
              "'serve --resume' to continue its jobs (or remove "
              "%s/queue.json to discard them)",
              cfg_.stateDir.c_str(), cfg_.stateDir.c_str());
    }
    int listenFd = listenUnixSocket(cfg_.socketPath);
    inform("serving on %s (state in %s, max queue %d, max active "
           "%d)%s",
           cfg_.socketPath.c_str(), cfg_.stateDir.c_str(),
           cfg_.maxQueue, cfg_.maxActive,
           cfg_.resume ? " [resumed]" : "");
    {
        std::lock_guard<std::mutex> g(mu_);
        size_t restored = queue_.queuedCount();
        if (restored > 0)
            inform("restored %zu pending job(s) from %s", restored,
                   cfg_.stateDir.c_str());
    }

    std::vector<std::thread> workers;
    for (int i = 0; i < cfg_.maxActive; ++i)
        workers.emplace_back([this] { workerLoop(); });

    for (;;) {
        pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        int rv = ::poll(&pfd, 1, 200);
        {
            std::lock_guard<std::mutex> g(mu_);
            if (interruptRequested())
                break;
            if (draining_ && queue_.queuedCount() == 0 &&
                queue_.runningCount() == 0)
                break;
        }
        if (rv > 0 && (pfd.revents & POLLIN)) {
            int c = ::accept(listenFd, nullptr, nullptr);
            if (c < 0)
                continue;
            std::lock_guard<std::mutex> g(connMu_);
            connFds_.insert(c);
            connThreads_.emplace_back(
                [this, c] { handleConn(c); });
        }
    }

    // Stop taking work, let workers settle at commit boundaries (a
    // signal already set the interrupt flag; a drain op finishes the
    // queue first), then make everything durable.
    {
        std::lock_guard<std::mutex> g(mu_);
        draining_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers)
        w.join();
    bool interrupted = interruptRequested();
    {
        std::lock_guard<std::mutex> g(mu_);
        stopping_ = true;
        queue_.persist();
    }
    cv_.notify_all();
    ::close(listenFd);
    ::unlink(cfg_.socketPath.c_str());
    {
        // Kick blocked connection reads awake so their threads can
        // exit; streamJob waiters see stopping_ instead.
        std::lock_guard<std::mutex> g(connMu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (auto &t : connThreads_)
        t.join();
    if (interrupted && !shutdownOp_) {
        inform("interrupted; queue persisted — continue with: "
               "rigorbench serve --socket %s --state-dir %s "
               "--resume",
               cfg_.socketPath.c_str(), cfg_.stateDir.c_str());
        return kExitInterrupted;
    }
    inform("daemon exiting (%zu job(s) on record)",
           queue_.jobs().size());
    return kExitSuccess;
}

} // namespace

int
runServer(const ServerConfig &cfg)
{
    if (cfg.socketPath.empty())
        fatal("serve requires --socket PATH");
    if (cfg.maxQueue < 1)
        fatal("--max-queue must be >= 1");
    if (cfg.maxActive < 1)
        fatal("--max-active must be >= 1");
    Server server(cfg);
    return server.run();
}

} // namespace serve
} // namespace rigor
