/**
 * @file
 * The serve daemon's NDJSON wire protocol (kServeProtocolSchema v1).
 *
 * Every line each side sends is one JSON object carrying the schema
 * header, so either end can tell a foreign or future peer apart from
 * a broken one before interpreting anything else. Shapes:
 *
 *   request   {schema, version, op, ...}            client → daemon
 *   response  {schema, version, ok, op, ...}        daemon → client
 *   error     {schema, version, ok:false, op,
 *              error: <machine code>, message}      daemon → client
 *   event     {schema, version, event, job_id, ...} daemon → client,
 *             streamed between a submit's ack and its final result
 *
 * Ops: hello, submit, status, cancel, query, shutdown. Error codes
 * are stable machine strings (admission control returns
 * "queue-full" / "io-fault-rejected" / "shutting-down" rather than
 * prose, so clients can branch on them).
 */

#ifndef RIGOR_SERVE_PROTOCOL_HH
#define RIGOR_SERVE_PROTOCOL_HH

#include <string>

#include "support/json.hh"

namespace rigor {
namespace serve {

/** A request envelope with the schema header and `op` set. */
Json makeRequest(const std::string &op);

/** A success-response envelope for `op`. */
Json makeResponse(const std::string &op);

/** An error response: ok=false plus a machine `error` code. */
Json makeError(const std::string &op, const std::string &code,
               const std::string &message);

/** An event line for `job_id` (kind: log, output, progress, done). */
Json makeEvent(const std::string &kind, int jobId);

/**
 * Validate an incoming line's schema header.
 * @throws FatalError on a foreign schema or version mismatch — the
 * caller turns this into a protocol-mismatch error (daemon) or the
 * serve-unavailable exit code (client).
 */
void checkProtocolHeader(const Json &j);

} // namespace serve
} // namespace rigor

#endif // RIGOR_SERVE_PROTOCOL_HH
