/**
 * @file
 * The `rigorbench serve` daemon: a single process multiplexing many
 * clients over the deterministic runner and the archive.
 *
 * One accept loop, one connection-handler thread per client, and
 * `maxActive` worker threads draining the priority-FIFO JobQueue.
 * Jobs execute through serve::executeJob — the exact code path the
 * one-shot CLI uses — with per-job-thread log capture and quiet, so
 * concurrent jobs cannot interleave output and a submitted job's
 * artifacts are byte-identical to a shell run (METHODOLOGY §17).
 *
 * Shutdown contract: SIGINT/SIGTERM (or the `shutdown` op with mode
 * "now") stops running jobs at their next invocation-commit boundary,
 * checkpoints in-flight suites, durably persists the queue, and exits
 * — with kExitInterrupted for a signal (state is resumable) or 0 for
 * the explicit op. `shutdown` mode "drain" finishes every accepted
 * job first. `serve --resume` restores the persisted queue and
 * continues; a `serve` without --resume over leftover state refuses
 * to start rather than silently dropping accepted jobs.
 */

#ifndef RIGOR_SERVE_SERVER_HH
#define RIGOR_SERVE_SERVER_HH

#include <string>

namespace rigor {
namespace serve {

struct ServerConfig
{
    /** The Unix-domain socket to listen on. */
    std::string socketPath;
    /** Directory for the durable queue, checkpoints and job output. */
    std::string stateDir;
    /** Admission control: max jobs waiting (structured reject). */
    int maxQueue = 16;
    /** Concurrent job executions (worker threads). */
    int maxActive = 1;
    /** Restore the persisted queue from a previous daemon. */
    bool resume = false;
};

/**
 * Run the daemon until a signal or a `shutdown` op.
 * @return the process exit code (0, or kExitInterrupted after a
 * signal-drain with resumable state).
 * @throws FatalError for startup errors (socket in use, leftover
 * state without --resume).
 */
int runServer(const ServerConfig &cfg);

} // namespace serve
} // namespace rigor

#endif // RIGOR_SERVE_SERVER_HH
