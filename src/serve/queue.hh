/**
 * @file
 * The daemon's job queue: FIFO within priority, durable across
 * restarts.
 *
 * The queue itself is a plain data structure — the Server serializes
 * access with its own mutex — but its on-disk form is a first-class
 * contract: every mutation is persisted as a checksummed durable_io
 * envelope (kServeQueueSchema), and `serve --resume` restores queued
 * and in-flight jobs bit-exactly from it. A job that was running when
 * the daemon drained goes back to Queued; suite jobs carry a
 * daemon-assigned resume path, so the restarted execution continues
 * from the last commit-boundary checkpoint and produces artifacts
 * byte-identical to an uninterrupted run (docs/METHODOLOGY.md §17).
 */

#ifndef RIGOR_SERVE_QUEUE_HH
#define RIGOR_SERVE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>

#include "serve/jobspec.hh"

namespace rigor {
namespace serve {

/** Lifecycle of one submitted job. */
enum class JobState
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
    /** Stopped at a commit boundary by a drain; resumes as Queued. */
    Interrupted,
};

const char *jobStateName(JobState state);
JobState jobStateFromName(const std::string &name);

/** One submitted job and everything `status` reports about it. */
struct JobRecord
{
    int id = 0;
    /** Lower runs first; FIFO among equals. */
    int priority = 10;
    /** Submitter-chosen label ("" when anonymous). */
    std::string client;
    JobSpec spec;
    JobState state = JobState::Queued;
    /** Submission ordinal; the FIFO tiebreaker within a priority. */
    uint64_t seq = 0;
    /** Exit code of the finished execution (-1 while pending). */
    int exitCode = -1;
    /** Failure message (Failed only). */
    std::string error;
    /** Archive entry id the job appended (-1 when none). */
    int archiveId = -1;
    /** The job's report stream so far (exactly the CLI's stdout). */
    std::string output;
};

/**
 * The priority-FIFO queue plus its durable state. Not thread-safe;
 * the Server guards every call with its mutex.
 */
class JobQueue
{
  public:
    explicit JobQueue(std::string stateDir);

    /**
     * Admit a job: assigns the next id, gives suite jobs without an
     * archive a durable resume path under the state dir, persists.
     * @return the new record (stable address; storage is a deque).
     */
    JobRecord &submit(JobSpec spec, int priority, std::string client);

    /** The runnable job that should start next (null when none). */
    JobRecord *nextRunnable();

    JobRecord *find(int id);

    size_t queuedCount() const;
    size_t runningCount() const;
    const std::deque<JobRecord> &jobs() const { return jobs_; }

    /** Durably persist the whole queue (every mutation calls this). */
    void persist() const;

    /**
     * Restore from the state file (serve --resume). Running and
     * Interrupted jobs go back to Queued; finished jobs keep their
     * results so `status` still reports them.
     */
    void restore();

    /** True when a previous daemon left durable queue state behind. */
    bool stateExists() const;

    /** The `status` op's payload (summaries of every job). */
    Json statusJson() const;

    /** Where job `id`'s completed report stream is persisted. */
    std::string outputPath(int id) const;

  private:
    std::string statePath() const;
    std::string resumePath(int id) const;

    std::string stateDir_;
    std::deque<JobRecord> jobs_;
    int nextId_ = 1;
    uint64_t nextSeq_ = 1;
};

} // namespace serve
} // namespace rigor

#endif // RIGOR_SERVE_QUEUE_HH
