/**
 * @file
 * Serializable specifications of the work the framework can execute
 * on behalf of a caller: a measurement *job* (`run` or `suite`, the
 * things the daemon queues) and an archive *query* (`compare`, `gate`
 * or `explain`, which read concurrently with appenders).
 *
 * A JobSpec is the single configuration carrier shared by the
 * one-shot CLI and the serve daemon: both paths build one and hand it
 * to serve::executeJob, which is how a job submitted over the socket
 * produces artifacts byte-identical to the same flags typed at a
 * shell. The JSON round-trip is exact — the daemon persists its queue
 * through it, and `serve --resume` must restore every pending job
 * bit for bit.
 */

#ifndef RIGOR_SERVE_JOBSPEC_HH
#define RIGOR_SERVE_JOBSPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "support/json.hh"
#include "vm/interp.hh"

namespace rigor {
namespace serve {

/** One queueable measurement job ("run" or "suite"). */
struct JobSpec
{
    /** "run" (one workload, one tier) or "suite" (all x all). */
    std::string command = "run";
    /** Workload name ("run" only; ignored for "suite"). */
    std::string workload;
    /** Tier to measure ("run" only). */
    vm::Tier tier = vm::Tier::Interp;

    int invocations = 8;
    int iterations = 20;
    int jobs = 1;
    int64_t size = 0;
    uint64_t seed = 0xc0ffee;
    int jitThreshold = harness::kDefaultJitThreshold;
    bool noNoise = false;
    bool quiet = false;
    int maxRetries = 2;
    double deadlineMs = 0.0;
    /** Raw --inject specs (measurement and io:* families). */
    std::vector<std::string> injectSpecs;

    // Artifact destinations ("" = not requested).
    std::string jsonPath;
    std::string csvPath;
    std::string metricsPath;
    std::string tracePath;
    std::string archiveDir;
    std::string label;

    // Durability (suite only).
    std::string resumePath;
    int checkpointEvery = 0;
};

/**
 * Serialize a spec as a versioned document (kJobSpecSchema). The
 * round-trip through jobSpecFromJson is exact.
 */
Json jobSpecToJson(const JobSpec &spec);

/**
 * Parse a spec back, validating the schema/version header and every
 * field range the CLI would have enforced.
 * @throws FatalError naming the offending field on any mismatch.
 */
JobSpec jobSpecFromJson(const Json &j);

/** One archive query ("compare", "gate" or "explain"). */
struct QuerySpec
{
    /** "compare", "gate" or "explain". */
    std::string kind = "compare";
    /** Entry refs (HEAD, HEAD~N, id, or label). */
    std::string baseRef;
    std::string candRef;
    std::string archiveDir;
    int resamples = 2000;
    double confidence = 0.95;
    double gateThresholdPct = 5.0;
    /** Cross-tier pairing (both set or both empty). */
    std::string baseTier, candTier;
    /** gate only: append per-failing-pair attribution. */
    bool explainGate = false;
    uint64_t seed = 0xc0ffee;
};

/** Serialize / parse a query (same validation discipline as jobs). */
Json querySpecToJson(const QuerySpec &q);
QuerySpec querySpecFromJson(const Json &j);

} // namespace serve
} // namespace rigor

#endif // RIGOR_SERVE_JOBSPEC_HH
