/**
 * @file
 * MiniPy recursive-descent parser.
 *
 * Grammar (Python subset):
 *   module     := stmt* EOF
 *   stmt       := simple_stmt NEWLINE | compound_stmt
 *   simple     := expr | assign | augassign | return | break |
 *                 continue | pass | global | del
 *   compound   := if | while | for | def | class
 *   assignment targets: name, attribute, subscript, tuple-of-names
 *   expr       := or-chains of and-chains of 'not' of comparisons of
 *                 arithmetic with Python precedence; ** right-assoc
 *   atoms      := literals, names, (expr), [list], {dict}, calls,
 *                 attribute access, subscripts with optional slices
 *
 * Not supported (kept out deliberately; the workload suite avoids
 * them): closures/lambda, comprehensions, try/except, with, import,
 * keyword arguments, *args, decorators, chained comparisons.
 */

#ifndef RIGOR_VM_PARSER_HH
#define RIGOR_VM_PARSER_HH

#include <string>

#include "vm/ast.hh"

namespace rigor {
namespace vm {

/**
 * Parse MiniPy source text into a Module.
 * @throws SyntaxError on malformed input.
 */
Module parse(const std::string &source);

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_PARSER_HH
