#include "vm/interp.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"
#include "support/rng.hh"

namespace rigor {
namespace vm {

const char *
tierName(Tier t)
{
    // Exhaustive switch, no default: adding a Tier without updating
    // this is a -Wswitch (-Werror) build break, not a silent
    // mislabel. The old two-way ternary named every new tier
    // "adaptive", which poisoned archives and resume files.
    switch (t) {
      case Tier::Interp: return "interp";
      case Tier::Adaptive: return "adaptive";
      case Tier::Threaded: return "threaded";
    }
    panic("unknown tier %d", static_cast<int>(t));
}

Tier
tierFromName(const std::string &name)
{
    if (name == "interp")
        return Tier::Interp;
    if (name == "adaptive")
        return Tier::Adaptive;
    if (name == "threaded")
        return Tier::Threaded;
    fatal("unknown tier '%s' (expected interp|adaptive|threaded)",
          name.c_str());
}

uint32_t
opBaseUops(Op op)
{
    switch (op) {
      case Op::Nop:
        return 1;
      case Op::LoadConst:
      case Op::LoadFast:
      case Op::StoreFast:
      case Op::Pop:
      case Op::Dup:
      case Op::DupTwo:
      case Op::RotTwo:
      case Op::RotThree:
        return 2;
      case Op::BinaryAdd:
      case Op::BinarySub:
      case Op::BinaryMul:
      case Op::BinaryAnd:
      case Op::BinaryOr:
      case Op::BinaryXor:
      case Op::BinaryLshift:
      case Op::BinaryRshift:
      case Op::UnaryNeg:
      case Op::UnaryNot:
        return 8;   // unbox, type-dispatch, operate, box
      case Op::BinaryDiv:
      case Op::BinaryFloorDiv:
      case Op::BinaryMod:
        return 12;
      case Op::BinaryPow:
        return 24;
      case Op::CompareEq:
      case Op::CompareNe:
      case Op::CompareLt:
      case Op::CompareLe:
      case Op::CompareGt:
      case Op::CompareGe:
        return 7;
      case Op::CompareIn:
      case Op::CompareNotIn:
        return 14;
      case Op::Jump:
        return 1;
      case Op::PopJumpIfFalse:
      case Op::PopJumpIfTrue:
      case Op::JumpIfFalseOrPop:
      case Op::JumpIfTrueOrPop:
        return 3;
      case Op::GetIter:
        return 10;
      case Op::ForIter:
        return 8;
      case Op::Call:
        return 30;  // frame setup, arg copy
      case Op::Return:
        return 10;
      case Op::LoadGlobal:
      case Op::LoadName:
        return 14;  // dict probe
      case Op::StoreGlobal:
      case Op::StoreName:
        return 14;
      case Op::LoadAttr:
        return 18;  // instance dict + class chain probes
      case Op::StoreAttr:
        return 16;
      case Op::LoadSubscr:
        return 10;
      case Op::StoreSubscr:
        return 11;
      case Op::DeleteSubscr:
        return 12;
      case Op::BuildList:
      case Op::BuildTuple:
        return 12;
      case Op::BuildDict:
        return 18;
      case Op::BuildSlice:
        return 8;
      case Op::UnpackSequence:
        return 8;
      case Op::MakeFunction:
        return 16;
      case Op::MakeClass:
        return 40;
      case Op::SetupExcept:
        return 3;
      case Op::PopExcept:
        return 2;
      case Op::Raise:
        return 40;  // unwind machinery
      case Op::ListAppend:
        return 6;
      // Quickened forms: the modelled compiled fast paths.
      case Op::AddIntInt:
      case Op::SubIntInt:
      case Op::MulIntInt:
      case Op::AddFloatFloat:
      case Op::SubFloatFloat:
      case Op::MulFloatFloat:
        return 1;
      case Op::CompareLtIntInt:
      case Op::CompareLeIntInt:
      case Op::CompareGtIntInt:
      case Op::CompareGeIntInt:
      case Op::CompareEqIntInt:
        return 1;
      case Op::ForIterRange:
        return 2;
      case Op::LoadAttrCached:
        return 3;
      case Op::LoadGlobalCached:
        return 2;
      // Superinstructions: one dispatch covers two bytecodes, and the
      // fused pair shares its operand staging.
      case Op::LoadFastLoadFast:
        return 3;
      case Op::LoadFastBinaryAdd:
        return 3;
      case Op::NumOpcodes:
        break;
    }
    return 4;
}

Interp::Interp(const Program &program, InterpConfig config,
               ExecutionObserver *observer)
    : prog(program), cfg(config), obs(observer)
{
    // ASLR model: the simulated heap starts at a seed-dependent offset
    // so physical cache-set mappings differ across invocations.
    SplitMix64 sm(cfg.aslrSeed ^ 0x5851f42d4c957f2dULL);
    simBrk = 0x10000000ULL + (sm.next() & 0x3fffffULL) * 64;

    globalsDict = alloc<DictObj>(cfg.hashSeed);
    globalsDict->incRef();
    builtinsDict = alloc<DictObj>(cfg.hashSeed);
    builtinsDict->incRef();
    installBuiltins(*this, *builtinsDict);
}

Interp::~Interp()
{
    globalsDict->decRef();
    builtinsDict->decRef();
}

void
Interp::trackAlloc(Object *obj)
{
    obj->simAddr = simBrk;
    uint64_t sz = (obj->simSize + 15ULL) & ~15ULL;
    simBrk += sz;
    ++stats_.allocations;
    stats_.allocatedBytes += sz;
    if (obs) {
        obs->onAlloc(obj->simAddr, obj->simSize);
        obs->onAllocSite(curSite, obj->simSize);
    }
}

void
Interp::printLine(const std::string &line)
{
    if (cfg.captureOutput) {
        outputBuf += line;
        outputBuf += '\n';
    }
}

void
Interp::accountBytecode(Op op, uint32_t uops, bool dispatched)
{
    if (dispatched)
        uops += cfg.dispatchUops;
    ++stats_.bytecodes;
    stats_.uops += uops;
    ++stats_.perOp[static_cast<size_t>(op)];
    stats_.perOpUops[static_cast<size_t>(op)] += uops;
    if (dispatched)
        ++stats_.perOpDispatched[static_cast<size_t>(op)];
    if (obs) {
        if (dispatched)
            obs->onDispatch(op);
        obs->onBytecode(op, uops);
    }
}

void
Interp::emitBranch(const Frame &frame, size_t pc, bool taken)
{
    if (obs) {
        uint64_t site =
            (static_cast<uint64_t>(frame.code->codeId) << 20) | pc;
        obs->onBranch(site, taken);
    }
}

void
Interp::emitMem(uint64_t addr, uint32_t size, bool write)
{
    if (obs)
        obs->onMemAccess(addr, size, write);
}

Interp::CodeRuntime &
Interp::runtimeFor(const CodeObject *code)
{
    auto it = codeRt.find(code->codeId);
    if (it != codeRt.end())
        return *it->second;
    auto rt = std::make_unique<CodeRuntime>();
    CodeRuntime &ref = *rt;
    codeRt.emplace(code->codeId, std::move(rt));
    return ref;
}

void
Interp::runModule()
{
    execCode(prog.module.get(), {}, nullptr);
}

bool
Interp::getGlobal(const std::string &name, Value &out) const
{
    Value key = makeStr(name);
    if (const Value *v = globalsDict->find(key)) {
        out = *v;
        return true;
    }
    return false;
}

Value
Interp::callGlobal(const std::string &name, std::vector<Value> args)
{
    Value fn;
    if (!getGlobal(name, fn))
        throw VmError("name '" + name + "' is not defined");
    return callValue(fn, std::move(args));
}

Value
Interp::callValue(const Value &callee, std::vector<Value> args)
{
    ++stats_.calls;
    if (obs)
        obs->onCall();
    struct ReturnNotify
    {
        ExecutionObserver *obs;
        ~ReturnNotify()
        {
            if (obs)
                obs->onReturn();
        }
    } notify{obs};

    if (!callee.isObj())
        throw VmError("'" + callee.typeName() + "' is not callable");

    Object *o = callee.asObj();
    switch (o->kind()) {
      case ObjKind::Function: {
        auto *fn = static_cast<FunctionObj *>(o);
        const CodeObject *code = fn->code;
        int given = static_cast<int>(args.size());
        int required = code->numParams - code->numDefaults;
        if (given < required || given > code->numParams) {
            throw VmError(fn->name + "() takes " +
                          std::to_string(code->numParams) +
                          " arguments, got " + std::to_string(given));
        }
        std::vector<Value> locals(
            static_cast<size_t>(code->numLocals));
        for (int i = 0; i < given; ++i)
            locals[static_cast<size_t>(i)] =
                std::move(args[static_cast<size_t>(i)]);
        // Fill missing trailing params from defaults.
        for (int i = given; i < code->numParams; ++i) {
            int d = i - required;
            locals[static_cast<size_t>(i)] =
                fn->defaults[static_cast<size_t>(d)];
        }
        return execCode(code, std::move(locals), nullptr);
      }
      case ObjKind::Builtin: {
        auto *fn = static_cast<BuiltinObj *>(o);
        int given = static_cast<int>(args.size());
        if (given < fn->minArgs ||
            (fn->maxArgs >= 0 && given > fn->maxArgs)) {
            throw VmError(fn->name + "(): wrong number of arguments (" +
                          std::to_string(given) + ")");
        }
        return fn->fn(*this, args);
      }
      case ObjKind::BoundMethod: {
        auto *bm = static_cast<BoundMethodObj *>(o);
        std::vector<Value> with_self;
        with_self.reserve(args.size() + 1);
        with_self.push_back(bm->receiver);
        for (auto &a : args)
            with_self.push_back(std::move(a));
        return callValue(bm->callee, std::move(with_self));
      }
      case ObjKind::Class: {
        auto *cls = static_cast<ClassObj *>(o);
        InstanceObj *inst = alloc<InstanceObj>(cls, cfg.hashSeed);
        Value self = Value::makeObj(inst);
        Value init_name = makeStr("__init__");
        if (const Value *init = cls->lookup(init_name)) {
            std::vector<Value> with_self;
            with_self.reserve(args.size() + 1);
            with_self.push_back(self);
            for (auto &a : args)
                with_self.push_back(std::move(a));
            callValue(*init, std::move(with_self));
        } else if (!args.empty()) {
            throw VmError(cls->name + "() takes no arguments");
        }
        return self;
      }
      default:
        throw VmError("'" + callee.typeName() + "' is not callable");
    }
}

Value
Interp::execCode(const CodeObject *code, std::vector<Value> locals,
                 DictObj *name_space)
{
    if (++callDepth > cfg.maxCallDepth) {
        --callDepth;
        throw VmError("maximum recursion depth exceeded");
    }

    Frame frame;
    frame.code = code;
    frame.runtime = &runtimeFor(code);
    // Function entries count toward hotness so loop-free but
    // frequently-called functions (typical OO methods) tier up too.
    if (cfg.tier == Tier::Adaptive && !frame.runtime->compiled) {
        if (++frame.runtime->backedges >=
            static_cast<uint64_t>(cfg.jitThreshold))
            jitCompile(code, *frame.runtime);
    }
    // The threaded tier quickens eagerly: no warmup counter, just a
    // cheap linear rewrite on the first entry of each code object.
    if (cfg.tier == Tier::Threaded && !frame.runtime->threaded)
        threadedQuicken(code, *frame.runtime);
    frame.instrs =
        frame.runtime->compiled || frame.runtime->threaded
            ? &frame.runtime->quickened
            : &code->instrs;
    frame.locals = std::move(locals);
    frame.nameSpace = name_space;
    frame.localsBase = simBrk;
    simBrk += (frame.locals.size() + 4) * 8;
    frame.stack.reserve(16);

    try {
        Value result = evalFrame(frame);
        --callDepth;
        return result;
    } catch (...) {
        --callDepth;
        throw;
    }
}

namespace {

/** Integer value of an int-or-bool. */
inline int64_t
intOf(const Value &v)
{
    return v.isBool() ? (v.asBool() ? 1 : 0) : v.asInt();
}

inline bool
intLike(const Value &v)
{
    return v.isInt() || v.isBool();
}

/** Python floor division for ints. */
inline int64_t
pyFloorDiv(int64_t a, int64_t b)
{
    if (b == 0)
        throw VmError("integer division or modulo by zero");
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** Python modulo for ints (result has the sign of the divisor). */
inline int64_t
pyMod(int64_t a, int64_t b)
{
    if (b == 0)
        throw VmError("integer division or modulo by zero");
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        r += b;
    return r;
}

/** Python float modulo (sign of the divisor). */
inline double
pyFmod(double a, double b)
{
    if (b == 0.0)
        throw VmError("float modulo by zero");
    double r = std::fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0)))
        r += b;
    return r;
}

/** Adjust a possibly-negative index into [0, len), throwing on range. */
inline int64_t
normalizeIndex(int64_t idx, int64_t len, const char *what)
{
    if (idx < 0)
        idx += len;
    if (idx < 0 || idx >= len)
        throw VmError(std::string(what) + " index out of range");
    return idx;
}

/** Clamp a slice bound into [0, len]. */
inline int64_t
clampSliceBound(int64_t v, int64_t len)
{
    if (v < 0)
        v += len;
    if (v < 0)
        return 0;
    if (v > len)
        return len;
    return v;
}

/**
 * Resolve a slice's (start, stop, step) against a sequence length,
 * with CPython's rules for negative steps and missing bounds.
 */
void
resolveSlice(const SliceObj &slice, int64_t len, int64_t &start,
             int64_t &stop, int64_t &step)
{
    step = slice.step.isNone() ? 1 : intOf(slice.step);
    if (step == 0)
        throw VmError("slice step cannot be zero");
    if (step > 0) {
        start = slice.start.isNone() ? 0
                                     : clampSliceBound(
                                           intOf(slice.start), len);
        stop = slice.stop.isNone() ? len
                                   : clampSliceBound(intOf(slice.stop),
                                                     len);
    } else {
        if (slice.start.isNone()) {
            start = len - 1;
        } else {
            start = intOf(slice.start);
            if (start < 0)
                start += len;
            if (start >= len)
                start = len - 1;
        }
        if (slice.stop.isNone()) {
            stop = -1;
        } else {
            stop = intOf(slice.stop);
            if (stop < 0)
                stop += len;
            if (stop < -1)
                stop = -1;
        }
    }
}

} // namespace

Value
Interp::binaryOp(Op op, const Value &a, const Value &b)
{
    // Fast numeric paths.
    if (intLike(a) && intLike(b)) {
        int64_t x = intOf(a), y = intOf(b);
        switch (op) {
          case Op::BinaryAdd:
            return Value::makeInt(static_cast<int64_t>(
                static_cast<uint64_t>(x) + static_cast<uint64_t>(y)));
          case Op::BinarySub:
            return Value::makeInt(static_cast<int64_t>(
                static_cast<uint64_t>(x) - static_cast<uint64_t>(y)));
          case Op::BinaryMul:
            return Value::makeInt(static_cast<int64_t>(
                static_cast<uint64_t>(x) * static_cast<uint64_t>(y)));
          case Op::BinaryDiv:
            if (y == 0)
                throw VmError("division by zero");
            return Value::makeFloat(static_cast<double>(x) /
                                    static_cast<double>(y));
          case Op::BinaryFloorDiv:
            return Value::makeInt(pyFloorDiv(x, y));
          case Op::BinaryMod:
            return Value::makeInt(pyMod(x, y));
          case Op::BinaryPow: {
            if (y < 0)
                return Value::makeFloat(
                    std::pow(static_cast<double>(x),
                             static_cast<double>(y)));
            uint64_t result = 1;
            uint64_t base = static_cast<uint64_t>(x);
            int64_t exp = y;
            while (exp > 0) {
                if (exp & 1)
                    result *= base;
                base *= base;
                exp >>= 1;
            }
            return Value::makeInt(static_cast<int64_t>(result));
          }
          case Op::BinaryAnd: return Value::makeInt(x & y);
          case Op::BinaryOr: return Value::makeInt(x | y);
          case Op::BinaryXor: return Value::makeInt(x ^ y);
          case Op::BinaryLshift:
            return Value::makeInt(
                static_cast<int64_t>(static_cast<uint64_t>(x)
                                     << (y & 63)));
          case Op::BinaryRshift: return Value::makeInt(x >> (y & 63));
          default:
            break;
        }
    }

    bool numeric_a = intLike(a) || a.isFloat();
    bool numeric_b = intLike(b) || b.isFloat();
    if (numeric_a && numeric_b) {
        double x = a.numeric(), y = b.numeric();
        switch (op) {
          case Op::BinaryAdd: return Value::makeFloat(x + y);
          case Op::BinarySub: return Value::makeFloat(x - y);
          case Op::BinaryMul: return Value::makeFloat(x * y);
          case Op::BinaryDiv:
            if (y == 0.0)
                throw VmError("float division by zero");
            return Value::makeFloat(x / y);
          case Op::BinaryFloorDiv:
            if (y == 0.0)
                throw VmError("float floor division by zero");
            return Value::makeFloat(std::floor(x / y));
          case Op::BinaryMod:
            return Value::makeFloat(pyFmod(x, y));
          case Op::BinaryPow:
            return Value::makeFloat(std::pow(x, y));
          default:
            throw VmError("unsupported float operation");
        }
    }

    // String / sequence operations.
    if (op == Op::BinaryAdd) {
        if (a.isObjKind(ObjKind::Str) && b.isObjKind(ObjKind::Str)) {
            auto *sa = static_cast<StrObj *>(a.asObj());
            auto *sb = static_cast<StrObj *>(b.asObj());
            StrObj *out = alloc<StrObj>(sa->value + sb->value);
            return Value::makeObj(out);
        }
        if (a.isObjKind(ObjKind::List) && b.isObjKind(ObjKind::List)) {
            auto *la = static_cast<ListObj *>(a.asObj());
            auto *lb = static_cast<ListObj *>(b.asObj());
            ListObj *out = alloc<ListObj>();
            out->items = la->items;
            out->items.insert(out->items.end(), lb->items.begin(),
                              lb->items.end());
            return Value::makeObj(out);
        }
        if (a.isObjKind(ObjKind::Tuple) &&
            b.isObjKind(ObjKind::Tuple)) {
            auto *ta = static_cast<TupleObj *>(a.asObj());
            auto *tb = static_cast<TupleObj *>(b.asObj());
            TupleObj *out = alloc<TupleObj>();
            out->items = ta->items;
            out->items.insert(out->items.end(), tb->items.begin(),
                              tb->items.end());
            return Value::makeObj(out);
        }
    }
    if (op == Op::BinaryMul) {
        const Value *seq = nullptr, *count = nullptr;
        if ((a.isObjKind(ObjKind::Str) || a.isObjKind(ObjKind::List)) &&
            intLike(b)) {
            seq = &a;
            count = &b;
        } else if ((b.isObjKind(ObjKind::Str) ||
                    b.isObjKind(ObjKind::List)) &&
                   intLike(a)) {
            seq = &b;
            count = &a;
        }
        if (seq) {
            int64_t n = std::max<int64_t>(0, intOf(*count));
            if (seq->isObjKind(ObjKind::Str)) {
                auto *s = static_cast<StrObj *>(seq->asObj());
                std::string out;
                out.reserve(s->value.size() *
                            static_cast<size_t>(n));
                for (int64_t i = 0; i < n; ++i)
                    out += s->value;
                return Value::makeObj(alloc<StrObj>(std::move(out)));
            }
            auto *l = static_cast<ListObj *>(seq->asObj());
            ListObj *out = alloc<ListObj>();
            out->items.reserve(l->items.size() *
                               static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i)
                out->items.insert(out->items.end(), l->items.begin(),
                                  l->items.end());
            return Value::makeObj(out);
        }
    }
    if (op == Op::BinaryMod && a.isObjKind(ObjKind::Str)) {
        // Minimal printf-style formatting: %s %d %f only, with a
        // tuple or single value on the right.
        auto *fmt = static_cast<StrObj *>(a.asObj());
        std::vector<Value> args;
        if (b.isObjKind(ObjKind::Tuple)) {
            args = static_cast<TupleObj *>(b.asObj())->items;
        } else {
            args.push_back(b);
        }
        std::string out;
        size_t ai = 0;
        for (size_t i = 0; i < fmt->value.size(); ++i) {
            char c = fmt->value[i];
            if (c != '%' || i + 1 >= fmt->value.size()) {
                out += c;
                continue;
            }
            char spec = fmt->value[++i];
            if (spec == '%') {
                out += '%';
                continue;
            }
            if (ai >= args.size())
                throw VmError("not enough arguments for format "
                              "string");
            const Value &v = args[ai++];
            if (spec == 's') {
                out += v.str();
            } else if (spec == 'd') {
                out += std::to_string(
                    static_cast<int64_t>(v.numeric()));
            } else if (spec == 'f') {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%f", v.numeric());
                out += buf;
            } else {
                throw VmError(std::string("unsupported format "
                                          "specifier '%") +
                              spec + "'");
            }
        }
        return Value::makeObj(alloc<StrObj>(std::move(out)));
    }

    throw VmError(std::string("unsupported operand types for ") +
                  opName(op) + ": '" + a.typeName() + "' and '" +
                  b.typeName() + "'");
}

Value
Interp::compareOp(Op op, const Value &a, const Value &b)
{
    switch (op) {
      case Op::CompareEq:
        return Value::makeBool(a.equals(b));
      case Op::CompareNe:
        return Value::makeBool(!a.equals(b));
      case Op::CompareIn:
      case Op::CompareNotIn: {
        bool found = false;
        if (b.isObjKind(ObjKind::List)) {
            for (const auto &v :
                 static_cast<ListObj *>(b.asObj())->items) {
                if (v.equals(a)) {
                    found = true;
                    break;
                }
            }
        } else if (b.isObjKind(ObjKind::Tuple)) {
            for (const auto &v :
                 static_cast<TupleObj *>(b.asObj())->items) {
                if (v.equals(a)) {
                    found = true;
                    break;
                }
            }
        } else if (b.isObjKind(ObjKind::Dict)) {
            ++stats_.dictLookups;
            found = static_cast<DictObj *>(b.asObj())->find(a) !=
                nullptr;
        } else if (b.isObjKind(ObjKind::Str)) {
            if (!a.isObjKind(ObjKind::Str))
                throw VmError("'in <string>' requires string operand");
            found = static_cast<StrObj *>(b.asObj())
                        ->value.find(static_cast<StrObj *>(a.asObj())
                                         ->value) != std::string::npos;
        } else if (b.isObjKind(ObjKind::Range)) {
            auto *r = static_cast<RangeObj *>(b.asObj());
            if (intLike(a)) {
                int64_t v = intOf(a);
                if (r->step > 0) {
                    found = v >= r->start && v < r->stop &&
                        (v - r->start) % r->step == 0;
                } else {
                    found = v <= r->start && v > r->stop &&
                        (r->start - v) % (-r->step) == 0;
                }
            }
        } else {
            throw VmError("argument of type '" + b.typeName() +
                          "' is not iterable");
        }
        return Value::makeBool(op == Op::CompareIn ? found : !found);
      }
      default:
        break;
    }

    // Ordering comparisons.
    bool numeric_a = intLike(a) || a.isFloat();
    bool numeric_b = intLike(b) || b.isFloat();
    if (numeric_a && numeric_b) {
        if (a.isInt() && b.isInt()) {
            int64_t x = a.asInt(), y = b.asInt();
            switch (op) {
              case Op::CompareLt: return Value::makeBool(x < y);
              case Op::CompareLe: return Value::makeBool(x <= y);
              case Op::CompareGt: return Value::makeBool(x > y);
              case Op::CompareGe: return Value::makeBool(x >= y);
              default: break;
            }
        }
        double x = a.numeric(), y = b.numeric();
        switch (op) {
          case Op::CompareLt: return Value::makeBool(x < y);
          case Op::CompareLe: return Value::makeBool(x <= y);
          case Op::CompareGt: return Value::makeBool(x > y);
          case Op::CompareGe: return Value::makeBool(x >= y);
          default: break;
        }
    }
    if (a.isObjKind(ObjKind::Str) && b.isObjKind(ObjKind::Str)) {
        const std::string &x = static_cast<StrObj *>(a.asObj())->value;
        const std::string &y = static_cast<StrObj *>(b.asObj())->value;
        switch (op) {
          case Op::CompareLt: return Value::makeBool(x < y);
          case Op::CompareLe: return Value::makeBool(x <= y);
          case Op::CompareGt: return Value::makeBool(x > y);
          case Op::CompareGe: return Value::makeBool(x >= y);
          default: break;
        }
    }
    throw VmError("'" + a.typeName() + "' and '" + b.typeName() +
                  "' are not orderable");
}

Value
Interp::makeIterator(const Value &iterable)
{
    if (!iterable.isObj())
        throw VmError("'" + iterable.typeName() +
                      "' object is not iterable");
    Object *o = iterable.asObj();
    IteratorObj::Source src;
    switch (o->kind()) {
      case ObjKind::List: src = IteratorObj::Source::List; break;
      case ObjKind::Tuple: src = IteratorObj::Source::Tuple; break;
      case ObjKind::Str: src = IteratorObj::Source::Str; break;
      case ObjKind::Range: src = IteratorObj::Source::Range; break;
      case ObjKind::Dict: src = IteratorObj::Source::DictKeys; break;
      case ObjKind::Iterator:
        return iterable;
      default:
        throw VmError("'" + iterable.typeName() +
                      "' object is not iterable");
    }
    return Value::makeObj(alloc<IteratorObj>(src, iterable));
}

Value
Interp::loadAttr(const Value &obj, const Value &name, Frame &frame,
                 size_t pc)
{
    (void)frame;
    (void)pc;
    const std::string &attr =
        static_cast<StrObj *>(name.asObj())->value;

    if (obj.isObjKind(ObjKind::Instance)) {
        auto *inst = static_cast<InstanceObj *>(obj.asObj());
        ++stats_.dictLookups;
        emitMem(inst->fields->simAddr +
                    ((name.hash(cfg.hashSeed) & 63) * 16),
                16, false);
        if (const Value *v = inst->fields->find(name))
            return *v;
        if (const Value *v = inst->cls->lookup(name)) {
            ++stats_.dictLookups;
            emitMem(inst->cls->attrs->simAddr +
                        ((name.hash(cfg.hashSeed) & 63) * 16),
                    16, false);
            if (v->isObjKind(ObjKind::Function) ||
                v->isObjKind(ObjKind::Builtin)) {
                BoundMethodObj *bm = alloc<BoundMethodObj>(obj, *v);
                return Value::makeObj(bm);
            }
            return *v;
        }
        throw VmError("'" + inst->cls->name +
                      "' object has no attribute '" + attr + "'");
    }
    if (obj.isObjKind(ObjKind::Class)) {
        auto *cls = static_cast<ClassObj *>(obj.asObj());
        ++stats_.dictLookups;
        if (const Value *v = cls->lookup(name))
            return *v;
        throw VmError("class '" + cls->name +
                      "' has no attribute '" + attr + "'");
    }
    // Builtin-type methods (str/list/dict), provided by builtins.cc.
    Value method;
    if (getBuiltinTypeMethod(*this, obj, attr, method))
        return method;
    throw VmError("'" + obj.typeName() + "' object has no attribute '" +
                  attr + "'");
}

void
Interp::storeAttr(const Value &obj, const Value &name, const Value &val)
{
    if (obj.isObjKind(ObjKind::Instance)) {
        auto *inst = static_cast<InstanceObj *>(obj.asObj());
        ++stats_.dictLookups;
        emitMem(inst->fields->simAddr +
                    ((name.hash(cfg.hashSeed) & 63) * 16),
                16, true);
        inst->fields->set(name, val);
        return;
    }
    if (obj.isObjKind(ObjKind::Class)) {
        static_cast<ClassObj *>(obj.asObj())->attrs->set(name, val);
        return;
    }
    throw VmError("cannot set attributes on '" + obj.typeName() + "'");
}

Value
Interp::loadSubscr(const Value &obj, const Value &idx)
{
    if (!obj.isObj())
        throw VmError("'" + obj.typeName() +
                      "' object is not subscriptable");
    Object *o = obj.asObj();

    if (idx.isObjKind(ObjKind::Slice)) {
        auto *slice = static_cast<SliceObj *>(idx.asObj());
        int64_t start, stop, step;
        switch (o->kind()) {
          case ObjKind::List: {
            auto *l = static_cast<ListObj *>(o);
            int64_t len = static_cast<int64_t>(l->items.size());
            resolveSlice(*slice, len, start, stop, step);
            ListObj *out = alloc<ListObj>();
            if (step > 0) {
                for (int64_t i = start; i < stop; i += step)
                    out->items.push_back(
                        l->items[static_cast<size_t>(i)]);
            } else {
                for (int64_t i = start; i > stop; i += step)
                    out->items.push_back(
                        l->items[static_cast<size_t>(i)]);
            }
            return Value::makeObj(out);
          }
          case ObjKind::Str: {
            auto *s = static_cast<StrObj *>(o);
            int64_t len = static_cast<int64_t>(s->value.size());
            resolveSlice(*slice, len, start, stop, step);
            std::string out;
            if (step > 0) {
                for (int64_t i = start; i < stop; i += step)
                    out += s->value[static_cast<size_t>(i)];
            } else {
                for (int64_t i = start; i > stop; i += step)
                    out += s->value[static_cast<size_t>(i)];
            }
            return Value::makeObj(alloc<StrObj>(std::move(out)));
          }
          case ObjKind::Tuple: {
            auto *t = static_cast<TupleObj *>(o);
            int64_t len = static_cast<int64_t>(t->items.size());
            resolveSlice(*slice, len, start, stop, step);
            TupleObj *out = alloc<TupleObj>();
            if (step > 0) {
                for (int64_t i = start; i < stop; i += step)
                    out->items.push_back(
                        t->items[static_cast<size_t>(i)]);
            } else {
                for (int64_t i = start; i > stop; i += step)
                    out->items.push_back(
                        t->items[static_cast<size_t>(i)]);
            }
            return Value::makeObj(out);
          }
          default:
            throw VmError("'" + obj.typeName() +
                          "' object does not support slicing");
        }
    }

    switch (o->kind()) {
      case ObjKind::List: {
        auto *l = static_cast<ListObj *>(o);
        if (!intLike(idx))
            throw VmError("list indices must be integers");
        int64_t i = normalizeIndex(
            intOf(idx), static_cast<int64_t>(l->items.size()), "list");
        emitMem(l->simAddr + 16 + static_cast<uint64_t>(i) * 8, 8,
                false);
        return l->items[static_cast<size_t>(i)];
      }
      case ObjKind::Tuple: {
        auto *t = static_cast<TupleObj *>(o);
        if (!intLike(idx))
            throw VmError("tuple indices must be integers");
        int64_t i = normalizeIndex(
            intOf(idx), static_cast<int64_t>(t->items.size()),
            "tuple");
        emitMem(t->simAddr + 16 + static_cast<uint64_t>(i) * 8, 8,
                false);
        return t->items[static_cast<size_t>(i)];
      }
      case ObjKind::Str: {
        auto *s = static_cast<StrObj *>(o);
        if (!intLike(idx))
            throw VmError("string indices must be integers");
        int64_t i = normalizeIndex(
            intOf(idx), static_cast<int64_t>(s->value.size()),
            "string");
        emitMem(s->simAddr + 16 + static_cast<uint64_t>(i), 1, false);
        return Value::makeObj(alloc<StrObj>(
            std::string(1, s->value[static_cast<size_t>(i)])));
      }
      case ObjKind::Dict: {
        auto *d = static_cast<DictObj *>(o);
        ++stats_.dictLookups;
        emitMem(d->simAddr + ((idx.hash(cfg.hashSeed) & 255) * 16), 16,
                false);
        if (const Value *v = d->find(idx))
            return *v;
        throw VmError("KeyError: " + idx.repr());
      }
      default:
        throw VmError("'" + obj.typeName() +
                      "' object is not subscriptable");
    }
}

void
Interp::storeSubscr(const Value &obj, const Value &idx, const Value &val)
{
    if (!obj.isObj())
        throw VmError("'" + obj.typeName() +
                      "' does not support item assignment");
    Object *o = obj.asObj();
    switch (o->kind()) {
      case ObjKind::List: {
        auto *l = static_cast<ListObj *>(o);
        if (!intLike(idx))
            throw VmError("list indices must be integers");
        int64_t i = normalizeIndex(
            intOf(idx), static_cast<int64_t>(l->items.size()), "list");
        emitMem(l->simAddr + 16 + static_cast<uint64_t>(i) * 8, 8,
                true);
        l->items[static_cast<size_t>(i)] = val;
        return;
      }
      case ObjKind::Dict: {
        auto *d = static_cast<DictObj *>(o);
        ++stats_.dictLookups;
        emitMem(d->simAddr + ((idx.hash(cfg.hashSeed) & 255) * 16), 16,
                true);
        d->set(idx, val);
        return;
      }
      default:
        throw VmError("'" + obj.typeName() +
                      "' does not support item assignment");
    }
}

void
Interp::deleteSubscr(const Value &obj, const Value &idx)
{
    if (obj.isObjKind(ObjKind::Dict)) {
        auto *d = static_cast<DictObj *>(obj.asObj());
        if (!d->erase(idx))
            throw VmError("KeyError: " + idx.repr());
        return;
    }
    if (obj.isObjKind(ObjKind::List)) {
        auto *l = static_cast<ListObj *>(obj.asObj());
        if (!intLike(idx))
            throw VmError("list indices must be integers");
        int64_t i = normalizeIndex(
            intOf(idx), static_cast<int64_t>(l->items.size()), "list");
        l->items.erase(l->items.begin() +
                       static_cast<ptrdiff_t>(i));
        return;
    }
    throw VmError("'" + obj.typeName() +
                  "' does not support item deletion");
}

void
Interp::jitCompile(const CodeObject *code, CodeRuntime &rt)
{
    rt.quickened = code->instrs;
    rt.caches.assign(code->instrs.size(), {});
    for (auto &ins : rt.quickened) {
        switch (ins.op) {
          case Op::BinaryAdd: ins.op = Op::AddIntInt; break;
          case Op::BinarySub: ins.op = Op::SubIntInt; break;
          case Op::BinaryMul: ins.op = Op::MulIntInt; break;
          case Op::CompareLt: ins.op = Op::CompareLtIntInt; break;
          case Op::CompareLe: ins.op = Op::CompareLeIntInt; break;
          case Op::CompareGt: ins.op = Op::CompareGtIntInt; break;
          case Op::CompareGe: ins.op = Op::CompareGeIntInt; break;
          case Op::CompareEq: ins.op = Op::CompareEqIntInt; break;
          case Op::ForIter: ins.op = Op::ForIterRange; break;
          case Op::LoadAttr: ins.op = Op::LoadAttrCached; break;
          case Op::LoadGlobal: ins.op = Op::LoadGlobalCached; break;
          default:
            break;
        }
    }
    rt.compiled = true;
    ++stats_.jitCompiles;
    uint64_t cost =
        cfg.jitCompileUopsPerInstr * code->instrs.size();
    stats_.uops += cost;
    stats_.jitCompileUops += cost;
    if (obs)
        obs->onJitCompile(code->codeId, cost);
}

void
Interp::threadedQuicken(const CodeObject *code, CodeRuntime &rt)
{
    rt.quickened = code->instrs;
    rt.caches.assign(code->instrs.size(), {});
    size_t n = rt.quickened.size();

    // A superinstruction consumes the slot after it, so it must never
    // swallow a control-flow join: mark every jump target (including
    // except-handler entry points) and refuse to fuse across one.
    std::vector<bool> isTarget(n, false);
    for (const auto &ins : code->instrs) {
        if ((opIsJump(ins.op) || ins.op == Op::SetupExcept) &&
            ins.arg >= 0 && static_cast<size_t>(ins.arg) < n)
            isTarget[static_cast<size_t>(ins.arg)] = true;
    }

    // Pass 1: fuse the hottest adjacent pairs. The absorbed slot is
    // rewritten to Nop (defensive: the superinstruction skips it with
    // ++pc, and no jump can land there).
    for (size_t i = 0; i + 1 < n; ++i) {
        const Instr a = rt.quickened[i];
        const Instr b = rt.quickened[i + 1];
        if (a.op != Op::LoadFast || isTarget[i + 1])
            continue;
        if (b.op == Op::LoadFast && a.arg >= 0 && a.arg < 0x10000 &&
            b.arg >= 0 && b.arg < 0x10000) {
            rt.quickened[i] = {Op::LoadFastLoadFast,
                               (a.arg << 16) | b.arg};
            rt.quickened[i + 1] = {Op::Nop, 0};
            ++i;  // the dead slot cannot start another pair
        } else if (b.op == Op::BinaryAdd) {
            rt.quickened[i] = {Op::LoadFastBinaryAdd, a.arg};
            rt.quickened[i + 1] = {Op::Nop, 0};
            ++i;
        }
    }

    // Pass 2: specialize what is left generic (same opcode map as the
    // adaptive tier, so both share the guarded fast-path handlers).
    for (auto &ins : rt.quickened) {
        switch (ins.op) {
          case Op::BinaryAdd: ins.op = Op::AddIntInt; break;
          case Op::BinarySub: ins.op = Op::SubIntInt; break;
          case Op::BinaryMul: ins.op = Op::MulIntInt; break;
          case Op::CompareLt: ins.op = Op::CompareLtIntInt; break;
          case Op::CompareLe: ins.op = Op::CompareLeIntInt; break;
          case Op::CompareGt: ins.op = Op::CompareGtIntInt; break;
          case Op::CompareGe: ins.op = Op::CompareGeIntInt; break;
          case Op::CompareEq: ins.op = Op::CompareEqIntInt; break;
          case Op::ForIter: ins.op = Op::ForIterRange; break;
          case Op::LoadAttr: ins.op = Op::LoadAttrCached; break;
          case Op::LoadGlobal: ins.op = Op::LoadGlobalCached; break;
          default:
            break;
        }
    }

    rt.threaded = true;
    // Quickening is a linear pass, not a compile: charge a few uops
    // per instruction through the jit counters so warmup analyses see
    // the (small) tier-up cost.
    ++stats_.jitCompiles;
    uint64_t cost = cfg.quickenUopsPerInstr * code->instrs.size();
    stats_.uops += cost;
    stats_.jitCompileUops += cost;
    if (obs)
        obs->onJitCompile(code->codeId, cost);
}

/*
 * Dispatch mechanism of the evaluation loop.
 *
 * On GCC/Clang the loop is direct-threaded: a static table maps each
 * opcode to the address of its handler label and dispatch is a single
 * computed goto, the classic CPython/Forth technique that gives the
 * host branch predictor one indirect-jump site per handler instead of
 * one shared site for the whole switch. Everywhere else (or with
 * -DRIGOR_NO_COMPUTED_GOTO, which CI exercises) the exact same
 * handler bodies compile as a portable switch. The macros keep both
 * forms textually identical:
 *
 *   VM_SWITCH(op)   open dispatch on `op`
 *   VM_CASE(Name)   handler entry for Op::Name
 *   VM_BREAK        end of handler (falls through to accounting)
 *   VM_SWITCH_END   close dispatch
 *
 * Every VM_CASE body must leave via VM_BREAK, continue, return or
 * throw; in threaded mode falling off the end would run the next
 * handler.
 */
#if defined(__GNUC__) && !defined(RIGOR_NO_COMPUTED_GOTO)
#define RIGOR_DIRECT_THREADED 1
#define VM_SWITCH(op) goto *kOpTargets[static_cast<size_t>(op)];
#define VM_CASE(name) vm_tgt_##name:
#define VM_BREAK goto vm_dispatch_done
#define VM_SWITCH_END vm_dispatch_done:;
#else
#define VM_SWITCH(op) switch (op) {
#define VM_CASE(name) case Op::name:
#define VM_BREAK break
#define VM_SWITCH_END }
#endif

Value
Interp::evalFrame(Frame &frame)
{
    const CodeObject *code = frame.code;
    std::vector<Value> &stack = frame.stack;
    std::vector<Value> &locals = frame.locals;

    auto push = [&stack](Value v) { stack.push_back(std::move(v)); };
    auto pop = [&stack]() {
        Value v = std::move(stack.back());
        stack.pop_back();
        return v;
    };

#if RIGOR_DIRECT_THREADED
    // Handler-label address table, indexed by Op. Order must match the
    // Op enum exactly (FirstQuickened aliases AddIntInt, so it has no
    // slot of its own); the trailing NumOpcodes slot keeps a stray
    // encoding on the panic path rather than off the end of the table.
    static const void *const kOpTargets[] = {
        &&vm_tgt_Nop,
        &&vm_tgt_LoadConst,
        &&vm_tgt_LoadFast,
        &&vm_tgt_StoreFast,
        &&vm_tgt_LoadGlobal,
        &&vm_tgt_StoreGlobal,
        &&vm_tgt_LoadName,
        &&vm_tgt_StoreName,
        &&vm_tgt_LoadAttr,
        &&vm_tgt_StoreAttr,
        &&vm_tgt_LoadSubscr,
        &&vm_tgt_StoreSubscr,
        &&vm_tgt_DeleteSubscr,
        &&vm_tgt_BinaryAdd,
        &&vm_tgt_BinarySub,
        &&vm_tgt_BinaryMul,
        &&vm_tgt_BinaryDiv,
        &&vm_tgt_BinaryFloorDiv,
        &&vm_tgt_BinaryMod,
        &&vm_tgt_BinaryPow,
        &&vm_tgt_BinaryAnd,
        &&vm_tgt_BinaryOr,
        &&vm_tgt_BinaryXor,
        &&vm_tgt_BinaryLshift,
        &&vm_tgt_BinaryRshift,
        &&vm_tgt_UnaryNeg,
        &&vm_tgt_UnaryNot,
        &&vm_tgt_CompareEq,
        &&vm_tgt_CompareNe,
        &&vm_tgt_CompareLt,
        &&vm_tgt_CompareLe,
        &&vm_tgt_CompareGt,
        &&vm_tgt_CompareGe,
        &&vm_tgt_CompareIn,
        &&vm_tgt_CompareNotIn,
        &&vm_tgt_Jump,
        &&vm_tgt_PopJumpIfFalse,
        &&vm_tgt_PopJumpIfTrue,
        &&vm_tgt_JumpIfFalseOrPop,
        &&vm_tgt_JumpIfTrueOrPop,
        &&vm_tgt_GetIter,
        &&vm_tgt_ForIter,
        &&vm_tgt_Call,
        &&vm_tgt_Return,
        &&vm_tgt_Pop,
        &&vm_tgt_Dup,
        &&vm_tgt_DupTwo,
        &&vm_tgt_RotTwo,
        &&vm_tgt_RotThree,
        &&vm_tgt_BuildList,
        &&vm_tgt_BuildTuple,
        &&vm_tgt_BuildDict,
        &&vm_tgt_BuildSlice,
        &&vm_tgt_UnpackSequence,
        &&vm_tgt_MakeFunction,
        &&vm_tgt_MakeClass,
        &&vm_tgt_SetupExcept,
        &&vm_tgt_PopExcept,
        &&vm_tgt_Raise,
        &&vm_tgt_ListAppend,
        &&vm_tgt_AddIntInt,
        &&vm_tgt_SubIntInt,
        &&vm_tgt_MulIntInt,
        &&vm_tgt_AddFloatFloat,
        &&vm_tgt_SubFloatFloat,
        &&vm_tgt_MulFloatFloat,
        &&vm_tgt_CompareLtIntInt,
        &&vm_tgt_CompareLeIntInt,
        &&vm_tgt_CompareGtIntInt,
        &&vm_tgt_CompareGeIntInt,
        &&vm_tgt_CompareEqIntInt,
        &&vm_tgt_ForIterRange,
        &&vm_tgt_LoadAttrCached,
        &&vm_tgt_LoadGlobalCached,
        &&vm_tgt_LoadFastLoadFast,
        &&vm_tgt_LoadFastBinaryAdd,
        &&vm_tgt_NumOpcodes,
    };
    static_assert(sizeof(kOpTargets) / sizeof(kOpTargets[0]) ==
                      static_cast<size_t>(Op::NumOpcodes) + 1,
                  "dispatch table out of sync with the Op enum");
#endif

    bool compiled = frame.runtime->compiled;
    const bool adaptive = cfg.tier == Tier::Adaptive;

    for (;;) {
        const Instr &ins = (*frame.instrs)[frame.pc];
        size_t pc = frame.pc;
        ++frame.pc;
        Op op = ins.op;
        uint32_t uops = opBaseUops(op);
        bool dispatched = !compiled;
        if (obs) {
            curSite = (static_cast<uint64_t>(code->codeId) << 20) | pc;
            // Instruction-fetch model: interpreter handlers live in
            // a small shared region (one slot per opcode, ~16 KiB
            // total -> L1I friendly); compiled code occupies a
            // per-(code, pc) region (~32 B of machine code per
            // bytecode -> much larger footprint).
            uint64_t fetch_addr = compiled
                ? 0x100000000ULL +
                    static_cast<uint64_t>(code->codeId) * 0x40000 +
                    static_cast<uint64_t>(pc) * 32
                : 0x400000ULL + static_cast<uint64_t>(op) * 192;
            obs->onCodeFetch(fetch_addr);
        }
        // Compiled code unboxes and inlines beyond quickening: scale
        // down the cost of opcodes that stayed generic.
        if (compiled && op < Op::FirstQuickened) {
            uint32_t scaled = uops *
                static_cast<uint32_t>(cfg.compiledCostPercent) / 100;
            uops = scaled > 0 ? scaled : 1;
        }

        try {
        VM_SWITCH(op)
          VM_CASE(Nop)
            VM_BREAK;

          VM_CASE(LoadConst)
            push(code->constants[static_cast<size_t>(ins.arg)]);
            VM_BREAK;

          VM_CASE(LoadFast)
            emitMem(frame.localsBase +
                        static_cast<uint64_t>(ins.arg) * 8,
                    8, false);
            push(locals[static_cast<size_t>(ins.arg)]);
            VM_BREAK;

          VM_CASE(StoreFast)
            emitMem(frame.localsBase +
                        static_cast<uint64_t>(ins.arg) * 8,
                    8, true);
            locals[static_cast<size_t>(ins.arg)] = pop();
            VM_BREAK;

          VM_CASE(LoadGlobal)
          VM_CASE(LoadGlobalCached) {
            const Value &name =
                code->names[static_cast<size_t>(ins.arg)];
            bool cheap = false;
            if (op == Op::LoadGlobalCached) {
                auto &cache =
                    frame.runtime->caches[pc];
                if (cache.valid && cache.key == globalsDict) {
                    cheap = true;
                } else {
                    cache.valid = true;
                    cache.key = globalsDict;
                    uops = opBaseUops(Op::LoadGlobal);
                }
            }
            ++stats_.dictLookups;
            if (!cheap)
                emitMem(globalsDict->simAddr +
                            ((name.hash(cfg.hashSeed) & 255) * 16),
                        16, false);
            if (const Value *v = globalsDict->find(name)) {
                push(*v);
            } else if (const Value *b = builtinsDict->find(name)) {
                push(*b);
            } else {
                throw VmError(
                    "name '" +
                    code->nameStrings[static_cast<size_t>(ins.arg)] +
                    "' is not defined");
            }
            VM_BREAK;
          }

          VM_CASE(StoreGlobal) {
            const Value &name =
                code->names[static_cast<size_t>(ins.arg)];
            ++stats_.dictLookups;
            emitMem(globalsDict->simAddr +
                        ((name.hash(cfg.hashSeed) & 255) * 16),
                    16, true);
            globalsDict->set(name, pop());
            VM_BREAK;
          }

          VM_CASE(LoadName) {
            const Value &name =
                code->names[static_cast<size_t>(ins.arg)];
            ++stats_.dictLookups;
            const Value *v = nullptr;
            if (frame.nameSpace)
                v = frame.nameSpace->find(name);
            if (!v)
                v = globalsDict->find(name);
            if (!v)
                v = builtinsDict->find(name);
            if (!v) {
                throw VmError(
                    "name '" +
                    code->nameStrings[static_cast<size_t>(ins.arg)] +
                    "' is not defined");
            }
            push(*v);
            VM_BREAK;
          }

          VM_CASE(StoreName) {
            const Value &name =
                code->names[static_cast<size_t>(ins.arg)];
            DictObj *ns =
                frame.nameSpace ? frame.nameSpace : globalsDict;
            ns->set(name, pop());
            VM_BREAK;
          }

          VM_CASE(LoadAttr)
          VM_CASE(LoadAttrCached) {
            Value obj = pop();
            const Value &name =
                code->names[static_cast<size_t>(ins.arg)];
            if (op == Op::LoadAttrCached) {
                auto &cache = frame.runtime->caches[pc];
                const void *key = nullptr;
                if (obj.isObjKind(ObjKind::Instance))
                    key = static_cast<InstanceObj *>(obj.asObj())
                              ->cls;
                if (cache.valid && cache.key == key && key) {
                    // Modelled monomorphic-site hit: cheap cost,
                    // but perform the real lookup for correctness.
                } else {
                    uops = opBaseUops(Op::LoadAttr);
                    cache.valid = key != nullptr;
                    cache.key = key;
                }
            }
            push(loadAttr(obj, name, frame, pc));
            VM_BREAK;
          }

          VM_CASE(StoreAttr) {
            Value val = pop();
            Value obj = pop();
            storeAttr(obj, code->names[static_cast<size_t>(ins.arg)],
                      val);
            VM_BREAK;
          }

          VM_CASE(LoadSubscr) {
            Value idx = pop();
            Value obj = pop();
            push(loadSubscr(obj, idx));
            VM_BREAK;
          }

          VM_CASE(StoreSubscr) {
            Value val = pop();
            Value idx = pop();
            Value obj = pop();
            storeSubscr(obj, idx, val);
            VM_BREAK;
          }

          VM_CASE(DeleteSubscr) {
            Value idx = pop();
            Value obj = pop();
            deleteSubscr(obj, idx);
            VM_BREAK;
          }

          // --- Generic binary / unary / compare ----------------------
          VM_CASE(BinaryAdd)
          VM_CASE(BinarySub)
          VM_CASE(BinaryMul)
          VM_CASE(BinaryDiv)
          VM_CASE(BinaryFloorDiv)
          VM_CASE(BinaryMod)
          VM_CASE(BinaryPow)
          VM_CASE(BinaryAnd)
          VM_CASE(BinaryOr)
          VM_CASE(BinaryXor)
          VM_CASE(BinaryLshift)
          VM_CASE(BinaryRshift) {
            Value b = pop();
            Value a = pop();
            push(binaryOp(op, a, b));
            VM_BREAK;
          }

          // --- Quickened arithmetic with guards -----------------------
          VM_CASE(AddIntInt)
          VM_CASE(SubIntInt)
          VM_CASE(MulIntInt) {
            Value b = pop();
            Value a = pop();
            if (a.isInt() && b.isInt()) {
                int64_t x = a.asInt(), y = b.asInt();
                uint64_t ux = static_cast<uint64_t>(x);
                uint64_t uy = static_cast<uint64_t>(y);
                int64_t r = static_cast<int64_t>(
                    op == Op::AddIntInt ? ux + uy
                    : op == Op::SubIntInt ? ux - uy
                                          : ux * uy);
                push(Value::makeInt(r));
            } else if (a.isFloat() && b.isFloat()) {
                // Re-specialized float path (still cheap).
                double x = a.asFloat(), y = b.asFloat();
                double r = op == Op::AddIntInt ? x + y
                    : op == Op::SubIntInt      ? x - y
                                               : x * y;
                push(Value::makeFloat(r));
                uops += 1;
            } else {
                ++stats_.guardFailures;
                ++stats_.perOpGuards[static_cast<size_t>(op)];
                if (obs)
                    obs->onGuardFailure(op);
                Op generic = op == Op::AddIntInt ? Op::BinaryAdd
                    : op == Op::SubIntInt        ? Op::BinarySub
                                                 : Op::BinaryMul;
                uops = opBaseUops(generic) + 4;
                push(binaryOp(generic, a, b));
            }
            VM_BREAK;
          }

          VM_CASE(AddFloatFloat)
          VM_CASE(SubFloatFloat)
          VM_CASE(MulFloatFloat) {
            Value b = pop();
            Value a = pop();
            if (a.isFloat() && b.isFloat()) {
                double x = a.asFloat(), y = b.asFloat();
                double r = op == Op::AddFloatFloat ? x + y
                    : op == Op::SubFloatFloat      ? x - y
                                                   : x * y;
                push(Value::makeFloat(r));
            } else {
                ++stats_.guardFailures;
                ++stats_.perOpGuards[static_cast<size_t>(op)];
                if (obs)
                    obs->onGuardFailure(op);
                Op generic = op == Op::AddFloatFloat ? Op::BinaryAdd
                    : op == Op::SubFloatFloat        ? Op::BinarySub
                                                     : Op::BinaryMul;
                uops = opBaseUops(generic) + 4;
                push(binaryOp(generic, a, b));
            }
            VM_BREAK;
          }

          VM_CASE(UnaryNeg) {
            Value a = pop();
            if (a.isInt())
                push(Value::makeInt(-a.asInt()));
            else if (a.isFloat())
                push(Value::makeFloat(-a.asFloat()));
            else if (a.isBool())
                push(Value::makeInt(a.asBool() ? -1 : 0));
            else
                throw VmError("bad operand type for unary -: '" +
                              a.typeName() + "'");
            VM_BREAK;
          }

          VM_CASE(UnaryNot)
            push(Value::makeBool(!pop().truthy()));
            VM_BREAK;

          VM_CASE(CompareEq)
          VM_CASE(CompareNe)
          VM_CASE(CompareLt)
          VM_CASE(CompareLe)
          VM_CASE(CompareGt)
          VM_CASE(CompareGe)
          VM_CASE(CompareIn)
          VM_CASE(CompareNotIn) {
            Value b = pop();
            Value a = pop();
            push(compareOp(op, a, b));
            VM_BREAK;
          }

          VM_CASE(CompareLtIntInt)
          VM_CASE(CompareLeIntInt)
          VM_CASE(CompareGtIntInt)
          VM_CASE(CompareGeIntInt)
          VM_CASE(CompareEqIntInt) {
            Value b = pop();
            Value a = pop();
            if (a.isInt() && b.isInt()) {
                int64_t x = a.asInt(), y = b.asInt();
                bool r = false;
                switch (op) {
                  case Op::CompareLtIntInt: r = x < y; break;
                  case Op::CompareLeIntInt: r = x <= y; break;
                  case Op::CompareGtIntInt: r = x > y; break;
                  case Op::CompareGeIntInt: r = x >= y; break;
                  case Op::CompareEqIntInt: r = x == y; break;
                  default: break;
                }
                push(Value::makeBool(r));
            } else {
                ++stats_.guardFailures;
                ++stats_.perOpGuards[static_cast<size_t>(op)];
                if (obs)
                    obs->onGuardFailure(op);
                Op generic;
                switch (op) {
                  case Op::CompareLtIntInt: generic = Op::CompareLt;
                    break;
                  case Op::CompareLeIntInt: generic = Op::CompareLe;
                    break;
                  case Op::CompareGtIntInt: generic = Op::CompareGt;
                    break;
                  case Op::CompareGeIntInt: generic = Op::CompareGe;
                    break;
                  default: generic = Op::CompareEq; break;
                }
                uops = opBaseUops(generic) + 4;
                push(compareOp(generic, a, b));
            }
            VM_BREAK;
          }

          // --- Control flow ------------------------------------------
          VM_CASE(Jump) {
            int32_t target = ins.arg;
            if (target <= static_cast<int32_t>(pc)) {
                // Backward edge: hot-loop accounting for the JIT.
                if (adaptive && !compiled) {
                    CodeRuntime &rt = *frame.runtime;
                    if (++rt.backedges >=
                        static_cast<uint64_t>(cfg.jitThreshold)) {
                        jitCompile(code, rt);
                        frame.instrs = &rt.quickened;
                        compiled = true;
                    }
                }
            }
            frame.pc = static_cast<size_t>(target);
            VM_BREAK;
          }

          VM_CASE(PopJumpIfFalse) {
            bool cond = pop().truthy();
            emitBranch(frame, pc, !cond);
            if (!cond)
                frame.pc = static_cast<size_t>(ins.arg);
            VM_BREAK;
          }

          VM_CASE(PopJumpIfTrue) {
            bool cond = pop().truthy();
            emitBranch(frame, pc, cond);
            if (cond)
                frame.pc = static_cast<size_t>(ins.arg);
            VM_BREAK;
          }

          VM_CASE(JumpIfFalseOrPop) {
            bool cond = stack.back().truthy();
            emitBranch(frame, pc, !cond);
            if (!cond)
                frame.pc = static_cast<size_t>(ins.arg);
            else
                stack.pop_back();
            VM_BREAK;
          }

          VM_CASE(JumpIfTrueOrPop) {
            bool cond = stack.back().truthy();
            emitBranch(frame, pc, cond);
            if (cond)
                frame.pc = static_cast<size_t>(ins.arg);
            else
                stack.pop_back();
            VM_BREAK;
          }

          VM_CASE(GetIter) {
            Value it = makeIterator(pop());
            push(std::move(it));
            VM_BREAK;
          }

          VM_CASE(ForIter)
          VM_CASE(ForIterRange) {
            auto *iter =
                static_cast<IteratorObj *>(stack.back().asObj());
            if (op == Op::ForIterRange &&
                iter->source != IteratorObj::Source::Range) {
                ++stats_.guardFailures;
                ++stats_.perOpGuards[static_cast<size_t>(op)];
                if (obs)
                    obs->onGuardFailure(op);
                uops = opBaseUops(Op::ForIter) + 2;
            }
            Value next;
            bool has = iter->next(next, cfg.hashSeed);
            if (iter->source == IteratorObj::Source::List && has) {
                emitMem(iter->container.asObj()->simAddr + 16 +
                            (iter->index - 1) * 8,
                        8, false);
            }
            emitBranch(frame, pc, has);
            if (has) {
                push(std::move(next));
            } else {
                stack.pop_back();  // drop the iterator
                frame.pc = static_cast<size_t>(ins.arg);
                // Loop exit is also a back-edge accounting point.
                if (adaptive && !compiled) {
                    CodeRuntime &rt = *frame.runtime;
                    if (rt.backedges >=
                        static_cast<uint64_t>(cfg.jitThreshold)) {
                        jitCompile(code, rt);
                        frame.instrs = &rt.quickened;
                        compiled = true;
                    }
                }
            }
            VM_BREAK;
          }

          // --- Calls --------------------------------------------------
          VM_CASE(Call) {
            size_t nargs = static_cast<size_t>(ins.arg);
            std::vector<Value> args;
            args.reserve(nargs);
            for (size_t i = stack.size() - nargs; i < stack.size();
                 ++i)
                args.push_back(std::move(stack[i]));
            stack.resize(stack.size() - nargs);
            Value callee = pop();
            accountBytecode(op, uops, dispatched);
            push(callValue(callee, std::move(args)));
            continue;  // already accounted
          }

          VM_CASE(Return) {
            Value result = pop();
            accountBytecode(op, uops, dispatched);
            return result;
          }

          // --- Stack shuffling ----------------------------------------
          VM_CASE(Pop)
            pop();
            VM_BREAK;
          VM_CASE(Dup)
            push(stack.back());
            VM_BREAK;
          VM_CASE(DupTwo) {
            Value b = stack[stack.size() - 1];
            Value a = stack[stack.size() - 2];
            push(std::move(a));
            push(std::move(b));
            VM_BREAK;
          }
          VM_CASE(RotTwo)
            std::swap(stack[stack.size() - 1],
                      stack[stack.size() - 2]);
            VM_BREAK;
          VM_CASE(RotThree) {
            Value top = std::move(stack.back());
            stack.pop_back();
            stack.insert(stack.end() - 2, std::move(top));
            VM_BREAK;
          }

          // --- Construction -------------------------------------------
          VM_CASE(BuildList) {
            size_t n = static_cast<size_t>(ins.arg);
            ListObj *l = alloc<ListObj>();
            l->items.reserve(n);
            for (size_t i = stack.size() - n; i < stack.size(); ++i)
                l->items.push_back(std::move(stack[i]));
            stack.resize(stack.size() - n);
            push(Value::makeObj(l));
            VM_BREAK;
          }
          VM_CASE(BuildTuple) {
            size_t n = static_cast<size_t>(ins.arg);
            TupleObj *t = alloc<TupleObj>();
            t->items.reserve(n);
            for (size_t i = stack.size() - n; i < stack.size(); ++i)
                t->items.push_back(std::move(stack[i]));
            stack.resize(stack.size() - n);
            push(Value::makeObj(t));
            VM_BREAK;
          }
          VM_CASE(BuildDict) {
            size_t n = static_cast<size_t>(ins.arg);
            DictObj *d = alloc<DictObj>(cfg.hashSeed);
            size_t base = stack.size() - 2 * n;
            for (size_t i = 0; i < n; ++i)
                d->set(stack[base + 2 * i], stack[base + 2 * i + 1]);
            stack.resize(base);
            push(Value::makeObj(d));
            VM_BREAK;
          }
          VM_CASE(BuildSlice) {
            SliceObj *s = alloc<SliceObj>();
            s->step = pop();
            s->stop = pop();
            s->start = pop();
            push(Value::makeObj(s));
            VM_BREAK;
          }

          VM_CASE(UnpackSequence) {
            Value seq = pop();
            size_t n = static_cast<size_t>(ins.arg);
            const std::vector<Value> *items = nullptr;
            if (seq.isObjKind(ObjKind::Tuple))
                items = &static_cast<TupleObj *>(seq.asObj())->items;
            else if (seq.isObjKind(ObjKind::List))
                items = &static_cast<ListObj *>(seq.asObj())->items;
            else
                throw VmError("cannot unpack '" + seq.typeName() +
                              "'");
            if (items->size() != n)
                throw VmError(
                    "unpack expected " + std::to_string(n) +
                    " values, got " + std::to_string(items->size()));
            for (size_t i = n; i > 0; --i)
                push((*items)[i - 1]);
            VM_BREAK;
          }

          VM_CASE(MakeFunction) {
            const CodeObject *child =
                code->children[static_cast<size_t>(ins.arg)].get();
            FunctionObj *fn = alloc<FunctionObj>();
            fn->name = child->name;
            fn->code = child;
            fn->globals = globalsDict;
            fn->defaults.resize(
                static_cast<size_t>(child->numDefaults));
            for (size_t i =
                     static_cast<size_t>(child->numDefaults);
                 i > 0; --i)
                fn->defaults[i - 1] = pop();
            push(Value::makeObj(fn));
            VM_BREAK;
          }

          VM_CASE(MakeClass) {
            const CodeObject *child =
                code->children[static_cast<size_t>(ins.arg)].get();
            Value base = pop();
            ClassObj *cls = alloc<ClassObj>(cfg.hashSeed);
            cls->name = child->name;
            if (!base.isNone()) {
                if (!base.isObjKind(ObjKind::Class))
                    throw VmError("base class must be a class");
                cls->base = static_cast<ClassObj *>(base.asObj());
                cls->base->incRef();
            }
            Value cls_val = Value::makeObj(cls);
            // Execute the class body into the class namespace.
            accountBytecode(op, uops, dispatched);
            execCode(child, {}, cls->attrs);
            push(std::move(cls_val));
            continue;  // already accounted
          }

          VM_CASE(SetupExcept)
            frame.handlers.push_back(
                {static_cast<size_t>(ins.arg), stack.size()});
            VM_BREAK;

          VM_CASE(PopExcept)
            if (frame.handlers.empty())
                panic("POP_EXCEPT with no active handler");
            frame.handlers.pop_back();
            VM_BREAK;

          VM_CASE(Raise) {
            Value exc = pop();
            accountBytecode(op, uops, dispatched);
            throw VmError(exc.str());
          }

          VM_CASE(ListAppend) {
            Value v = pop();
            Value &holder =
                stack[stack.size() - static_cast<size_t>(ins.arg)];
            if (!holder.isObjKind(ObjKind::List))
                panic("LIST_APPEND: no list at depth %d", ins.arg);
            auto *l = static_cast<ListObj *>(holder.asObj());
            emitMem(l->simAddr + 16 + l->items.size() * 8, 8, true);
            l->items.push_back(std::move(v));
            VM_BREAK;
          }

          // --- Superinstructions (threaded tier) ---------------------
          // Each fused op accounts as ONE bytecode and steps over the
          // dead slot quickening rewrote to Nop.
          VM_CASE(LoadFastLoadFast) {
            size_t s1 = static_cast<size_t>(ins.arg) >> 16;
            size_t s2 = static_cast<size_t>(ins.arg) & 0xffff;
            emitMem(frame.localsBase + s1 * 8, 8, false);
            push(locals[s1]);
            emitMem(frame.localsBase + s2 * 8, 8, false);
            push(locals[s2]);
            ++frame.pc;  // skip the fused (Nop'd) slot
            VM_BREAK;
          }

          VM_CASE(LoadFastBinaryAdd) {
            emitMem(frame.localsBase +
                        static_cast<uint64_t>(ins.arg) * 8,
                    8, false);
            const Value &b = locals[static_cast<size_t>(ins.arg)];
            Value a = pop();
            if (a.isInt() && b.isInt()) {
                push(Value::makeInt(static_cast<int64_t>(
                    static_cast<uint64_t>(a.asInt()) +
                    static_cast<uint64_t>(b.asInt()))));
            } else {
                ++stats_.guardFailures;
                ++stats_.perOpGuards[static_cast<size_t>(op)];
                if (obs)
                    obs->onGuardFailure(op);
                uops = opBaseUops(Op::LoadFast) +
                    opBaseUops(Op::BinaryAdd) + 4;
                push(binaryOp(Op::BinaryAdd, a, b));
            }
            ++frame.pc;  // skip the fused (Nop'd) slot
            VM_BREAK;
          }

          VM_CASE(NumOpcodes)
            panic("invalid opcode %d", static_cast<int>(op));
        VM_SWITCH_END

        accountBytecode(op, uops, dispatched);
        } catch (VmError &) {
            // Unwind to the innermost handler in *this* frame, if
            // any. Exceptions from nested calls surface here at the
            // Call instruction that made them.
            if (frame.handlers.empty())
                throw;
            ExceptHandler handler = frame.handlers.back();
            frame.handlers.pop_back();
            if (stack.size() > handler.stackDepth)
                stack.resize(handler.stackDepth);
            frame.pc = handler.handlerPc;
            accountBytecode(Op::Raise, opBaseUops(Op::Raise), false);
        }
    }
}

} // namespace vm
} // namespace rigor
