#include "vm/code.hh"

#include "support/logging.hh"
#include "support/str.hh"

namespace rigor {
namespace vm {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "NOP";
      case Op::LoadConst: return "LOAD_CONST";
      case Op::LoadFast: return "LOAD_FAST";
      case Op::StoreFast: return "STORE_FAST";
      case Op::LoadGlobal: return "LOAD_GLOBAL";
      case Op::StoreGlobal: return "STORE_GLOBAL";
      case Op::LoadName: return "LOAD_NAME";
      case Op::StoreName: return "STORE_NAME";
      case Op::LoadAttr: return "LOAD_ATTR";
      case Op::StoreAttr: return "STORE_ATTR";
      case Op::LoadSubscr: return "LOAD_SUBSCR";
      case Op::StoreSubscr: return "STORE_SUBSCR";
      case Op::DeleteSubscr: return "DELETE_SUBSCR";
      case Op::BinaryAdd: return "BINARY_ADD";
      case Op::BinarySub: return "BINARY_SUB";
      case Op::BinaryMul: return "BINARY_MUL";
      case Op::BinaryDiv: return "BINARY_DIV";
      case Op::BinaryFloorDiv: return "BINARY_FLOOR_DIV";
      case Op::BinaryMod: return "BINARY_MOD";
      case Op::BinaryPow: return "BINARY_POW";
      case Op::BinaryAnd: return "BINARY_AND";
      case Op::BinaryOr: return "BINARY_OR";
      case Op::BinaryXor: return "BINARY_XOR";
      case Op::BinaryLshift: return "BINARY_LSHIFT";
      case Op::BinaryRshift: return "BINARY_RSHIFT";
      case Op::UnaryNeg: return "UNARY_NEG";
      case Op::UnaryNot: return "UNARY_NOT";
      case Op::CompareEq: return "COMPARE_EQ";
      case Op::CompareNe: return "COMPARE_NE";
      case Op::CompareLt: return "COMPARE_LT";
      case Op::CompareLe: return "COMPARE_LE";
      case Op::CompareGt: return "COMPARE_GT";
      case Op::CompareGe: return "COMPARE_GE";
      case Op::CompareIn: return "COMPARE_IN";
      case Op::CompareNotIn: return "COMPARE_NOT_IN";
      case Op::Jump: return "JUMP";
      case Op::PopJumpIfFalse: return "POP_JUMP_IF_FALSE";
      case Op::PopJumpIfTrue: return "POP_JUMP_IF_TRUE";
      case Op::JumpIfFalseOrPop: return "JUMP_IF_FALSE_OR_POP";
      case Op::JumpIfTrueOrPop: return "JUMP_IF_TRUE_OR_POP";
      case Op::GetIter: return "GET_ITER";
      case Op::ForIter: return "FOR_ITER";
      case Op::Call: return "CALL";
      case Op::Return: return "RETURN";
      case Op::Pop: return "POP";
      case Op::Dup: return "DUP";
      case Op::DupTwo: return "DUP_TWO";
      case Op::RotTwo: return "ROT_TWO";
      case Op::RotThree: return "ROT_THREE";
      case Op::BuildList: return "BUILD_LIST";
      case Op::BuildTuple: return "BUILD_TUPLE";
      case Op::BuildDict: return "BUILD_DICT";
      case Op::BuildSlice: return "BUILD_SLICE";
      case Op::UnpackSequence: return "UNPACK_SEQUENCE";
      case Op::MakeFunction: return "MAKE_FUNCTION";
      case Op::MakeClass: return "MAKE_CLASS";
      case Op::SetupExcept: return "SETUP_EXCEPT";
      case Op::PopExcept: return "POP_EXCEPT";
      case Op::Raise: return "RAISE";
      case Op::ListAppend: return "LIST_APPEND";
      case Op::AddIntInt: return "ADD_INT_INT";
      case Op::SubIntInt: return "SUB_INT_INT";
      case Op::MulIntInt: return "MUL_INT_INT";
      case Op::AddFloatFloat: return "ADD_FLOAT_FLOAT";
      case Op::SubFloatFloat: return "SUB_FLOAT_FLOAT";
      case Op::MulFloatFloat: return "MUL_FLOAT_FLOAT";
      case Op::CompareLtIntInt: return "COMPARE_LT_INT_INT";
      case Op::CompareLeIntInt: return "COMPARE_LE_INT_INT";
      case Op::CompareGtIntInt: return "COMPARE_GT_INT_INT";
      case Op::CompareGeIntInt: return "COMPARE_GE_INT_INT";
      case Op::CompareEqIntInt: return "COMPARE_EQ_INT_INT";
      case Op::ForIterRange: return "FOR_ITER_RANGE";
      case Op::LoadAttrCached: return "LOAD_ATTR_CACHED";
      case Op::LoadGlobalCached: return "LOAD_GLOBAL_CACHED";
      case Op::LoadFastLoadFast: return "LOAD_FAST_LOAD_FAST";
      case Op::LoadFastBinaryAdd: return "LOAD_FAST_BINARY_ADD";
      case Op::NumOpcodes: break;
    }
    return "?";
}

bool
opIsJump(Op op)
{
    switch (op) {
      case Op::Jump:
      case Op::PopJumpIfFalse:
      case Op::PopJumpIfTrue:
      case Op::JumpIfFalseOrPop:
      case Op::JumpIfTrueOrPop:
      case Op::ForIter:
      case Op::ForIterRange:
        return true;
      default:
        return false;
    }
}

int
CodeObject::addConstant(const Value &v)
{
    for (size_t i = 0; i < constants.size(); ++i) {
        // Only pool-dedupe same-type scalars and strings; equals() on
        // ints/floats mixes types, so require matching tags.
        if (constants[i].tag() == v.tag() && constants[i].equals(v))
            return static_cast<int>(i);
    }
    constants.push_back(v);
    return static_cast<int>(constants.size() - 1);
}

int
CodeObject::addName(const std::string &n)
{
    for (size_t i = 0; i < nameStrings.size(); ++i) {
        if (nameStrings[i] == n)
            return static_cast<int>(i);
    }
    nameStrings.push_back(n);
    names.push_back(makeStr(n));
    return static_cast<int>(nameStrings.size() - 1);
}

std::string
CodeObject::disassemble(int indent) const
{
    std::string pad(static_cast<size_t>(indent), ' ');
    std::string out = pad + "code " + name + " (params=" +
        std::to_string(numParams) + ", locals=" +
        std::to_string(numLocals) + ")\n";
    for (size_t i = 0; i < instrs.size(); ++i) {
        const Instr &ins = instrs[i];
        out += pad + "  " + padLeft(std::to_string(i), 4) + "  " +
            padRight(opName(ins.op), 22);
        out += std::to_string(ins.arg);
        switch (ins.op) {
          case Op::LoadConst:
            if (ins.arg >= 0 &&
                static_cast<size_t>(ins.arg) < constants.size())
                out += "  (" +
                    constants[static_cast<size_t>(ins.arg)].repr() + ")";
            break;
          case Op::LoadGlobal:
          case Op::StoreGlobal:
          case Op::LoadName:
          case Op::StoreName:
          case Op::LoadAttr:
          case Op::StoreAttr:
          case Op::LoadAttrCached:
          case Op::LoadGlobalCached:
            if (ins.arg >= 0 &&
                static_cast<size_t>(ins.arg) < nameStrings.size())
                out += "  (" +
                    nameStrings[static_cast<size_t>(ins.arg)] + ")";
            break;
          case Op::LoadFast:
          case Op::StoreFast:
          case Op::LoadFastBinaryAdd:
            if (ins.arg >= 0 &&
                static_cast<size_t>(ins.arg) < varNames.size())
                out += "  (" +
                    varNames[static_cast<size_t>(ins.arg)] + ")";
            break;
          case Op::LoadFastLoadFast:
            if ((ins.arg >> 16) >= 0 &&
                static_cast<size_t>(ins.arg >> 16) < varNames.size() &&
                static_cast<size_t>(ins.arg & 0xffff) < varNames.size())
                out += "  (" +
                    varNames[static_cast<size_t>(ins.arg >> 16)] + ", " +
                    varNames[static_cast<size_t>(ins.arg & 0xffff)] + ")";
            break;
          default:
            break;
        }
        out += "\n";
    }
    for (const auto &child : children)
        out += child->disassemble(indent + 4);
    return out;
}

size_t
CodeObject::totalInstrs() const
{
    size_t n = instrs.size();
    for (const auto &child : children)
        n += child->totalInstrs();
    return n;
}

} // namespace vm
} // namespace rigor
