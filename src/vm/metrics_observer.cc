#include "vm/metrics_observer.hh"

namespace rigor {
namespace vm {

MetricsObserver::MetricsObserver(MetricsRegistry *registry,
                                 const std::string &tier_prefix,
                                 TraceEmitter *trace_emitter)
    : trace(trace_emitter)
{
    if (!registry)
        return;
    auto c = [&](const char *name) -> Counter * {
        return &registry->counter(tier_prefix + "." + name);
    };
    bytecodes = c("bytecodes");
    uopsTotal = c("uops");
    dispatches = c("dispatches");
    branches = c("branches");
    allocations = c("allocations");
    allocatedBytes = c("allocated_bytes");
    calls = c("calls");
    jitCompiles = c("jit_compiles");
    jitCompileUops = c("jit_compile_uops");
    guardFailures = c("guard_failures");
}

void
MetricsObserver::onBytecode(Op op, uint32_t uops)
{
    (void)op;
    if (bytecodes) {
        bytecodes->inc();
        uopsTotal->inc(uops);
    }
}

void
MetricsObserver::onDispatch(Op op)
{
    (void)op;
    if (dispatches)
        dispatches->inc();
}

void
MetricsObserver::onBranch(uint64_t site, bool taken)
{
    (void)site;
    (void)taken;
    if (branches)
        branches->inc();
}

void
MetricsObserver::onAlloc(uint64_t addr, uint32_t size)
{
    (void)addr;
    if (allocations) {
        allocations->inc();
        allocatedBytes->inc(size);
    }
}

void
MetricsObserver::onCall()
{
    if (calls)
        calls->inc();
}

void
MetricsObserver::onJitCompile(uint32_t code_id, uint64_t cost_uops)
{
    if (jitCompiles) {
        jitCompiles->inc();
        jitCompileUops->inc(cost_uops);
    }
    if (trace) {
        Json args = Json::object();
        args.set("code_id", static_cast<int64_t>(code_id));
        args.set("cost_uops", static_cast<int64_t>(cost_uops));
        trace->instant("jit_compile", "vm", std::move(args));
    }
}

void
MetricsObserver::onGuardFailure(Op op)
{
    if (guardFailures)
        guardFailures->inc();
    if (trace && deoptInstants < maxDeoptInstants) {
        ++deoptInstants;
        Json args = Json::object();
        args.set("op", opName(op));
        trace->instant("deopt", "vm", std::move(args));
    }
}

} // namespace vm
} // namespace rigor
