/**
 * @file
 * MiniPy abstract syntax tree.
 *
 * Plain struct hierarchy discriminated by a kind enum; nodes own
 * their children through unique_ptr. Covers the Python subset MiniPy
 * implements (see parser.hh for the grammar summary).
 */

#ifndef RIGOR_VM_AST_HH
#define RIGOR_VM_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rigor {
namespace vm {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** Binary operator kinds (also used for augmented assignment). */
enum class BinOp : uint8_t
{
    Add, Sub, Mul, Div, FloorDiv, Mod, Pow,
    BitAnd, BitOr, BitXor, LShift, RShift,
};

/** Comparison operator kinds. */
enum class CmpOp : uint8_t
{
    Eq, Ne, Lt, Le, Gt, Ge, In, NotIn,
};

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    IntLit,
    FloatLit,
    StrLit,
    BoolLit,
    NoneLit,
    Name,
    Unary,        ///< -x, not x, ~x
    Binary,
    Compare,
    BoolChain,    ///< and/or with short-circuit
    Call,
    Attribute,
    Subscript,    ///< a[i]
    SliceExpr,    ///< a[i:j] / a[i:j:k] (as the index of Subscript)
    ListLit,
    TupleLit,
    DictLit,
    ListComp,     ///< [value for name in iterable (if cond)?]
};

/** Unary operator kinds. */
enum class UnOp : uint8_t { Neg, Not, Invert };

/** One expression node; fields used depend on `kind`. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    // Literals.
    int64_t intValue = 0;
    double floatValue = 0.0;
    std::string strValue;   ///< also Name identifier, Attribute name
    bool boolValue = false;

    UnOp unOp = UnOp::Neg;
    BinOp binOp = BinOp::Add;
    CmpOp cmpOp = CmpOp::Eq;
    bool isAnd = false;     ///< BoolChain: and (true) / or (false)

    ExprPtr lhs;            ///< Unary operand, Binary/Compare lhs,
                            ///< Call callee, Attribute/Subscript base
    ExprPtr rhs;            ///< Binary/Compare rhs, Subscript index
    /** Call args, BoolChain operands, List/Tuple elements,
     *  Dict entries interleaved [k0, v0, k1, v1, ...],
     *  SliceExpr [start, stop, step] (null = omitted),
     *  ListComp [value, iterable, condition-or-null];
     *  ListComp's loop variable is in strValue. */
    std::vector<ExprPtr> items;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t
{
    ExprStmt,
    Assign,
    AugAssign,
    If,
    While,
    For,
    Break,
    Continue,
    Pass,
    Return,
    FunctionDef,
    ClassDef,
    Global,
    Del,
    Try,      ///< body + orelse (the except handler)
    Raise,    ///< expr = value to raise
    Assert,   ///< expr = condition, target = optional message
};

/** One statement node; fields used depend on `kind`. */
struct Stmt
{
    StmtKind kind;
    int line = 0;

    ExprPtr expr;           ///< ExprStmt value, Assign/AugAssign RHS,
                            ///< If/While condition, For iterable,
                            ///< Return value (may be null)
    ExprPtr target;         ///< Assign/AugAssign/For target
    BinOp augOp = BinOp::Add;

    std::vector<StmtPtr> body;
    std::vector<StmtPtr> orelse;   ///< If else-branch

    // FunctionDef / ClassDef.
    std::string name;
    std::vector<std::string> params;
    /** Default-value expressions for the trailing params. */
    std::vector<ExprPtr> defaults;
    std::string baseName;   ///< ClassDef base class ("" = none)

    // Global declaration.
    std::vector<std::string> globalNames;
};

/** A parsed module: the top-level statement list. */
struct Module
{
    std::vector<StmtPtr> body;
};

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_AST_HH
