/**
 * @file
 * The MiniPy virtual machine.
 *
 * One Interp instance models one *VM invocation*: it owns the module
 * globals, the hash-randomization seed, the simulated heap layout
 * (ASLR-like base offset) and — when the adaptive tier is enabled —
 * all JIT state (hot counters, quickened code, inline caches). Running
 * the same Program in a fresh Interp therefore reproduces the
 * cross-invocation non-determinism the methodology studies.
 */

#ifndef RIGOR_VM_INTERP_HH
#define RIGOR_VM_INTERP_HH

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/code.hh"
#include "vm/observer.hh"
#include "vm/value.hh"

namespace rigor {
namespace vm {

/** Which runtime tier executes the program. */
enum class Tier : uint8_t
{
    Interp,    ///< baseline interpreter (CPython-like)
    Adaptive,  ///< hot-loop quickening tier (PyPy-like warmup model)
    Threaded,  ///< direct-threaded fast tier (quickened up-front)
};

/** Name of a tier ("interp" / "adaptive" / "threaded"). */
const char *tierName(Tier t);

/**
 * Parse a tier name back. The inverse of tierName, used by every
 * deserialization site (resume files, archive entries, behavior
 * profiles) so an unknown tier string is rejected loudly instead of
 * silently defaulting to an existing tier.
 * @throws FatalError on an unknown name.
 */
Tier tierFromName(const std::string &name);

/** Configuration of one VM invocation. */
struct InterpConfig
{
    /** Hash-randomization seed (varies dict layouts per invocation). */
    uint64_t hashSeed = 0x517cc1b727220a95ULL;
    /** Seed for the simulated-heap base offset (ASLR model). */
    uint64_t aslrSeed = 0;
    /** Runtime tier. */
    Tier tier = Tier::Interp;
    /**
     * Hotness (loop back-edges + function entries) before a code
     * object is compiled by the adaptive tier.
     */
    int jitThreshold = 4000;
    /**
     * Cost scale applied to non-quickened opcodes inside compiled
     * code, modelling the unboxing/inlining a tracing JIT performs
     * beyond opcode specialization. Expressed as percent (40 = 0.4x).
     */
    int compiledCostPercent = 35;
    /** Modelled micro-op cost of compiling one code object. */
    uint64_t jitCompileUopsPerInstr = 2500;
    /**
     * Modelled micro-op overhead of one interpreter dispatch.
     * 6 models a switch interpreter; ~2 models direct-threaded code
     * (computed goto), which saves the bounds check and re-branch.
     * The runner sets this per tier.
     */
    uint32_t dispatchUops = 6;
    /**
     * Modelled micro-op cost, per instruction, of the threaded
     * tier's up-front quickening pass (superinstruction fusion +
     * cache-slot setup). Orders of magnitude cheaper than a JIT
     * compile; charged through the jitCompile counters.
     */
    uint64_t quickenUopsPerInstr = 3;
    /** Maximum MiniPy call depth. */
    int maxCallDepth = 800;
    /** If true, print() output is appended to Interp::output. */
    bool captureOutput = true;
};

/** Dynamic-execution counters maintained by the VM. */
struct InterpStats
{
    uint64_t bytecodes = 0;
    uint64_t uops = 0;
    uint64_t allocations = 0;
    uint64_t allocatedBytes = 0;
    uint64_t calls = 0;
    uint64_t guardFailures = 0;
    uint64_t jitCompiles = 0;
    /** Uops charged for JIT compilation (included in `uops`). */
    uint64_t jitCompileUops = 0;
    uint64_t dictLookups = 0;
    /** Dynamic count per opcode. */
    std::array<uint64_t, static_cast<size_t>(Op::NumOpcodes)> perOp{};
    /** Uops charged per opcode (dispatch overhead included). */
    std::array<uint64_t, static_cast<size_t>(Op::NumOpcodes)>
        perOpUops{};
    /** Interpreter-dispatched executions per opcode. */
    std::array<uint64_t, static_cast<size_t>(Op::NumOpcodes)>
        perOpDispatched{};
    /** Guard (speculation) failures per opcode. */
    std::array<uint64_t, static_cast<size_t>(Op::NumOpcodes)>
        perOpGuards{};
};

/**
 * The virtual machine. Executes a compiled Program; see file comment
 * for the invocation model.
 */
class Interp
{
  public:
    /**
     * @param program compiled program (must outlive the Interp).
     * @param config invocation configuration.
     * @param observer optional execution observer (may be null).
     */
    Interp(const Program &program, InterpConfig config = {},
           ExecutionObserver *observer = nullptr);
    ~Interp();

    Interp(const Interp &) = delete;
    Interp &operator=(const Interp &) = delete;

    /** Execute the module top-level code (defines globals). */
    void runModule();

    /**
     * Call a module-level function by name.
     * @throws VmError if the name is missing or not callable.
     */
    Value callGlobal(const std::string &name, std::vector<Value> args);

    /** Call an arbitrary callable value. */
    Value callValue(const Value &callee, std::vector<Value> args);

    /** The module globals dict. */
    DictObj &globals() { return *globalsDict; }

    /** Look up a global by name (None + false if missing). */
    bool getGlobal(const std::string &name, Value &out) const;

    /** Execution statistics so far. */
    const InterpStats &stats() const { return stats_; }

    /** Captured print() output (when configured). */
    const std::string &output() const { return outputBuf; }
    /** Clear captured output. */
    void clearOutput() { outputBuf.clear(); }

    /** This invocation's configuration. */
    const InterpConfig &config() const { return cfg; }

    /** Allocate and track a heap object of concrete type T. */
    template <typename T, typename... Args>
    T *
    alloc(Args &&...args)
    {
        T *obj = new T(std::forward<Args>(args)...);
        trackAlloc(obj);
        return obj;
    }

    /** Hash seed for dict creation. */
    uint64_t hashSeed() const { return cfg.hashSeed; }

    /** Append to the print buffer (builtins use this). */
    void printLine(const std::string &line);

    // -- internals shared with builtins.cc ---------------------------------

    /** Per-code-object runtime state for the adaptive/threaded tiers. */
    struct CodeRuntime
    {
        uint64_t backedges = 0;
        bool compiled = false;
        /** Quickened up-front by the threaded tier (not compiled). */
        bool threaded = false;
        std::vector<Instr> quickened;
        /** Inline caches, one per instruction slot. */
        struct Cache
        {
            const void *key = nullptr;  ///< class ptr / dict version
            Value value;                ///< cached result
            bool valid = false;
        };
        std::vector<Cache> caches;
    };

  private:
    friend void installBuiltins(Interp &interp, DictObj &builtins);

    /** An installed try/except handler within a frame. */
    struct ExceptHandler
    {
        size_t handlerPc = 0;
        size_t stackDepth = 0;  ///< value-stack depth to restore
    };

    /** One activation record. */
    struct Frame
    {
        const CodeObject *code = nullptr;
        const std::vector<Instr> *instrs = nullptr;
        CodeRuntime *runtime = nullptr;
        std::vector<Value> locals;
        std::vector<Value> stack;
        std::vector<ExceptHandler> handlers;
        DictObj *nameSpace = nullptr;  ///< class-body namespace (or null)
        size_t pc = 0;
        uint64_t localsBase = 0;  ///< simulated address of locals area
    };

    /** Execute a code object to completion; returns its return value. */
    Value execCode(const CodeObject *code, std::vector<Value> locals,
                   DictObj *name_space);

    /** Main bytecode evaluation loop over one frame. */
    Value evalFrame(Frame &frame);

    void trackAlloc(Object *obj);

    /** Resolve attribute access on any value. */
    Value loadAttr(const Value &obj, const Value &name, Frame &frame,
                   size_t pc);
    void storeAttr(const Value &obj, const Value &name,
                   const Value &val);
    Value loadSubscr(const Value &obj, const Value &idx);
    void storeSubscr(const Value &obj, const Value &idx,
                     const Value &val);
    void deleteSubscr(const Value &obj, const Value &idx);
    Value binaryOp(Op op, const Value &a, const Value &b);
    Value compareOp(Op op, const Value &a, const Value &b);
    Value makeIterator(const Value &iterable);

    CodeRuntime &runtimeFor(const CodeObject *code);
    /** Quicken (model-compile) a hot code object. */
    void jitCompile(const CodeObject *code, CodeRuntime &rt);
    /**
     * Threaded-tier up-front quickening: rewrite generic opcodes to
     * their specialized forms and fuse hot pairs into
     * superinstructions (never across a jump target).
     */
    void threadedQuicken(const CodeObject *code, CodeRuntime &rt);

    /** Account one executed bytecode to counters and the observer. */
    void accountBytecode(Op op, uint32_t uops, bool dispatched);
    void emitBranch(const Frame &frame, size_t pc, bool taken);
    void emitMem(uint64_t addr, uint32_t size, bool write);

    const Program &prog;
    InterpConfig cfg;
    ExecutionObserver *obs;
    InterpStats stats_;

    DictObj *globalsDict = nullptr;
    DictObj *builtinsDict = nullptr;

    /** Simulated-heap bump pointer (includes ASLR base). */
    uint64_t simBrk = 0;
    /**
     * Site of the bytecode currently executing, (codeId << 20) | pc
     * (the branch-site encoding); attributes allocations to their
     * allocating bytecode for onAllocSite(). Maintained only while an
     * observer is attached.
     */
    uint64_t curSite = 0;
    int callDepth = 0;

    std::string outputBuf;

    std::unordered_map<uint32_t, std::unique_ptr<CodeRuntime>> codeRt;

    /** Values retained for the lifetime of the interp (e.g. consts). */
    std::vector<Value> retained;
};

/** Install the builtin functions into the given namespace dict. */
void installBuiltins(Interp &interp, DictObj &builtins);

/**
 * Resolve a builtin-type method (str/list/dict) as a bound method.
 * @return true and set `out` if the type has such a method.
 */
bool getBuiltinTypeMethod(Interp &interp, const Value &receiver,
                          const std::string &name, Value &out);

/** Base micro-op cost of an opcode (excluding dispatch overhead). */
uint32_t opBaseUops(Op op);

/** Micro-op overhead of one interpreter dispatch. */
constexpr uint32_t kDispatchUops = 6;

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_INTERP_HH
