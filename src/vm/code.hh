/**
 * @file
 * MiniPy bytecode: opcode set, instruction encoding and code objects.
 *
 * The opcode set follows CPython's stack-machine design. The opcodes
 * after FirstQuickened are *specialized* forms installed by the
 * adaptive (JIT-model) tier; the baseline interpreter never emits or
 * executes them.
 */

#ifndef RIGOR_VM_CODE_HH
#define RIGOR_VM_CODE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/value.hh"

namespace rigor {
namespace vm {

/** Bytecode operations. */
enum class Op : uint8_t
{
    Nop,
    LoadConst,        ///< arg: constant index
    LoadFast,         ///< arg: local slot
    StoreFast,        ///< arg: local slot
    LoadGlobal,       ///< arg: name index
    StoreGlobal,      ///< arg: name index
    LoadName,         ///< arg: name index (class-body namespaces)
    StoreName,        ///< arg: name index (class-body namespaces)
    LoadAttr,         ///< arg: name index
    StoreAttr,        ///< arg: name index
    LoadSubscr,
    StoreSubscr,
    DeleteSubscr,

    BinaryAdd,
    BinarySub,
    BinaryMul,
    BinaryDiv,
    BinaryFloorDiv,
    BinaryMod,
    BinaryPow,
    BinaryAnd,
    BinaryOr,
    BinaryXor,
    BinaryLshift,
    BinaryRshift,

    UnaryNeg,
    UnaryNot,

    CompareEq,
    CompareNe,
    CompareLt,
    CompareLe,
    CompareGt,
    CompareGe,
    CompareIn,
    CompareNotIn,

    Jump,             ///< arg: absolute target
    PopJumpIfFalse,   ///< arg: absolute target
    PopJumpIfTrue,    ///< arg: absolute target
    JumpIfFalseOrPop, ///< arg: absolute target
    JumpIfTrueOrPop,  ///< arg: absolute target

    GetIter,
    ForIter,          ///< arg: absolute target on exhaustion

    Call,             ///< arg: positional argument count
    Return,

    Pop,
    Dup,
    DupTwo,
    RotTwo,
    RotThree,

    BuildList,        ///< arg: element count
    BuildTuple,       ///< arg: element count
    BuildDict,        ///< arg: pair count
    BuildSlice,       ///< arg: 2 or 3

    UnpackSequence,   ///< arg: target count

    MakeFunction,     ///< arg: child-code index (defaults on stack)
    MakeClass,        ///< arg: child-code index (base on stack)

    SetupExcept,      ///< arg: handler target (push handler)
    PopExcept,        ///< pop the innermost handler
    Raise,            ///< pop value, raise it

    ListAppend,       ///< arg: list's depth below TOS (comprehensions)

    // ---- Quickened forms (adaptive/threaded tiers only) ----
    FirstQuickened,
    AddIntInt = FirstQuickened,
    SubIntInt,
    MulIntInt,
    AddFloatFloat,
    SubFloatFloat,
    MulFloatFloat,
    CompareLtIntInt,
    CompareLeIntInt,
    CompareGtIntInt,
    CompareGeIntInt,
    CompareEqIntInt,
    ForIterRange,     ///< arg: absolute target on exhaustion
    LoadAttrCached,   ///< arg: name index (uses inline cache)
    LoadGlobalCached, ///< arg: name index (uses inline cache)

    // ---- Superinstructions (threaded tier only) ----
    // Fused by threadedQuicken for the hottest adjacent pairs. A
    // superinstruction accounts as ONE bytecode and skips the dead
    // slot it absorbed (which quickening rewrites to Nop).
    LoadFastLoadFast, ///< arg: (slot1 << 16) | slot2
    LoadFastBinaryAdd,///< arg: local slot (then add, int fast path)

    NumOpcodes,
};

/** Mnemonic for an opcode. */
const char *opName(Op op);

/** True for opcodes whose arg is a jump target. */
bool opIsJump(Op op);

/** A fixed-width instruction. */
struct Instr
{
    Op op = Op::Nop;
    int32_t arg = 0;
};

/**
 * Compiled code for one function, class body, or module. Owns its
 * constants, referenced names and child code objects.
 */
class CodeObject
{
  public:
    CodeObject() = default;
    ~CodeObject() = default;

    CodeObject(const CodeObject &) = delete;
    CodeObject &operator=(const CodeObject &) = delete;

    std::string name = "<module>";
    /** Positional parameter count. */
    int numParams = 0;
    /** Count of trailing parameters with default values. */
    int numDefaults = 0;
    /** Total local-variable slots (params first). */
    int numLocals = 0;
    /** True for class-body code (uses LoadName/StoreName). */
    bool isClassBody = false;

    /** Local variable names, indexed by slot (params first). */
    std::vector<std::string> varNames;
    /** Constant pool. */
    std::vector<Value> constants;
    /**
     * Name pool for globals/attributes, as interned str Values so the
     * interpreter can use them directly as dict keys.
     */
    std::vector<Value> names;
    /** Plain-string view of the name pool (for disassembly). */
    std::vector<std::string> nameStrings;
    /** The instruction stream. */
    std::vector<Instr> instrs;
    /** Nested function/class-body code objects. */
    std::vector<std::unique_ptr<CodeObject>> children;

    /** Unique id used to key per-interpreter runtime state. */
    uint32_t codeId = 0;

    /** Add a constant, returning its pool index (deduplicates). */
    int addConstant(const Value &v);
    /** Add a name, returning its pool index (deduplicates). */
    int addName(const std::string &n);

    /** Human-readable disassembly (recursive over children). */
    std::string disassemble(int indent = 0) const;

    /** Count instructions recursively (for suite characterization). */
    size_t totalInstrs() const;
};

/**
 * A compiled MiniPy program: the module code object plus bookkeeping
 * shared by every interpreter that runs it.
 */
class Program
{
  public:
    std::unique_ptr<CodeObject> module;
    /** Number of code objects in the tree (ids are 0..count-1). */
    uint32_t codeCount = 0;

    /** Source text the program was compiled from (for reporting). */
    std::string sourceName = "<string>";
};

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_CODE_HH
