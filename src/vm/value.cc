#include "vm/value.hh"

#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace rigor {
namespace vm {

const char *
objKindName(ObjKind kind)
{
    switch (kind) {
      case ObjKind::Str: return "str";
      case ObjKind::List: return "list";
      case ObjKind::Tuple: return "tuple";
      case ObjKind::Dict: return "dict";
      case ObjKind::Function: return "function";
      case ObjKind::Builtin: return "builtin_function";
      case ObjKind::Class: return "type";
      case ObjKind::Instance: return "instance";
      case ObjKind::BoundMethod: return "method";
      case ObjKind::Range: return "range";
      case ObjKind::Iterator: return "iterator";
      case ObjKind::Slice: return "slice";
    }
    return "?";
}

Value
Value::makeObj(Object *o)
{
    if (!o)
        panic("Value::makeObj: null object");
    Value v;
    v.tag_ = Tag::Obj;
    v.payload.o = o;
    o->incRef();
    return v;
}

Value
Value::stealObj(Object *o)
{
    if (!o)
        panic("Value::stealObj: null object");
    Value v;
    v.tag_ = Tag::Obj;
    v.payload.o = o;
    return v;
}

Value::Value(const Value &other)
    : tag_(other.tag_), payload(other.payload)
{
    if (tag_ == Tag::Obj)
        payload.o->incRef();
}

Value::Value(Value &&other) noexcept
    : tag_(other.tag_), payload(other.payload)
{
    other.tag_ = Tag::None;
    other.payload.i = 0;
}

Value &
Value::operator=(const Value &other)
{
    if (this == &other)
        return *this;
    if (other.tag_ == Tag::Obj)
        other.payload.o->incRef();
    if (tag_ == Tag::Obj)
        payload.o->decRef();
    tag_ = other.tag_;
    payload = other.payload;
    return *this;
}

Value &
Value::operator=(Value &&other) noexcept
{
    if (this == &other)
        return *this;
    if (tag_ == Tag::Obj)
        payload.o->decRef();
    tag_ = other.tag_;
    payload = other.payload;
    other.tag_ = Tag::None;
    other.payload.i = 0;
    return *this;
}

Value::~Value()
{
    if (tag_ == Tag::Obj)
        payload.o->decRef();
}

bool
Value::isObjKind(ObjKind kind) const
{
    return tag_ == Tag::Obj && payload.o->kind() == kind;
}

double
Value::numeric() const
{
    if (tag_ == Tag::Int)
        return static_cast<double>(payload.i);
    if (tag_ == Tag::Float)
        return payload.f;
    if (tag_ == Tag::Bool)
        return payload.b ? 1.0 : 0.0;
    throw VmError("expected a number, got " + typeName());
}

bool
Value::truthy() const
{
    switch (tag_) {
      case Tag::None:
        return false;
      case Tag::Bool:
        return payload.b;
      case Tag::Int:
        return payload.i != 0;
      case Tag::Float:
        return payload.f != 0.0;
      case Tag::Obj:
        switch (payload.o->kind()) {
          case ObjKind::Str:
            return !static_cast<StrObj *>(payload.o)->value.empty();
          case ObjKind::List:
            return !static_cast<ListObj *>(payload.o)->items.empty();
          case ObjKind::Tuple:
            return !static_cast<TupleObj *>(payload.o)->items.empty();
          case ObjKind::Dict:
            return static_cast<DictObj *>(payload.o)->size() != 0;
          case ObjKind::Range:
            return static_cast<RangeObj *>(payload.o)->length() != 0;
          default:
            return true;
        }
    }
    return false;
}

bool
Value::equals(const Value &other) const
{
    // Numeric cross-type equality (int == float, bool == int).
    auto numericTag = [](Tag t) {
        return t == Tag::Int || t == Tag::Float || t == Tag::Bool;
    };
    if (numericTag(tag_) && numericTag(other.tag_)) {
        if (tag_ == Tag::Int && other.tag_ == Tag::Int)
            return payload.i == other.payload.i;
        return numeric() == other.numeric();
    }
    if (tag_ != other.tag_)
        return false;
    switch (tag_) {
      case Tag::None:
        return true;
      case Tag::Obj:
        break;
      default:
        return false;  // unreachable: numeric handled above
    }

    Object *a = payload.o;
    Object *b = other.payload.o;
    if (a == b)
        return true;
    if (a->kind() != b->kind())
        return false;
    switch (a->kind()) {
      case ObjKind::Str:
        return static_cast<StrObj *>(a)->value ==
            static_cast<StrObj *>(b)->value;
      case ObjKind::List: {
        auto &x = static_cast<ListObj *>(a)->items;
        auto &y = static_cast<ListObj *>(b)->items;
        if (x.size() != y.size())
            return false;
        for (size_t i = 0; i < x.size(); ++i)
            if (!x[i].equals(y[i]))
                return false;
        return true;
      }
      case ObjKind::Tuple: {
        auto &x = static_cast<TupleObj *>(a)->items;
        auto &y = static_cast<TupleObj *>(b)->items;
        if (x.size() != y.size())
            return false;
        for (size_t i = 0; i < x.size(); ++i)
            if (!x[i].equals(y[i]))
                return false;
        return true;
      }
      default:
        return false;  // identity already checked
    }
}

namespace {

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

uint64_t
hashBytes(const std::string &s, uint64_t seed)
{
    // FNV-1a seeded.
    uint64_t h = 1469598103934665603ULL ^ seed;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

uint64_t
Value::hash(uint64_t seed) const
{
    switch (tag_) {
      case Tag::None:
        return mix(seed, 0x6e6f6e65ULL);
      case Tag::Bool:
        return mix(seed, payload.b ? 2 : 1);
      case Tag::Int:
        return mix(seed, static_cast<uint64_t>(payload.i));
      case Tag::Float: {
        double f = payload.f;
        // Ints and equal floats must hash equally.
        if (f == std::floor(f) && std::fabs(f) < 1e18)
            return mix(seed, static_cast<uint64_t>(
                static_cast<int64_t>(f)));
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(f));
        __builtin_memcpy(&bits, &f, sizeof(bits));
        return mix(seed, bits);
      }
      case Tag::Obj:
        switch (payload.o->kind()) {
          case ObjKind::Str:
            return hashBytes(static_cast<StrObj *>(payload.o)->value,
                             seed);
          case ObjKind::Tuple: {
            uint64_t h = mix(seed, 0x7475706cULL);
            for (const auto &v :
                 static_cast<TupleObj *>(payload.o)->items)
                h = mix(h, v.hash(seed));
            return h;
          }
          default:
            throw VmError("unhashable type: '" +
                          std::string(objKindName(payload.o->kind())) +
                          "'");
        }
    }
    return 0;
}

namespace {

std::string
floatRepr(double f)
{
    if (f == std::floor(f) && std::fabs(f) < 1e16) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f", f);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", f);
    return buf;
}

} // namespace

std::string
Value::repr() const
{
    switch (tag_) {
      case Tag::None:
        return "None";
      case Tag::Bool:
        return payload.b ? "True" : "False";
      case Tag::Int:
        return std::to_string(payload.i);
      case Tag::Float:
        return floatRepr(payload.f);
      case Tag::Obj:
        break;
    }
    Object *o = payload.o;
    switch (o->kind()) {
      case ObjKind::Str:
        return "'" + static_cast<StrObj *>(o)->value + "'";
      case ObjKind::List: {
        std::string out = "[";
        auto &items = static_cast<ListObj *>(o)->items;
        for (size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += ", ";
            out += items[i].repr();
        }
        return out + "]";
      }
      case ObjKind::Tuple: {
        std::string out = "(";
        auto &items = static_cast<TupleObj *>(o)->items;
        for (size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += ", ";
            out += items[i].repr();
        }
        if (items.size() == 1)
            out += ",";
        return out + ")";
      }
      case ObjKind::Dict: {
        std::string out = "{";
        bool first = true;
        for (const auto &e : static_cast<DictObj *>(o)->entries()) {
            if (!e.live)
                continue;
            if (!first)
                out += ", ";
            first = false;
            out += e.key.repr() + ": " + e.value.repr();
        }
        return out + "}";
      }
      case ObjKind::Function:
        return "<function " + static_cast<FunctionObj *>(o)->name + ">";
      case ObjKind::Builtin:
        return "<built-in function " +
            static_cast<BuiltinObj *>(o)->name + ">";
      case ObjKind::Class:
        return "<class '" + static_cast<ClassObj *>(o)->name + "'>";
      case ObjKind::Instance:
        return "<" + static_cast<InstanceObj *>(o)->cls->name +
            " instance>";
      case ObjKind::BoundMethod:
        return "<bound method>";
      case ObjKind::Range: {
        auto *r = static_cast<RangeObj *>(o);
        return "range(" + std::to_string(r->start) + ", " +
            std::to_string(r->stop) +
            (r->step != 1 ? ", " + std::to_string(r->step) : "") + ")";
      }
      case ObjKind::Iterator:
        return "<iterator>";
      case ObjKind::Slice:
        return "<slice>";
    }
    return "<?>";
}

std::string
Value::str() const
{
    if (isObjKind(ObjKind::Str))
        return static_cast<StrObj *>(payload.o)->value;
    return repr();
}

std::string
Value::typeName() const
{
    switch (tag_) {
      case Tag::None: return "NoneType";
      case Tag::Bool: return "bool";
      case Tag::Int: return "int";
      case Tag::Float: return "float";
      case Tag::Obj:
        if (payload.o->kind() == ObjKind::Instance)
            return static_cast<InstanceObj *>(payload.o)->cls->name;
        return objKindName(payload.o->kind());
    }
    return "?";
}

// --- DictObj --------------------------------------------------------

void
DictObj::rehash()
{
    size_t want = order.size() < 4 ? 8 : order.size() * 4;
    // Round up to a power of two.
    size_t cap = 8;
    while (cap < want)
        cap *= 2;
    slots.assign(cap, -1);
    // Compact the order vector (drop tombstones) while reinserting.
    std::vector<Entry> compacted;
    compacted.reserve(liveCount);
    for (auto &e : order) {
        if (e.live)
            compacted.push_back(std::move(e));
    }
    order = std::move(compacted);
    for (size_t i = 0; i < order.size(); ++i) {
        uint64_t h = order[i].key.hash(hashSeed);
        size_t mask = slots.size() - 1;
        size_t idx = static_cast<size_t>(h) & mask;
        while (slots[idx] >= 0)
            idx = (idx + 1) & mask;
        slots[idx] = static_cast<int32_t>(i);
    }
}

size_t
DictObj::probe(const Value &key, uint64_t h) const
{
    size_t mask = slots.size() - 1;
    size_t idx = static_cast<size_t>(h) & mask;
    size_t first_tombstone = SIZE_MAX;
    for (;;) {
        int32_t s = slots[idx];
        if (s == -1)
            return first_tombstone != SIZE_MAX ? first_tombstone : idx;
        if (s == -2) {
            if (first_tombstone == SIZE_MAX)
                first_tombstone = idx;
        } else if (order[static_cast<size_t>(s)].live &&
                   order[static_cast<size_t>(s)].key.equals(key)) {
            return idx;
        }
        idx = (idx + 1) & mask;
    }
}

void
DictObj::set(const Value &key, const Value &val)
{
    // Rehash on load factor measured over *entries including
    // tombstones*: under insert/erase churn tombstones would
    // otherwise exhaust the empty slots probe chains terminate on.
    if (slots.empty() || (order.size() + 1) * 3 >= slots.size() * 2)
        rehash();
    uint64_t h = key.hash(hashSeed);
    size_t idx = probe(key, h);
    int32_t s = slots[idx];
    if (s >= 0 && order[static_cast<size_t>(s)].live) {
        order[static_cast<size_t>(s)].value = val;
        return;
    }
    Entry e;
    e.key = key;
    e.value = val;
    e.live = true;
    order.push_back(std::move(e));
    slots[idx] = static_cast<int32_t>(order.size() - 1);
    ++liveCount;
    simSize = static_cast<uint32_t>(64 + order.size() * 32);
}

const Value *
DictObj::find(const Value &key) const
{
    if (slots.empty())
        return nullptr;
    uint64_t h = key.hash(hashSeed);
    size_t idx = probe(key, h);
    int32_t s = slots[idx];
    if (s >= 0 && order[static_cast<size_t>(s)].live)
        return &order[static_cast<size_t>(s)].value;
    return nullptr;
}

bool
DictObj::erase(const Value &key)
{
    if (slots.empty())
        return false;
    uint64_t h = key.hash(hashSeed);
    size_t idx = probe(key, h);
    int32_t s = slots[idx];
    if (s < 0 || !order[static_cast<size_t>(s)].live)
        return false;
    order[static_cast<size_t>(s)].live = false;
    order[static_cast<size_t>(s)].key = Value();
    order[static_cast<size_t>(s)].value = Value();
    slots[idx] = -2;
    --liveCount;
    return true;
}

void
DictObj::clear()
{
    slots.clear();
    order.clear();
    liveCount = 0;
}

// --- FunctionObj / ClassObj / InstanceObj ---------------------------

FunctionObj::~FunctionObj() = default;

ClassObj::ClassObj(uint64_t hash_seed)
    : Object(ObjKind::Class)
{
    attrs = new DictObj(hash_seed);
    attrs->incRef();
}

ClassObj::~ClassObj()
{
    if (attrs)
        attrs->decRef();
    if (base)
        base->decRef();
}

const Value *
ClassObj::lookup(const Value &name) const
{
    for (const ClassObj *c = this; c; c = c->base) {
        if (const Value *v = c->attrs->find(name))
            return v;
    }
    return nullptr;
}

InstanceObj::InstanceObj(ClassObj *cls_, uint64_t hash_seed)
    : Object(ObjKind::Instance), cls(cls_)
{
    cls->incRef();
    fields = new DictObj(hash_seed);
    fields->incRef();
}

InstanceObj::~InstanceObj()
{
    fields->decRef();
    cls->decRef();
}

// --- RangeObj / IteratorObj -----------------------------------------

int64_t
RangeObj::length() const
{
    if (step == 0)
        throw VmError("range() arg 3 must not be zero");
    if (step > 0) {
        if (stop <= start)
            return 0;
        return (stop - start + step - 1) / step;
    }
    if (stop >= start)
        return 0;
    return (start - stop + (-step) - 1) / (-step);
}

bool
IteratorObj::next(Value &out, uint64_t hash_seed)
{
    switch (source) {
      case Source::List: {
        auto *l = static_cast<ListObj *>(container.asObj());
        if (index >= l->items.size())
            return false;
        out = l->items[index++];
        return true;
      }
      case Source::Tuple: {
        auto *t = static_cast<TupleObj *>(container.asObj());
        if (index >= t->items.size())
            return false;
        out = t->items[index++];
        return true;
      }
      case Source::Str: {
        auto *s = static_cast<StrObj *>(container.asObj());
        if (index >= s->value.size())
            return false;
        out = makeStr(std::string(1, s->value[index++]));
        return true;
      }
      case Source::Range: {
        auto *r = static_cast<RangeObj *>(container.asObj());
        if (!primed) {
            cursor = r->start;
            primed = true;
        }
        if ((r->step > 0 && cursor >= r->stop) ||
            (r->step < 0 && cursor <= r->stop))
            return false;
        out = Value::makeInt(cursor);
        cursor += r->step;
        return true;
      }
      case Source::DictKeys:
      case Source::DictValues:
      case Source::DictItems: {
        auto *d = static_cast<DictObj *>(container.asObj());
        const auto &entries = d->entries();
        while (index < entries.size() && !entries[index].live)
            ++index;
        if (index >= entries.size())
            return false;
        const auto &e = entries[index++];
        if (source == Source::DictKeys) {
            out = e.key;
        } else if (source == Source::DictValues) {
            out = e.value;
        } else {
            auto *t = new TupleObj();
            t->items.push_back(e.key);
            t->items.push_back(e.value);
            out = Value::makeObj(t);
        }
        (void)hash_seed;
        return true;
      }
    }
    return false;
}

Value
makeStr(std::string s)
{
    return Value::makeObj(new StrObj(std::move(s)));
}

} // namespace vm
} // namespace rigor
