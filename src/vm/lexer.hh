/**
 * @file
 * MiniPy lexer: tokenizes Python-style source with significant
 * indentation (INDENT/DEDENT tokens, bracket-implicit line joining).
 */

#ifndef RIGOR_VM_LEXER_HH
#define RIGOR_VM_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rigor {
namespace vm {

/** Token kinds produced by the lexer. */
enum class Tok : uint8_t
{
    EndOfFile,
    Newline,
    Indent,
    Dedent,
    Name,
    IntLit,
    FloatLit,
    StrLit,

    // Keywords.
    KwDef, KwReturn, KwIf, KwElif, KwElse, KwWhile, KwFor, KwIn,
    KwBreak, KwContinue, KwPass, KwClass, KwGlobal, KwAnd, KwOr,
    KwNot, KwTrue, KwFalse, KwNone, KwDel,
    KwTry, KwExcept, KwRaise, KwAssert,

    // Punctuation / operators.
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Comma, Colon, Dot, Semicolon,
    Assign,        // =
    Plus, Minus, Star, DoubleStar, Slash, DoubleSlash, Percent,
    Amp, Pipe, Caret, LShift, RShift, Tilde,
    Eq, Ne, Lt, Le, Gt, Ge,
    PlusAssign, MinusAssign, StarAssign, SlashAssign,
    DoubleSlashAssign, PercentAssign,
};

/** Mnemonic for a token kind (for error messages). */
const char *tokName(Tok t);

/** One lexed token. */
struct Token
{
    Tok kind = Tok::EndOfFile;
    std::string text;     ///< names, string literal contents
    int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 0;
    int col = 0;
};

/** Syntax error with location information. */
class SyntaxError : public std::exception
{
  public:
    SyntaxError(std::string msg, int line, int col);
    const char *what() const noexcept override { return message.c_str(); }
    int line;
    int col;

  private:
    std::string message;
};

/**
 * Tokenize a whole source buffer. Emits a trailing Newline (if the
 * source doesn't end with one), the pending Dedents, and EndOfFile.
 * @throws SyntaxError on malformed input.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_LEXER_HH
