/**
 * @file
 * Execution-event observer interface.
 *
 * The interpreter streams dynamic-execution events (bytecodes with
 * their micro-op cost, conditional branches, simulated memory
 * accesses, allocations, interpreter dispatches) to an observer. The
 * microarchitecture model implements this interface to derive cycles,
 * IPC, branch MPKI and cache MPKI; the instruction-mix profiler
 * implements it to classify the dynamic bytecode stream.
 */

#ifndef RIGOR_VM_OBSERVER_HH
#define RIGOR_VM_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "vm/code.hh"

namespace rigor {
namespace vm {

/**
 * Observer of the VM's dynamic execution. All callbacks have empty
 * default implementations so observers override only what they need.
 */
class ExecutionObserver
{
  public:
    virtual ~ExecutionObserver() = default;

    /**
     * One bytecode completed.
     * @param op the (possibly quickened) opcode.
     * @param uops micro-ops this bytecode expanded to, including any
     *        interpreter dispatch overhead.
     */
    virtual void
    onBytecode(Op op, uint32_t uops)
    {
        (void)op;
        (void)uops;
    }

    /**
     * Interpreter dispatch: the indirect branch selecting the next
     * handler. Emitted by the dispatching tiers (baseline interpreter
     * and direct-threaded); the adaptive tier's compiled code has no
     * dispatch.
     * @param op the opcode being dispatched to.
     */
    virtual void
    onDispatch(Op op)
    {
        (void)op;
    }

    /**
     * A conditional branch resolved.
     * @param site static branch site id (unique per bytecode pc).
     * @param taken branch outcome.
     */
    virtual void
    onBranch(uint64_t site, bool taken)
    {
        (void)site;
        (void)taken;
    }

    /**
     * Instruction fetch for the code implementing this bytecode.
     * Interpreter tiers fetch from a small shared handler table
     * (one region per opcode); compiled code fetches from a
     * per-(code object, pc) region, giving the JIT a much larger
     * instruction footprint.
     */
    virtual void
    onCodeFetch(uint64_t addr)
    {
        (void)addr;
    }

    /** A simulated data-memory access. */
    virtual void
    onMemAccess(uint64_t addr, uint32_t size, bool is_write)
    {
        (void)addr;
        (void)size;
        (void)is_write;
    }

    /** A heap object allocated at the simulated address. */
    virtual void
    onAlloc(uint64_t addr, uint32_t size)
    {
        (void)addr;
        (void)size;
    }

    /**
     * Bytecode-site attribution of an allocation (profiling).
     * @param site (codeId << 20) | pc of the allocating bytecode, the
     *        same encoding branch sites use; 0 when the allocation
     *        happened outside bytecode execution (VM setup).
     */
    virtual void
    onAllocSite(uint64_t site, uint32_t size)
    {
        (void)site;
        (void)size;
    }

    /** Entering a MiniPy function call. */
    virtual void onCall() {}
    /** Returning from a MiniPy function call. */
    virtual void onReturn() {}

    /**
     * The adaptive tier compiled a code object (modelled compile
     * pause) or the threaded tier quickened one up-front;
     * `cost_uops` is the modelled compilation/quickening work.
     */
    virtual void
    onJitCompile(uint32_t code_id, uint64_t cost_uops)
    {
        (void)code_id;
        (void)cost_uops;
    }

    /** A specialization guard failed (deoptimization to generic path). */
    virtual void
    onGuardFailure(Op op)
    {
        (void)op;
    }
};

/**
 * Fans the event stream out to several observers (e.g. the uarch
 * model plus a MetricsObserver). The VM takes a single observer
 * pointer; runs that want more than one attach them here and pass the
 * multiplexer. Only constructed when more than one sink is active, so
 * single-observer runs pay no extra virtual hop.
 */
class MultiplexObserver : public ExecutionObserver
{
  public:
    /** Attach a sink (not owned; must outlive the multiplexer). */
    void
    add(ExecutionObserver *observer)
    {
        if (observer)
            sinks.push_back(observer);
    }

    void
    onBytecode(Op op, uint32_t uops) override
    {
        for (auto *s : sinks)
            s->onBytecode(op, uops);
    }

    void
    onDispatch(Op op) override
    {
        for (auto *s : sinks)
            s->onDispatch(op);
    }

    void
    onBranch(uint64_t site, bool taken) override
    {
        for (auto *s : sinks)
            s->onBranch(site, taken);
    }

    void
    onCodeFetch(uint64_t addr) override
    {
        for (auto *s : sinks)
            s->onCodeFetch(addr);
    }

    void
    onMemAccess(uint64_t addr, uint32_t size, bool is_write) override
    {
        for (auto *s : sinks)
            s->onMemAccess(addr, size, is_write);
    }

    void
    onAlloc(uint64_t addr, uint32_t size) override
    {
        for (auto *s : sinks)
            s->onAlloc(addr, size);
    }

    void
    onAllocSite(uint64_t site, uint32_t size) override
    {
        for (auto *s : sinks)
            s->onAllocSite(site, size);
    }

    void
    onCall() override
    {
        for (auto *s : sinks)
            s->onCall();
    }

    void
    onReturn() override
    {
        for (auto *s : sinks)
            s->onReturn();
    }

    void
    onJitCompile(uint32_t code_id, uint64_t cost_uops) override
    {
        for (auto *s : sinks)
            s->onJitCompile(code_id, cost_uops);
    }

    void
    onGuardFailure(Op op) override
    {
        for (auto *s : sinks)
            s->onGuardFailure(op);
    }

  private:
    std::vector<ExecutionObserver *> sinks;
};

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_OBSERVER_HH
