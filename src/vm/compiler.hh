/**
 * @file
 * MiniPy bytecode compiler: AST -> CodeObject tree.
 */

#ifndef RIGOR_VM_COMPILER_HH
#define RIGOR_VM_COMPILER_HH

#include <string>

#include "vm/ast.hh"
#include "vm/code.hh"

namespace rigor {
namespace vm {

/** Compile-time error (invalid constructs, bad scoping). */
class CompileError : public std::exception
{
  public:
    CompileError(std::string msg, int line);
    const char *what() const noexcept override { return message.c_str(); }
    int line;

  private:
    std::string message;
};

/** Compile a parsed module into a Program. */
Program compileModule(const Module &module,
                      const std::string &source_name = "<string>");

/** Convenience: parse + compile in one step. */
Program compileSource(const std::string &source,
                      const std::string &source_name = "<string>");

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_COMPILER_HH
