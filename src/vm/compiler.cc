#include "vm/compiler.hh"

#include <set>
#include <unordered_map>

#include "support/logging.hh"
#include "vm/parser.hh"

namespace rigor {
namespace vm {

CompileError::CompileError(std::string msg, int line_)
    : line(line_),
      message("CompileError: " + std::move(msg) + " (line " +
              std::to_string(line_) + ")")
{}

namespace {

/** Collects comprehension loop variables inside an expression. */
void
collectExprTargets(const Expr *e, std::set<std::string> &assigned)
{
    if (!e)
        return;
    if (e->kind == ExprKind::ListComp)
        assigned.insert(e->strValue);
    collectExprTargets(e->lhs.get(), assigned);
    collectExprTargets(e->rhs.get(), assigned);
    for (const auto &item : e->items)
        collectExprTargets(item.get(), assigned);
}

/** Collects names assigned anywhere in a statement list. */
void
collectAssigned(const std::vector<StmtPtr> &body,
                std::set<std::string> &assigned,
                std::set<std::string> &globals)
{
    // Collect target names out of an assignment target expression.
    auto collectTarget = [&](const Expr &target) {
        if (target.kind == ExprKind::Name) {
            assigned.insert(target.strValue);
        } else if (target.kind == ExprKind::TupleLit) {
            for (const auto &item : target.items)
                if (item->kind == ExprKind::Name)
                    assigned.insert(item->strValue);
        }
    };

    // Walk nested control-flow blocks, but *not* nested function or
    // class bodies — those are separate scopes.
    std::vector<const std::vector<StmtPtr> *> stack = {&body};
    while (!stack.empty()) {
        const auto *block = stack.back();
        stack.pop_back();
        for (const auto &s : *block) {
            switch (s->kind) {
              case StmtKind::Assign:
              case StmtKind::AugAssign:
                collectTarget(*s->target);
                break;
              case StmtKind::For:
                collectTarget(*s->target);
                stack.push_back(&s->body);
                break;
              case StmtKind::If:
                stack.push_back(&s->body);
                stack.push_back(&s->orelse);
                break;
              case StmtKind::While:
                stack.push_back(&s->body);
                break;
              case StmtKind::Try:
                stack.push_back(&s->body);
                stack.push_back(&s->orelse);
                break;
              case StmtKind::FunctionDef:
              case StmtKind::ClassDef:
                assigned.insert(s->name);
                break;
              case StmtKind::Global:
                for (const auto &n : s->globalNames)
                    globals.insert(n);
                break;
              default:
                break;
            }
            // Comprehension loop variables bind in the enclosing
            // scope (a documented divergence from Python 3, where
            // comprehensions get their own scope).
            collectExprTargets(s->expr.get(), assigned);
            collectExprTargets(s->target.get(), assigned);
            for (const auto &d : s->defaults)
                collectExprTargets(d.get(), assigned);
        }
    }
}

/** Compiles one code object (module, function or class body). */
class FunctionCompiler
{
  public:
    enum class ScopeKind { Module, Function, ClassBody };

    FunctionCompiler(Program &prog_, ScopeKind scope_kind)
        : prog(prog_), scopeKind(scope_kind)
    {
        code = std::make_unique<CodeObject>();
        code->codeId = prog.codeCount++;
        code->isClassBody = scope_kind == ScopeKind::ClassBody;
    }

    /** Compile a function body and return the finished code object. */
    std::unique_ptr<CodeObject>
    compileFunction(const Stmt &def)
    {
        code->name = def.name;
        code->numParams = static_cast<int>(def.params.size());
        code->numDefaults = static_cast<int>(def.defaults.size());

        std::set<std::string> assigned, globals;
        collectAssigned(def.body, assigned, globals);
        globalDecls = globals;
        for (const auto &p : def.params)
            defineLocal(p);
        for (const auto &n : assigned)
            if (!globals.count(n))
                defineLocal(n);

        compileBlock(def.body);
        emitImplicitReturn();
        code->numLocals = static_cast<int>(code->varNames.size());
        return std::move(code);
    }

    /** Compile the module body. */
    std::unique_ptr<CodeObject>
    compileTopLevel(const std::vector<StmtPtr> &body, std::string name)
    {
        code->name = std::move(name);
        compileBlock(body);
        emitImplicitReturn();
        code->numLocals = 0;
        return std::move(code);
    }

  private:
    // --- Emission helpers ---------------------------------------------

    size_t
    emit(Op op, int32_t arg = 0)
    {
        code->instrs.push_back({op, arg});
        return code->instrs.size() - 1;
    }

    /** Emit a jump whose target is patched later. */
    size_t
    emitJump(Op op)
    {
        return emit(op, -1);
    }

    /** Patch a previously emitted jump to point at the current pc. */
    void
    patchJump(size_t at)
    {
        code->instrs[at].arg =
            static_cast<int32_t>(code->instrs.size());
    }

    int32_t
    here() const
    {
        return static_cast<int32_t>(code->instrs.size());
    }

    void
    emitImplicitReturn()
    {
        int none_idx = code->addConstant(Value());
        emit(Op::LoadConst, none_idx);
        emit(Op::Return);
    }

    int
    defineLocal(const std::string &name)
    {
        auto it = localSlots.find(name);
        if (it != localSlots.end())
            return it->second;
        int slot = static_cast<int>(code->varNames.size());
        code->varNames.push_back(name);
        localSlots.emplace(name, slot);
        return slot;
    }

    [[noreturn]] void
    error(const std::string &msg, int line)
    {
        throw CompileError(msg, line);
    }

    // --- Name access -----------------------------------------------------

    void
    emitLoadVar(const std::string &name, int line)
    {
        (void)line;
        if (scopeKind == ScopeKind::Function) {
            auto it = localSlots.find(name);
            if (it != localSlots.end() && !globalDecls.count(name)) {
                emit(Op::LoadFast, it->second);
                return;
            }
            emit(Op::LoadGlobal, code->addName(name));
            return;
        }
        if (scopeKind == ScopeKind::ClassBody) {
            emit(Op::LoadName, code->addName(name));
            return;
        }
        emit(Op::LoadGlobal, code->addName(name));
    }

    void
    emitStoreVar(const std::string &name, int line)
    {
        (void)line;
        if (scopeKind == ScopeKind::Function) {
            if (!globalDecls.count(name)) {
                auto it = localSlots.find(name);
                if (it == localSlots.end())
                    panic("compiler: unanalyzed local '%s'",
                          name.c_str());
                emit(Op::StoreFast, it->second);
                return;
            }
            emit(Op::StoreGlobal, code->addName(name));
            return;
        }
        if (scopeKind == ScopeKind::ClassBody) {
            emit(Op::StoreName, code->addName(name));
            return;
        }
        emit(Op::StoreGlobal, code->addName(name));
    }

    // --- Statements -------------------------------------------------------

    void
    compileBlock(const std::vector<StmtPtr> &body)
    {
        for (const auto &s : body)
            compileStatement(*s);
    }

    void
    compileStatement(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::ExprStmt:
            compileExpr(*s.expr);
            emit(Op::Pop);
            break;
          case StmtKind::Assign:
            compileAssign(s);
            break;
          case StmtKind::AugAssign:
            compileAugAssign(s);
            break;
          case StmtKind::If:
            compileIf(s);
            break;
          case StmtKind::While:
            compileWhile(s);
            break;
          case StmtKind::For:
            compileFor(s);
            break;
          case StmtKind::Break: {
            if (loops.empty())
                error("'break' outside loop", s.line);
            if (tryDepth > loops.back().tryDepthAtEntry)
                error("'break' out of a 'try' block is not "
                      "supported",
                      s.line);
            // For-loops keep their iterator on the stack; discard it.
            if (loops.back().isForLoop)
                emit(Op::Pop);
            size_t j = emitJump(Op::Jump);
            loops.back().breakJumps.push_back(j);
            break;
          }
          case StmtKind::Continue: {
            if (loops.empty())
                error("'continue' outside loop", s.line);
            if (tryDepth > loops.back().tryDepthAtEntry)
                error("'continue' out of a 'try' block is not "
                      "supported",
                      s.line);
            emit(Op::Jump, loops.back().continueTarget);
            break;
          }
          case StmtKind::Pass:
            break;
          case StmtKind::Return: {
            if (scopeKind != ScopeKind::Function)
                error("'return' outside function", s.line);
            if (s.expr) {
                compileExpr(*s.expr);
            } else {
                emit(Op::LoadConst, code->addConstant(Value()));
            }
            emit(Op::Return);
            break;
          }
          case StmtKind::FunctionDef:
            compileFunctionDef(s);
            break;
          case StmtKind::ClassDef:
            compileClassDef(s);
            break;
          case StmtKind::Global:
            if (scopeKind != ScopeKind::Function)
                break;  // no-op at module level
            break;
          case StmtKind::Del: {
            const Expr &t = *s.target;
            compileExpr(*t.lhs);
            compileExpr(*t.rhs);
            emit(Op::DeleteSubscr);
            break;
          }
          case StmtKind::Try: {
            size_t setup = emitJump(Op::SetupExcept);
            ++tryDepth;
            compileBlock(s.body);
            --tryDepth;
            emit(Op::PopExcept);
            size_t end_jump = emitJump(Op::Jump);
            patchJump(setup);
            compileBlock(s.orelse);
            patchJump(end_jump);
            break;
          }
          case StmtKind::Raise:
            compileExpr(*s.expr);
            emit(Op::Raise);
            break;
          case StmtKind::Assert: {
            compileExpr(*s.expr);
            size_t ok_jump = emitJump(Op::PopJumpIfTrue);
            if (s.target) {
                compileExpr(*s.target);
            } else {
                emit(Op::LoadConst,
                     code->addConstant(
                         makeStr("AssertionError (line " +
                                 std::to_string(s.line) + ")")));
            }
            emit(Op::Raise);
            patchJump(ok_jump);
            break;
          }
        }
    }

    void
    compileAssign(const Stmt &s)
    {
        const Expr &t = *s.target;
        switch (t.kind) {
          case ExprKind::Name:
            compileExpr(*s.expr);
            emitStoreVar(t.strValue, s.line);
            break;
          case ExprKind::Attribute:
            compileExpr(*t.lhs);
            compileExpr(*s.expr);
            emit(Op::StoreAttr, code->addName(t.strValue));
            break;
          case ExprKind::Subscript:
            compileExpr(*t.lhs);
            compileSubscriptIndex(*t.rhs);
            compileExpr(*s.expr);
            emit(Op::StoreSubscr);
            break;
          case ExprKind::TupleLit: {
            compileExpr(*s.expr);
            emit(Op::UnpackSequence,
                 static_cast<int32_t>(t.items.size()));
            for (const auto &item : t.items)
                emitStoreVar(item->strValue, s.line);
            break;
          }
          default:
            error("invalid assignment target", s.line);
        }
    }

    Op
    binOpcode(BinOp op)
    {
        switch (op) {
          case BinOp::Add: return Op::BinaryAdd;
          case BinOp::Sub: return Op::BinarySub;
          case BinOp::Mul: return Op::BinaryMul;
          case BinOp::Div: return Op::BinaryDiv;
          case BinOp::FloorDiv: return Op::BinaryFloorDiv;
          case BinOp::Mod: return Op::BinaryMod;
          case BinOp::Pow: return Op::BinaryPow;
          case BinOp::BitAnd: return Op::BinaryAnd;
          case BinOp::BitOr: return Op::BinaryOr;
          case BinOp::BitXor: return Op::BinaryXor;
          case BinOp::LShift: return Op::BinaryLshift;
          case BinOp::RShift: return Op::BinaryRshift;
        }
        panic("binOpcode: bad operator");
    }

    void
    compileAugAssign(const Stmt &s)
    {
        const Expr &t = *s.target;
        switch (t.kind) {
          case ExprKind::Name:
            emitLoadVar(t.strValue, s.line);
            compileExpr(*s.expr);
            emit(binOpcode(s.augOp));
            emitStoreVar(t.strValue, s.line);
            break;
          case ExprKind::Attribute:
            compileExpr(*t.lhs);
            emit(Op::Dup);
            emit(Op::LoadAttr, code->addName(t.strValue));
            compileExpr(*s.expr);
            emit(binOpcode(s.augOp));
            emit(Op::StoreAttr, code->addName(t.strValue));
            break;
          case ExprKind::Subscript:
            compileExpr(*t.lhs);
            compileSubscriptIndex(*t.rhs);
            emit(Op::DupTwo);
            emit(Op::LoadSubscr);
            compileExpr(*s.expr);
            emit(binOpcode(s.augOp));
            emit(Op::StoreSubscr);
            break;
          default:
            error("invalid augmented-assignment target", s.line);
        }
    }

    void
    compileIf(const Stmt &s)
    {
        compileExpr(*s.expr);
        size_t else_jump = emitJump(Op::PopJumpIfFalse);
        compileBlock(s.body);
        if (s.orelse.empty()) {
            patchJump(else_jump);
            return;
        }
        size_t end_jump = emitJump(Op::Jump);
        patchJump(else_jump);
        compileBlock(s.orelse);
        patchJump(end_jump);
    }

    void
    compileWhile(const Stmt &s)
    {
        int32_t loop_start = here();
        compileExpr(*s.expr);
        size_t exit_jump = emitJump(Op::PopJumpIfFalse);
        loops.push_back({loop_start, false, tryDepth, {}});
        compileBlock(s.body);
        emit(Op::Jump, loop_start);
        patchJump(exit_jump);
        for (size_t j : loops.back().breakJumps)
            patchJump(j);
        loops.pop_back();
    }

    void
    compileFor(const Stmt &s)
    {
        compileExpr(*s.expr);
        emit(Op::GetIter);
        int32_t loop_start = here();
        size_t exit_jump = emitJump(Op::ForIter);
        // Store the loop variable(s).
        const Expr &t = *s.target;
        if (t.kind == ExprKind::Name) {
            emitStoreVar(t.strValue, s.line);
        } else {
            emit(Op::UnpackSequence,
                 static_cast<int32_t>(t.items.size()));
            for (const auto &item : t.items)
                emitStoreVar(item->strValue, s.line);
        }
        loops.push_back({loop_start, true, tryDepth, {}});
        compileBlock(s.body);
        emit(Op::Jump, loop_start);
        patchJump(exit_jump);
        for (size_t j : loops.back().breakJumps)
            patchJump(j);
        loops.pop_back();
        // The exhausted ForIter pops the iterator itself.
    }

    void
    compileFunctionDef(const Stmt &s)
    {
        FunctionCompiler child(prog, ScopeKind::Function);
        auto child_code = child.compileFunction(s);
        int child_idx = static_cast<int>(code->children.size());
        code->children.push_back(std::move(child_code));
        // Defaults are evaluated at definition time, left-to-right.
        for (const auto &d : s.defaults)
            compileExpr(*d);
        emit(Op::MakeFunction, child_idx);
        emitStoreVar(s.name, s.line);
    }

    void
    compileClassDef(const Stmt &s)
    {
        FunctionCompiler body(prog, ScopeKind::ClassBody);
        auto body_code = body.compileTopLevel(s.body, s.name);
        int child_idx = static_cast<int>(code->children.size());
        code->children.push_back(std::move(body_code));
        if (!s.baseName.empty()) {
            emitLoadVar(s.baseName, s.line);
        } else {
            emit(Op::LoadConst, code->addConstant(Value()));
        }
        emit(Op::MakeClass, child_idx);
        emitStoreVar(s.name, s.line);
    }

    // --- Expressions -------------------------------------------------------

    void
    compileSubscriptIndex(const Expr &index)
    {
        if (index.kind != ExprKind::SliceExpr) {
            compileExpr(index);
            return;
        }
        int none_idx = code->addConstant(Value());
        for (int i = 0; i < 3; ++i) {
            if (index.items[static_cast<size_t>(i)])
                compileExpr(*index.items[static_cast<size_t>(i)]);
            else
                emit(Op::LoadConst, none_idx);
        }
        emit(Op::BuildSlice, 3);
    }

    void
    compileExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            emit(Op::LoadConst,
                 code->addConstant(Value::makeInt(e.intValue)));
            break;
          case ExprKind::FloatLit:
            emit(Op::LoadConst,
                 code->addConstant(Value::makeFloat(e.floatValue)));
            break;
          case ExprKind::StrLit:
            emit(Op::LoadConst,
                 code->addConstant(makeStr(e.strValue)));
            break;
          case ExprKind::BoolLit:
            emit(Op::LoadConst,
                 code->addConstant(Value::makeBool(e.boolValue)));
            break;
          case ExprKind::NoneLit:
            emit(Op::LoadConst, code->addConstant(Value()));
            break;
          case ExprKind::Name:
            emitLoadVar(e.strValue, e.line);
            break;
          case ExprKind::Unary:
            compileExpr(*e.lhs);
            if (e.unOp == UnOp::Neg) {
                emit(Op::UnaryNeg);
            } else if (e.unOp == UnOp::Not) {
                emit(Op::UnaryNot);
            } else {
                // ~x == -x - 1 for ints; lower it that way.
                emit(Op::UnaryNeg);
                emit(Op::LoadConst,
                     code->addConstant(Value::makeInt(1)));
                emit(Op::BinarySub);
            }
            break;
          case ExprKind::Binary:
            compileExpr(*e.lhs);
            compileExpr(*e.rhs);
            emit(binOpcode(e.binOp));
            break;
          case ExprKind::Compare: {
            compileExpr(*e.lhs);
            compileExpr(*e.rhs);
            Op op;
            switch (e.cmpOp) {
              case CmpOp::Eq: op = Op::CompareEq; break;
              case CmpOp::Ne: op = Op::CompareNe; break;
              case CmpOp::Lt: op = Op::CompareLt; break;
              case CmpOp::Le: op = Op::CompareLe; break;
              case CmpOp::Gt: op = Op::CompareGt; break;
              case CmpOp::Ge: op = Op::CompareGe; break;
              case CmpOp::In: op = Op::CompareIn; break;
              case CmpOp::NotIn: op = Op::CompareNotIn; break;
              default: panic("bad compare op");
            }
            emit(op);
            break;
          }
          case ExprKind::BoolChain: {
            Op jump_op = e.isAnd ? Op::JumpIfFalseOrPop
                                 : Op::JumpIfTrueOrPop;
            std::vector<size_t> jumps;
            for (size_t i = 0; i < e.items.size(); ++i) {
                compileExpr(*e.items[i]);
                if (i + 1 < e.items.size())
                    jumps.push_back(emitJump(jump_op));
            }
            for (size_t j : jumps)
                patchJump(j);
            break;
          }
          case ExprKind::Call: {
            compileExpr(*e.lhs);
            for (const auto &arg : e.items)
                compileExpr(*arg);
            emit(Op::Call, static_cast<int32_t>(e.items.size()));
            break;
          }
          case ExprKind::Attribute:
            compileExpr(*e.lhs);
            emit(Op::LoadAttr, code->addName(e.strValue));
            break;
          case ExprKind::Subscript:
            compileExpr(*e.lhs);
            compileSubscriptIndex(*e.rhs);
            emit(Op::LoadSubscr);
            break;
          case ExprKind::SliceExpr:
            error("slice outside subscript", e.line);
            break;
          case ExprKind::ListLit:
            for (const auto &item : e.items)
                compileExpr(*item);
            emit(Op::BuildList,
                 static_cast<int32_t>(e.items.size()));
            break;
          case ExprKind::TupleLit:
            for (const auto &item : e.items)
                compileExpr(*item);
            emit(Op::BuildTuple,
                 static_cast<int32_t>(e.items.size()));
            break;
          case ExprKind::DictLit:
            for (const auto &item : e.items)
                compileExpr(*item);
            emit(Op::BuildDict,
                 static_cast<int32_t>(e.items.size() / 2));
            break;
          case ExprKind::ListComp: {
            // Desugar: L = []; for var in iterable: (if cond:)
            // L.append(value) — with L and the iterator kept on the
            // stack throughout.
            const Expr &value = *e.items[0];
            const Expr &iterable = *e.items[1];
            const Expr *cond = e.items[2].get();
            emit(Op::BuildList, 0);
            compileExpr(iterable);
            emit(Op::GetIter);
            int32_t loop_start = here();
            size_t exit_jump = emitJump(Op::ForIter);
            emitStoreVar(e.strValue, e.line);
            if (cond) {
                compileExpr(*cond);
                emit(Op::PopJumpIfFalse, loop_start);
            }
            compileExpr(value);
            emit(Op::ListAppend, 2);
            emit(Op::Jump, loop_start);
            patchJump(exit_jump);
            break;
          }
        }
    }

    struct LoopInfo
    {
        int32_t continueTarget;
        bool isForLoop;
        int tryDepthAtEntry;
        std::vector<size_t> breakJumps;
    };

    Program &prog;
    ScopeKind scopeKind;
    std::unique_ptr<CodeObject> code;
    std::unordered_map<std::string, int> localSlots;
    std::set<std::string> globalDecls;
    std::vector<LoopInfo> loops;
    int tryDepth = 0;
};

} // namespace

Program
compileModule(const Module &module, const std::string &source_name)
{
    Program prog;
    prog.sourceName = source_name;
    FunctionCompiler top(prog, FunctionCompiler::ScopeKind::Module);
    prog.module = top.compileTopLevel(module.body, "<module>");
    return prog;
}

Program
compileSource(const std::string &source, const std::string &source_name)
{
    Module m = parse(source);
    return compileModule(m, source_name);
}

} // namespace vm
} // namespace rigor
