/**
 * @file
 * ExecutionObserver that feeds the VM's dynamic-event stream into a
 * MetricsRegistry and (optionally) a TraceEmitter. Multiplexed
 * alongside the uarch model on the ExecutionObserver seam, so runs
 * can be measured and observed at the same time.
 *
 * Counters are resolved once at construction (name -> pointer), so
 * the per-event cost is one virtual call plus a few integer adds.
 * Metric names are prefixed per tier ("vm.interp.*" /
 * "vm.adaptive.*"): the same registry can carry both tiers of a
 * comparison without the totals bleeding into each other.
 */

#ifndef RIGOR_VM_METRICS_OBSERVER_HH
#define RIGOR_VM_METRICS_OBSERVER_HH

#include "support/metrics.hh"
#include "support/trace.hh"
#include "vm/observer.hh"

namespace rigor {
namespace vm {

/** Streams VM execution events into metrics and trace instants. */
class MetricsObserver : public ExecutionObserver
{
  public:
    /**
     * @param registry destination registry, or nullptr (trace only).
     * @param tier_prefix metric-name prefix, e.g. "vm.interp".
     * @param trace optional emitter for jit_compile / deopt instant
     *        events, timestamped at the modelled clock's current
     *        position (the enclosing iteration's start).
     */
    MetricsObserver(MetricsRegistry *registry,
                    const std::string &tier_prefix,
                    TraceEmitter *trace = nullptr);

    void onBytecode(Op op, uint32_t uops) override;
    void onDispatch(Op op) override;
    void onBranch(uint64_t site, bool taken) override;
    void onAlloc(uint64_t addr, uint32_t size) override;
    void onCall() override;
    void onJitCompile(uint32_t code_id, uint64_t cost_uops) override;
    void onGuardFailure(Op op) override;

    /**
     * Guard failures can number in the millions; emitting an instant
     * event per deopt would dwarf the rest of the trace. Only the
     * first `n` per observer become instants (the counter still sees
     * every one); the default keeps traces loadable.
     */
    void setMaxDeoptInstants(uint64_t n) { maxDeoptInstants = n; }

  private:
    // Cached metric handles (null when no registry was given).
    Counter *bytecodes = nullptr;
    Counter *uopsTotal = nullptr;
    Counter *dispatches = nullptr;
    Counter *branches = nullptr;
    Counter *allocations = nullptr;
    Counter *allocatedBytes = nullptr;
    Counter *calls = nullptr;
    Counter *jitCompiles = nullptr;
    Counter *jitCompileUops = nullptr;
    Counter *guardFailures = nullptr;

    TraceEmitter *trace;
    uint64_t deoptInstants = 0;
    uint64_t maxDeoptInstants = 64;
};

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_METRICS_OBSERVER_HH
