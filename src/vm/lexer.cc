#include "vm/lexer.hh"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/logging.hh"

namespace rigor {
namespace vm {

SyntaxError::SyntaxError(std::string msg, int line_, int col_)
    : line(line_), col(col_),
      message("SyntaxError: " + std::move(msg) + " (line " +
              std::to_string(line_) + ", col " + std::to_string(col_) +
              ")")
{}

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::EndOfFile: return "end of file";
      case Tok::Newline: return "newline";
      case Tok::Indent: return "indent";
      case Tok::Dedent: return "dedent";
      case Tok::Name: return "name";
      case Tok::IntLit: return "integer";
      case Tok::FloatLit: return "float";
      case Tok::StrLit: return "string";
      case Tok::KwDef: return "'def'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElif: return "'elif'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwIn: return "'in'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::KwPass: return "'pass'";
      case Tok::KwClass: return "'class'";
      case Tok::KwGlobal: return "'global'";
      case Tok::KwAnd: return "'and'";
      case Tok::KwOr: return "'or'";
      case Tok::KwNot: return "'not'";
      case Tok::KwTrue: return "'True'";
      case Tok::KwFalse: return "'False'";
      case Tok::KwNone: return "'None'";
      case Tok::KwDel: return "'del'";
      case Tok::KwTry: return "'try'";
      case Tok::KwExcept: return "'except'";
      case Tok::KwRaise: return "'raise'";
      case Tok::KwAssert: return "'assert'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::Comma: return "','";
      case Tok::Colon: return "':'";
      case Tok::Dot: return "'.'";
      case Tok::Semicolon: return "';'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::DoubleStar: return "'**'";
      case Tok::Slash: return "'/'";
      case Tok::DoubleSlash: return "'//'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::LShift: return "'<<'";
      case Tok::RShift: return "'>>'";
      case Tok::Tilde: return "'~'";
      case Tok::Eq: return "'=='";
      case Tok::Ne: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::StarAssign: return "'*='";
      case Tok::SlashAssign: return "'/='";
      case Tok::DoubleSlashAssign: return "'//='";
      case Tok::PercentAssign: return "'%='";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string, Tok> &
keywordTable()
{
    static const std::unordered_map<std::string, Tok> table = {
        {"def", Tok::KwDef},         {"return", Tok::KwReturn},
        {"if", Tok::KwIf},           {"elif", Tok::KwElif},
        {"else", Tok::KwElse},       {"while", Tok::KwWhile},
        {"for", Tok::KwFor},         {"in", Tok::KwIn},
        {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
        {"pass", Tok::KwPass},       {"class", Tok::KwClass},
        {"global", Tok::KwGlobal},   {"and", Tok::KwAnd},
        {"or", Tok::KwOr},           {"not", Tok::KwNot},
        {"True", Tok::KwTrue},       {"False", Tok::KwFalse},
        {"None", Tok::KwNone},       {"del", Tok::KwDel},
        {"try", Tok::KwTry},         {"except", Tok::KwExcept},
        {"raise", Tok::KwRaise},     {"assert", Tok::KwAssert},
    };
    return table;
}

/** Stateful scanner over the source buffer. */
class Scanner
{
  public:
    explicit Scanner(const std::string &src) : s(src) {}

    std::vector<Token>
    run()
    {
        indents.push_back(0);
        atLineStart = true;
        while (pos < s.size() || !out.empty()) {
            if (pos >= s.size())
                break;
            if (atLineStart && bracketDepth == 0) {
                if (handleIndentation())
                    continue;  // blank/comment line consumed
            }
            scanToken();
        }
        // Final newline + dedents + EOF.
        if (out.empty() || out.back().kind != Tok::Newline) {
            if (!out.empty() && out.back().kind != Tok::Indent &&
                out.back().kind != Tok::Dedent)
                emit(Tok::Newline);
        }
        while (indents.back() > 0) {
            indents.pop_back();
            emit(Tok::Dedent);
        }
        emit(Tok::EndOfFile);
        return std::move(out);
    }

  private:
    void
    emit(Tok kind)
    {
        Token t;
        t.kind = kind;
        t.line = line;
        t.col = col;
        out.push_back(std::move(t));
    }

    [[noreturn]] void
    error(const std::string &msg)
    {
        throw SyntaxError(msg, line, col);
    }

    char
    peek(size_t ahead = 0) const
    {
        return pos + ahead < s.size() ? s[pos + ahead] : '\0';
    }

    char
    advance()
    {
        char c = s[pos++];
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    /**
     * Measure leading whitespace at a (logical) line start and emit
     * INDENT/DEDENT. Returns true if the whole line was blank or a
     * comment and has been consumed.
     */
    bool
    handleIndentation()
    {
        size_t scan = pos;
        int width = 0;
        while (scan < s.size() && (s[scan] == ' ' || s[scan] == '\t')) {
            width += s[scan] == '\t' ? 8 - (width % 8) : 1;
            ++scan;
        }
        // Blank line or comment-only line: swallow it entirely.
        if (scan >= s.size() || s[scan] == '\n' || s[scan] == '#' ||
            s[scan] == '\r') {
            while (pos < s.size() && s[pos] != '\n')
                advance();
            if (pos < s.size())
                advance();  // the newline
            if (pos >= s.size())
                atLineStart = true;
            return pos < s.size() || true;
        }
        // Consume the measured whitespace for real.
        while (pos < scan)
            advance();
        atLineStart = false;

        if (width > indents.back()) {
            indents.push_back(width);
            emit(Tok::Indent);
        } else {
            while (width < indents.back()) {
                indents.pop_back();
                emit(Tok::Dedent);
            }
            if (width != indents.back())
                error("unindent does not match any outer level");
        }
        return false;
    }

    void
    scanToken()
    {
        char c = peek();

        if (c == '\n') {
            advance();
            if (bracketDepth > 0)
                return;  // implicit line joining
            emit(Tok::Newline);
            atLineStart = true;
            return;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            advance();
            return;
        }
        if (c == '#') {
            while (pos < s.size() && peek() != '\n')
                advance();
            return;
        }
        if (c == '\\' && peek(1) == '\n') {
            advance();
            advance();
            return;  // explicit line continuation
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(
                             peek(1))))) {
            scanNumber();
            return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            scanName();
            return;
        }
        if (c == '"' || c == '\'') {
            scanString();
            return;
        }
        scanOperator();
    }

    void
    scanNumber()
    {
        int start_line = line, start_col = col;
        std::string num;
        bool is_float = false;
        // Hex literal.
        if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            advance();
            advance();
            std::string hex;
            while (std::isxdigit(static_cast<unsigned char>(peek())))
                hex += advance();
            if (hex.empty())
                error("malformed hex literal");
            Token t;
            t.kind = Tok::IntLit;
            t.intValue = static_cast<int64_t>(
                std::strtoull(hex.c_str(), nullptr, 16));
            t.line = start_line;
            t.col = start_col;
            out.push_back(std::move(t));
            return;
        }
        while (std::isdigit(static_cast<unsigned char>(peek())))
            num += advance();
        if (peek() == '.' &&
            peek(1) != '.') {  // avoid treating "1..x" weirdly
            is_float = true;
            num += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                num += advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            size_t save = pos;
            std::string exp;
            exp += advance();
            if (peek() == '+' || peek() == '-')
                exp += advance();
            if (std::isdigit(static_cast<unsigned char>(peek()))) {
                while (std::isdigit(static_cast<unsigned char>(peek())))
                    exp += advance();
                num += exp;
                is_float = true;
            } else {
                pos = save;  // not an exponent; rewind (col drift ok)
            }
        }
        Token t;
        t.line = start_line;
        t.col = start_col;
        if (is_float) {
            t.kind = Tok::FloatLit;
            t.floatValue = std::strtod(num.c_str(), nullptr);
        } else {
            t.kind = Tok::IntLit;
            t.intValue = std::strtoll(num.c_str(), nullptr, 10);
        }
        out.push_back(std::move(t));
    }

    void
    scanName()
    {
        int start_line = line, start_col = col;
        std::string name;
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_')
            name += advance();
        Token t;
        t.line = start_line;
        t.col = start_col;
        auto it = keywordTable().find(name);
        if (it != keywordTable().end()) {
            t.kind = it->second;
        } else {
            t.kind = Tok::Name;
            t.text = std::move(name);
        }
        out.push_back(std::move(t));
    }

    void
    scanString()
    {
        int start_line = line, start_col = col;
        char quote = advance();
        std::string text;
        for (;;) {
            if (pos >= s.size() || peek() == '\n')
                error("unterminated string literal");
            char c = advance();
            if (c == quote)
                break;
            if (c == '\\') {
                char e = advance();
                switch (e) {
                  case 'n': text += '\n'; break;
                  case 't': text += '\t'; break;
                  case 'r': text += '\r'; break;
                  case '\\': text += '\\'; break;
                  case '\'': text += '\''; break;
                  case '"': text += '"'; break;
                  case '0': text += '\0'; break;
                  default:
                    text += '\\';
                    text += e;
                }
            } else {
                text += c;
            }
        }
        Token t;
        t.kind = Tok::StrLit;
        t.text = std::move(text);
        t.line = start_line;
        t.col = start_col;
        out.push_back(std::move(t));
    }

    void
    scanOperator()
    {
        int start_line = line, start_col = col;
        char c = advance();
        Tok kind;
        switch (c) {
          case '(': kind = Tok::LParen; ++bracketDepth; break;
          case ')': kind = Tok::RParen; --bracketDepth; break;
          case '[': kind = Tok::LBracket; ++bracketDepth; break;
          case ']': kind = Tok::RBracket; --bracketDepth; break;
          case '{': kind = Tok::LBrace; ++bracketDepth; break;
          case '}': kind = Tok::RBrace; --bracketDepth; break;
          case ',': kind = Tok::Comma; break;
          case ':': kind = Tok::Colon; break;
          case '.': kind = Tok::Dot; break;
          case ';': kind = Tok::Semicolon; break;
          case '~': kind = Tok::Tilde; break;
          case '+':
            kind = match('=') ? Tok::PlusAssign : Tok::Plus;
            break;
          case '-':
            kind = match('=') ? Tok::MinusAssign : Tok::Minus;
            break;
          case '*':
            if (match('*'))
                kind = Tok::DoubleStar;
            else
                kind = match('=') ? Tok::StarAssign : Tok::Star;
            break;
          case '/':
            if (match('/')) {
                kind = match('=') ? Tok::DoubleSlashAssign
                                  : Tok::DoubleSlash;
            } else {
                kind = match('=') ? Tok::SlashAssign : Tok::Slash;
            }
            break;
          case '%':
            kind = match('=') ? Tok::PercentAssign : Tok::Percent;
            break;
          case '&': kind = Tok::Amp; break;
          case '|': kind = Tok::Pipe; break;
          case '^': kind = Tok::Caret; break;
          case '<':
            if (match('<'))
                kind = Tok::LShift;
            else
                kind = match('=') ? Tok::Le : Tok::Lt;
            break;
          case '>':
            if (match('>'))
                kind = Tok::RShift;
            else
                kind = match('=') ? Tok::Ge : Tok::Gt;
            break;
          case '=':
            kind = match('=') ? Tok::Eq : Tok::Assign;
            break;
          case '!':
            if (!match('='))
                error("unexpected '!'");
            kind = Tok::Ne;
            break;
          default:
            error(std::string("unexpected character '") + c + "'");
        }
        Token t;
        t.kind = kind;
        t.line = start_line;
        t.col = start_col;
        out.push_back(std::move(t));
    }

    bool
    match(char want)
    {
        if (peek() == want) {
            advance();
            return true;
        }
        return false;
    }

    const std::string &s;
    size_t pos = 0;
    int line = 1;
    int col = 1;
    int bracketDepth = 0;
    bool atLineStart = true;
    std::vector<int> indents;
    std::vector<Token> out;
};

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    Scanner scanner(source);
    return scanner.run();
}

} // namespace vm
} // namespace rigor
