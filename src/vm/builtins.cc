/**
 * @file
 * MiniPy builtin functions and builtin-type methods.
 */

#include "vm/interp.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/str.hh"

namespace rigor {
namespace vm {

namespace {

[[noreturn]] void
typeError(const std::string &msg)
{
    throw VmError("TypeError: " + msg);
}

int64_t
toIndex(const Value &v, const char *what)
{
    if (v.isInt())
        return v.asInt();
    if (v.isBool())
        return v.asBool() ? 1 : 0;
    typeError(std::string(what) + " must be an integer, got " +
              v.typeName());
}

const std::string &
strOf(const Value &v, const char *what)
{
    if (!v.isObjKind(ObjKind::Str))
        typeError(std::string(what) + " must be a string, got " +
                  v.typeName());
    return static_cast<StrObj *>(v.asObj())->value;
}

/** Total ordering used by sorted()/list.sort(). */
bool
valueLess(const Value &a, const Value &b)
{
    auto numeric = [](const Value &v) {
        return v.isInt() || v.isFloat() || v.isBool();
    };
    if (numeric(a) && numeric(b))
        return a.numeric() < b.numeric();
    if (a.isObjKind(ObjKind::Str) && b.isObjKind(ObjKind::Str))
        return static_cast<StrObj *>(a.asObj())->value <
            static_cast<StrObj *>(b.asObj())->value;
    if (a.isObjKind(ObjKind::Tuple) && b.isObjKind(ObjKind::Tuple)) {
        const auto &x = static_cast<TupleObj *>(a.asObj())->items;
        const auto &y = static_cast<TupleObj *>(b.asObj())->items;
        for (size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
            if (valueLess(x[i], y[i]))
                return true;
            if (valueLess(y[i], x[i]))
                return false;
        }
        return x.size() < y.size();
    }
    typeError("'" + a.typeName() + "' and '" + b.typeName() +
              "' are not orderable");
}

/** Materialize any iterable into a vector of values. */
std::vector<Value>
iterableToVector(Interp &interp, const Value &v)
{
    std::vector<Value> out;
    if (v.isObjKind(ObjKind::List)) {
        out = static_cast<ListObj *>(v.asObj())->items;
        return out;
    }
    if (v.isObjKind(ObjKind::Tuple)) {
        out = static_cast<TupleObj *>(v.asObj())->items;
        return out;
    }
    if (v.isObjKind(ObjKind::Range)) {
        auto *r = static_cast<RangeObj *>(v.asObj());
        for (int64_t i = r->start;
             r->step > 0 ? i < r->stop : i > r->stop; i += r->step)
            out.push_back(Value::makeInt(i));
        return out;
    }
    if (v.isObjKind(ObjKind::Str)) {
        for (char c : static_cast<StrObj *>(v.asObj())->value)
            out.push_back(makeStr(std::string(1, c)));
        return out;
    }
    if (v.isObjKind(ObjKind::Dict)) {
        for (const auto &e :
             static_cast<DictObj *>(v.asObj())->entries())
            if (e.live)
                out.push_back(e.key);
        return out;
    }
    if (v.isObjKind(ObjKind::Iterator)) {
        auto *it = static_cast<IteratorObj *>(v.asObj());
        Value next;
        while (it->next(next, interp.hashSeed()))
            out.push_back(next);
        return out;
    }
    typeError("'" + v.typeName() + "' object is not iterable");
}

// --- Builtin functions ---------------------------------------------------

Value
bPrint(Interp &interp, std::vector<Value> &args)
{
    std::string line;
    for (size_t i = 0; i < args.size(); ++i) {
        if (i)
            line += ' ';
        line += args[i].str();
    }
    interp.printLine(line);
    return Value();
}

Value
bLen(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    const Value &v = args[0];
    if (v.isObjKind(ObjKind::Str))
        return Value::makeInt(static_cast<int64_t>(
            static_cast<StrObj *>(v.asObj())->value.size()));
    if (v.isObjKind(ObjKind::List))
        return Value::makeInt(static_cast<int64_t>(
            static_cast<ListObj *>(v.asObj())->items.size()));
    if (v.isObjKind(ObjKind::Tuple))
        return Value::makeInt(static_cast<int64_t>(
            static_cast<TupleObj *>(v.asObj())->items.size()));
    if (v.isObjKind(ObjKind::Dict))
        return Value::makeInt(static_cast<int64_t>(
            static_cast<DictObj *>(v.asObj())->size()));
    if (v.isObjKind(ObjKind::Range))
        return Value::makeInt(
            static_cast<RangeObj *>(v.asObj())->length());
    typeError("object of type '" + v.typeName() + "' has no len()");
}

Value
bRange(Interp &interp, std::vector<Value> &args)
{
    int64_t start = 0, stop = 0, step = 1;
    if (args.size() == 1) {
        stop = toIndex(args[0], "range() stop");
    } else if (args.size() == 2) {
        start = toIndex(args[0], "range() start");
        stop = toIndex(args[1], "range() stop");
    } else {
        start = toIndex(args[0], "range() start");
        stop = toIndex(args[1], "range() stop");
        step = toIndex(args[2], "range() step");
        if (step == 0)
            throw VmError("range() arg 3 must not be zero");
    }
    return Value::makeObj(interp.alloc<RangeObj>(start, stop, step));
}

Value
bAbs(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    const Value &v = args[0];
    if (v.isInt())
        return Value::makeInt(std::llabs(v.asInt()));
    if (v.isFloat())
        return Value::makeFloat(std::fabs(v.asFloat()));
    if (v.isBool())
        return Value::makeInt(v.asBool() ? 1 : 0);
    typeError("bad operand type for abs(): '" + v.typeName() + "'");
}

Value
minMaxImpl(Interp &interp, std::vector<Value> &args, bool want_min)
{
    std::vector<Value> candidates;
    if (args.size() == 1)
        candidates = iterableToVector(interp, args[0]);
    else
        candidates = args;
    if (candidates.empty())
        throw VmError(std::string(want_min ? "min" : "max") +
                      "() arg is an empty sequence");
    Value best = candidates[0];
    for (size_t i = 1; i < candidates.size(); ++i) {
        bool better = want_min ? valueLess(candidates[i], best)
                               : valueLess(best, candidates[i]);
        if (better)
            best = candidates[i];
    }
    return best;
}

Value
bMin(Interp &interp, std::vector<Value> &args)
{
    return minMaxImpl(interp, args, true);
}

Value
bMax(Interp &interp, std::vector<Value> &args)
{
    return minMaxImpl(interp, args, false);
}

Value
bInt(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    if (args.empty())
        return Value::makeInt(0);
    const Value &v = args[0];
    if (v.isInt())
        return v;
    if (v.isBool())
        return Value::makeInt(v.asBool() ? 1 : 0);
    if (v.isFloat())
        return Value::makeInt(static_cast<int64_t>(v.asFloat()));
    if (v.isObjKind(ObjKind::Str)) {
        const std::string &s =
            static_cast<StrObj *>(v.asObj())->value;
        try {
            size_t consumed = 0;
            std::string trimmed = trim(s);
            int64_t out = std::stoll(trimmed, &consumed, 10);
            if (consumed != trimmed.size())
                throw std::invalid_argument(s);
            return Value::makeInt(out);
        } catch (const std::exception &) {
            throw VmError("invalid literal for int(): '" + s + "'");
        }
    }
    typeError("int() argument must be a number or string");
}

Value
bFloat(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    if (args.empty())
        return Value::makeFloat(0.0);
    const Value &v = args[0];
    if (v.isFloat())
        return v;
    if (v.isInt())
        return Value::makeFloat(static_cast<double>(v.asInt()));
    if (v.isBool())
        return Value::makeFloat(v.asBool() ? 1.0 : 0.0);
    if (v.isObjKind(ObjKind::Str)) {
        const std::string &s =
            static_cast<StrObj *>(v.asObj())->value;
        try {
            size_t consumed = 0;
            std::string trimmed = trim(s);
            double out = std::stod(trimmed, &consumed);
            if (consumed != trimmed.size())
                throw std::invalid_argument(s);
            return Value::makeFloat(out);
        } catch (const std::exception &) {
            throw VmError("could not convert string to float: '" + s +
                          "'");
        }
    }
    typeError("float() argument must be a number or string");
}

Value
bStr(Interp &interp, std::vector<Value> &args)
{
    if (args.empty())
        return makeStr("");
    return Value::makeObj(interp.alloc<StrObj>(args[0].str()));
}

Value
bBool(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    if (args.empty())
        return Value::makeBool(false);
    return Value::makeBool(args[0].truthy());
}

Value
bOrd(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    const std::string &s = strOf(args[0], "ord() argument");
    if (s.size() != 1)
        typeError("ord() expected a character");
    return Value::makeInt(static_cast<unsigned char>(s[0]));
}

Value
bChr(Interp &interp, std::vector<Value> &args)
{
    int64_t c = toIndex(args[0], "chr() argument");
    if (c < 0 || c > 255)
        throw VmError("chr() arg not in range(256)");
    return Value::makeObj(interp.alloc<StrObj>(
        std::string(1, static_cast<char>(c))));
}

Value
bSum(Interp &interp, std::vector<Value> &args)
{
    std::vector<Value> items = iterableToVector(interp, args[0]);
    bool any_float = false;
    int64_t isum = 0;
    double fsum = 0.0;
    for (const auto &v : items) {
        if (v.isInt() || v.isBool()) {
            isum += v.isBool() ? (v.asBool() ? 1 : 0) : v.asInt();
        } else if (v.isFloat()) {
            any_float = true;
            fsum += v.asFloat();
        } else {
            typeError("unsupported operand type for sum(): '" +
                      v.typeName() + "'");
        }
    }
    if (args.size() == 2) {
        const Value &init = args[1];
        if (init.isFloat()) {
            any_float = true;
            fsum += init.asFloat();
        } else {
            isum += toIndex(init, "sum() start");
        }
    }
    if (any_float)
        return Value::makeFloat(fsum + static_cast<double>(isum));
    return Value::makeInt(isum);
}

Value
bIsInstance(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    const Value &obj = args[0];
    const Value &cls_val = args[1];
    if (!cls_val.isObjKind(ObjKind::Class))
        typeError("isinstance() arg 2 must be a class");
    if (!obj.isObjKind(ObjKind::Instance))
        return Value::makeBool(false);
    auto *want = static_cast<ClassObj *>(cls_val.asObj());
    for (const ClassObj *c =
             static_cast<InstanceObj *>(obj.asObj())->cls;
         c; c = c->base) {
        if (c == want)
            return Value::makeBool(true);
    }
    return Value::makeBool(false);
}

Value
bList(Interp &interp, std::vector<Value> &args)
{
    ListObj *l = interp.alloc<ListObj>();
    if (!args.empty())
        l->items = iterableToVector(interp, args[0]);
    return Value::makeObj(l);
}

Value
bTuple(Interp &interp, std::vector<Value> &args)
{
    TupleObj *t = interp.alloc<TupleObj>();
    if (!args.empty())
        t->items = iterableToVector(interp, args[0]);
    return Value::makeObj(t);
}

Value
bDict(Interp &interp, std::vector<Value> &args)
{
    DictObj *d = interp.alloc<DictObj>(interp.hashSeed());
    if (!args.empty()) {
        // dict(list_of_pairs)
        for (const auto &pair : iterableToVector(interp, args[0])) {
            if (!pair.isObjKind(ObjKind::Tuple) ||
                static_cast<TupleObj *>(pair.asObj())->items.size() !=
                    2)
                typeError("dict() requires an iterable of pairs");
            const auto &items =
                static_cast<TupleObj *>(pair.asObj())->items;
            d->set(items[0], items[1]);
        }
    }
    return Value::makeObj(d);
}

Value
bEnumerate(Interp &interp, std::vector<Value> &args)
{
    int64_t start = args.size() == 2
        ? toIndex(args[1], "enumerate() start")
        : 0;
    ListObj *out = interp.alloc<ListObj>();
    int64_t idx = start;
    for (auto &v : iterableToVector(interp, args[0])) {
        TupleObj *pair = interp.alloc<TupleObj>();
        pair->items.push_back(Value::makeInt(idx++));
        pair->items.push_back(std::move(v));
        out->items.push_back(Value::makeObj(pair));
    }
    return Value::makeObj(out);
}

Value
bZip(Interp &interp, std::vector<Value> &args)
{
    std::vector<std::vector<Value>> columns;
    size_t shortest = SIZE_MAX;
    for (const auto &arg : args) {
        columns.push_back(iterableToVector(interp, arg));
        shortest = std::min(shortest, columns.back().size());
    }
    ListObj *out = interp.alloc<ListObj>();
    if (columns.empty() || shortest == SIZE_MAX)
        return Value::makeObj(out);
    for (size_t row = 0; row < shortest; ++row) {
        TupleObj *tuple = interp.alloc<TupleObj>();
        for (auto &col : columns)
            tuple->items.push_back(col[row]);
        out->items.push_back(Value::makeObj(tuple));
    }
    return Value::makeObj(out);
}

Value
bTypeName(Interp &interp, std::vector<Value> &args)
{
    return Value::makeObj(interp.alloc<StrObj>(args[0].typeName()));
}

Value
bSorted(Interp &interp, std::vector<Value> &args)
{
    ListObj *l = interp.alloc<ListObj>();
    l->items = iterableToVector(interp, args[0]);
    std::stable_sort(l->items.begin(), l->items.end(), valueLess);
    return Value::makeObj(l);
}

// --- Builtin-type methods -------------------------------------------------

Value
mListAppend(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *l = static_cast<ListObj *>(args[0].asObj());
    l->items.push_back(args[1]);
    l->simSize = static_cast<uint32_t>(32 + l->items.size() * 8);
    return Value();
}

Value
mListPop(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *l = static_cast<ListObj *>(args[0].asObj());
    if (l->items.empty())
        throw VmError("pop from empty list");
    if (args.size() == 2) {
        int64_t i = toIndex(args[1], "pop() index");
        int64_t len = static_cast<int64_t>(l->items.size());
        if (i < 0)
            i += len;
        if (i < 0 || i >= len)
            throw VmError("pop index out of range");
        Value out = l->items[static_cast<size_t>(i)];
        l->items.erase(l->items.begin() + static_cast<ptrdiff_t>(i));
        return out;
    }
    Value out = l->items.back();
    l->items.pop_back();
    return out;
}

Value
mListExtend(Interp &interp, std::vector<Value> &args)
{
    auto *l = static_cast<ListObj *>(args[0].asObj());
    for (auto &v : iterableToVector(interp, args[1]))
        l->items.push_back(std::move(v));
    return Value();
}

Value
mListInsert(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *l = static_cast<ListObj *>(args[0].asObj());
    int64_t i = toIndex(args[1], "insert() index");
    int64_t len = static_cast<int64_t>(l->items.size());
    if (i < 0)
        i += len;
    i = std::clamp<int64_t>(i, 0, len);
    l->items.insert(l->items.begin() + static_cast<ptrdiff_t>(i),
                    args[2]);
    return Value();
}

Value
mListReverse(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *l = static_cast<ListObj *>(args[0].asObj());
    std::reverse(l->items.begin(), l->items.end());
    return Value();
}

Value
mListSort(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *l = static_cast<ListObj *>(args[0].asObj());
    std::stable_sort(l->items.begin(), l->items.end(), valueLess);
    return Value();
}

Value
mListIndex(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *l = static_cast<ListObj *>(args[0].asObj());
    for (size_t i = 0; i < l->items.size(); ++i) {
        if (l->items[i].equals(args[1]))
            return Value::makeInt(static_cast<int64_t>(i));
    }
    throw VmError("ValueError: " + args[1].repr() + " is not in list");
}

Value
mListCount(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *l = static_cast<ListObj *>(args[0].asObj());
    int64_t n = 0;
    for (const auto &v : l->items)
        if (v.equals(args[1]))
            ++n;
    return Value::makeInt(n);
}

Value
mStrUpper(Interp &interp, std::vector<Value> &args)
{
    std::string s = static_cast<StrObj *>(args[0].asObj())->value;
    for (auto &c : s)
        c = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
    return Value::makeObj(interp.alloc<StrObj>(std::move(s)));
}

Value
mStrLower(Interp &interp, std::vector<Value> &args)
{
    std::string s = static_cast<StrObj *>(args[0].asObj())->value;
    for (auto &c : s)
        c = static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    return Value::makeObj(interp.alloc<StrObj>(std::move(s)));
}

Value
mStrSplit(Interp &interp, std::vector<Value> &args)
{
    const std::string &s =
        static_cast<StrObj *>(args[0].asObj())->value;
    ListObj *out = interp.alloc<ListObj>();
    if (args.size() == 1) {
        // Split on whitespace runs.
        size_t i = 0;
        while (i < s.size()) {
            while (i < s.size() &&
                   std::isspace(static_cast<unsigned char>(s[i])))
                ++i;
            size_t start = i;
            while (i < s.size() &&
                   !std::isspace(static_cast<unsigned char>(s[i])))
                ++i;
            if (i > start)
                out->items.push_back(Value::makeObj(
                    interp.alloc<StrObj>(s.substr(start, i - start))));
        }
    } else {
        const std::string &sep = strOf(args[1], "split() separator");
        if (sep.empty())
            throw VmError("empty separator");
        size_t start = 0;
        for (;;) {
            size_t hit = s.find(sep, start);
            if (hit == std::string::npos) {
                out->items.push_back(Value::makeObj(
                    interp.alloc<StrObj>(s.substr(start))));
                break;
            }
            out->items.push_back(Value::makeObj(
                interp.alloc<StrObj>(s.substr(start, hit - start))));
            start = hit + sep.size();
        }
    }
    return Value::makeObj(out);
}

Value
mStrJoin(Interp &interp, std::vector<Value> &args)
{
    const std::string &sep =
        static_cast<StrObj *>(args[0].asObj())->value;
    std::string out;
    bool first = true;
    for (const auto &v : iterableToVector(interp, args[1])) {
        if (!first)
            out += sep;
        first = false;
        out += strOf(v, "join() item");
    }
    return Value::makeObj(interp.alloc<StrObj>(std::move(out)));
}

Value
mStrStrip(Interp &interp, std::vector<Value> &args)
{
    const std::string &s =
        static_cast<StrObj *>(args[0].asObj())->value;
    return Value::makeObj(interp.alloc<StrObj>(trim(s)));
}

Value
mStrFind(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    const std::string &s =
        static_cast<StrObj *>(args[0].asObj())->value;
    const std::string &needle = strOf(args[1], "find() argument");
    size_t hit = s.find(needle);
    return Value::makeInt(hit == std::string::npos
                              ? -1
                              : static_cast<int64_t>(hit));
}

Value
mStrReplace(Interp &interp, std::vector<Value> &args)
{
    const std::string &s =
        static_cast<StrObj *>(args[0].asObj())->value;
    const std::string &from = strOf(args[1], "replace() old");
    const std::string &to = strOf(args[2], "replace() new");
    if (from.empty())
        throw VmError("replace() old must be non-empty");
    std::string out;
    size_t start = 0;
    for (;;) {
        size_t hit = s.find(from, start);
        if (hit == std::string::npos) {
            out += s.substr(start);
            break;
        }
        out += s.substr(start, hit - start);
        out += to;
        start = hit + from.size();
    }
    return Value::makeObj(interp.alloc<StrObj>(std::move(out)));
}

Value
mStrStartswith(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    const std::string &s =
        static_cast<StrObj *>(args[0].asObj())->value;
    return Value::makeBool(
        startsWith(s, strOf(args[1], "startswith() prefix")));
}

Value
mStrEndswith(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    const std::string &s =
        static_cast<StrObj *>(args[0].asObj())->value;
    return Value::makeBool(
        endsWith(s, strOf(args[1], "endswith() suffix")));
}

Value
mDictGet(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *d = static_cast<DictObj *>(args[0].asObj());
    if (const Value *v = d->find(args[1]))
        return *v;
    return args.size() == 3 ? args[2] : Value();
}

Value
mDictKeys(Interp &interp, std::vector<Value> &args)
{
    return Value::makeObj(interp.alloc<IteratorObj>(
        IteratorObj::Source::DictKeys, args[0]));
}

Value
mDictValues(Interp &interp, std::vector<Value> &args)
{
    return Value::makeObj(interp.alloc<IteratorObj>(
        IteratorObj::Source::DictValues, args[0]));
}

Value
mDictItems(Interp &interp, std::vector<Value> &args)
{
    return Value::makeObj(interp.alloc<IteratorObj>(
        IteratorObj::Source::DictItems, args[0]));
}

Value
mDictClear(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    static_cast<DictObj *>(args[0].asObj())->clear();
    return Value();
}

Value
mDictPop(Interp &interp, std::vector<Value> &args)
{
    (void)interp;
    auto *d = static_cast<DictObj *>(args[0].asObj());
    if (const Value *v = d->find(args[1])) {
        Value out = *v;
        d->erase(args[1]);
        return out;
    }
    if (args.size() == 3)
        return args[2];
    throw VmError("KeyError: " + args[1].repr());
}

struct MethodSpec
{
    const char *name;
    BuiltinObj::Fn fn;
    int minArgs;  ///< including the receiver
    int maxArgs;
};

const MethodSpec kListMethods[] = {
    {"append", mListAppend, 2, 2},   {"pop", mListPop, 1, 2},
    {"extend", mListExtend, 2, 2},   {"insert", mListInsert, 3, 3},
    {"reverse", mListReverse, 1, 1}, {"sort", mListSort, 1, 1},
    {"index", mListIndex, 2, 2},     {"count", mListCount, 2, 2},
};

const MethodSpec kStrMethods[] = {
    {"upper", mStrUpper, 1, 1},
    {"lower", mStrLower, 1, 1},
    {"split", mStrSplit, 1, 2},
    {"join", mStrJoin, 2, 2},
    {"strip", mStrStrip, 1, 1},
    {"find", mStrFind, 2, 2},
    {"replace", mStrReplace, 3, 3},
    {"startswith", mStrStartswith, 2, 2},
    {"endswith", mStrEndswith, 2, 2},
};

const MethodSpec kDictMethods[] = {
    {"get", mDictGet, 2, 3},       {"keys", mDictKeys, 1, 1},
    {"values", mDictValues, 1, 1}, {"items", mDictItems, 1, 1},
    {"clear", mDictClear, 1, 1},   {"pop", mDictPop, 2, 3},
};

} // namespace

bool
getBuiltinTypeMethod(Interp &interp, const Value &receiver,
                     const std::string &name, Value &out)
{
    const MethodSpec *table = nullptr;
    size_t count = 0;
    if (receiver.isObjKind(ObjKind::List)) {
        table = kListMethods;
        count = std::size(kListMethods);
    } else if (receiver.isObjKind(ObjKind::Str)) {
        table = kStrMethods;
        count = std::size(kStrMethods);
    } else if (receiver.isObjKind(ObjKind::Dict)) {
        table = kDictMethods;
        count = std::size(kDictMethods);
    } else {
        return false;
    }
    for (size_t i = 0; i < count; ++i) {
        if (name == table[i].name) {
            BuiltinObj *fn = interp.alloc<BuiltinObj>(
                name, table[i].fn, table[i].minArgs,
                table[i].maxArgs);
            BoundMethodObj *bm = interp.alloc<BoundMethodObj>(
                receiver, Value::makeObj(fn));
            out = Value::makeObj(bm);
            return true;
        }
    }
    return false;
}

void
installBuiltins(Interp &interp, DictObj &builtins)
{
    auto def = [&](const char *name, BuiltinObj::Fn fn, int min_args,
                   int max_args) {
        BuiltinObj *obj =
            interp.alloc<BuiltinObj>(name, fn, min_args, max_args);
        builtins.set(makeStr(name), Value::makeObj(obj));
    };

    def("print", bPrint, 0, -1);
    def("len", bLen, 1, 1);
    def("range", bRange, 1, 3);
    def("abs", bAbs, 1, 1);
    def("min", bMin, 1, -1);
    def("max", bMax, 1, -1);
    def("int", bInt, 0, 1);
    def("float", bFloat, 0, 1);
    def("str", bStr, 0, 1);
    def("bool", bBool, 0, 1);
    def("ord", bOrd, 1, 1);
    def("chr", bChr, 1, 1);
    def("sum", bSum, 1, 2);
    def("isinstance", bIsInstance, 2, 2);
    def("list", bList, 0, 1);
    def("tuple", bTuple, 0, 1);
    def("dict", bDict, 0, 1);
    def("sorted", bSorted, 1, 1);
    def("typename", bTypeName, 1, 1);
    def("enumerate", bEnumerate, 1, 2);
    def("zip", bZip, 1, -1);
}

} // namespace vm
} // namespace rigor
