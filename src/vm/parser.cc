#include "vm/parser.hh"

#include "support/logging.hh"
#include "vm/lexer.hh"

namespace rigor {
namespace vm {

namespace {

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : toks(std::move(tokens))
    {}

    Module
    parseModule()
    {
        Module m;
        skipNewlines();
        while (!check(Tok::EndOfFile)) {
            m.body.push_back(parseStatement());
            skipNewlines();
        }
        return m;
    }

  private:
    const Token &
    peek(size_t ahead = 0) const
    {
        size_t i = pos + ahead;
        if (i >= toks.size())
            i = toks.size() - 1;  // EOF token
        return toks[i];
    }

    const Token &
    advance()
    {
        const Token &t = toks[pos];
        if (pos + 1 < toks.size())
            ++pos;
        return t;
    }

    bool
    check(Tok kind) const
    {
        return peek().kind == kind;
    }

    bool
    match(Tok kind)
    {
        if (check(kind)) {
            advance();
            return true;
        }
        return false;
    }

    const Token &
    expect(Tok kind, const char *context)
    {
        if (!check(kind)) {
            throw SyntaxError(
                std::string("expected ") + tokName(kind) + " " +
                    context + ", got " + tokName(peek().kind),
                peek().line, peek().col);
        }
        return advance();
    }

    void
    skipNewlines()
    {
        while (match(Tok::Newline)) {}
    }

    [[noreturn]] void
    error(const std::string &msg)
    {
        throw SyntaxError(msg, peek().line, peek().col);
    }

    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    // --- Statements ---------------------------------------------------

    StmtPtr
    parseStatement()
    {
        switch (peek().kind) {
          case Tok::KwIf: return parseIf();
          case Tok::KwWhile: return parseWhile();
          case Tok::KwFor: return parseFor();
          case Tok::KwDef: return parseDef();
          case Tok::KwClass: return parseClass();
          case Tok::KwTry: return parseTry();
          default: {
            StmtPtr s = parseSimpleStatement();
            // Allow `a = 1; b = 2` separated by semicolons? Keep the
            // grammar strict: one simple statement per line.
            expect(Tok::Newline, "after statement");
            return s;
          }
        }
    }

    StmtPtr
    parseSimpleStatement()
    {
        int line = peek().line;
        auto make = [&](StmtKind k) {
            auto s = std::make_unique<Stmt>();
            s->kind = k;
            s->line = line;
            return s;
        };

        switch (peek().kind) {
          case Tok::KwReturn: {
            advance();
            auto s = make(StmtKind::Return);
            if (!check(Tok::Newline))
                s->expr = parseExprOrTuple();
            return s;
          }
          case Tok::KwBreak:
            advance();
            return make(StmtKind::Break);
          case Tok::KwContinue:
            advance();
            return make(StmtKind::Continue);
          case Tok::KwPass:
            advance();
            return make(StmtKind::Pass);
          case Tok::KwGlobal: {
            advance();
            auto s = make(StmtKind::Global);
            s->globalNames.push_back(
                expect(Tok::Name, "after 'global'").text);
            while (match(Tok::Comma))
                s->globalNames.push_back(
                    expect(Tok::Name, "in global list").text);
            return s;
          }
          case Tok::KwRaise: {
            advance();
            auto s = make(StmtKind::Raise);
            s->expr = parseExpr();
            return s;
          }
          case Tok::KwAssert: {
            advance();
            auto s = make(StmtKind::Assert);
            s->expr = parseExpr();
            if (match(Tok::Comma))
                s->target = parseExpr();
            return s;
          }
          case Tok::KwDel: {
            advance();
            auto s = make(StmtKind::Del);
            s->target = parseExprOrTuple();
            if (s->target->kind != ExprKind::Subscript)
                error("del supports only subscript targets");
            return s;
          }
          default:
            break;
        }

        // Expression, assignment, or augmented assignment.
        ExprPtr first = parseExprOrTuple();

        if (check(Tok::Assign)) {
            advance();
            auto s = make(StmtKind::Assign);
            validateTarget(*first);
            s->target = std::move(first);
            s->expr = parseExprOrTuple();
            if (check(Tok::Assign))
                error("chained assignment is not supported");
            return s;
        }

        BinOp aug;
        if (matchAugOp(aug)) {
            auto s = make(StmtKind::AugAssign);
            if (first->kind != ExprKind::Name &&
                first->kind != ExprKind::Attribute &&
                first->kind != ExprKind::Subscript)
                error("invalid augmented-assignment target");
            s->target = std::move(first);
            s->augOp = aug;
            s->expr = parseExprOrTuple();
            return s;
        }

        auto s = make(StmtKind::ExprStmt);
        s->expr = std::move(first);
        return s;
    }

    bool
    matchAugOp(BinOp &op)
    {
        switch (peek().kind) {
          case Tok::PlusAssign: op = BinOp::Add; break;
          case Tok::MinusAssign: op = BinOp::Sub; break;
          case Tok::StarAssign: op = BinOp::Mul; break;
          case Tok::SlashAssign: op = BinOp::Div; break;
          case Tok::DoubleSlashAssign: op = BinOp::FloorDiv; break;
          case Tok::PercentAssign: op = BinOp::Mod; break;
          default:
            return false;
        }
        advance();
        return true;
    }

    void
    validateTarget(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::Name:
          case ExprKind::Attribute:
          case ExprKind::Subscript:
            return;
          case ExprKind::TupleLit:
            for (const auto &item : e.items) {
                if (item->kind != ExprKind::Name)
                    error("tuple assignment targets must be names");
            }
            return;
          default:
            error("invalid assignment target");
        }
    }

    std::vector<StmtPtr>
    parseBlock()
    {
        expect(Tok::Colon, "before block");
        expect(Tok::Newline, "after ':'");
        expect(Tok::Indent, "to start block");
        std::vector<StmtPtr> body;
        skipNewlines();
        while (!check(Tok::Dedent) && !check(Tok::EndOfFile)) {
            body.push_back(parseStatement());
            skipNewlines();
        }
        expect(Tok::Dedent, "to end block");
        if (body.empty())
            error("empty block");
        return body;
    }

    StmtPtr
    parseIf()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::If;
        s->line = peek().line;
        advance();  // 'if' / 'elif'
        s->expr = parseExpr();
        s->body = parseBlock();
        if (check(Tok::KwElif)) {
            s->orelse.push_back(parseIf());
        } else if (match(Tok::KwElse)) {
            s->orelse = parseBlock();
        }
        return s;
    }

    StmtPtr
    parseWhile()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::While;
        s->line = peek().line;
        advance();
        s->expr = parseExpr();
        s->body = parseBlock();
        return s;
    }

    StmtPtr
    parseFor()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::For;
        s->line = peek().line;
        advance();
        // Target: name or comma-separated names (implicit tuple).
        auto first = makeExpr(ExprKind::Name);
        first->strValue = expect(Tok::Name, "after 'for'").text;
        if (check(Tok::Comma)) {
            auto tup = makeExpr(ExprKind::TupleLit);
            tup->items.push_back(std::move(first));
            while (match(Tok::Comma)) {
                auto n = makeExpr(ExprKind::Name);
                n->strValue = expect(Tok::Name, "in for targets").text;
                tup->items.push_back(std::move(n));
            }
            s->target = std::move(tup);
        } else {
            s->target = std::move(first);
        }
        expect(Tok::KwIn, "in for statement");
        s->expr = parseExprOrTuple();
        s->body = parseBlock();
        return s;
    }

    StmtPtr
    parseDef()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::FunctionDef;
        s->line = peek().line;
        advance();
        s->name = expect(Tok::Name, "after 'def'").text;
        expect(Tok::LParen, "after function name");
        bool seen_default = false;
        if (!check(Tok::RParen)) {
            for (;;) {
                s->params.push_back(
                    expect(Tok::Name, "in parameter list").text);
                if (match(Tok::Assign)) {
                    seen_default = true;
                    s->defaults.push_back(parseExpr());
                } else if (seen_default) {
                    error("non-default parameter after default");
                }
                if (!match(Tok::Comma))
                    break;
            }
        }
        expect(Tok::RParen, "after parameters");
        s->body = parseBlock();
        return s;
    }

    StmtPtr
    parseTry()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Try;
        s->line = peek().line;
        advance();  // 'try'
        s->body = parseBlock();
        expect(Tok::KwExcept, "after try block");
        // Optional (ignored) exception-name filter: `except Name:`.
        if (check(Tok::Name))
            advance();
        s->orelse = parseBlock();
        return s;
    }

    StmtPtr
    parseClass()
    {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::ClassDef;
        s->line = peek().line;
        advance();
        s->name = expect(Tok::Name, "after 'class'").text;
        if (match(Tok::LParen)) {
            if (!check(Tok::RParen))
                s->baseName = expect(Tok::Name, "as base class").text;
            expect(Tok::RParen, "after base class");
        }
        s->body = parseBlock();
        return s;
    }

    // --- Expressions ----------------------------------------------------

    /** Top-level expression that may be an unparenthesized tuple. */
    ExprPtr
    parseExprOrTuple()
    {
        ExprPtr first = parseExpr();
        if (!check(Tok::Comma))
            return first;
        auto tup = makeExpr(ExprKind::TupleLit);
        tup->items.push_back(std::move(first));
        while (match(Tok::Comma)) {
            if (check(Tok::Newline) || check(Tok::Assign) ||
                check(Tok::RParen))
                break;  // trailing comma
            tup->items.push_back(parseExpr());
        }
        return tup;
    }

    ExprPtr
    parseExpr()
    {
        return parseOr();
    }

    ExprPtr
    parseOr()
    {
        ExprPtr e = parseAnd();
        if (!check(Tok::KwOr))
            return e;
        auto chain = makeExpr(ExprKind::BoolChain);
        chain->isAnd = false;
        chain->items.push_back(std::move(e));
        while (match(Tok::KwOr))
            chain->items.push_back(parseAnd());
        return chain;
    }

    ExprPtr
    parseAnd()
    {
        ExprPtr e = parseNot();
        if (!check(Tok::KwAnd))
            return e;
        auto chain = makeExpr(ExprKind::BoolChain);
        chain->isAnd = true;
        chain->items.push_back(std::move(e));
        while (match(Tok::KwAnd))
            chain->items.push_back(parseNot());
        return chain;
    }

    ExprPtr
    parseNot()
    {
        if (match(Tok::KwNot)) {
            auto e = makeExpr(ExprKind::Unary);
            e->unOp = UnOp::Not;
            e->lhs = parseNot();
            return e;
        }
        return parseComparison();
    }

    ExprPtr
    parseComparison()
    {
        ExprPtr lhs = parseBitOr();
        CmpOp op;
        if (!matchCmpOp(op))
            return lhs;
        auto e = makeExpr(ExprKind::Compare);
        e->cmpOp = op;
        e->lhs = std::move(lhs);
        e->rhs = parseBitOr();
        // Chained comparisons are rejected for clarity.
        CmpOp dummy;
        if (matchCmpOp(dummy))
            error("chained comparisons are not supported");
        return e;
    }

    bool
    matchCmpOp(CmpOp &op)
    {
        switch (peek().kind) {
          case Tok::Eq: op = CmpOp::Eq; break;
          case Tok::Ne: op = CmpOp::Ne; break;
          case Tok::Lt: op = CmpOp::Lt; break;
          case Tok::Le: op = CmpOp::Le; break;
          case Tok::Gt: op = CmpOp::Gt; break;
          case Tok::Ge: op = CmpOp::Ge; break;
          case Tok::KwIn: op = CmpOp::In; break;
          case Tok::KwNot:
            if (peek(1).kind == Tok::KwIn) {
                advance();
                advance();
                op = CmpOp::NotIn;
                return true;
            }
            return false;
          default:
            return false;
        }
        advance();
        return true;
    }

    ExprPtr
    parseBitOr()
    {
        ExprPtr e = parseBitXor();
        while (check(Tok::Pipe)) {
            advance();
            auto b = makeExpr(ExprKind::Binary);
            b->binOp = BinOp::BitOr;
            b->lhs = std::move(e);
            b->rhs = parseBitXor();
            e = std::move(b);
        }
        return e;
    }

    ExprPtr
    parseBitXor()
    {
        ExprPtr e = parseBitAnd();
        while (check(Tok::Caret)) {
            advance();
            auto b = makeExpr(ExprKind::Binary);
            b->binOp = BinOp::BitXor;
            b->lhs = std::move(e);
            b->rhs = parseBitAnd();
            e = std::move(b);
        }
        return e;
    }

    ExprPtr
    parseBitAnd()
    {
        ExprPtr e = parseShift();
        while (check(Tok::Amp)) {
            advance();
            auto b = makeExpr(ExprKind::Binary);
            b->binOp = BinOp::BitAnd;
            b->lhs = std::move(e);
            b->rhs = parseShift();
            e = std::move(b);
        }
        return e;
    }

    ExprPtr
    parseShift()
    {
        ExprPtr e = parseArith();
        while (check(Tok::LShift) || check(Tok::RShift)) {
            BinOp op = check(Tok::LShift) ? BinOp::LShift
                                          : BinOp::RShift;
            advance();
            auto b = makeExpr(ExprKind::Binary);
            b->binOp = op;
            b->lhs = std::move(e);
            b->rhs = parseArith();
            e = std::move(b);
        }
        return e;
    }

    ExprPtr
    parseArith()
    {
        ExprPtr e = parseTerm();
        while (check(Tok::Plus) || check(Tok::Minus)) {
            BinOp op = check(Tok::Plus) ? BinOp::Add : BinOp::Sub;
            advance();
            auto b = makeExpr(ExprKind::Binary);
            b->binOp = op;
            b->lhs = std::move(e);
            b->rhs = parseTerm();
            e = std::move(b);
        }
        return e;
    }

    ExprPtr
    parseTerm()
    {
        ExprPtr e = parseFactor();
        for (;;) {
            BinOp op;
            if (check(Tok::Star))
                op = BinOp::Mul;
            else if (check(Tok::Slash))
                op = BinOp::Div;
            else if (check(Tok::DoubleSlash))
                op = BinOp::FloorDiv;
            else if (check(Tok::Percent))
                op = BinOp::Mod;
            else
                break;
            advance();
            auto b = makeExpr(ExprKind::Binary);
            b->binOp = op;
            b->lhs = std::move(e);
            b->rhs = parseFactor();
            e = std::move(b);
        }
        return e;
    }

    ExprPtr
    parseFactor()
    {
        if (check(Tok::Minus)) {
            advance();
            auto e = makeExpr(ExprKind::Unary);
            e->unOp = UnOp::Neg;
            e->lhs = parseFactor();
            return e;
        }
        if (check(Tok::Plus)) {
            advance();
            return parseFactor();
        }
        if (check(Tok::Tilde)) {
            advance();
            auto e = makeExpr(ExprKind::Unary);
            e->unOp = UnOp::Invert;
            e->lhs = parseFactor();
            return e;
        }
        return parsePower();
    }

    ExprPtr
    parsePower()
    {
        ExprPtr base = parsePostfix();
        if (check(Tok::DoubleStar)) {
            advance();
            auto e = makeExpr(ExprKind::Binary);
            e->binOp = BinOp::Pow;
            e->lhs = std::move(base);
            e->rhs = parseFactor();  // right-associative
            return e;
        }
        return base;
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parseAtom();
        for (;;) {
            if (check(Tok::LParen)) {
                advance();
                auto call = makeExpr(ExprKind::Call);
                call->lhs = std::move(e);
                if (!check(Tok::RParen)) {
                    for (;;) {
                        call->items.push_back(parseExpr());
                        if (!match(Tok::Comma))
                            break;
                        if (check(Tok::RParen))
                            break;  // trailing comma
                    }
                }
                expect(Tok::RParen, "after call arguments");
                e = std::move(call);
            } else if (check(Tok::Dot)) {
                advance();
                auto attr = makeExpr(ExprKind::Attribute);
                attr->lhs = std::move(e);
                attr->strValue =
                    expect(Tok::Name, "after '.'").text;
                e = std::move(attr);
            } else if (check(Tok::LBracket)) {
                advance();
                auto sub = makeExpr(ExprKind::Subscript);
                sub->lhs = std::move(e);
                sub->rhs = parseSubscriptIndex();
                expect(Tok::RBracket, "after subscript");
                e = std::move(sub);
            } else {
                break;
            }
        }
        return e;
    }

    ExprPtr
    parseSubscriptIndex()
    {
        // Possible forms: e, e:e, e:, :e, :, e:e:e ...
        ExprPtr start;
        if (!check(Tok::Colon))
            start = parseExpr();
        if (!check(Tok::Colon))
            return start;  // plain index
        advance();  // ':'
        auto slice = makeExpr(ExprKind::SliceExpr);
        slice->items.push_back(std::move(start));  // may be null
        ExprPtr stop;
        if (!check(Tok::RBracket) && !check(Tok::Colon))
            stop = parseExpr();
        slice->items.push_back(std::move(stop));
        ExprPtr step;
        if (match(Tok::Colon)) {
            if (!check(Tok::RBracket))
                step = parseExpr();
        }
        slice->items.push_back(std::move(step));
        return slice;
    }

    ExprPtr
    parseAtom()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::IntLit: {
            auto e = makeExpr(ExprKind::IntLit);
            e->intValue = t.intValue;
            advance();
            return e;
          }
          case Tok::FloatLit: {
            auto e = makeExpr(ExprKind::FloatLit);
            e->floatValue = t.floatValue;
            advance();
            return e;
          }
          case Tok::StrLit: {
            auto e = makeExpr(ExprKind::StrLit);
            e->strValue = t.text;
            advance();
            // Adjacent string literal concatenation.
            while (check(Tok::StrLit))
                e->strValue += advance().text;
            return e;
          }
          case Tok::KwTrue:
          case Tok::KwFalse: {
            auto e = makeExpr(ExprKind::BoolLit);
            e->boolValue = t.kind == Tok::KwTrue;
            advance();
            return e;
          }
          case Tok::KwNone: {
            advance();
            return makeExpr(ExprKind::NoneLit);
          }
          case Tok::Name: {
            auto e = makeExpr(ExprKind::Name);
            e->strValue = t.text;
            advance();
            return e;
          }
          case Tok::LParen: {
            advance();
            if (check(Tok::RParen)) {
                advance();
                return makeExpr(ExprKind::TupleLit);  // empty tuple
            }
            ExprPtr inner = parseExpr();
            if (check(Tok::Comma)) {
                auto tup = makeExpr(ExprKind::TupleLit);
                tup->items.push_back(std::move(inner));
                while (match(Tok::Comma)) {
                    if (check(Tok::RParen))
                        break;
                    tup->items.push_back(parseExpr());
                }
                inner = std::move(tup);
            }
            expect(Tok::RParen, "after parenthesized expression");
            return inner;
          }
          case Tok::LBracket: {
            advance();
            auto lst = makeExpr(ExprKind::ListLit);
            if (!check(Tok::RBracket)) {
                ExprPtr first = parseExpr();
                if (check(Tok::KwFor)) {
                    // List comprehension (single for, optional if).
                    advance();
                    auto comp = makeExpr(ExprKind::ListComp);
                    comp->strValue =
                        expect(Tok::Name, "in comprehension").text;
                    expect(Tok::KwIn, "in comprehension");
                    comp->items.push_back(std::move(first));
                    comp->items.push_back(parseExpr());
                    if (match(Tok::KwIf))
                        comp->items.push_back(parseExpr());
                    else
                        comp->items.push_back(nullptr);
                    expect(Tok::RBracket, "after comprehension");
                    return comp;
                }
                lst->items.push_back(std::move(first));
                while (match(Tok::Comma)) {
                    if (check(Tok::RBracket))
                        break;
                    lst->items.push_back(parseExpr());
                }
            }
            expect(Tok::RBracket, "after list literal");
            return lst;
          }
          case Tok::LBrace: {
            advance();
            auto d = makeExpr(ExprKind::DictLit);
            if (!check(Tok::RBrace)) {
                for (;;) {
                    d->items.push_back(parseExpr());
                    expect(Tok::Colon, "in dict literal");
                    d->items.push_back(parseExpr());
                    if (!match(Tok::Comma))
                        break;
                    if (check(Tok::RBrace))
                        break;
                }
            }
            expect(Tok::RBrace, "after dict literal");
            return d;
          }
          default:
            error(std::string("unexpected ") + tokName(t.kind));
        }
    }

    std::vector<Token> toks;
    size_t pos = 0;
};

} // namespace

Module
parse(const std::string &source)
{
    Parser p(tokenize(source));
    return p.parseModule();
}

} // namespace vm
} // namespace rigor
