/**
 * @file
 * MiniPy value representation and heap object model.
 *
 * MiniPy is the Python-subset runtime this framework studies. Values
 * are a tagged union of immediate types (none/bool/int/float) and
 * reference-counted heap objects (str/list/tuple/dict/function/class/
 * instance/...), mirroring CPython's boxed, dynamically-typed object
 * model closely enough that the workload's memory and dispatch
 * behaviour is representative.
 *
 * Reference counting is manual-intrusive; cycles are not collected
 * (the workload suite is cycle-free by construction, as documented in
 * DESIGN.md).
 */

#ifndef RIGOR_VM_VALUE_HH
#define RIGOR_VM_VALUE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rigor {
namespace vm {

class Object;
class CodeObject;

/** Discriminator for heap object kinds. */
enum class ObjKind : uint8_t
{
    Str,
    List,
    Tuple,
    Dict,
    Function,
    Builtin,
    Class,
    Instance,
    BoundMethod,
    Range,
    Iterator,
    Slice,
};

/** Human-readable kind name ("str", "list", ...). */
const char *objKindName(ObjKind kind);

/**
 * A MiniPy value: none, bool, int, float, or a pointer to a heap
 * Object. Copying a Value adjusts reference counts.
 */
class Value
{
  public:
    enum class Tag : uint8_t { None, Bool, Int, Float, Obj };

    /** Construct none. */
    Value() : tag_(Tag::None) { payload.i = 0; }

    /** Construct a bool. */
    static Value
    makeBool(bool b)
    {
        Value v;
        v.tag_ = Tag::Bool;
        v.payload.b = b;
        return v;
    }

    /** Construct an int. */
    static Value
    makeInt(int64_t i)
    {
        Value v;
        v.tag_ = Tag::Int;
        v.payload.i = i;
        return v;
    }

    /** Construct a float. */
    static Value
    makeFloat(double f)
    {
        Value v;
        v.tag_ = Tag::Float;
        v.payload.f = f;
        return v;
    }

    /** Construct from a heap object, taking a new reference. */
    static Value makeObj(Object *o);

    /** Construct from a heap object, *stealing* the caller's reference. */
    static Value stealObj(Object *o);

    Value(const Value &other);
    Value(Value &&other) noexcept;
    Value &operator=(const Value &other);
    Value &operator=(Value &&other) noexcept;
    ~Value();

    Tag tag() const { return tag_; }
    bool isNone() const { return tag_ == Tag::None; }
    bool isBool() const { return tag_ == Tag::Bool; }
    bool isInt() const { return tag_ == Tag::Int; }
    bool isFloat() const { return tag_ == Tag::Float; }
    bool isObj() const { return tag_ == Tag::Obj; }
    /** True for objects of the given kind. */
    bool isObjKind(ObjKind kind) const;

    bool asBool() const { return payload.b; }
    int64_t asInt() const { return payload.i; }
    double asFloat() const { return payload.f; }
    Object *asObj() const { return payload.o; }

    /** Numeric value as double (int or float). */
    double numeric() const;

    /** Python truthiness. */
    bool truthy() const;

    /** Structural equality (==). */
    bool equals(const Value &other) const;

    /** Hash for dict keys; throws on unhashable types. */
    uint64_t hash(uint64_t seed) const;

    /** repr()-style rendering. */
    std::string repr() const;
    /** str()-style rendering (no quotes around strings). */
    std::string str() const;

    /** Type name for error messages. */
    std::string typeName() const;

  private:
    Tag tag_;
    union {
        bool b;
        int64_t i;
        double f;
        Object *o;
    } payload;
};

/** Runtime error raised by the VM (type errors, name errors, ...). */
class VmError : public std::exception
{
  public:
    explicit VmError(std::string msg) : message(std::move(msg)) {}
    const char *what() const noexcept override { return message.c_str(); }

  private:
    std::string message;
};

/**
 * Base of all heap objects. Intrusively reference-counted. Each
 * object carries a simulated heap address (assigned by the Heap) used
 * by the microarchitecture model for cache simulation.
 */
class Object
{
  public:
    explicit Object(ObjKind kind) : kind_(kind) {}
    virtual ~Object() = default;

    Object(const Object &) = delete;
    Object &operator=(const Object &) = delete;

    ObjKind kind() const { return kind_; }

    void incRef() { ++refCount; }
    void
    decRef()
    {
        if (--refCount == 0)
            delete this;
    }
    uint32_t refs() const { return refCount; }

    /** Simulated heap address (for the uarch model). */
    uint64_t simAddr = 0;
    /** Approximate payload size in bytes (for footprint stats). */
    uint32_t simSize = 32;

  private:
    ObjKind kind_;
    uint32_t refCount = 0;
};

/** Immutable string. */
class StrObj : public Object
{
  public:
    explicit StrObj(std::string s)
        : Object(ObjKind::Str), value(std::move(s))
    {
        simSize = static_cast<uint32_t>(48 + value.size());
    }

    std::string value;
};

/** Mutable list. */
class ListObj : public Object
{
  public:
    ListObj() : Object(ObjKind::List) {}

    std::vector<Value> items;
};

/** Immutable tuple. */
class TupleObj : public Object
{
  public:
    TupleObj() : Object(ObjKind::Tuple) {}

    std::vector<Value> items;
};

/**
 * Open-addressing hash table with per-interpreter seed, used both for
 * MiniPy dicts and for class/instance attribute namespaces. Preserves
 * insertion order for iteration (CPython 3.7+ semantics).
 */
class DictObj : public Object
{
  public:
    explicit DictObj(uint64_t seed)
        : Object(ObjKind::Dict), hashSeed(seed)
    {}

    /** Insert or overwrite. */
    void set(const Value &key, const Value &val);
    /** Lookup; returns nullptr if absent. */
    const Value *find(const Value &key) const;
    /** Remove a key; returns false if absent. */
    bool erase(const Value &key);
    /** Number of live entries. */
    size_t size() const { return liveCount; }
    /** Drop all entries. */
    void clear();

    /** One entry in insertion order; erased entries are tombstones. */
    struct Entry
    {
        Value key;
        Value value;
        bool live = false;
    };

    /** Entries in insertion order (including tombstones; check live). */
    const std::vector<Entry> &entries() const { return order; }

    uint64_t hashSeed;

  private:
    void rehash();
    /** Probe for the slot of key; returns index into `slots`. */
    size_t probe(const Value &key, uint64_t h) const;

    // slots map hash positions to indices into `order` (-1 = empty,
    // -2 = tombstone).
    std::vector<int32_t> slots;
    std::vector<Entry> order;
    size_t liveCount = 0;
};

/** User-defined function: code + globals binding. */
class FunctionObj : public Object
{
  public:
    FunctionObj() : Object(ObjKind::Function) {}
    ~FunctionObj() override;

    std::string name;
    const CodeObject *code = nullptr;  ///< owned by the Program
    /** Default values for trailing parameters. */
    std::vector<Value> defaults;
    /** Module globals dict (borrowed; owned by the Interp). */
    DictObj *globals = nullptr;
};

class Interp;

/** Native builtin function. */
class BuiltinObj : public Object
{
  public:
    using Fn = Value (*)(Interp &, std::vector<Value> &);

    BuiltinObj(std::string n, Fn f, int min_args, int max_args)
        : Object(ObjKind::Builtin), name(std::move(n)), fn(f),
          minArgs(min_args), maxArgs(max_args)
    {}

    std::string name;
    Fn fn;
    int minArgs;  ///< minimum arity
    int maxArgs;  ///< maximum arity (-1 = unbounded)
};

/** User-defined class. */
class ClassObj : public Object
{
  public:
    explicit ClassObj(uint64_t hash_seed);
    ~ClassObj() override;

    /** Look up an attribute on this class or its bases. */
    const Value *lookup(const Value &name) const;

    std::string name;
    ClassObj *base = nullptr;  ///< strong reference (incRef'd)
    DictObj *attrs = nullptr;  ///< strong reference: methods and class vars
};

/** Instance of a user-defined class. */
class InstanceObj : public Object
{
  public:
    InstanceObj(ClassObj *cls_, uint64_t hash_seed);
    ~InstanceObj() override;

    ClassObj *cls;     ///< strong reference
    DictObj *fields;   ///< strong reference: instance attribute dict
};

/** A method bound to its receiver. */
class BoundMethodObj : public Object
{
  public:
    BoundMethodObj(Value recv, Value fn)
        : Object(ObjKind::BoundMethod), receiver(std::move(recv)),
          callee(std::move(fn))
    {}

    Value receiver;
    Value callee;  ///< FunctionObj or BuiltinObj
};

/** Lazy range(start, stop, step). */
class RangeObj : public Object
{
  public:
    RangeObj(int64_t start_, int64_t stop_, int64_t step_)
        : Object(ObjKind::Range), start(start_), stop(stop_), step(step_)
    {}

    /** Number of elements produced. */
    int64_t length() const;

    int64_t start;
    int64_t stop;
    int64_t step;
};

/** Slice bound holder for a[i:j:k] (missing bounds are none). */
class SliceObj : public Object
{
  public:
    SliceObj() : Object(ObjKind::Slice) {}

    Value start;
    Value stop;
    Value step;
};

/** Iterator over a container (list/tuple/str/range/dict views). */
class IteratorObj : public Object
{
  public:
    enum class Source : uint8_t
    {
        List, Tuple, Str, Range, DictKeys, DictValues, DictItems,
    };

    IteratorObj(Source src, Value container_)
        : Object(ObjKind::Iterator), source(src),
          container(std::move(container_))
    {}

    /**
     * Advance; returns true and stores the next element in `out`, or
     * returns false at exhaustion.
     * @param hash_seed interpreter hash seed (for building item tuples).
     */
    bool next(Value &out, uint64_t hash_seed);

    Source source;
    Value container;
    size_t index = 0;
    int64_t cursor = 0;   ///< current value for range iteration
    bool primed = false;
};

/** Convenience: make a str Value (steals nothing; fresh object). */
Value makeStr(std::string s);

} // namespace vm
} // namespace rigor

#endif // RIGOR_VM_VALUE_HH
