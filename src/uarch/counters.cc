#include "uarch/counters.hh"

namespace rigor {
namespace uarch {

namespace {

uint64_t
sub(uint64_t a, uint64_t b)
{
    return a >= b ? a - b : 0;
}

} // namespace

CounterSet
CounterSet::diff(const CounterSet &earlier) const
{
    CounterSet d;
    d.bytecodes = sub(bytecodes, earlier.bytecodes);
    d.instructions = sub(instructions, earlier.instructions);
    d.cycles = sub(cycles, earlier.cycles);
    d.branches = sub(branches, earlier.branches);
    d.branchMisses = sub(branchMisses, earlier.branchMisses);
    d.dispatches = sub(dispatches, earlier.dispatches);
    d.dispatchMisses = sub(dispatchMisses, earlier.dispatchMisses);
    d.loads = sub(loads, earlier.loads);
    d.stores = sub(stores, earlier.stores);
    d.l1dAccesses = sub(l1dAccesses, earlier.l1dAccesses);
    d.l1dMisses = sub(l1dMisses, earlier.l1dMisses);
    d.l1iAccesses = sub(l1iAccesses, earlier.l1iAccesses);
    d.l1iMisses = sub(l1iMisses, earlier.l1iMisses);
    d.l2Misses = sub(l2Misses, earlier.l2Misses);
    d.llcMisses = sub(llcMisses, earlier.llcMisses);
    d.allocations = sub(allocations, earlier.allocations);
    d.allocatedBytes = sub(allocatedBytes, earlier.allocatedBytes);
    return d;
}

void
CounterSet::add(const CounterSet &other)
{
    bytecodes += other.bytecodes;
    instructions += other.instructions;
    cycles += other.cycles;
    branches += other.branches;
    branchMisses += other.branchMisses;
    dispatches += other.dispatches;
    dispatchMisses += other.dispatchMisses;
    loads += other.loads;
    stores += other.stores;
    l1dAccesses += other.l1dAccesses;
    l1dMisses += other.l1dMisses;
    l1iAccesses += other.l1iAccesses;
    l1iMisses += other.l1iMisses;
    l2Misses += other.l2Misses;
    llcMisses += other.llcMisses;
    allocations += other.allocations;
    allocatedBytes += other.allocatedBytes;
}

} // namespace uarch
} // namespace rigor
