/**
 * @file
 * Branch-predictor models: bimodal and gshare for conditional
 * branches, plus a history-based indirect predictor for interpreter
 * dispatch (the classic "interpreter dispatch is BTB-hostile" effect).
 */

#ifndef RIGOR_UARCH_BRANCH_HH
#define RIGOR_UARCH_BRANCH_HH

#include <cstdint>
#include <vector>

namespace rigor {
namespace uarch {

/** Interface of a conditional branch predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict and then update with the actual outcome.
     * @param site static branch identifier.
     * @param taken actual outcome.
     * @return true if the prediction was correct.
     */
    virtual bool predictAndUpdate(uint64_t site, bool taken) = 0;

    /** Reset all predictor state. */
    virtual void reset() = 0;
};

/** Classic bimodal predictor: 2-bit saturating counters per site. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param log2_entries log2 of the counter-table size. */
    explicit BimodalPredictor(unsigned log2_entries = 12);

    bool predictAndUpdate(uint64_t site, bool taken) override;
    void reset() override;

  private:
    std::vector<uint8_t> table;
    uint64_t mask;
};

/** Gshare: global history XOR site indexes 2-bit counters. */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param log2_entries log2 of the counter-table size.
     * @param history_bits global-history length.
     */
    explicit GsharePredictor(unsigned log2_entries = 14,
                             unsigned history_bits = 12);

    bool predictAndUpdate(uint64_t site, bool taken) override;
    void reset() override;

  private:
    std::vector<uint8_t> table;
    uint64_t mask;
    uint64_t history = 0;
    uint64_t historyMask;
};

/**
 * Indirect-target predictor for interpreter dispatch: predicts the
 * next opcode from a hash of recent opcode history (a simplified
 * ITTAGE). Compiled (quickened) code performs no dispatches, which is
 * exactly why JIT tiers escape this penalty.
 */
class DispatchPredictor
{
  public:
    /**
     * @param log2_entries log2 of the target-table size.
     * @param history_ops how many preceding opcodes the prediction
     *        may condition on. A switch-based interpreter has one
     *        shared indirect branch whose BTB entry thrashes (short
     *        effective history); threaded code replicates the branch
     *        per handler, which acts like conditioning on more
     *        context.
     */
    explicit DispatchPredictor(unsigned log2_entries = 12,
                               unsigned history_ops = 4);

    /**
     * Predict the opcode about to be dispatched, then update.
     * @param opcode numeric opcode actually dispatched.
     * @return true if predicted correctly.
     */
    bool predictAndUpdate(uint16_t opcode);

    /** Reset predictor state. */
    void reset();

  private:
    std::vector<uint16_t> table;
    uint64_t mask;
    uint64_t history = 0;
    uint64_t historyMask;
};

} // namespace uarch
} // namespace rigor

#endif // RIGOR_UARCH_BRANCH_HH
