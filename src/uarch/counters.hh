/**
 * @file
 * Simulated hardware performance counters.
 *
 * The counter names mirror what perf_event would expose on real
 * hardware (instructions, cycles, branches, branch-misses, cache
 * accesses/misses per level). "Instructions" are modelled micro-ops:
 * one MiniPy bytecode expands to several micro-ops the way one
 * CPython bytecode expands to many native instructions.
 */

#ifndef RIGOR_UARCH_COUNTERS_HH
#define RIGOR_UARCH_COUNTERS_HH

#include <cstdint>

namespace rigor {
namespace uarch {

/** A snapshot of simulated performance counters. */
struct CounterSet
{
    uint64_t bytecodes = 0;      ///< VM-level ops retired
    uint64_t instructions = 0;   ///< modelled native instructions (uops)
    uint64_t cycles = 0;
    uint64_t branches = 0;       ///< conditional branches
    uint64_t branchMisses = 0;
    uint64_t dispatches = 0;     ///< interpreter indirect dispatches
    uint64_t dispatchMisses = 0; ///< mispredicted dispatches
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t l1dAccesses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l1iAccesses = 0;
    uint64_t l1iMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t llcMisses = 0;
    uint64_t allocations = 0;
    uint64_t allocatedBytes = 0;

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                static_cast<double>(cycles)
                      : 0.0;
    }

    /** Conditional-branch mispredictions per kilo-instruction. */
    double
    branchMpki() const
    {
        return perKiloInstr(branchMisses + dispatchMisses);
    }

    /** L1D misses per kilo-instruction. */
    double
    l1dMpki() const
    {
        return perKiloInstr(l1dMisses);
    }

    /** L1I misses per kilo-instruction. */
    double
    l1iMpki() const
    {
        return perKiloInstr(l1iMisses);
    }

    /** L2 misses per kilo-instruction. */
    double
    l2Mpki() const
    {
        return perKiloInstr(l2Misses);
    }

    /** LLC misses per kilo-instruction. */
    double
    llcMpki() const
    {
        return perKiloInstr(llcMisses);
    }

    /** Branch misprediction rate over all predicted branches. */
    double
    branchMissRate() const
    {
        uint64_t total = branches + dispatches;
        return total ? static_cast<double>(branchMisses +
                                           dispatchMisses) /
                static_cast<double>(total)
                     : 0.0;
    }

    /** Element-wise difference (this - other); clamps at zero. */
    CounterSet diff(const CounterSet &earlier) const;

    /** Element-wise accumulate. */
    void add(const CounterSet &other);

  private:
    double
    perKiloInstr(uint64_t events) const
    {
        return instructions ? 1000.0 * static_cast<double>(events) /
                static_cast<double>(instructions)
                            : 0.0;
    }
};

} // namespace uarch
} // namespace rigor

#endif // RIGOR_UARCH_COUNTERS_HH
