#include "uarch/branch.hh"

#include <algorithm>
#include <cstddef>

namespace rigor {
namespace uarch {

namespace {

/** Cheap 64-bit hash for site ids (fibonacci hashing). */
inline uint64_t
hashSite(uint64_t site)
{
    return site * 0x9e3779b97f4a7c15ULL;
}

inline bool
counterTaken(uint8_t c)
{
    return c >= 2;
}

inline uint8_t
counterUpdate(uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(unsigned log2_entries)
    : table(1ULL << log2_entries, 1),
      mask((1ULL << log2_entries) - 1)
{}

bool
BimodalPredictor::predictAndUpdate(uint64_t site, bool taken)
{
    std::size_t idx = static_cast<std::size_t>((hashSite(site) >> 16) & mask);
    bool predicted = counterTaken(table[idx]);
    table[idx] = counterUpdate(table[idx], taken);
    return predicted == taken;
}

void
BimodalPredictor::reset()
{
    std::fill(table.begin(), table.end(), 1);
}

GsharePredictor::GsharePredictor(unsigned log2_entries,
                                 unsigned history_bits)
    : table(1ULL << log2_entries, 1),
      mask((1ULL << log2_entries) - 1),
      historyMask((1ULL << history_bits) - 1)
{}

bool
GsharePredictor::predictAndUpdate(uint64_t site, bool taken)
{
    std::size_t idx = static_cast<std::size_t>(
        ((hashSite(site) >> 16) ^ history) & mask);
    bool predicted = counterTaken(table[idx]);
    table[idx] = counterUpdate(table[idx], taken);
    history = ((history << 1) | (taken ? 1 : 0)) & historyMask;
    return predicted == taken;
}

void
GsharePredictor::reset()
{
    std::fill(table.begin(), table.end(), 1);
    history = 0;
}

DispatchPredictor::DispatchPredictor(unsigned log2_entries,
                                     unsigned history_ops)
    : table(1ULL << log2_entries, 0xffff),
      mask((1ULL << log2_entries) - 1)
{
    if (history_ops == 0)
        history_ops = 1;
    if (history_ops > 7)
        history_ops = 7;
    historyMask = (1ULL << (9 * history_ops)) - 1;
}

bool
DispatchPredictor::predictAndUpdate(uint16_t opcode)
{
    std::size_t idx = static_cast<std::size_t>(hashSite(history) >> 16 & mask);
    bool correct = table[idx] == opcode;
    table[idx] = opcode;
    // Fold the opcode into the (bounded) history.
    history = ((history << 9) ^ opcode) & historyMask;
    return correct;
}

void
DispatchPredictor::reset()
{
    std::fill(table.begin(), table.end(), 0xffff);
    history = 0;
}

} // namespace uarch
} // namespace rigor
