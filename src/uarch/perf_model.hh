/**
 * @file
 * The performance model: an ExecutionObserver that converts the VM's
 * dynamic event stream into simulated cycles and perf counters.
 *
 * The timing model is additive: committed micro-ops retire at the
 * machine's issue width; branch/dispatch mispredictions and cache
 * misses add penalty cycles on top. Memory-level parallelism is
 * modelled by scaling miss latency with an overlap factor, as a stand
 * -in for out-of-order overlap.
 */

#ifndef RIGOR_UARCH_PERF_MODEL_HH
#define RIGOR_UARCH_PERF_MODEL_HH

#include <memory>

#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/counters.hh"
#include "vm/observer.hh"

namespace rigor {
namespace uarch {

/** Knobs of the performance model. */
struct PerfModelConfig
{
    /** Micro-ops retired per cycle at best. */
    double issueWidth = 4.0;
    /** Penalty cycles per conditional-branch mispredict. */
    uint32_t branchMissPenalty = 14;
    /** Penalty cycles per mispredicted interpreter dispatch. */
    uint32_t dispatchMissPenalty = 18;
    /** Fraction of miss latency exposed (models OoO/MLP overlap). */
    double memOverlapFactor = 0.45;
    /**
     * Opcode-history depth available to the dispatch predictor.
     * ~2 models a switch-based interpreter (one shared indirect
     * branch); ~6 models threaded code (per-handler branches).
     */
    unsigned dispatchHistoryOps = 2;
    /** Conditional predictor flavour. */
    enum class Predictor { Bimodal, Gshare } predictor =
        Predictor::Gshare;
    /** Model caches (false = cost-model-only ablation). */
    bool modelCaches = true;
    /** Penalty cycles per L1I miss (refill from L2). */
    uint32_t l1iMissPenalty = 10;
    /** Model branch predictors (false = fixed rates ablation). */
    bool modelBranches = true;
};

/** ExecutionObserver that simulates the microarchitecture. */
class PerfModel : public vm::ExecutionObserver
{
  public:
    explicit PerfModel(PerfModelConfig config = {});

    // ExecutionObserver interface.
    void onBytecode(vm::Op op, uint32_t uops) override;
    void onCodeFetch(uint64_t addr) override;
    void onDispatch(vm::Op op) override;
    void onBranch(uint64_t site, bool taken) override;
    void onMemAccess(uint64_t addr, uint32_t size,
                     bool is_write) override;
    void onAlloc(uint64_t addr, uint32_t size) override;
    void onJitCompile(uint32_t code_id, uint64_t cost_uops) override;
    void onGuardFailure(vm::Op op) override;

    /** Current counter values (cycles computed on the fly). */
    CounterSet snapshot() const;

    /** Reset counters AND microarchitectural state (cold start). */
    void reset();

    /** Reset counters only; caches/predictors stay warm. */
    void resetCounters();

    const PerfModelConfig &config() const { return cfg; }

  private:
    PerfModelConfig cfg;
    CounterSet counters;
    double penaltyCycles = 0.0;

    std::unique_ptr<BranchPredictor> branchPred;
    DispatchPredictor dispatchPred;
    CacheHierarchy caches;
    Cache icache;
};

} // namespace uarch
} // namespace rigor

#endif // RIGOR_UARCH_PERF_MODEL_HH
