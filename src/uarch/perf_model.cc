#include "uarch/perf_model.hh"

#include <cmath>

namespace rigor {
namespace uarch {

PerfModel::PerfModel(PerfModelConfig config)
    : cfg(config), dispatchPred(12, config.dispatchHistoryOps),
      caches(CacheHierarchy::makeDefault()),
      icache({32 * 1024, 64, 8})
{
    if (cfg.predictor == PerfModelConfig::Predictor::Bimodal)
        branchPred = std::make_unique<BimodalPredictor>();
    else
        branchPred = std::make_unique<GsharePredictor>();
}

void
PerfModel::onBytecode(vm::Op op, uint32_t uops)
{
    (void)op;
    ++counters.bytecodes;
    counters.instructions += uops;
}

void
PerfModel::onCodeFetch(uint64_t addr)
{
    if (!cfg.modelCaches)
        return;
    ++counters.l1iAccesses;
    if (!icache.access(addr)) {
        ++counters.l1iMisses;
        penaltyCycles += cfg.l1iMissPenalty;
    }
}

void
PerfModel::onDispatch(vm::Op op)
{
    ++counters.dispatches;
    if (!cfg.modelBranches)
        return;
    bool correct =
        dispatchPred.predictAndUpdate(static_cast<uint16_t>(op));
    if (!correct) {
        ++counters.dispatchMisses;
        penaltyCycles += cfg.dispatchMissPenalty;
    }
}

void
PerfModel::onBranch(uint64_t site, bool taken)
{
    ++counters.branches;
    if (!cfg.modelBranches)
        return;
    if (!branchPred->predictAndUpdate(site, taken)) {
        ++counters.branchMisses;
        penaltyCycles += cfg.branchMissPenalty;
    }
}

void
PerfModel::onMemAccess(uint64_t addr, uint32_t size, bool is_write)
{
    if (is_write)
        ++counters.stores;
    else
        ++counters.loads;
    if (!cfg.modelCaches)
        return;
    // Touch every line the access spans (usually one).
    uint64_t first = addr / 64;
    uint64_t last = (addr + (size ? size - 1 : 0)) / 64;
    for (uint64_t line = first; line <= last; ++line) {
        ++counters.l1dAccesses;
        uint64_t before_l2 = caches.l2().misses();
        uint64_t before_llc = caches.llc().misses();
        uint64_t before_l1 = caches.l1().misses();
        uint32_t latency = caches.access(line * 64);
        counters.l1dMisses += caches.l1().misses() - before_l1;
        counters.l2Misses += caches.l2().misses() - before_l2;
        counters.llcMisses += caches.llc().misses() - before_llc;
        penaltyCycles += cfg.memOverlapFactor * latency;
    }
}

void
PerfModel::onAlloc(uint64_t addr, uint32_t size)
{
    ++counters.allocations;
    counters.allocatedBytes += size;
    // Allocation writes the header line (write-allocate traffic).
    onMemAccess(addr, size > 64 ? 64 : size, true);
}

void
PerfModel::onJitCompile(uint32_t code_id, uint64_t cost_uops)
{
    (void)code_id;
    // Compilation work retires like ordinary instructions; it shows
    // up as the warmup spike in per-iteration times.
    counters.instructions += cost_uops;
}

void
PerfModel::onGuardFailure(vm::Op op)
{
    (void)op;
    // Deopt path: modelled as a mispredicted branch.
    penaltyCycles += cfg.branchMissPenalty;
}

CounterSet
PerfModel::snapshot() const
{
    CounterSet out = counters;
    out.cycles = static_cast<uint64_t>(
        std::llround(static_cast<double>(counters.instructions) /
                         cfg.issueWidth +
                     penaltyCycles));
    return out;
}

void
PerfModel::reset()
{
    resetCounters();
    branchPred->reset();
    dispatchPred.reset();
    caches.reset();
    icache.reset();
}

void
PerfModel::resetCounters()
{
    counters = {};
    penaltyCycles = 0.0;
}

} // namespace uarch
} // namespace rigor
