/**
 * @file
 * Set-associative cache model with true-LRU replacement, composable
 * into a three-level hierarchy (L1D, L2, LLC).
 */

#ifndef RIGOR_UARCH_CACHE_HH
#define RIGOR_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

namespace rigor {
namespace uarch {

/** Geometry of one cache level. */
struct CacheGeometry
{
    uint32_t sizeBytes = 32 * 1024;
    uint32_t lineBytes = 64;
    uint32_t ways = 8;

    uint32_t
    numSets() const
    {
        return sizeBytes / (lineBytes * ways);
    }
};

/** One cache level; LRU replacement, write-allocate. */
class Cache
{
  public:
    explicit Cache(CacheGeometry geometry);

    /**
     * Access one line-aligned address.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Drop all cached lines. */
    void reset();

    uint64_t accesses() const { return accessCount; }
    uint64_t misses() const { return missCount; }
    const CacheGeometry &geometry() const { return geom; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    CacheGeometry geom;
    std::vector<Line> lines;   ///< sets * ways, row-major by set
    uint32_t setCount;
    uint64_t lruClock = 0;
    uint64_t accessCount = 0;
    uint64_t missCount = 0;
};

/** Latencies (cycles) of the memory hierarchy. */
struct MemoryLatencies
{
    uint32_t l1Hit = 1;     ///< folded into base uop cost
    uint32_t l2Hit = 12;
    uint32_t llcHit = 40;
    uint32_t dram = 180;
};

/**
 * Three-level data-cache hierarchy. access() walks the levels and
 * returns the modelled latency of the access.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(CacheGeometry l1, CacheGeometry l2,
                   CacheGeometry llc, MemoryLatencies lat = {});

    /** Default desktop-class geometry (32K/256K/8M). */
    static CacheHierarchy makeDefault();

    /**
     * Perform one access.
     * @return modelled latency in cycles beyond the L1-hit cost.
     */
    uint32_t access(uint64_t addr);

    /** Invalidate all levels. */
    void reset();

    const Cache &l1() const { return l1Cache; }
    const Cache &l2() const { return l2Cache; }
    const Cache &llc() const { return llcCache; }

  private:
    Cache l1Cache;
    Cache l2Cache;
    Cache llcCache;
    MemoryLatencies lat;
};

} // namespace uarch
} // namespace rigor

#endif // RIGOR_UARCH_CACHE_HH
