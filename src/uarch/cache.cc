#include "uarch/cache.hh"

#include "support/logging.hh"

namespace rigor {
namespace uarch {

Cache::Cache(CacheGeometry geometry)
    : geom(geometry)
{
    if (geom.lineBytes == 0 || (geom.lineBytes & (geom.lineBytes - 1)))
        panic("Cache: line size must be a power of two");
    if (geom.ways == 0)
        panic("Cache: need at least one way");
    setCount = geom.numSets();
    if (setCount == 0 || (setCount & (setCount - 1)))
        panic("Cache: set count must be a power of two (size %u)",
              geom.sizeBytes);
    lines.resize(static_cast<size_t>(setCount) * geom.ways);
}

bool
Cache::access(uint64_t addr)
{
    ++accessCount;
    uint64_t line_addr = addr / geom.lineBytes;
    uint32_t set = static_cast<uint32_t>(line_addr & (setCount - 1));
    uint64_t tag = line_addr >> 1;  // keep overlap with set bits; fine

    Line *base = &lines[static_cast<size_t>(set) * geom.ways];
    Line *victim = base;
    for (uint32_t w = 0; w < geom.ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lru = ++lruClock;
            return true;
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lru < victim->lru) {
            victim = &l;
        }
    }
    ++missCount;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++lruClock;
    return false;
}

void
Cache::reset()
{
    for (auto &l : lines)
        l = {};
    lruClock = 0;
    accessCount = 0;
    missCount = 0;
}

CacheHierarchy::CacheHierarchy(CacheGeometry l1, CacheGeometry l2,
                               CacheGeometry llc, MemoryLatencies lat_)
    : l1Cache(l1), l2Cache(l2), llcCache(llc), lat(lat_)
{}

CacheHierarchy
CacheHierarchy::makeDefault()
{
    CacheGeometry l1{32 * 1024, 64, 8};
    CacheGeometry l2{256 * 1024, 64, 8};
    CacheGeometry llc{8 * 1024 * 1024, 64, 16};
    return CacheHierarchy(l1, l2, llc);
}

uint32_t
CacheHierarchy::access(uint64_t addr)
{
    if (l1Cache.access(addr))
        return 0;
    if (l2Cache.access(addr))
        return lat.l2Hit;
    if (llcCache.access(addr))
        return lat.llcHit;
    return lat.dram;
}

void
CacheHierarchy::reset()
{
    l1Cache.reset();
    l2Cache.reset();
    llcCache.reset();
}

} // namespace uarch
} // namespace rigor
