/**
 * @file
 * Table 4 — three-runtime comparison: switch-dispatch interpreter
 * (CPython-like), threaded-code interpreter (computed-goto build),
 * and the adaptive JIT tier. Threaded code gives a small uniform win;
 * the JIT gives a large but workload-dependent win — and rigorous
 * intervals are needed to rank the close pairs.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Table 4: switch vs threaded interpreter vs adaptive JIT",
        "threaded code speeds every benchmark up by a modest, "
        "uniform factor (cheaper + better-predicted dispatch); the "
        "JIT's gains are larger but workload-dependent");

    Table table({"benchmark", "switch ms", "threaded ms",
                 "adaptive ms", "threaded speedup (CI)",
                 "adaptive speedup (CI)", "ranks"});

    std::vector<harness::SpeedupResult> threaded_speedups;
    std::vector<harness::SpeedupResult> jit_speedups;

    for (const auto &spec : workloads::suite()) {
        auto sw = bench::runVariant(spec.name,
                                    bench::Runtime::SwitchInterp);
        auto th = bench::runVariant(spec.name,
                                    bench::Runtime::ThreadedInterp);
        auto jit =
            bench::runVariant(spec.name, bench::Runtime::Adaptive);

        auto sw_est = harness::rigorousEstimate(sw);
        auto th_est = harness::rigorousEstimate(th);
        auto jit_est = harness::rigorousEstimate(jit);
        auto th_speedup = harness::rigorousSpeedup(sw, th);
        auto jit_speedup = harness::rigorousSpeedup(sw, jit);
        threaded_speedups.push_back(th_speedup);
        jit_speedups.push_back(jit_speedup);

        // Tie-aware ranking across all three runtimes.
        auto cmp = harness::compareRuntimes({&sw, &th, &jit});
        std::string ranks = std::to_string(cmp.rank[0]) + "/" +
            std::to_string(cmp.rank[1]) + "/" +
            std::to_string(cmp.rank[2]);

        table.addRow({
            spec.name,
            fmtDouble(sw_est.ci.estimate, 4),
            fmtDouble(th_est.ci.estimate, 4),
            fmtDouble(jit_est.ci.estimate, 4),
            harness::formatCi(th_speedup.ci, 2),
            harness::formatCi(jit_speedup.ci, 2),
            ranks,
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("ranks column: switch/threaded/adaptive; equal "
                "numbers are statistical ties at 95%%.\n\n");

    auto th_geo = harness::geomeanSpeedup(threaded_speedups);
    auto jit_geo = harness::geomeanSpeedup(jit_speedups);
    std::printf("geomean: threaded %s, adaptive %s\n",
                harness::formatCi(th_geo, 2).c_str(),
                harness::formatCi(jit_geo, 2).c_str());
    return 0;
}
