/**
 * @file
 * Figure 5 — microarchitectural characterization: IPC, branch MPKI
 * (including interpreter-dispatch mispredictions) and cache MPKI per
 * benchmark and tier. The adaptive tier eliminates dispatch
 * mispredictions and raises IPC across the board.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "stats/descriptive.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Figure 5: microarchitectural characterization",
        "the interpreter wastes *instructions*, not cycles-per-"
        "instruction: its IPC is decent because dispatch loops are "
        "predictable, while JIT-compiled code executes far fewer "
        "instructions at lower IPC (it is memory-bound) — so MPKI "
        "metrics must be normalized carefully when comparing tiers");

    Table table({"benchmark", "tier", "IPC", "branch MPKI",
                 "dispatch miss %", "L1I MPKI", "L1D MPKI",
                 "L2 MPKI", "LLC MPKI"});

    std::vector<double> interp_ipc, jit_ipc;
    for (const auto &spec : workloads::suite()) {
        for (vm::Tier tier :
             {vm::Tier::Interp, vm::Tier::Adaptive}) {
            harness::RunnerConfig cfg = bench::defaultConfig(tier);
            cfg.invocations = 2;
            cfg.iterations = 12;
            harness::RunResult run =
                harness::runExperiment(spec, cfg);
            // Steady-state counters only: drop each invocation's
            // warmup iterations.
            auto summary = harness::analyzeSteadyState(run);
            uarch::CounterSet total;
            for (size_t i = 0; i < run.invocations.size(); ++i) {
                const auto &ss = summary.perInvocation[i];
                size_t start =
                    ss.hasSteadyState() ? ss.steadyStart : 0;
                const auto &samples = run.invocations[i].samples;
                for (size_t j = start; j < samples.size(); ++j)
                    total.add(samples[j].counters);
            }
            double dispatch_miss_pct = total.dispatches
                ? 100.0 * static_cast<double>(total.dispatchMisses) /
                    static_cast<double>(total.dispatches)
                : 0.0;
            table.addRow({
                spec.name,
                vm::tierName(tier),
                fmtDouble(total.ipc(), 2),
                fmtDouble(total.branchMpki(), 2),
                fmtDouble(dispatch_miss_pct, 1),
                fmtDouble(total.l1iMpki(), 2),
                fmtDouble(total.l1dMpki(), 2),
                fmtDouble(total.l2Mpki(), 3),
                fmtDouble(total.llcMpki(), 3),
            });
            (tier == vm::Tier::Interp ? interp_ipc : jit_ipc)
                .push_back(total.ipc());
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("mean IPC: interp %.2f, adaptive %.2f\n",
                stats::mean(interp_ipc), stats::mean(jit_ipc));
    return 0;
}
