/**
 * @file
 * Figure 7 — measurement-budget allocation: with a fixed total budget
 * of (invocations x iterations) measurements, how should it be split?
 * Because between-invocation variance dominates, many invocations
 * with few iterations each yield tighter *valid* intervals than few
 * invocations with many iterations.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Figure 7: CI half-width under a fixed measurement budget",
        "for a fixed budget of total iterations, splitting it into "
        "more invocations always beats more iterations per "
        "invocation once invocation-level variance exists");

    const int budget = 96;  // total iterations to spend
    struct Split
    {
        int invocations;
        int iterations;
    };
    const std::vector<Split> splits = {
        {3, 32}, {4, 24}, {6, 16}, {8, 12}, {12, 8}, {16, 6},
        {24, 4}, {32, 3},
    };

    for (const auto &name : {std::string("sieve"),
                             std::string("richards")}) {
        std::printf("%s (budget = %d total iterations):\n",
                    name.c_str(), budget);
        Table table({"invocations x iterations",
                     "rel 95% CI half-width %",
                     "estimate (ms)"});
        for (const auto &split : splits) {
            harness::RunnerConfig cfg =
                bench::defaultConfig(vm::Tier::Interp);
            cfg.invocations = split.invocations;
            cfg.iterations = split.iterations;
            harness::RunResult run =
                harness::runExperiment(name, cfg);
            auto est = harness::rigorousEstimate(run);
            table.addRow({
                std::to_string(split.invocations) + " x " +
                    std::to_string(split.iterations),
                fmtDouble(100.0 * est.ci.relativeHalfWidth(), 3),
                fmtDouble(est.ci.estimate, 4),
            });
        }
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
