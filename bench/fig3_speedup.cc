/**
 * @file
 * Figure 3 — adaptive-over-interpreter speedups with 95% confidence
 * intervals per benchmark, plus the suite geometric mean. Numeric
 * loop kernels gain the most; OO/string workloads gain least.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Figure 3: JIT-over-interpreter speedup with 95% CIs",
        "speedups range from ~1.5x (OO, string) to ~10x (numeric "
        "loops); every benchmark's interval excludes 1.0");

    struct Row
    {
        std::string name;
        std::string category;
        harness::SpeedupResult speedup;
    };
    std::vector<Row> rows;
    std::vector<harness::SpeedupResult> speedups;

    for (const auto &spec : workloads::suite()) {
        harness::RunResult interp =
            bench::runTier(spec.name, vm::Tier::Interp);
        harness::RunResult jit =
            bench::runTier(spec.name, vm::Tier::Adaptive);
        auto s = harness::rigorousSpeedup(interp, jit);
        rows.push_back(
            {spec.name, workloads::categoryName(spec.category), s});
        speedups.push_back(s);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.speedup.ci.estimate >
                      b.speedup.ci.estimate;
              });

    Table table({"benchmark", "category", "speedup (95% CI)",
                 "significant"});
    for (const auto &r : rows) {
        table.addRow({r.name, r.category,
                      harness::formatCi(r.speedup.ci, 2),
                      r.speedup.significant ? "yes" : "no"});
    }
    std::printf("%s\n", table.render().c_str());

    auto geo = harness::geomeanSpeedup(speedups);
    std::printf("suite geometric-mean speedup: %s\n\n",
                harness::formatCi(geo, 2).c_str());

    // Bar rendering of the point estimates.
    double max_speedup = rows.front().speedup.ci.estimate;
    for (const auto &r : rows) {
        int width = static_cast<int>(r.speedup.ci.estimate /
                                     max_speedup * 50.0);
        std::printf("  %-14s %s %.2fx\n", r.name.c_str(),
                    repeat('#', static_cast<size_t>(
                                    std::max(width, 1)))
                        .c_str(),
                    r.speedup.ci.estimate);
    }
    return 0;
}
