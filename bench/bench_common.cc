#include "bench/bench_common.hh"

#include <cstdio>

namespace rigor {
namespace bench {

harness::RunnerConfig
defaultConfig(vm::Tier tier)
{
    harness::RunnerConfig cfg;
    cfg.invocations = 6;
    cfg.iterations = 15;
    cfg.tier = tier;
    cfg.jitThreshold = 4000;
    cfg.seed = 0x5eed;
    return cfg;
}

harness::RunResult
runTier(const std::string &workload, vm::Tier tier)
{
    return harness::runExperiment(workload, defaultConfig(tier));
}

const char *
runtimeName(Runtime r)
{
    switch (r) {
      case Runtime::SwitchInterp: return "switch-interp";
      case Runtime::ThreadedInterp: return "threaded-interp";
      case Runtime::Adaptive: return "adaptive-jit";
    }
    return "?";
}

harness::RunnerConfig
variantConfig(Runtime r)
{
    harness::RunnerConfig cfg = defaultConfig(vm::Tier::Interp);
    switch (r) {
      case Runtime::SwitchInterp:
        cfg.dispatchUops = 6;
        cfg.uarch.dispatchHistoryOps = 2;
        break;
      case Runtime::ThreadedInterp:
        // Computed goto: cheaper dispatch and per-handler indirect
        // branches (deeper usable history).
        cfg.dispatchUops = 4;
        cfg.uarch.dispatchHistoryOps = 6;
        break;
      case Runtime::Adaptive:
        cfg.tier = vm::Tier::Adaptive;
        break;
    }
    return cfg;
}

harness::RunResult
runVariant(const std::string &workload, Runtime r)
{
    return harness::runExperiment(workload, variantConfig(r));
}

const std::vector<std::string> &
figureWorkloads()
{
    static const std::vector<std::string> subset = {
        "richards", "nbody", "sieve", "hashtable",
    };
    return subset;
}

const std::vector<std::string> &
mixGroups()
{
    static const std::vector<std::string> groups = {
        "load/store-fast", "const", "arith", "compare", "branch",
        "call/ret", "attr", "subscript", "global/name", "build/alloc",
        "iter", "other",
    };
    return groups;
}

namespace {

int
groupOf(vm::Op op)
{
    using vm::Op;
    switch (op) {
      case Op::LoadFast:
      case Op::StoreFast:
        return 0;
      case Op::LoadConst:
        return 1;
      case Op::BinaryAdd:
      case Op::BinarySub:
      case Op::BinaryMul:
      case Op::BinaryDiv:
      case Op::BinaryFloorDiv:
      case Op::BinaryMod:
      case Op::BinaryPow:
      case Op::BinaryAnd:
      case Op::BinaryOr:
      case Op::BinaryXor:
      case Op::BinaryLshift:
      case Op::BinaryRshift:
      case Op::UnaryNeg:
      case Op::UnaryNot:
      case Op::AddIntInt:
      case Op::SubIntInt:
      case Op::MulIntInt:
      case Op::AddFloatFloat:
      case Op::SubFloatFloat:
      case Op::MulFloatFloat:
        return 2;
      case Op::CompareEq:
      case Op::CompareNe:
      case Op::CompareLt:
      case Op::CompareLe:
      case Op::CompareGt:
      case Op::CompareGe:
      case Op::CompareIn:
      case Op::CompareNotIn:
      case Op::CompareLtIntInt:
      case Op::CompareLeIntInt:
      case Op::CompareGtIntInt:
      case Op::CompareGeIntInt:
      case Op::CompareEqIntInt:
        return 3;
      case Op::Jump:
      case Op::PopJumpIfFalse:
      case Op::PopJumpIfTrue:
      case Op::JumpIfFalseOrPop:
      case Op::JumpIfTrueOrPop:
        return 4;
      case Op::Call:
      case Op::Return:
        return 5;
      case Op::LoadAttr:
      case Op::StoreAttr:
      case Op::LoadAttrCached:
        return 6;
      case Op::LoadSubscr:
      case Op::StoreSubscr:
      case Op::DeleteSubscr:
        return 7;
      case Op::LoadGlobal:
      case Op::StoreGlobal:
      case Op::LoadName:
      case Op::StoreName:
      case Op::LoadGlobalCached:
        return 8;
      case Op::BuildList:
      case Op::BuildTuple:
      case Op::BuildDict:
      case Op::BuildSlice:
      case Op::MakeFunction:
      case Op::MakeClass:
        return 9;
      case Op::GetIter:
      case Op::ForIter:
      case Op::ForIterRange:
        return 10;
      default:
        return 11;
    }
}

} // namespace

std::vector<double>
mixFractions(const std::vector<uint64_t> &op_mix)
{
    std::vector<double> groups(mixGroups().size(), 0.0);
    uint64_t total = 0;
    for (size_t i = 0; i < op_mix.size(); ++i) {
        groups[static_cast<size_t>(
            groupOf(static_cast<vm::Op>(i)))] +=
            static_cast<double>(op_mix[i]);
        total += op_mix[i];
    }
    if (total) {
        for (auto &g : groups)
            g /= static_cast<double>(total);
    }
    return groups;
}

void
printHeader(const std::string &experiment_id, const std::string &claim)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", experiment_id.c_str());
    std::printf("Reconstructed claim: %s\n", claim.c_str());
    std::printf("==============================================="
                "=====================\n\n");
}

} // namespace bench
} // namespace rigor
