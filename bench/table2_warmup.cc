/**
 * @file
 * Table 2 — steady-state detection per benchmark and tier: series
 * classification counts, mean/max warmup iterations and the warmup
 * overhead (how much slower warmup iterations are than steady state).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "stats/descriptive.hh"

using namespace rigor;

namespace {

/** Mean time of the pre-steady iterations over the steady mean. */
double
warmupOverhead(const harness::RunResult &run,
               const harness::SteadyStateSummary &summary)
{
    double warm_sum = 0.0, steady_sum = 0.0;
    size_t warm_n = 0, steady_n = 0;
    for (size_t i = 0; i < run.invocations.size(); ++i) {
        const auto &ss = summary.perInvocation[i];
        auto times = run.invocations[i].times();
        if (!ss.hasSteadyState())
            continue;
        for (size_t j = 0; j < times.size(); ++j) {
            if (j < ss.steadyStart) {
                warm_sum += times[j];
                ++warm_n;
            } else {
                steady_sum += times[j];
                ++steady_n;
            }
        }
    }
    if (!warm_n || !steady_n)
        return 1.0;
    return (warm_sum / static_cast<double>(warm_n)) /
        (steady_sum / static_cast<double>(steady_n));
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 2: per-benchmark steady-state detection",
        "the interpreter tier is flat from iteration 0 while the "
        "adaptive (JIT) tier needs several warmup iterations; a "
        "fixed warmup cutoff would be wrong in both directions");

    Table table({"benchmark", "tier", "flat", "warmup", "slow",
                 "none", "mean warmup iters", "warmup overhead"});

    for (const auto &spec : workloads::suite()) {
        for (vm::Tier tier :
             {vm::Tier::Interp, vm::Tier::Adaptive}) {
            harness::RunResult run =
                bench::runTier(spec.name, tier);
            auto summary = harness::analyzeSteadyState(run);
            table.addRow({
                spec.name,
                vm::tierName(tier),
                std::to_string(summary.flat),
                std::to_string(summary.warmup),
                std::to_string(summary.slowdown),
                std::to_string(summary.noSteadyState),
                fmtDouble(summary.meanSteadyStart, 1),
                fmtDouble(warmupOverhead(run, summary), 2) + "x",
            });
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
