/**
 * @file
 * Figure 6 — experiment planning: how the 95% CI half-width of the
 * rigorous estimator shrinks with the number of VM invocations, and
 * the invocation budget needed to reach 1%/2%/5% relative precision.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

namespace {

/** Rigorous CI using only the first `n` invocations. */
stats::ConfidenceInterval
ciWithInvocations(const harness::RunResult &full, size_t n)
{
    harness::RunResult subset;
    subset.workload = full.workload;
    subset.tier = full.tier;
    subset.size = full.size;
    subset.invocations.assign(full.invocations.begin(),
                              full.invocations.begin() +
                                  static_cast<ptrdiff_t>(n));
    return harness::rigorousEstimate(subset).ci;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 6: CI half-width vs number of VM invocations",
        "precision improves roughly as 1/sqrt(invocations); a 1% "
        "relative half-width needs an order of magnitude more "
        "invocations than 5%");

    const std::vector<size_t> budgets = {2, 3, 4, 6, 8, 12, 16, 24};

    for (const auto &name : bench::figureWorkloads()) {
        harness::RunnerConfig cfg =
            bench::defaultConfig(vm::Tier::Interp);
        cfg.invocations = 24;
        cfg.iterations = 15;
        harness::RunResult run = harness::runExperiment(name, cfg);

        std::printf("%s: relative 95%% CI half-width by invocation "
                    "budget\n",
                    name.c_str());
        Table table({"invocations", "rel half-width %"});
        std::vector<double> widths;
        for (size_t n : budgets) {
            auto ci = ciWithInvocations(run, n);
            double rel = 100.0 * ci.relativeHalfWidth();
            widths.push_back(rel);
            table.addRow(
                {std::to_string(n), fmtDouble(rel, 3)});
        }
        std::printf("%s", table.render().c_str());
        std::printf("  trend: %s\n\n",
                    harness::sparkline(widths, 32).c_str());

        // Required invocations for common precision targets, from
        // the 24-invocation pilot.
        auto est = harness::rigorousEstimate(run);
        std::printf("  required invocations (normal approx): ");
        for (double target : {0.05, 0.02, 0.01}) {
            size_t need = stats::requiredSampleSize(
                est.invocationMeans, target);
            std::printf("%.0f%% -> %zu   ", 100.0 * target, need);
        }
        std::printf("\n\n");
    }
    return 0;
}
