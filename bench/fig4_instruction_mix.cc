/**
 * @file
 * Figure 4 — dynamic bytecode mix per benchmark (interpreter tier):
 * the fraction of executed bytecodes per operation group. OO
 * workloads are attr/call heavy, numeric workloads arith/branch
 * heavy, data workloads subscript/global heavy.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Figure 4: dynamic instruction (bytecode) mix",
        "instruction mix varies strongly with workload category, "
        "motivating a suite that covers all of them");

    std::vector<std::string> headers = {"benchmark"};
    for (const auto &g : bench::mixGroups())
        headers.push_back(g + " %");
    Table table(std::move(headers));

    for (const auto &spec : workloads::suite()) {
        harness::RunnerConfig cfg =
            bench::defaultConfig(vm::Tier::Interp);
        cfg.invocations = 1;
        cfg.iterations = 4;
        harness::RunResult run = harness::runExperiment(spec, cfg);
        auto fractions = bench::mixFractions(run.opMix());
        std::vector<std::string> row = {spec.name};
        for (double f : fractions)
            row.push_back(fmtDouble(100.0 * f, 1));
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
