/**
 * @file
 * Figure 1 — per-iteration run-time traces: the adaptive tier shows a
 * slow first iteration plus compile-time spikes before settling; the
 * interpreter tier is flat apart from measurement noise.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Figure 1: per-iteration run-time traces (first invocation)",
        "JIT warmup curves start high and settle after compilation; "
        "the interpreter is flat from iteration 0");

    for (const auto &name : bench::figureWorkloads()) {
        for (vm::Tier tier :
             {vm::Tier::Interp, vm::Tier::Adaptive}) {
            harness::RunnerConfig cfg = bench::defaultConfig(tier);
            cfg.invocations = 1;
            cfg.iterations = 40;
            harness::RunResult run =
                harness::runExperiment(name, cfg);
            auto times = run.invocations[0].times();
            std::printf("%s / %s  (ms per iteration)\n",
                        name.c_str(), vm::tierName(tier));
            std::printf("%s\n",
                        harness::asciiSeries(times, 7, 70).c_str());
        }
    }

    std::printf("CSV series for external plotting:\n\n");
    for (const auto &name : bench::figureWorkloads()) {
        harness::RunnerConfig cfg =
            bench::defaultConfig(vm::Tier::Adaptive);
        cfg.invocations = 2;
        cfg.iterations = 40;
        harness::RunResult run = harness::runExperiment(name, cfg);
        harness::writeSeriesCsv(std::cout, run);
    }
    return 0;
}
