/**
 * @file
 * Figure 2 — variance decomposition per benchmark: between-invocation
 * vs within-invocation coefficient of variation over steady-state
 * iterations, and the intraclass correlation. High ICC is exactly the
 * condition under which pooled analyses are invalid.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Figure 2: variance decomposition (steady state)",
        "between-invocation variance dominates within-invocation "
        "variance, so iterations within one invocation must not be "
        "treated as independent samples");

    Table table({"benchmark", "tier", "between CoV %", "within CoV %",
                 "intraclass corr"});
    for (const auto &spec : workloads::suite()) {
        for (vm::Tier tier :
             {vm::Tier::Interp, vm::Tier::Adaptive}) {
            harness::RunResult run =
                bench::runTier(spec.name, tier);
            auto vc = harness::varianceDecomposition(run);
            table.addRow({
                spec.name,
                vm::tierName(tier),
                fmtDouble(100.0 * vc.betweenCoV, 2),
                fmtDouble(100.0 * vc.withinCoV, 2),
                fmtDouble(vc.intraclassCorrelation(), 2),
            });
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
