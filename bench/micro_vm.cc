/**
 * @file
 * Google-benchmark microbenchmarks of framework primitives: VM
 * dispatch rate on both tiers, dict operations, compile time, the
 * statistics kernels, and the cache/branch models. These guard
 * against performance regressions in the framework itself.
 */

#include <benchmark/benchmark.h>

#include "stats/ci.hh"
#include "stats/descriptive.hh"
#include "stats/steady_state.hh"
#include "support/rng.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "vm/compiler.hh"
#include "vm/interp.hh"

using namespace rigor;

namespace {

const char *kLoopSource =
    "def run(n):\n"
    "    total = 0\n"
    "    i = 0\n"
    "    while i < n:\n"
    "        total += i * 3 % 7\n"
    "        i += 1\n"
    "    return total\n";

void
BM_InterpLoop(benchmark::State &state)
{
    vm::Program prog = vm::compileSource(kLoopSource);
    vm::InterpConfig cfg;
    cfg.tier = vm::Tier::Interp;
    vm::Interp interp(prog, cfg);
    interp.runModule();
    for (auto _ : state) {
        benchmark::DoNotOptimize(interp.callGlobal(
            "run", {vm::Value::makeInt(state.range(0))}));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InterpLoop)->Arg(1000)->Arg(10000);

void
BM_AdaptiveLoop(benchmark::State &state)
{
    vm::Program prog = vm::compileSource(kLoopSource);
    vm::InterpConfig cfg;
    cfg.tier = vm::Tier::Adaptive;
    cfg.jitThreshold = 100;
    vm::Interp interp(prog, cfg);
    interp.runModule();
    for (auto _ : state) {
        benchmark::DoNotOptimize(interp.callGlobal(
            "run", {vm::Value::makeInt(state.range(0))}));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AdaptiveLoop)->Arg(1000)->Arg(10000);

void
BM_Compile(benchmark::State &state)
{
    std::string source;
    for (int i = 0; i < state.range(0); ++i) {
        source += "def f" + std::to_string(i) + "(x):\n"
                  "    return x * " + std::to_string(i) + " + 1\n";
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(vm::compileSource(source));
}
BENCHMARK(BM_Compile)->Arg(10)->Arg(100);

void
BM_DictSetGet(benchmark::State &state)
{
    vm::Program prog = vm::compileSource(
        "def run(n):\n"
        "    d = {}\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        d[i] = i\n"
        "        i += 1\n"
        "    return len(d)\n");
    vm::Interp interp(prog, {});
    interp.runModule();
    for (auto _ : state) {
        benchmark::DoNotOptimize(interp.callGlobal(
            "run", {vm::Value::makeInt(state.range(0))}));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DictSetGet)->Arg(1000);

void
BM_TInterval(benchmark::State &state)
{
    Rng rng(1);
    std::vector<double> xs;
    for (int i = 0; i < state.range(0); ++i)
        xs.push_back(rng.nextGaussian(10.0, 1.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::tInterval(xs));
}
BENCHMARK(BM_TInterval)->Arg(30)->Arg(1000);

void
BM_Bootstrap(benchmark::State &state)
{
    Rng rng(2);
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i)
        xs.push_back(rng.nextGaussian(10.0, 1.0));
    Rng boot(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::bootstrapInterval(
            xs,
            [](const std::vector<double> &v) {
                return stats::median(v);
            },
            boot, 0.95, static_cast<int>(state.range(0))));
    }
}
BENCHMARK(BM_Bootstrap)->Arg(200)->Arg(1000);

void
BM_HierarchicalRatio(benchmark::State &state)
{
    // Two-level samples shaped like a real run: 8 invocations of 20
    // iterations each, mild between-invocation drift.
    Rng rng(7);
    std::vector<std::vector<double>> numer, denom;
    for (int inv = 0; inv < 8; ++inv) {
        std::vector<double> a, b;
        double shift = 0.05 * inv;
        for (int it = 0; it < 20; ++it) {
            a.push_back(rng.nextGaussian(12.0 + shift, 0.4));
            b.push_back(rng.nextGaussian(10.0 + shift, 0.4));
        }
        numer.push_back(std::move(a));
        denom.push_back(std::move(b));
    }
    Rng boot(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stats::hierarchicalRatioInterval(
            numer, denom, boot, 0.95,
            static_cast<int>(state.range(0))));
    }
}
BENCHMARK(BM_HierarchicalRatio)->Arg(200)->Arg(2000);

void
BM_SteadyStateDetect(benchmark::State &state)
{
    Rng rng(4);
    std::vector<double> xs;
    for (int i = 0; i < state.range(0); ++i)
        xs.push_back(rng.nextGaussian(i < 20 ? 20.0 : 10.0, 0.3));
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::detectSteadyState(xs));
}
BENCHMARK(BM_SteadyStateDetect)->Arg(100)->Arg(1000);

void
BM_CacheAccess(benchmark::State &state)
{
    auto h = uarch::CacheHierarchy::makeDefault();
    Rng rng(5);
    uint64_t addr = 0;
    for (auto _ : state) {
        addr = rng.nextBounded(1 << 22);
        benchmark::DoNotOptimize(h.access(addr));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_GsharePredict(benchmark::State &state)
{
    uarch::GsharePredictor g;
    Rng rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            g.predictAndUpdate(rng.nextBounded(256),
                               rng.nextBernoulli(0.7)));
    }
}
BENCHMARK(BM_GsharePredict);

} // namespace

BENCHMARK_MAIN();
