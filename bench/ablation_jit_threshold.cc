/**
 * @file
 * Ablation — JIT hot-threshold sensitivity: lower thresholds compile
 * earlier (shorter warmup, earlier compile-pause spike) but risk
 * compiling cold code; higher thresholds delay or forgo steady-state
 * speedups within a finite iteration budget. Quantifies design
 * decision 3 in DESIGN.md (two-tier runtime, shared bytecode).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Ablation: JIT hot-threshold sensitivity",
        "mean warmup iterations grow with the threshold; measured "
        "steady-state speedup is stable once compilation happens at "
        "all, and collapses to ~1x when the threshold exceeds the "
        "work an invocation performs");

    Table table({"threshold", "workload", "mean warmup iters",
                 "speedup vs interp", "jit compiles/invocation"});

    harness::RunnerConfig interp_cfg =
        bench::defaultConfig(vm::Tier::Interp);
    interp_cfg.iterations = 25;

    for (const auto &name : bench::figureWorkloads()) {
        harness::RunResult interp =
            harness::runExperiment(name, interp_cfg);
        for (int threshold :
             {200, 2000, 20000, 200000, 20000000}) {
            harness::RunnerConfig cfg =
                bench::defaultConfig(vm::Tier::Adaptive);
            cfg.iterations = 25;
            cfg.jitThreshold = threshold;
            harness::RunResult jit =
                harness::runExperiment(name, cfg);
            auto summary = harness::analyzeSteadyState(jit);
            auto speedup = harness::rigorousSpeedup(interp, jit);
            double compiles = 0.0;
            for (const auto &inv : jit.invocations)
                compiles += static_cast<double>(
                    inv.vmStats.jitCompiles);
            compiles /= static_cast<double>(jit.invocations.size());
            table.addRow({
                std::to_string(threshold),
                name,
                fmtDouble(summary.meanSteadyStart, 1),
                fmtDouble(speedup.ci.estimate, 2) + "x",
                fmtDouble(compiles, 1),
            });
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
