/**
 * @file
 * Shared configuration and helpers for the table/figure regeneration
 * binaries. Every binary prints the rows/series of one reconstructed
 * experiment from EXPERIMENTS.md.
 */

#ifndef RIGOR_BENCH_BENCH_COMMON_HH
#define RIGOR_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/str.hh"
#include "support/table.hh"

namespace rigor {
namespace bench {

/** Default experiment design used by the regeneration binaries. */
harness::RunnerConfig defaultConfig(vm::Tier tier);

/** Run one workload on one tier with the default design. */
harness::RunResult runTier(const std::string &workload, vm::Tier tier);

/** Runtime variants compared by the multi-runtime experiments. */
enum class Runtime
{
    SwitchInterp,    ///< switch-dispatch interpreter (CPython-like)
    ThreadedInterp,  ///< computed-goto interpreter
    Adaptive,        ///< hot-loop quickening tier (PyPy-like)
};

/** Display name of a Runtime. */
const char *runtimeName(Runtime r);

/** Default design configured for a runtime variant. */
harness::RunnerConfig variantConfig(Runtime r);

/** Run one workload under a runtime variant. */
harness::RunResult runVariant(const std::string &workload, Runtime r);

/** Workload subset used by the series "figures" (keeps runs short). */
const std::vector<std::string> &figureWorkloads();

/** Instruction-mix group labels, in display order. */
const std::vector<std::string> &mixGroups();

/** Fraction of dynamic bytecodes per mix group (sums to 1). */
std::vector<double> mixFractions(const std::vector<uint64_t> &op_mix);

/** Print a standard experiment header. */
void printHeader(const std::string &experiment_id,
                 const std::string &claim);

} // namespace bench
} // namespace rigor

#endif // RIGOR_BENCH_BENCH_COMMON_HH
