/**
 * @file
 * Ablation — microarchitecture-model components: how speedup
 * estimates change when the cache model or the branch/dispatch
 * predictor model is disabled, and bimodal vs gshare prediction.
 * Quantifies design decision 1 in DESIGN.md.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace rigor;

namespace {

harness::SpeedupResult
speedupWith(const std::string &workload,
            const uarch::PerfModelConfig &ucfg)
{
    harness::RunnerConfig base =
        bench::defaultConfig(vm::Tier::Interp);
    base.invocations = 4;
    base.iterations = 15;
    base.uarch = ucfg;
    harness::RunnerConfig jit = base;
    jit.tier = vm::Tier::Adaptive;
    harness::RunResult interp =
        harness::runExperiment(workload, base);
    harness::RunResult opt = harness::runExperiment(workload, jit);
    return harness::rigorousSpeedup(interp, opt);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: cost model components",
        "the tier ranking is stable across model ablations, but "
        "absolute speedups shift when branch/dispatch modelling is "
        "removed — interpreters lose their main penalty");

    struct Variant
    {
        const char *name;
        uarch::PerfModelConfig cfg;
    };
    std::vector<Variant> variants;
    {
        Variant full{"full model (gshare)", {}};
        variants.push_back(full);

        Variant bimodal{"bimodal predictor", {}};
        bimodal.cfg.predictor =
            uarch::PerfModelConfig::Predictor::Bimodal;
        variants.push_back(bimodal);

        Variant nocache{"no cache model", {}};
        nocache.cfg.modelCaches = false;
        variants.push_back(nocache);

        Variant nobranch{"no branch model", {}};
        nobranch.cfg.modelBranches = false;
        variants.push_back(nobranch);

        Variant costonly{"cost-model only", {}};
        costonly.cfg.modelCaches = false;
        costonly.cfg.modelBranches = false;
        variants.push_back(costonly);
    }

    std::vector<std::string> headers = {"variant"};
    for (const auto &name : bench::figureWorkloads())
        headers.push_back(name);
    Table table(std::move(headers));

    for (const auto &v : variants) {
        std::vector<std::string> row = {v.name};
        for (const auto &name : bench::figureWorkloads()) {
            auto s = speedupWith(name, v.cfg);
            row.push_back(fmtDouble(s.ci.estimate, 2) + "x");
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
