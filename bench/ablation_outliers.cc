/**
 * @file
 * Ablation — estimator robustness under spike noise: as the spike
 * probability of the noise model grows (daemon wakeups, SMIs), the
 * mean-based estimate drifts upward while median-based bootstrap
 * estimates stay put; Tukey filtering recovers most of the drift.
 * Quantifies why the methodology reports spikes instead of silently
 * averaging them.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "stats/descriptive.hh"

using namespace rigor;

namespace {

double
meanOfSteadyMeans(const harness::RunResult &run)
{
    return harness::rigorousEstimate(run).ci.estimate;
}

/** Rigorous estimate with Tukey outliers removed per invocation. */
double
tukeyFilteredEstimate(const harness::RunResult &run)
{
    std::vector<double> inv_means;
    for (const auto &inv : run.invocations) {
        std::vector<double> times = inv.times();
        auto outliers = stats::tukeyOutliers(times, 3.0);
        // Remove from the back so indices stay valid.
        for (auto it = outliers.rbegin(); it != outliers.rend(); ++it)
            times.erase(times.begin() + static_cast<ptrdiff_t>(*it));
        if (times.empty())
            times = inv.times();
        inv_means.push_back(stats::mean(times));
    }
    return stats::mean(inv_means);
}

/** Median-of-invocation-medians estimate. */
double
medianEstimate(const harness::RunResult &run)
{
    std::vector<double> inv_medians;
    for (const auto &inv : run.invocations)
        inv_medians.push_back(stats::median(inv.times()));
    return stats::median(inv_medians);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: estimator robustness vs spike noise",
        "mean estimates inflate linearly with spike rate; median and "
        "Tukey-filtered estimates stay within ~1% of the clean value");

    const std::string workload = "sieve";

    // Clean baseline (no spikes).
    harness::RunnerConfig clean =
        bench::defaultConfig(vm::Tier::Interp);
    clean.invocations = 8;
    clean.noise.spikeProbability = 0.0;
    harness::RunResult clean_run =
        harness::runExperiment(workload, clean);
    double truth = meanOfSteadyMeans(clean_run);

    Table table({"spike prob", "mean est drift %",
                 "tukey-filtered drift %", "median drift %"});
    for (double p : {0.0, 0.02, 0.05, 0.10, 0.20}) {
        harness::RunnerConfig cfg = clean;
        cfg.noise.spikeProbability = p;
        cfg.noise.spikeScale = 0.5;
        harness::RunResult run =
            harness::runExperiment(workload, cfg);
        auto drift = [&](double est) {
            return fmtDouble(100.0 * (est / truth - 1.0), 2);
        };
        table.addRow({
            fmtDouble(p, 2),
            drift(meanOfSteadyMeans(run)),
            drift(tukeyFilteredEstimate(run)),
            drift(medianEstimate(run)),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
