/**
 * @file
 * Table 1 — benchmark-suite characterization: category, static code
 * size, dynamic bytecodes per iteration, allocation rate and dict
 * pressure for every workload.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "vm/compiler.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Table 1: Python benchmark suite characterization",
        "the suite spans OO, numeric, string and data-structure "
        "behaviour with a wide range of dynamic footprints");

    Table table({"benchmark", "category", "static bc",
                 "dyn bytecodes/iter", "allocs/iter",
                 "dict lookups/iter", "calls/iter"});

    for (const auto &spec : workloads::suite()) {
        vm::Program prog =
            vm::compileSource(spec.source, spec.name);
        size_t static_bc = prog.module->totalInstrs();

        harness::RunnerConfig cfg =
            bench::defaultConfig(vm::Tier::Interp);
        cfg.invocations = 1;
        cfg.iterations = 3;
        harness::RunResult run =
            harness::runExperiment(spec, cfg);

        const auto &stats = run.invocations[0].vmStats;
        double iters = 3.0;
        table.addRow({
            spec.name,
            workloads::categoryName(spec.category),
            std::to_string(static_bc),
            fmtCount(static_cast<uint64_t>(
                static_cast<double>(stats.bytecodes) / iters)),
            fmtCount(static_cast<uint64_t>(
                static_cast<double>(stats.allocations) / iters)),
            fmtCount(static_cast<uint64_t>(
                static_cast<double>(stats.dictLookups) / iters)),
            fmtCount(static_cast<uint64_t>(
                static_cast<double>(stats.calls) / iters)),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
