/**
 * @file
 * Table 3 — methodology comparison: the adaptive-over-interpreter
 * speedup each methodology reports per benchmark, the error relative
 * to the rigorous estimate, and the number of benchmarks on which a
 * naive methodology reaches a *different conclusion* (flips which
 * tier wins, or misses/mints significance).
 */

#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_common.hh"

using namespace rigor;

int
main()
{
    bench::printHeader(
        "Table 3: speedup under rigorous vs naive methodologies",
        "naive single-run / first-iteration / best-of schemes "
        "misestimate speedups by large factors and flip conclusions "
        "on several benchmarks");

    std::vector<std::string> headers = {"benchmark"};
    for (auto m : harness::allMethodologies())
        headers.push_back(harness::methodologyName(m));
    Table table(std::move(headers));

    std::map<harness::Methodology, double> max_rel_err;
    std::map<harness::Methodology, int> flips;
    std::vector<harness::SpeedupResult> rigorous_speedups;

    for (const auto &spec : workloads::suite()) {
        harness::RunResult interp =
            bench::runTier(spec.name, vm::Tier::Interp);
        harness::RunResult jit =
            bench::runTier(spec.name, vm::Tier::Adaptive);

        auto rigorous = harness::rigorousSpeedup(interp, jit);
        rigorous_speedups.push_back(rigorous);

        std::vector<std::string> row = {spec.name};
        for (auto m : harness::allMethodologies()) {
            double s;
            if (m == harness::Methodology::RigorousMeanOfMeans) {
                s = rigorous.ci.estimate;
                row.push_back(harness::formatCi(rigorous.ci, 2));
            } else {
                s = harness::naiveSpeedup(interp, jit, m);
                row.push_back(fmtDouble(s, 2));
                double rel =
                    std::fabs(s / rigorous.ci.estimate - 1.0);
                max_rel_err[m] = std::max(max_rel_err[m], rel);
                bool naive_says_faster = s > 1.0;
                bool rigorous_says_faster =
                    rigorous.significant &&
                    rigorous.ci.estimate > 1.0;
                if (naive_says_faster != rigorous_says_faster)
                    ++flips[m];
            }
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());

    auto geo = harness::geomeanSpeedup(rigorous_speedups);
    std::printf("suite geomean speedup (rigorous): %s\n\n",
                harness::formatCi(geo, 2).c_str());

    Table errs({"methodology", "max |rel err| vs rigorous",
                "conclusion flips (of " +
                std::to_string(workloads::suite().size()) + ")"});
    for (auto m : harness::allMethodologies()) {
        if (m == harness::Methodology::RigorousMeanOfMeans)
            continue;
        errs.addRow({harness::methodologyName(m),
                     fmtDouble(100.0 * max_rel_err[m], 1) + "%",
                     std::to_string(flips[m])});
    }
    std::printf("%s\n", errs.render().c_str());
    return 0;
}
