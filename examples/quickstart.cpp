/**
 * @file
 * Quickstart: measure one workload on both runtime tiers with the
 * rigorous methodology and print the headline numbers.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload] [invocations] [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/str.hh"
#include "support/table.hh"

using namespace rigor;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "richards";
    int invocations = argc > 2 ? std::atoi(argv[2]) : 8;
    int iterations = argc > 3 ? std::atoi(argv[3]) : 40;

    harness::RunnerConfig cfg;
    cfg.invocations = invocations;
    cfg.iterations = iterations;

    std::printf("== RigorBench quickstart: %s ==\n\n",
                workload.c_str());

    cfg.tier = vm::Tier::Interp;
    harness::RunResult interp = harness::runExperiment(workload, cfg);

    cfg.tier = vm::Tier::Adaptive;
    harness::RunResult jit = harness::runExperiment(workload, cfg);

    auto interp_est = harness::rigorousEstimate(interp);
    auto jit_est = harness::rigorousEstimate(jit);
    auto speedup = harness::rigorousSpeedup(interp, jit);

    Table table({"tier", "time/iter (ms, 95% CI)", "warmup iters",
                 "series classes (flat/warm/slow/none)"});
    auto row = [&](const char *tier,
                   const harness::RigorousEstimate &est) {
        const auto &ss = est.steadyState;
        table.addRow({tier, harness::formatCi(est.ci, 3),
                      fmtDouble(ss.meanSteadyStart, 1),
                      std::to_string(ss.flat) + "/" +
                          std::to_string(ss.warmup) + "/" +
                          std::to_string(ss.slowdown) + "/" +
                          std::to_string(ss.noSteadyState)});
    };
    row("interp", interp_est);
    row("adaptive", jit_est);
    std::printf("%s\n", table.render().c_str());

    std::printf("adaptive-over-interp speedup: %s%s\n\n",
                harness::formatCi(speedup.ci, 2).c_str(),
                speedup.significant ? "  (significant)"
                                    : "  (not significant)");

    std::printf("per-iteration times, first invocation:\n");
    std::printf("  interp:   %s\n",
                harness::sparkline(
                    interp.invocations.front().times())
                    .c_str());
    std::printf("  adaptive: %s\n",
                harness::sparkline(jit.invocations.front().times())
                    .c_str());

    auto counters = jit.totalCounters();
    std::printf("\nadaptive-tier totals: %llu bytecodes, IPC %.2f, "
                "branch MPKI %.2f, L1D MPKI %.2f\n",
                static_cast<unsigned long long>(counters.bytecodes),
                counters.ipc(), counters.branchMpki(),
                counters.l1dMpki());
    return 0;
}
