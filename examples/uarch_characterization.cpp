/**
 * @file
 * Microarchitectural deep-dive on one workload: full counter
 * breakdown per tier, plus an L1D-size sensitivity sweep showing how
 * the workload's working set maps onto the cache hierarchy.
 *
 *   ./build/examples/uarch_characterization [workload]
 */

#include <cstdio>
#include <string>

#include "harness/runner.hh"
#include "support/rng.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "uarch/perf_model.hh"
#include "vm/compiler.hh"
#include "workloads/workloads.hh"

using namespace rigor;

namespace {

uarch::CounterSet
measureOnce(const workloads::WorkloadSpec &spec, vm::Tier tier,
            const uarch::PerfModelConfig &ucfg)
{
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    vm::InterpConfig icfg;
    icfg.tier = tier;
    icfg.jitThreshold = 50;
    icfg.captureOutput = false;

    uarch::PerfModel model(ucfg);
    vm::Interp interp(prog, icfg, &model);
    interp.runModule();
    // Warm up past any JIT compilation, then measure one iteration.
    for (int i = 0; i < 5; ++i)
        interp.callGlobal("run",
                          {vm::Value::makeInt(spec.testSize)});
    uarch::CounterSet before = model.snapshot();
    interp.callGlobal("run", {vm::Value::makeInt(spec.testSize)});
    return model.snapshot().diff(before);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "hashtable";
    const auto &spec = workloads::findWorkload(name);

    std::printf("== microarchitectural characterization: %s ==\n\n",
                name.c_str());

    Table table({"counter", "interp", "adaptive"});
    uarch::PerfModelConfig ucfg;
    auto interp_c = measureOnce(spec, vm::Tier::Interp, ucfg);
    auto jit_c = measureOnce(spec, vm::Tier::Adaptive, ucfg);

    auto row = [&](const char *label, uint64_t a, uint64_t b) {
        table.addRow({label, fmtCount(a), fmtCount(b)});
    };
    row("bytecodes", interp_c.bytecodes, jit_c.bytecodes);
    row("instructions (uops)", interp_c.instructions,
        jit_c.instructions);
    row("cycles", interp_c.cycles, jit_c.cycles);
    row("cond branches", interp_c.branches, jit_c.branches);
    row("branch misses", interp_c.branchMisses, jit_c.branchMisses);
    row("dispatches", interp_c.dispatches, jit_c.dispatches);
    row("dispatch misses", interp_c.dispatchMisses,
        jit_c.dispatchMisses);
    row("loads", interp_c.loads, jit_c.loads);
    row("stores", interp_c.stores, jit_c.stores);
    row("L1I misses", interp_c.l1iMisses, jit_c.l1iMisses);
    row("L1D misses", interp_c.l1dMisses, jit_c.l1dMisses);
    row("L2 misses", interp_c.l2Misses, jit_c.l2Misses);
    row("LLC misses", interp_c.llcMisses, jit_c.llcMisses);
    row("allocations", interp_c.allocations, jit_c.allocations);
    std::printf("%s", table.render().c_str());
    double instr_ratio = jit_c.instructions
        ? static_cast<double>(interp_c.instructions) /
            static_cast<double>(jit_c.instructions)
        : 0.0;
    std::printf("IPC: interp %.2f vs adaptive %.2f   "
                "(adaptive executes %.1fx fewer instructions)\n\n",
                interp_c.ipc(), jit_c.ipc(), instr_ratio);

    // L1 size sensitivity: replay a synthetic address stream shaped
    // like the workload's dict traffic through different geometries.
    std::printf("L1D geometry sweep (synthetic dict-shaped stream):\n");
    Table sweep({"L1 size", "miss rate %"});
    for (uint32_t kb : {8, 16, 32, 64, 128}) {
        uarch::Cache cache({kb * 1024, 64, 8});
        Rng rng(42);
        const uint64_t working_set = 96 * 1024;
        for (int i = 0; i < 200000; ++i)
            cache.access(rng.nextBounded(working_set));
        double rate = 100.0 *
            static_cast<double>(cache.misses()) /
            static_cast<double>(cache.accesses());
        sweep.addRow({std::to_string(kb) + " KiB",
                      fmtDouble(rate, 1)});
    }
    std::printf("%s", sweep.render().c_str());
    return 0;
}
