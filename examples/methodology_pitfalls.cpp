/**
 * @file
 * Monte-Carlo demonstration of why the hierarchy matters: with
 * realistic between-invocation bias injected by the noise model, the
 * naive pooled 95% interval covers the true mean far less than 95% of
 * the time, while the mean-of-means interval stays calibrated.
 *
 *   ./build/examples/methodology_pitfalls
 */

#include <cmath>
#include <cstdio>

#include "harness/noise.hh"
#include "stats/hierarchy.hh"
#include "support/rng.hh"
#include "support/str.hh"
#include "support/table.hh"

using namespace rigor;

namespace {

/**
 * Simulate one experiment: `invocations` x `iterations` measurements
 * of a workload whose true time is `true_ms`, using the harness noise
 * model.
 */
std::vector<std::vector<double>>
simulate(double true_ms, int invocations, int iterations,
         const harness::NoiseConfig &noise_cfg, Rng &rng)
{
    std::vector<std::vector<double>> samples;
    for (int inv = 0; inv < invocations; ++inv) {
        harness::NoiseModel noise(noise_cfg, rng.nextU64());
        std::vector<double> iters;
        for (int it = 0; it < iterations; ++it)
            iters.push_back(true_ms * noise.nextIterationFactor());
        samples.push_back(std::move(iters));
    }
    return samples;
}

} // namespace

int
main()
{
    const double true_ms = 10.0;
    const int trials = 400;

    std::printf("== CI coverage under invocation-level bias ==\n\n");
    std::printf("true mean 10 ms; noise: between-invocation sigma "
                "2%%, within 0.5%%\n");
    std::printf("nominal confidence 95%%; %d simulated experiments "
                "per design\n\n",
                trials);

    harness::NoiseConfig noise_cfg;
    noise_cfg.betweenSigma = 0.02;
    noise_cfg.withinSigma = 0.005;
    noise_cfg.spikeProbability = 0.0;

    Table table({"design (inv x iter)", "mean-of-means coverage %",
                 "pooled coverage %", "pooled width / rigorous"});

    for (auto [invs, iters] : {std::pair{3, 40}, std::pair{5, 24},
                               std::pair{10, 12}, std::pair{20, 6}}) {
        Rng rng(0x5eedULL + static_cast<uint64_t>(invs));
        int mom_cover = 0, pooled_cover = 0;
        double width_ratio_sum = 0.0;
        // The *expected* measured mean includes the lognormal bias
        // mean exp(sigma^2/2), which both estimators target.
        double target = true_ms *
            std::exp(0.5 * noise_cfg.betweenSigma *
                     noise_cfg.betweenSigma) *
            std::exp(0.5 * noise_cfg.withinSigma *
                     noise_cfg.withinSigma);
        for (int t = 0; t < trials; ++t) {
            auto samples =
                simulate(true_ms, invs, iters, noise_cfg, rng);
            auto mom = stats::meanOfMeansInterval(samples);
            auto pooled = stats::naivePooledInterval(samples);
            if (mom.contains(target))
                ++mom_cover;
            if (pooled.contains(target))
                ++pooled_cover;
            if (mom.halfWidth() > 0.0)
                width_ratio_sum +=
                    pooled.halfWidth() / mom.halfWidth();
        }
        table.addRow({
            std::to_string(invs) + " x " + std::to_string(iters),
            fmtDouble(100.0 * mom_cover / trials, 1),
            fmtDouble(100.0 * pooled_cover / trials, 1),
            fmtDouble(width_ratio_sum / trials, 2),
        });
    }
    std::printf("%s\n", table.render().c_str());

    std::printf(
        "The pooled interval treats correlated iterations as\n"
        "independent: it is several times too narrow and covers the\n"
        "truth far below the nominal 95%%. The mean-of-means interval\n"
        "stays calibrated at every design point. More invocations\n"
        "with fewer iterations each beats the reverse.\n");
    return 0;
}
