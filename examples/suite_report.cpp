/**
 * @file
 * Generate a markdown results report for the whole suite — the shape
 * of a paper's results section: per-benchmark steady-state times on
 * both tiers, speedups with intervals, variance decomposition, and a
 * suite-level summary with the paired Wilcoxon test.
 *
 *   ./build/examples/suite_report [out.md] [invocations] [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "stats/tests.hh"
#include "support/str.hh"

using namespace rigor;

int
main(int argc, char **argv)
{
    std::string out_path = argc > 1 ? argv[1] : "";
    int invocations = argc > 2 ? std::atoi(argv[2]) : 6;
    int iterations = argc > 3 ? std::atoi(argv[3]) : 12;

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file) {
            std::fprintf(stderr, "cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        os = &file;
    }

    harness::RunnerConfig base;
    base.invocations = invocations;
    base.iterations = iterations;

    *os << "# RigorBench suite report\n\n";
    *os << "Design: " << invocations << " VM invocations x "
        << iterations << " iterations per benchmark and tier; "
        << "rigorous mean-of-means estimates with 95% CIs.\n\n";
    *os << "| benchmark | interp (ms) | adaptive (ms) | speedup "
        << "(95% CI) | warmup iters | between CoV % |\n";
    *os << "|---|---|---|---|---|---|\n";

    std::vector<double> interp_means, jit_means;
    std::vector<harness::SpeedupResult> speedups;

    for (const auto &spec : workloads::suite()) {
        harness::RunnerConfig icfg = base;
        icfg.tier = vm::Tier::Interp;
        harness::RunnerConfig jcfg = base;
        jcfg.tier = vm::Tier::Adaptive;

        auto interp = harness::runExperiment(spec, icfg);
        auto jit = harness::runExperiment(spec, jcfg);
        auto ie = harness::rigorousEstimate(interp);
        auto je = harness::rigorousEstimate(jit);
        auto speedup = harness::rigorousSpeedup(interp, jit);
        auto vc = harness::varianceDecomposition(interp);

        interp_means.push_back(ie.ci.estimate);
        jit_means.push_back(je.ci.estimate);
        speedups.push_back(speedup);

        *os << "| " << spec.name << " | "
            << fmtDouble(ie.ci.estimate, 4) << " | "
            << fmtDouble(je.ci.estimate, 4) << " | "
            << harness::formatCi(speedup.ci, 2)
            << (speedup.significant ? "" : " (n.s.)") << " | "
            << fmtDouble(
                   harness::analyzeSteadyState(jit).meanSteadyStart,
                   1)
            << " | " << fmtDouble(100.0 * vc.betweenCoV, 2)
            << " |\n";
    }

    auto geo = harness::geomeanSpeedup(speedups);
    auto wilcoxon =
        stats::wilcoxonSignedRank(interp_means, jit_means);

    *os << "\n## Suite summary\n\n";
    *os << "* geometric-mean speedup: **"
        << harness::formatCi(geo, 2) << "**\n";
    *os << "* paired Wilcoxon signed-rank (interp vs adaptive "
        << "steady-state means): z = "
        << fmtDouble(wilcoxon.statistic, 2)
        << ", p = " << fmtDouble(wilcoxon.pValue, 5) << " — "
        << (wilcoxon.significant(0.01)
                ? "the adaptive tier is faster across the suite"
                : "no suite-wide difference demonstrated")
        << "\n";
    *os << "* " << workloads::suite().size()
        << " benchmarks; every speedup interval "
        << "excludes 1.0 unless marked (n.s.)\n";

    if (!out_path.empty())
        std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
