/**
 * @file
 * Warmup deep-dive: how the changepoint detector segments one
 * workload's per-iteration series, and how the JIT hot-threshold
 * moves the steady-state boundary.
 *
 *   ./build/examples/warmup_analysis [workload]
 */

#include <cstdio>
#include <string>

#include "harness/analysis.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/str.hh"
#include "support/table.hh"

using namespace rigor;

namespace {

void
analyzeOne(const std::string &workload, int jit_threshold)
{
    harness::RunnerConfig cfg;
    cfg.invocations = 3;
    cfg.iterations = 40;
    cfg.tier = vm::Tier::Adaptive;
    cfg.jitThreshold = jit_threshold;
    cfg.noise.enabled = false;  // show the pure runtime behaviour

    harness::RunResult run = harness::runExperiment(workload, cfg);
    std::printf("--- jitThreshold = %d ---\n", jit_threshold);

    const auto &inv = run.invocations.front();
    auto times = inv.times();
    std::printf("%s\n", harness::asciiSeries(times, 6, 70).c_str());

    auto ss = stats::detectSteadyState(times);
    std::printf("classification: %s, steady from iteration %zu\n",
                stats::seriesClassName(ss.classification).c_str(),
                ss.steadyStart);
    std::printf("segments:\n");
    for (const auto &seg : ss.segments) {
        std::printf("  [%3zu, %3zu)  mean %.4f ms\n", seg.begin,
                    seg.end, seg.mean);
    }
    std::printf("JIT compiles this invocation: %llu\n\n",
                static_cast<unsigned long long>(
                    inv.vmStats.jitCompiles));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "sieve";
    std::printf("== warmup analysis: %s (adaptive tier) ==\n\n",
                workload.c_str());

    // Lower thresholds compile earlier (shorter warmup); very high
    // thresholds may never compile within the run.
    for (int threshold : {500, 4000, 20000})
        analyzeOne(workload, threshold);

    std::printf(
        "Takeaway: the steady-state boundary is a property of the\n"
        "(runtime, workload, threshold) combination — discarding a\n"
        "fixed number of warmup iterations is wrong in general,\n"
        "which is why the methodology detects it per invocation.\n");
    return 0;
}
