/**
 * @file
 * rigorbench — command-line front end to the framework.
 *
 *   rigorbench list
 *   rigorbench env
 *   rigorbench version
 *   rigorbench disasm <workload>
 *   rigorbench run <workload> [options]
 *   rigorbench compare <workload> [options]
 *   rigorbench compare <baseline> <candidate> --archive DIR
 *   rigorbench sequential <workload> [options]
 *   rigorbench profile <workload> [options]
 *   rigorbench suite [options]
 *   rigorbench gate <baseline> [<candidate>] --archive DIR
 *   rigorbench explain <baseline> <candidate> --archive DIR
 *   rigorbench archive list|prune --archive DIR
 *   rigorbench fsck --archive DIR [--repair]
 *   rigorbench serve --socket PATH [options]
 *   rigorbench submit run <workload>|suite --socket PATH [options]
 *   rigorbench status [<job-id>] --socket PATH
 *   rigorbench cancel <job-id> --socket PATH
 *   rigorbench shutdown [--now] --socket PATH
 *   rigorbench help
 *
 * Common options:
 *   --tier interp|adaptive|threaded
 *                            (run only; default interp,
 *                            profile defaults to adaptive)
 *   --invocations N          (default 8)
 *   --iterations N           (default 20)
 *   --size N                 (default: workload's defaultSize)
 *   --seed S                 (default 0xc0ffee)
 *   --jobs N                 (default 1) worker threads; artifacts
 *                            are byte-identical for every N
 *   --jit-threshold N        (default kDefaultJitThreshold)
 *   --target PCT             (sequential only; default 2)
 *   --json FILE              dump the raw run as JSON
 *                            (archive list: the machine-readable
 *                            listing; '-' prints it to stdout)
 *   --csv FILE               dump per-iteration samples as CSV
 *   --no-noise               disable the measurement-noise model
 *   --quiet                  silence warn()/inform() status output
 *
 * Observability (see docs/OBSERVABILITY.md):
 *   --metrics FILE           write a metrics-registry JSON snapshot
 *   --trace FILE             write a Chrome trace-event JSON
 *                            (Perfetto-loadable, modelled clock)
 *
 * Fault tolerance:
 *   --inject SPEC            inject a fault (repeatable); SPEC is
 *                            kind[:key=value]... with kind one of
 *                            throw|checksum|stall|ramp and keys
 *                            wl=NAME inv=N n=COUNT p=PROB mag=X;
 *                            or an I/O fault io:subkind[:key=value]...
 *                            with subkind one of short-write|enospc|
 *                            torn-rename|fsync-fail|crash-at=N and
 *                            keys at=N n=COUNT p=PROB op=NAME
 *                            path=SUBSTR mag=X (armed on the durable-
 *                            I/O operations; crash-at kills the
 *                            process with exit 6 at matching call N)
 *   --max-retries N          retries per invocation (default 2)
 *   --deadline-ms X          per-invocation modelled-time deadline
 *
 * Durability (see docs/METHODOLOGY.md §12):
 *   --resume FILE            (suite only) persist checksummed state
 *                            after every workload and skip completed
 *                            ones on restart; a checkpoint interrupted
 *                            mid-write falls back to FILE.bak
 *   --checkpoint-every N     (suite, needs --resume) additionally
 *                            checkpoint every N committed invocations,
 *                            so an interrupted *run* resumes mid-
 *                            workload; final artifacts are invariant
 *                            under the checkpoint cadence
 *
 * Archive & comparison (see docs/METHODOLOGY.md §13):
 *   --archive DIR            (run/suite) append the completed run(s)
 *                            to the archive at DIR; (compare/gate/
 *                            archive) the archive to operate on
 *   --label NAME             label the appended entry
 *   --resamples N            bootstrap resamples (default 2000)
 *   --confidence C           interval confidence (default 0.95)
 *   --gate-threshold PCT     gate regression threshold (default 5)
 *   --keep N                 (archive prune) entries to keep
 *   fsck --archive DIR       verify every file in the archive (CRC
 *                            envelopes, schema versions, naming,
 *                            orphaned temporaries/backups); exit 5
 *                            when corruption is found
 *   --repair                 (fsck) fix what is mechanically fixable:
 *                            restore from valid backups, sweep
 *                            orphaned temporaries, quarantine the
 *                            rest; exit 0 when the archive is clean
 *                            afterwards
 *   --base-tier T --cand-tier T
 *                            (compare/gate/explain on archives)
 *                            cross-tier pairing: baseline runs on
 *                            tier T1 vs candidate runs on tier T2,
 *                            paired by workload (both flags or
 *                            neither)
 *
 * Differential profiling (see docs/METHODOLOGY.md §14):
 *   explain A B              attribute the measured ratio of every
 *                            paired (workload, tier) to opcode-mix,
 *                            tier/deopt, branch and cache components
 *                            (plus an explicit unattributed
 *                            remainder), from the behavior profiles
 *                            archived with each entry
 *   --explain                (gate) append the per-pair attribution
 *                            for every failing pair
 *
 * Daemon mode (see docs/METHODOLOGY.md §17):
 *   serve                    run the multi-tenant benchmarking daemon
 *                            on a Unix-domain socket; submitted jobs
 *                            produce artifacts byte-identical to the
 *                            same flags run one-shot
 *   --socket PATH            the daemon's socket (serve and every
 *                            client command; compare/gate/explain
 *                            with --socket route through the daemon)
 *   --state-dir DIR          (serve) durable queue/checkpoint state
 *                            (default: SOCKET.d)
 *   --max-queue N            (serve) admission limit on waiting jobs
 *                            (default 16; excess submits exit 8)
 *   --max-active N           (serve) concurrent job executions
 *                            (default 1)
 *   serve --resume           restore the persisted queue after a
 *                            drain (SIGINT/SIGTERM exits 3 with the
 *                            queue durably checkpointed)
 *   --priority N             (submit) lower runs first (default 10)
 *   --client NAME            (submit) label shown in `status`
 *   --no-wait                (submit) print the job id and return
 *                            instead of streaming the report
 *   --now                    (shutdown) interrupt running jobs at the
 *                            next commit boundary instead of draining
 *
 * Entry refs: HEAD (newest), HEAD~N, a decimal id, or a label.
 *
 * Exit codes (stable; scripts may rely on them — the canonical table
 * lives in README.md "Exit codes"):
 *   0  success
 *   1  usage error (bad flags/arguments)
 *   2  runtime or suite failure (nothing measurable, I/O error)
 *   3  interrupted (SIGINT/SIGTERM); state is resumable when
 *      --resume was given (serve: the queue is resumable)
 *   4  regression: gate found a workload slower than the baseline
 *      beyond the threshold at the configured confidence
 *   5  corruption: fsck found (or could not repair) archive damage
 *   6  injected crash: an io:crash-at fault killed the process at
 *      the requested call (torture harnesses rely on this code to
 *      tell an injected crash from a real failure)
 *   7  daemon unavailable: no daemon at --socket (or it spoke a
 *      different protocol version)
 *   8  rejected: the daemon's admission control refused the job
 *      (queue full, draining, or an io:* fault spec)
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "archive/archive.hh"
#include "archive/fsck.hh"
#include "harness/analysis.hh"
#include "harness/envcheck.hh"
#include "harness/fault.hh"
#include "harness/profile.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sequential.hh"
#include "serve/client.hh"
#include "serve/jobrun.hh"
#include "serve/jobspec.hh"
#include "serve/server.hh"
#include "support/durable_io.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/schema.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "vm/compiler.hh"

using namespace rigor;

namespace {

// Exit-code table (see the file header). The codes themselves live in
// serve/jobrun.hh so the CLI, the daemon and the client mode agree;
// kExitInterrupted (3) is in support/interrupt.hh with the signal
// handler and kExitCrashInjected (6) in harness/fault.hh with the
// io:crash-at machinery.
using serve::kExitCorruption;
using serve::kExitFailure;
using serve::kExitRegression;
using serve::kExitSuccess;
using serve::kExitUsage;

struct Options
{
    std::string command;
    std::string workload;
    /** Second positional (compare/gate candidate ref, submit's
     * workload name, ...). */
    std::string workload2;
    vm::Tier tier = vm::Tier::Interp;
    /** True once --tier was given (profile defaults differently). */
    bool tierSet = false;
    /** Cross-tier pairing for compare/gate/explain (both or none). */
    std::string baseTier, candTier;
    int invocations = 8;
    int iterations = 20;
    int jobs = 1;
    int64_t size = 0;
    uint64_t seed = 0xc0ffee;
    int jitThreshold = harness::kDefaultJitThreshold;
    double targetPct = 2.0;
    std::string jsonPath;
    std::string csvPath;
    bool noNoise = false;
    bool quiet = false;
    harness::FaultPlan faultPlan;
    /** Raw --inject specs, kept for the resume-config fingerprint. */
    std::vector<std::string> injectSpecs;
    int maxRetries = 2;
    double deadlineMs = 0.0;
    std::string resumePath;
    int checkpointEvery = 0;
    std::string metricsPath;
    std::string tracePath;
    std::string archiveDir;
    std::string label;
    int resamples = 2000;
    double confidence = 0.95;
    double gateThresholdPct = 5.0;
    int keep = 0;
    /** `gate --explain`: attribute every failing pair. */
    bool explainGate = false;
    /** `fsck --repair`: fix what is mechanically fixable. */
    bool repair = false;

    // Daemon mode (serve and its client commands).
    std::string socketPath;
    std::string stateDir;
    int maxQueue = 16;
    int maxActive = 1;
    /** `serve --resume`: restore the persisted queue. */
    bool serveResume = false;
    int priority = 10;
    std::string clientName;
    /** `submit --no-wait`: detach instead of streaming the report. */
    bool noWait = false;
    /** `shutdown --now`: interrupt instead of draining. */
    bool shutdownNow = false;

    // Observability sinks, shared by every run of the command
    // (not owned; set up in main when requested).
    MetricsRegistry *metrics = nullptr;
    TraceEmitter *trace = nullptr;
};

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: rigorbench <command> [args] [options]\n"
        "\n"
        "commands:\n"
        "  list                      list the workload suite\n"
        "  env                       report environment hygiene\n"
        "  version                   print binary and artifact-schema "
        "versions\n"
        "  disasm <workload>         disassemble a workload\n"
        "  run <workload>            measure one workload\n"
        "  compare <workload>        interp-vs-adaptive speedup\n"
        "  compare <base> <cand>     compare two archive entries\n"
        "                            (needs --archive DIR)\n"
        "  sequential <workload>     run until the CI is tight\n"
        "  profile <workload>        per-opcode/JIT profile\n"
        "  suite                     measure the whole suite\n"
        "  gate <base> [<cand>]      fail (exit 4) on regression vs\n"
        "                            base; cand defaults to HEAD\n"
        "  explain <base> <cand>     attribute the measured ratio to\n"
        "                            behavior components\n"
        "                            (needs --archive DIR)\n"
        "  archive list|prune        inspect / trim an archive\n"
        "                            (list --json FILE|- for the\n"
        "                            machine-readable form)\n"
        "  fsck                      verify an archive (--repair to\n"
        "                            fix); needs --archive DIR\n"
        "  serve                     run the benchmarking daemon on\n"
        "                            --socket PATH (--resume after a\n"
        "                            drain)\n"
        "  submit run <wl>|suite     queue a job on the daemon\n"
        "  status [<job-id>]         list the daemon's jobs (or one)\n"
        "  cancel <job-id>           cancel a queued job\n"
        "  shutdown                  drain the daemon (--now to\n"
        "                            interrupt running jobs)\n"
        "  help                      this text\n"
        "\n"
        "entry refs: HEAD, HEAD~N, a decimal id, or a --label name\n"
        "\n"
        "options: --tier interp|adaptive|threaded --invocations N "
        "--iterations N --size N --jobs N\n"
        "         --seed S --jit-threshold N --target PCT "
        "--json FILE --csv FILE --no-noise\n"
        "         --inject SPEC --max-retries N --deadline-ms X "
        "--resume FILE\n"
        "         --checkpoint-every N --metrics FILE --trace FILE "
        "--quiet\n"
        "         --archive DIR --label NAME --resamples N "
        "--confidence C\n"
        "         --gate-threshold PCT --keep N --explain "
        "--repair\n"
        "         --base-tier TIER --cand-tier TIER\n"
        "         --socket PATH --state-dir DIR --max-queue N "
        "--max-active N\n"
        "         --priority N --client NAME --no-wait --now\n"
        "\n"
        "exit codes: 0 success, 1 usage error, 2 runtime failure,\n"
        "            3 interrupted (resumable with --resume),\n"
        "            4 regression detected by gate,\n"
        "            5 corruption found by fsck,\n"
        "            6 injected crash (io:crash-at fault),\n"
        "            7 daemon unavailable at --socket,\n"
        "            8 job rejected by daemon admission control\n");
}

[[noreturn]] void
usage()
{
    printUsage(stderr);
    std::exit(kExitUsage);
}

/**
 * Strict integer parsing: rejects garbage instead of yielding 0 and
 * overflow instead of silently clamping to LLONG_MAX (strtoll sets
 * errno=ERANGE but still returns a "valid-looking" value, so e.g.
 * --invocations 99999999999999999999 used to be accepted).
 */
int64_t
parseInt(const char *flag, const char *text, int64_t min_value)
{
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0')
        fatal("%s expects an integer, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    if (v < min_value)
        fatal("%s must be >= %lld, got %lld", flag,
              static_cast<long long>(min_value), v);
    return v;
}

double
parseDouble(const char *flag, const char *text, double min_value)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal("%s expects a number, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    if (v < min_value)
        fatal("%s must be >= %g, got %g", flag, min_value, v);
    return v;
}

/** Strict seed parsing (decimal, hex or octal; full uint64 range). */
uint64_t
parseSeed(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
        fatal("%s expects an integer, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    return v;
}

/**
 * A mistyped tier value is a runtime failure (exit 2), not a usage
 * error: the flag itself was recognized, its value wasn't. Name the
 * offending value instead of drowning it in the usage wall.
 */
vm::Tier
parseTier(const char *text)
{
    std::string t = text;
    if (t == "interp")
        return vm::Tier::Interp;
    if (t == "adaptive")
        return vm::Tier::Adaptive;
    if (t == "threaded")
        return vm::Tier::Threaded;
    std::fprintf(stderr,
                 "unknown tier '%s' (expected "
                 "interp|adaptive|threaded)\n",
                 t.c_str());
    std::exit(kExitFailure);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    if (argc < 2)
        usage();
    opt.command = argv[1];
    if (opt.command == "help" || opt.command == "--help" ||
        opt.command == "-h") {
        printUsage(stdout);
        std::exit(0);
    }
    if (opt.command == "--version")
        opt.command = "version";
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        opt.workload = argv[i++];
    if (i < argc && argv[i][0] != '-')
        opt.workload2 = argv[i++];
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printUsage(stdout);
            std::exit(0);
        } else if (a == "--tier") {
            opt.tier = parseTier(next());
            opt.tierSet = true;
        } else if (a == "--base-tier") {
            opt.baseTier = vm::tierName(parseTier(next()));
        } else if (a == "--cand-tier") {
            opt.candTier = vm::tierName(parseTier(next()));
        } else if (a == "--invocations") {
            opt.invocations = static_cast<int>(
                parseInt("--invocations", next(), 1));
        } else if (a == "--iterations") {
            opt.iterations = static_cast<int>(
                parseInt("--iterations", next(), 1));
        } else if (a == "--size") {
            opt.size = parseInt("--size", next(), 1);
        } else if (a == "--seed") {
            opt.seed = parseSeed("--seed", next());
        } else if (a == "--jobs") {
            opt.jobs =
                static_cast<int>(parseInt("--jobs", next(), 1));
        } else if (a == "--jit-threshold") {
            opt.jitThreshold = static_cast<int>(
                parseInt("--jit-threshold", next(), 1));
        } else if (a == "--target") {
            opt.targetPct = parseDouble("--target", next(), 1e-6);
        } else if (a == "--json") {
            opt.jsonPath = next();
        } else if (a == "--csv") {
            opt.csvPath = next();
        } else if (a == "--no-noise") {
            opt.noNoise = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--metrics") {
            opt.metricsPath = next();
        } else if (a == "--trace") {
            opt.tracePath = next();
        } else if (a == "--inject") {
            const char *spec = next();
            opt.faultPlan.add(spec);
            opt.injectSpecs.push_back(spec);
        } else if (a == "--max-retries") {
            opt.maxRetries = static_cast<int>(
                parseInt("--max-retries", next(), 0));
        } else if (a == "--deadline-ms") {
            opt.deadlineMs = parseDouble("--deadline-ms", next(),
                                         1e-9);
        } else if (a == "--resume") {
            // For `serve`, --resume is a flag (restore the queue);
            // everywhere else it names the suite state file.
            if (opt.command == "serve")
                opt.serveResume = true;
            else
                opt.resumePath = next();
        } else if (a == "--checkpoint-every") {
            opt.checkpointEvery = static_cast<int>(
                parseInt("--checkpoint-every", next(), 1));
        } else if (a == "--archive") {
            opt.archiveDir = next();
        } else if (a == "--label") {
            opt.label = next();
        } else if (a == "--resamples") {
            opt.resamples = static_cast<int>(
                parseInt("--resamples", next(), 10));
        } else if (a == "--confidence") {
            opt.confidence =
                parseDouble("--confidence", next(), 1e-6);
            if (opt.confidence >= 1.0)
                fatal("--confidence must be < 1, got %g",
                      opt.confidence);
        } else if (a == "--gate-threshold") {
            opt.gateThresholdPct =
                parseDouble("--gate-threshold", next(), 0.0);
        } else if (a == "--keep") {
            opt.keep =
                static_cast<int>(parseInt("--keep", next(), 1));
        } else if (a == "--explain") {
            opt.explainGate = true;
        } else if (a == "--repair") {
            opt.repair = true;
        } else if (a == "--socket") {
            opt.socketPath = next();
        } else if (a == "--state-dir") {
            opt.stateDir = next();
        } else if (a == "--max-queue") {
            opt.maxQueue = static_cast<int>(
                parseInt("--max-queue", next(), 1));
        } else if (a == "--max-active") {
            opt.maxActive = static_cast<int>(
                parseInt("--max-active", next(), 1));
        } else if (a == "--priority") {
            opt.priority = static_cast<int>(
                parseInt("--priority", next(), 0));
        } else if (a == "--client") {
            opt.clientName = next();
        } else if (a == "--no-wait") {
            opt.noWait = true;
        } else if (a == "--now") {
            opt.shutdownNow = true;
        } else {
            usage();
        }
    }
    // --checkpoint-every needs a durable home for the checkpoints: a
    // local suite's --resume file, or the daemon-assigned resume path
    // a submitted suite gets at admission.
    bool checkpointable =
        (opt.command == "suite" && !opt.resumePath.empty()) ||
        (opt.command == "submit" && opt.workload == "suite");
    if (opt.checkpointEvery > 0 && !checkpointable)
        fatal("--checkpoint-every requires 'suite' with --resume "
              "(checkpoints are written to the resume state file)");
    // A resumed suite only re-measures what the interrupted process
    // left unfinished; archiving it would record a partial picture of
    // the suite as if it were complete.
    if (!opt.archiveDir.empty() && !opt.resumePath.empty())
        fatal("--archive cannot be combined with --resume; "
              "archive the suite in a single uninterrupted run");
    if (!opt.workload2.empty() && opt.command != "compare" &&
        opt.command != "gate" && opt.command != "explain" &&
        opt.command != "submit")
        fatal("unexpected extra argument '%s'",
              opt.workload2.c_str());
    if (opt.explainGate && opt.command != "gate")
        fatal("--explain only applies to 'gate' (use the 'explain' "
              "command for a standalone report)");
    if (opt.repair && opt.command != "fsck")
        fatal("--repair only applies to 'fsck'");
    if (opt.command == "fsck" && !opt.workload.empty())
        fatal("fsck takes no positional argument (got '%s'); the "
              "archive comes from --archive DIR",
              opt.workload.c_str());
    if (opt.command == "fsck" && opt.archiveDir.empty())
        fatal("fsck requires --archive DIR");
    if (opt.baseTier.empty() != opt.candTier.empty())
        fatal("cross-tier comparison needs both --base-tier and "
              "--cand-tier (got baseline '%s', candidate '%s')",
              opt.baseTier.c_str(), opt.candTier.c_str());
    if (!opt.baseTier.empty() && opt.command != "compare" &&
        opt.command != "gate" && opt.command != "explain")
        fatal("--base-tier/--cand-tier only apply to "
              "'compare', 'gate' and 'explain'");
    if (!opt.socketPath.empty() && opt.command != "serve" &&
        opt.command != "submit" && opt.command != "status" &&
        opt.command != "cancel" && opt.command != "shutdown" &&
        opt.command != "compare" && opt.command != "gate" &&
        opt.command != "explain")
        fatal("--socket only applies to serve/submit/status/cancel/"
              "shutdown and to archive queries (compare/gate/"
              "explain)");
    if (opt.command == "submit") {
        if (opt.workload != "run" && opt.workload != "suite")
            fatal("submit expects 'run <workload>' or 'suite', got "
                  "'%s'",
                  opt.workload.c_str());
        if (opt.workload == "run" && opt.workload2.empty())
            fatal("submit run requires a workload name");
        if (opt.workload == "suite" && !opt.workload2.empty())
            fatal("submit suite takes no workload argument (got "
                  "'%s')",
                  opt.workload2.c_str());
        if (!opt.resumePath.empty())
            fatal("submit does not take --resume; the daemon "
                  "assigns queued suites a durable resume path "
                  "itself");
    }
    if (opt.serveResume && opt.command != "serve")
        panic("serveResume set outside 'serve'");
    return opt;
}

/**
 * The Options fields a JobSpec carries, with the caller naming the
 * command and workload (local `run`/`suite` use them verbatim;
 * `submit` maps its positionals).
 */
serve::JobSpec
specFromOptions(const Options &opt, const std::string &command,
                const std::string &workload)
{
    serve::JobSpec s;
    s.command = command;
    s.workload = workload;
    s.tier = opt.tier;
    s.invocations = opt.invocations;
    s.iterations = opt.iterations;
    s.jobs = opt.jobs;
    s.size = opt.size;
    s.seed = opt.seed;
    s.jitThreshold = opt.jitThreshold;
    s.noNoise = opt.noNoise;
    s.quiet = opt.quiet;
    s.maxRetries = opt.maxRetries;
    s.deadlineMs = opt.deadlineMs;
    s.injectSpecs = opt.injectSpecs;
    s.jsonPath = opt.jsonPath;
    s.csvPath = opt.csvPath;
    s.metricsPath = opt.metricsPath;
    s.tracePath = opt.tracePath;
    s.archiveDir = opt.archiveDir;
    s.label = opt.label;
    s.resumePath = opt.resumePath;
    s.checkpointEvery = opt.checkpointEvery;
    return s;
}

harness::RunnerConfig
makeConfig(const Options &opt, vm::Tier tier,
           const harness::FaultInjector *faults)
{
    return serve::makeRunnerConfig(
        specFromOptions(opt, opt.command, opt.workload), tier, faults,
        opt.metrics, opt.trace);
}

void
printEstimate(const harness::RunResult &run)
{
    std::printf("%s", serve::renderEstimate(run).c_str());
}

int
cmdEnv()
{
    harness::EnvReport report = harness::collectEnvironment();
    std::printf("%s", report.render().c_str());
    std::printf("%d warning(s)\n", report.warningCount());
    return kExitSuccess;
}

int
cmdList()
{
    Table t({"name", "category", "default size", "description"});
    for (const auto &w : workloads::suite()) {
        t.addRow({w.name, workloads::categoryName(w.category),
                  std::to_string(w.defaultSize), w.description});
    }
    std::printf("%s", t.render().c_str());
    return kExitSuccess;
}

/**
 * `version`: the binary version plus every artifact/protocol schema
 * this build reads and writes, one per line, so "which schema does
 * this binary emit?" never requires reading the source.
 */
int
cmdVersion()
{
    std::printf("rigorbench %s\n", kRigorbenchVersion);
    std::printf("schemas:\n");
    struct Row
    {
        const char *what;
        const char *name;
        int version;
        int minVersion;
    };
    const Row rows[] = {
        {"state envelope (durable files)", kStateFormat,
         kStateVersion, kStateVersion},
        {"run (--json)", kRunSchema, kRunSchemaVersion,
         kRunSchemaVersion},
        {"series CSV (--csv)", kSeriesCsvSchema, kSeriesCsvVersion,
         kSeriesCsvVersion},
        {"archive entry", kArchiveEntrySchema, kArchiveEntryVersion,
         kArchiveEntryMinVersion},
        {"archive list (--json)", kArchiveListSchema,
         kArchiveListVersion, kArchiveListVersion},
        {"compare report", kCompareReportSchema,
         kCompareReportVersion, kCompareReportVersion},
        {"behavior profile", kBehaviorProfileSchema,
         kBehaviorProfileVersion, kBehaviorProfileVersion},
        {"explain report", kExplainReportSchema,
         kExplainReportVersion, kExplainReportVersion},
        {"fsck report", kFsckReportSchema, kFsckReportVersion,
         kFsckReportVersion},
        {"job spec (serve)", kJobSpecSchema, kJobSpecVersion,
         kJobSpecVersion},
        {"serve protocol", kServeProtocolSchema,
         kServeProtocolVersion, kServeProtocolVersion},
        {"serve queue state", kServeQueueSchema, kServeQueueVersion,
         kServeQueueVersion},
    };
    for (const auto &r : rows) {
        if (r.minVersion != r.version)
            std::printf("  %-33s %s v%d (reads v%d..%d)\n", r.what,
                        r.name, r.version, r.minVersion, r.version);
        else
            std::printf("  %-33s %s v%d\n", r.what, r.name,
                        r.version);
    }
    return kExitSuccess;
}

int
cmdDisasm(const Options &opt)
{
    const auto &spec = workloads::findWorkload(opt.workload);
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    std::printf("%s", prog.module->disassemble().c_str());
    return kExitSuccess;
}

/**
 * `run` and `suite`: hand the job to the shared execution engine with
 * an output hook that writes straight to stdout. The daemon runs the
 * same engine with a streaming hook — that shared path is what makes
 * daemon-submitted artifacts byte-identical to one-shot runs.
 */
int
runLocalJob(const Options &opt)
{
    serve::JobSpec spec =
        specFromOptions(opt, opt.command, opt.workload);
    serve::JobHooks hooks;
    hooks.output = [](const std::string &chunk) {
        std::fwrite(chunk.data(), 1, chunk.size(), stdout);
    };
    return serve::executeJob(spec, hooks);
}

int
cmdProfile(const Options &opt)
{
    harness::ProfileConfig pcfg;
    // Profiling is mostly about explaining warmup/JIT behaviour, so
    // the adaptive tier is the default here (run's default stays
    // interp); --tier still overrides.
    pcfg.tier = opt.tierSet ? opt.tier : vm::Tier::Adaptive;
    pcfg.iterations = opt.iterations;
    pcfg.size = opt.size;
    pcfg.seed = opt.seed;
    pcfg.jitThreshold = opt.jitThreshold;
    auto prof = harness::profileWorkload(opt.workload, pcfg);
    std::printf("%s", harness::renderProfile(prof).c_str());
    return kExitSuccess;
}

int
cmdCompare(const Options &opt, const harness::FaultInjector *faults)
{
    auto interp = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Interp, faults));
    if (interp.interrupted) {
        printEstimate(interp);
        return kExitInterrupted;
    }
    auto jit = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Adaptive, faults));
    printEstimate(interp);
    printEstimate(jit);
    if (jit.interrupted)
        return kExitInterrupted;
    if (interp.invocations.empty() || jit.invocations.empty())
        return kExitFailure;
    auto s = harness::rigorousSpeedup(interp, jit);
    std::printf("speedup (adaptive over interp): %s %s\n",
                harness::formatCi(s.ci, 3).c_str(),
                s.significant ? "(significant)"
                              : "(not significant)");
    return kExitSuccess;
}

int
cmdSequential(const Options &opt,
              const harness::FaultInjector *faults)
{
    harness::SequentialConfig seq;
    seq.targetRelativeHalfWidth = opt.targetPct / 100.0;
    seq.maxInvocations = std::max(opt.invocations, 8);
    auto res = harness::runSequential(
        opt.workload, makeConfig(opt, opt.tier, faults), seq);
    printEstimate(res.run);
    if (!res.run.invocations.empty() && !res.run.interrupted) {
        std::printf("  sequential: %s after %d invocations "
                    "(target ±%.1f%%)\n",
                    res.converged ? "converged" : "budget exhausted",
                    res.invocationsUsed, opt.targetPct);
        std::printf("  width trajectory:");
        for (double w : res.widthTrajectory)
            std::printf(" %.2f%%", 100.0 * w);
        std::printf("\n");
    }
    serve::writeRunArtifacts(
        specFromOptions(opt, opt.command, opt.workload), res.run,
        [](const std::string &line) {
            std::fputs(line.c_str(), stdout);
        });
    if (res.run.interrupted)
        return kExitInterrupted;
    return res.run.invocations.empty() ? kExitFailure
                                       : kExitSuccess;
}

/**
 * compare/gate/explain on archive entries: build the query, run it
 * locally — or, with --socket, on the daemon, whose answer renders
 * identically (it runs the same engine against the same archive).
 */
int
runQueryCommand(const Options &opt, const std::string &kind)
{
    serve::QuerySpec q;
    q.kind = kind;
    q.baseRef = opt.workload;
    q.candRef = opt.workload2;
    q.archiveDir = opt.archiveDir;
    q.resamples = opt.resamples;
    q.confidence = opt.confidence;
    q.gateThresholdPct = opt.gateThresholdPct;
    q.baseTier = opt.baseTier;
    q.candTier = opt.candTier;
    q.explainGate = opt.explainGate;
    q.seed = opt.seed;
    if (!opt.socketPath.empty())
        return serve::remoteQuery(opt.socketPath, q, opt.jsonPath);
    serve::QueryResult res = serve::runQuery(q);
    std::fputs(res.text.c_str(), stdout);
    if (!opt.jsonPath.empty()) {
        atomicWriteFile(opt.jsonPath, res.doc.dump(2) + "\n");
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return res.exitCode;
}

/** The machine-readable `archive list --json` document. */
Json
archiveListJson(const std::string &dir,
                const archive::ScanResult &scan)
{
    Json doc = Json::object();
    doc.set("schema", kArchiveListSchema);
    doc.set("version", kArchiveListVersion);
    doc.set("archive", dir);
    Json entries = Json::array();
    for (const auto &e : scan.entries) {
        Json j = Json::object();
        j.set("id", e.id);
        j.set("label", e.label);
        j.set("command", e.command);
        j.set("runs", e.runCount);
        j.set("profiles", e.profileCount);
        j.set("bytes", static_cast<int64_t>(e.sizeBytes));
        j.set("fingerprint", e.fingerprint);
        Json tiers = Json::array();
        for (const auto &t : e.tiers)
            tiers.push(t);
        j.set("tiers", std::move(tiers));
        entries.push(std::move(j));
    }
    doc.set("entries", std::move(entries));
    doc.set("quarantined_present", scan.quarantinedPresent);
    return doc;
}

/** `archive list|prune --archive DIR`: hygiene operations. */
int
cmdArchive(const Options &opt)
{
    if (opt.archiveDir.empty())
        fatal("'archive %s' requires --archive DIR",
              opt.workload.c_str());
    archive::RunArchive ar(opt.archiveDir);
    if (opt.workload == "list") {
        archive::ScanResult scan = ar.scan();
        // `--json -` replaces the table with the document on stdout
        // (for pipelines); `--json FILE` writes it alongside.
        if (opt.jsonPath == "-") {
            std::printf(
                "%s\n",
                archiveListJson(opt.archiveDir, scan).dump(2)
                    .c_str());
            return kExitSuccess;
        }
        Table t({"id", "label", "command", "runs", "profile",
                 "bytes", "fingerprint"});
        for (const auto &e : scan.entries) {
            // "profile" says whether `explain` can attribute this
            // entry: every run profiled, some, or none (legacy v1).
            const char *profile =
                e.profileCount == 0 ? "no"
                : e.profileCount >= e.runCount ? "yes"
                                               : "partial";
            t.addRow({std::to_string(e.id),
                      e.label.empty() ? "-" : e.label, e.command,
                      std::to_string(e.runCount), profile,
                      fmtCount(e.sizeBytes), e.fingerprint});
        }
        std::printf("%s", t.render().c_str());
        std::printf("%zu entr%s in %s", scan.entries.size(),
                    scan.entries.size() == 1 ? "y" : "ies",
                    opt.archiveDir.c_str());
        if (!scan.quarantined.empty())
            std::printf(", %zu quarantined this scan",
                        scan.quarantined.size());
        if (scan.quarantinedPresent > 0)
            std::printf(", %d quarantined file(s) present "
                        "(see 'rigorbench fsck')",
                        scan.quarantinedPresent);
        std::printf("\n");
        if (!opt.jsonPath.empty()) {
            atomicWriteFile(
                opt.jsonPath,
                archiveListJson(opt.archiveDir, scan).dump(2) +
                    "\n");
            std::printf("wrote %s\n", opt.jsonPath.c_str());
        }
        return kExitSuccess;
    }
    if (opt.workload == "prune") {
        if (opt.keep < 1)
            fatal("'archive prune' requires --keep N");
        int removed = ar.prune(opt.keep);
        std::printf("pruned %d entr%s from %s (kept newest %d)\n",
                    removed, removed == 1 ? "y" : "ies",
                    opt.archiveDir.c_str(), opt.keep);
        return kExitSuccess;
    }
    fatal("unknown archive action '%s' (expected list or prune)",
          opt.workload.c_str());
}

/** `fsck --archive DIR [--repair]`: verify / repair an archive. */
int
cmdFsck(const Options &opt)
{
    archive::FsckReport report =
        archive::fsckArchive(opt.archiveDir, opt.repair, opt.metrics);
    std::printf("%s", archive::renderFsck(report).c_str());
    if (!opt.jsonPath.empty()) {
        atomicWriteFile(opt.jsonPath,
                        archive::fsckToJson(report).dump(2) + "\n");
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    // The verdict is about the archive's state *now*: a repaired
    // archive exits 0 even though defects were found, an unrepaired
    // (or unrepairable) one exits 5 so scripts can gate on it.
    return report.clean() ? kExitSuccess : kExitCorruption;
}

int
cmdServe(const Options &opt)
{
    if (opt.socketPath.empty())
        fatal("serve requires --socket PATH");
    serve::ServerConfig cfg;
    cfg.socketPath = opt.socketPath;
    cfg.stateDir = opt.stateDir.empty() ? opt.socketPath + ".d"
                                        : opt.stateDir;
    cfg.maxQueue = opt.maxQueue;
    cfg.maxActive = opt.maxActive;
    cfg.resume = opt.serveResume;
    return serve::runServer(cfg);
}

int
cmdSubmit(const Options &opt)
{
    serve::JobSpec spec =
        specFromOptions(opt, opt.workload, opt.workload2);
    serve::SubmitOptions so;
    so.priority = opt.priority;
    so.client = opt.clientName;
    so.wait = !opt.noWait;
    return serve::submitJob(opt.socketPath, spec, so);
}

int
cmdStatus(const Options &opt)
{
    int jobId = -1;
    if (!opt.workload.empty())
        jobId = static_cast<int>(
            parseInt("status", opt.workload.c_str(), 0));
    return serve::requestStatus(opt.socketPath, jobId);
}

int
cmdCancel(const Options &opt)
{
    if (opt.workload.empty())
        fatal("cancel requires a job id");
    return serve::cancelJob(
        opt.socketPath,
        static_cast<int>(
            parseInt("cancel", opt.workload.c_str(), 0)));
}

/** Flush --metrics / --trace files after the command finished. */
void
writeObservability(const Options &opt)
{
    if (opt.metrics && !opt.metricsPath.empty()) {
        atomicWriteFile(opt.metricsPath,
                        opt.metrics->toJson().dump(2) + "\n");
        std::printf("wrote %s\n", opt.metricsPath.c_str());
    }
    if (opt.trace && !opt.tracePath.empty()) {
        opt.trace->endSpansTo(0);
        atomicWriteFile(opt.tracePath,
                        opt.trace->toJson().dump(1) + "\n");
        std::printf("wrote %s\n", opt.tracePath.c_str());
    }
}

/**
 * Commands whose measurement/observability sinks the shared execution
 * engine owns (serve::executeJob creates and flushes them itself, on
 * whichever process runs the job).
 */
bool
engineOwnsJob(const Options &opt)
{
    return opt.command == "run" || opt.command == "suite" ||
        opt.command == "submit" || opt.command == "serve" ||
        opt.command == "status" || opt.command == "cancel" ||
        opt.command == "shutdown";
}

int
dispatch(const Options &opt, const harness::FaultInjector *faults)
{
    if (opt.command == "disasm")
        return cmdDisasm(opt);
    if (opt.command == "run" || opt.command == "suite")
        return runLocalJob(opt);
    if (opt.command == "compare") {
        // One positional: the legacy interp-vs-adaptive measurement.
        // Two positionals: compare two archived entries.
        if (!opt.workload2.empty())
            return runQueryCommand(opt, "compare");
        if (!opt.archiveDir.empty())
            fatal("compare with --archive takes two entry refs, "
                  "e.g. 'compare HEAD~1 HEAD --archive DIR'");
        return cmdCompare(opt, faults);
    }
    if (opt.command == "gate")
        return runQueryCommand(opt, "gate");
    if (opt.command == "explain")
        return runQueryCommand(opt, "explain");
    if (opt.command == "archive")
        return cmdArchive(opt);
    if (opt.command == "fsck")
        return cmdFsck(opt);
    if (opt.command == "sequential")
        return cmdSequential(opt, faults);
    if (opt.command == "profile")
        return cmdProfile(opt);
    if (opt.command == "serve")
        return cmdServe(opt);
    if (opt.command == "submit")
        return cmdSubmit(opt);
    if (opt.command == "status")
        return cmdStatus(opt);
    if (opt.command == "cancel")
        return cmdCancel(opt);
    if (opt.command == "shutdown")
        return serve::shutdownDaemon(opt.socketPath,
                                     opt.shutdownNow);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    installInterruptHandlers();
    Options opt;
    try {
        opt = parseArgs(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitUsage;
    }
    try {
        if (opt.quiet)
            setQuiet(true);
        harness::FaultInjector injector(opt.faultPlan, opt.seed);
        const harness::FaultInjector *faults =
            opt.faultPlan.empty() ? nullptr : &injector;
        // io:* faults arm on durable-I/O calls, not invocations, so
        // they install into the process-wide FsOps seam before any
        // durable work starts. Never uninstalled: the injector must
        // outlive every write, including the observability flush.
        harness::FaultyFsOps faultyFs(opt.faultPlan.ioFaults,
                                      opt.seed);
        if (!opt.faultPlan.ioFaults.empty())
            setFsOps(&faultyFs);
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "env")
            return cmdEnv();
        if (opt.command == "version")
            return cmdVersion();
        if (opt.workload.empty() && opt.command != "suite" &&
            opt.command != "fsck" && opt.command != "serve" &&
            opt.command != "status" && opt.command != "shutdown")
            usage();

        // run/suite (local or daemon-side) create their own sinks
        // inside serve::executeJob; wiring these too would write the
        // files twice.
        MetricsRegistry metrics;
        TraceEmitter trace;
        bool ownSinks = !engineOwnsJob(opt);
        if (ownSinks && !opt.metricsPath.empty())
            opt.metrics = &metrics;
        if (ownSinks && !opt.tracePath.empty())
            opt.trace = &trace;

        int rc = dispatch(opt, faults);
        // Partial artifacts are flushed even after an interrupt, so
        // what was measured is never lost.
        if (ownSinks)
            writeObservability(opt);
        // stdout itself is an artifact consumers parse; a full disk
        // or closed pipe must be a loud failure, not silence.
        if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
            std::fprintf(stderr,
                         "error: writing to stdout failed\n");
            return kExitFailure;
        }
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitFailure;
    }
}
