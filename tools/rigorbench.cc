/**
 * @file
 * rigorbench — command-line front end to the framework.
 *
 *   rigorbench list
 *   rigorbench env
 *   rigorbench disasm <workload>
 *   rigorbench run <workload> [options]
 *   rigorbench compare <workload> [options]
 *   rigorbench compare <baseline> <candidate> --archive DIR
 *   rigorbench sequential <workload> [options]
 *   rigorbench profile <workload> [options]
 *   rigorbench suite [options]
 *   rigorbench gate <baseline> [<candidate>] --archive DIR
 *   rigorbench explain <baseline> <candidate> --archive DIR
 *   rigorbench archive list|prune --archive DIR
 *   rigorbench fsck --archive DIR [--repair]
 *   rigorbench help
 *
 * Common options:
 *   --tier interp|adaptive|threaded
 *                            (run only; default interp,
 *                            profile defaults to adaptive)
 *   --invocations N          (default 8)
 *   --iterations N           (default 20)
 *   --size N                 (default: workload's defaultSize)
 *   --seed S                 (default 0xc0ffee)
 *   --jobs N                 (default 1) worker threads; artifacts
 *                            are byte-identical for every N
 *   --jit-threshold N        (default kDefaultJitThreshold)
 *   --target PCT             (sequential only; default 2)
 *   --json FILE              dump the raw run as JSON
 *   --csv FILE               dump per-iteration samples as CSV
 *   --no-noise               disable the measurement-noise model
 *   --quiet                  silence warn()/inform() status output
 *
 * Observability (see docs/OBSERVABILITY.md):
 *   --metrics FILE           write a metrics-registry JSON snapshot
 *   --trace FILE             write a Chrome trace-event JSON
 *                            (Perfetto-loadable, modelled clock)
 *
 * Fault tolerance:
 *   --inject SPEC            inject a fault (repeatable); SPEC is
 *                            kind[:key=value]... with kind one of
 *                            throw|checksum|stall|ramp and keys
 *                            wl=NAME inv=N n=COUNT p=PROB mag=X;
 *                            or an I/O fault io:subkind[:key=value]...
 *                            with subkind one of short-write|enospc|
 *                            torn-rename|fsync-fail|crash-at=N and
 *                            keys at=N n=COUNT p=PROB op=NAME
 *                            path=SUBSTR mag=X (armed on the durable-
 *                            I/O operations; crash-at kills the
 *                            process with exit 6 at matching call N)
 *   --max-retries N          retries per invocation (default 2)
 *   --deadline-ms X          per-invocation modelled-time deadline
 *
 * Durability (see docs/METHODOLOGY.md §12):
 *   --resume FILE            (suite only) persist checksummed state
 *                            after every workload and skip completed
 *                            ones on restart; a checkpoint interrupted
 *                            mid-write falls back to FILE.bak
 *   --checkpoint-every N     (suite, needs --resume) additionally
 *                            checkpoint every N committed invocations,
 *                            so an interrupted *run* resumes mid-
 *                            workload; final artifacts are invariant
 *                            under the checkpoint cadence
 *
 * Archive & comparison (see docs/METHODOLOGY.md §13):
 *   --archive DIR            (run/suite) append the completed run(s)
 *                            to the archive at DIR; (compare/gate/
 *                            archive) the archive to operate on
 *   --label NAME             label the appended entry
 *   --resamples N            bootstrap resamples (default 2000)
 *   --confidence C           interval confidence (default 0.95)
 *   --gate-threshold PCT     gate regression threshold (default 5)
 *   --keep N                 (archive prune) entries to keep
 *   fsck --archive DIR       verify every file in the archive (CRC
 *                            envelopes, schema versions, naming,
 *                            orphaned temporaries/backups); exit 5
 *                            when corruption is found
 *   --repair                 (fsck) fix what is mechanically fixable:
 *                            restore from valid backups, sweep
 *                            orphaned temporaries, quarantine the
 *                            rest; exit 0 when the archive is clean
 *                            afterwards
 *   --base-tier T --cand-tier T
 *                            (compare/gate/explain on archives)
 *                            cross-tier pairing: baseline runs on
 *                            tier T1 vs candidate runs on tier T2,
 *                            paired by workload (both flags or
 *                            neither)
 *
 * Differential profiling (see docs/METHODOLOGY.md §14):
 *   explain A B              attribute the measured ratio of every
 *                            paired (workload, tier) to opcode-mix,
 *                            tier/deopt, branch and cache components
 *                            (plus an explicit unattributed
 *                            remainder), from the behavior profiles
 *                            archived with each entry
 *   --explain                (gate) append the per-pair attribution
 *                            for every failing pair
 *
 * Entry refs: HEAD (newest), HEAD~N, a decimal id, or a label.
 *
 * Exit codes (stable; scripts may rely on them):
 *   0  success
 *   1  usage error (bad flags/arguments)
 *   2  runtime or suite failure (nothing measurable, I/O error)
 *   3  interrupted (SIGINT/SIGTERM); state is resumable when
 *      --resume was given
 *   4  regression: gate found a workload slower than the baseline
 *      beyond the threshold at the configured confidence
 *   5  corruption: fsck found (or could not repair) archive damage
 *   6  injected crash: an io:crash-at fault killed the process at
 *      the requested call (torture harnesses rely on this code to
 *      tell an injected crash from a real failure)
 */

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "archive/archive.hh"
#include "archive/fsck.hh"
#include "compare/compare.hh"
#include "explain/behavior_profile.hh"
#include "explain/explain.hh"
#include "harness/analysis.hh"
#include "harness/envcheck.hh"
#include "harness/fault.hh"
#include "harness/profile.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sequential.hh"
#include "support/durable_io.hh"
#include "support/interrupt.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/schema.hh"
#include "support/str.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "vm/compiler.hh"

using namespace rigor;

namespace {

// Exit-code table (see the file header). kExitInterrupted (3) lives
// in support/interrupt.hh because the signal handler uses it too.
constexpr int kExitSuccess = 0;
constexpr int kExitUsage = 1;
constexpr int kExitFailure = 2;
/** `gate` found a regression beyond the threshold. */
constexpr int kExitRegression = 4;
/** `fsck` found corruption (or failed to repair it). */
constexpr int kExitCorruption = 5;
// kExitCrashInjected (6) lives in harness/fault.hh with the
// io:crash-at machinery that uses it.

struct Options
{
    std::string command;
    std::string workload;
    /** Second positional (compare/gate candidate ref). */
    std::string workload2;
    vm::Tier tier = vm::Tier::Interp;
    /** True once --tier was given (profile defaults differently). */
    bool tierSet = false;
    /** Cross-tier pairing for compare/gate/explain (both or none). */
    std::string baseTier, candTier;
    int invocations = 8;
    int iterations = 20;
    int jobs = 1;
    int64_t size = 0;
    uint64_t seed = 0xc0ffee;
    int jitThreshold = harness::kDefaultJitThreshold;
    double targetPct = 2.0;
    std::string jsonPath;
    std::string csvPath;
    bool noNoise = false;
    bool quiet = false;
    harness::FaultPlan faultPlan;
    /** Raw --inject specs, kept for the resume-config fingerprint. */
    std::vector<std::string> injectSpecs;
    int maxRetries = 2;
    double deadlineMs = 0.0;
    std::string resumePath;
    int checkpointEvery = 0;
    std::string metricsPath;
    std::string tracePath;
    std::string archiveDir;
    std::string label;
    int resamples = 2000;
    double confidence = 0.95;
    double gateThresholdPct = 5.0;
    int keep = 0;
    /** `gate --explain`: attribute every failing pair. */
    bool explainGate = false;
    /** `fsck --repair`: fix what is mechanically fixable. */
    bool repair = false;

    // Observability sinks, shared by every run of the command
    // (not owned; set up in main when requested).
    MetricsRegistry *metrics = nullptr;
    TraceEmitter *trace = nullptr;
};

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: rigorbench <command> [args] [options]\n"
        "\n"
        "commands:\n"
        "  list                      list the workload suite\n"
        "  env                       report environment hygiene\n"
        "  disasm <workload>         disassemble a workload\n"
        "  run <workload>            measure one workload\n"
        "  compare <workload>        interp-vs-adaptive speedup\n"
        "  compare <base> <cand>     compare two archive entries\n"
        "                            (needs --archive DIR)\n"
        "  sequential <workload>     run until the CI is tight\n"
        "  profile <workload>        per-opcode/JIT profile\n"
        "  suite                     measure the whole suite\n"
        "  gate <base> [<cand>]      fail (exit 4) on regression vs\n"
        "                            base; cand defaults to HEAD\n"
        "  explain <base> <cand>     attribute the measured ratio to\n"
        "                            behavior components\n"
        "                            (needs --archive DIR)\n"
        "  archive list|prune        inspect / trim an archive\n"
        "  fsck                      verify an archive (--repair to\n"
        "                            fix); needs --archive DIR\n"
        "  help                      this text\n"
        "\n"
        "entry refs: HEAD, HEAD~N, a decimal id, or a --label name\n"
        "\n"
        "options: --tier interp|adaptive|threaded --invocations N "
        "--iterations N --size N --jobs N\n"
        "         --seed S --jit-threshold N --target PCT "
        "--json FILE --csv FILE --no-noise\n"
        "         --inject SPEC --max-retries N --deadline-ms X "
        "--resume FILE\n"
        "         --checkpoint-every N --metrics FILE --trace FILE "
        "--quiet\n"
        "         --archive DIR --label NAME --resamples N "
        "--confidence C\n"
        "         --gate-threshold PCT --keep N --explain "
        "--repair\n"
        "         --base-tier TIER --cand-tier TIER\n"
        "\n"
        "exit codes: 0 success, 1 usage error, 2 runtime failure,\n"
        "            3 interrupted (resumable with --resume),\n"
        "            4 regression detected by gate,\n"
        "            5 corruption found by fsck,\n"
        "            6 injected crash (io:crash-at fault)\n");
}

[[noreturn]] void
usage()
{
    printUsage(stderr);
    std::exit(kExitUsage);
}

/**
 * Strict integer parsing: rejects garbage instead of yielding 0 and
 * overflow instead of silently clamping to LLONG_MAX (strtoll sets
 * errno=ERANGE but still returns a "valid-looking" value, so e.g.
 * --invocations 99999999999999999999 used to be accepted).
 */
int64_t
parseInt(const char *flag, const char *text, int64_t min_value)
{
    char *end = nullptr;
    errno = 0;
    long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0')
        fatal("%s expects an integer, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    if (v < min_value)
        fatal("%s must be >= %lld, got %lld", flag,
              static_cast<long long>(min_value), v);
    return v;
}

double
parseDouble(const char *flag, const char *text, double min_value)
{
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal("%s expects a number, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    if (v < min_value)
        fatal("%s must be >= %g, got %g", flag, min_value, v);
    return v;
}

/** Strict seed parsing (decimal, hex or octal; full uint64 range). */
uint64_t
parseSeed(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
        fatal("%s expects an integer, got '%s'", flag, text);
    if (errno == ERANGE)
        fatal("%s out of range: '%s'", flag, text);
    return v;
}

/**
 * A mistyped tier value is a runtime failure (exit 2), not a usage
 * error: the flag itself was recognized, its value wasn't. Name the
 * offending value instead of drowning it in the usage wall.
 */
vm::Tier
parseTier(const char *text)
{
    std::string t = text;
    if (t == "interp")
        return vm::Tier::Interp;
    if (t == "adaptive")
        return vm::Tier::Adaptive;
    if (t == "threaded")
        return vm::Tier::Threaded;
    std::fprintf(stderr,
                 "unknown tier '%s' (expected "
                 "interp|adaptive|threaded)\n",
                 t.c_str());
    std::exit(kExitFailure);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    if (argc < 2)
        usage();
    opt.command = argv[1];
    if (opt.command == "help" || opt.command == "--help" ||
        opt.command == "-h") {
        printUsage(stdout);
        std::exit(0);
    }
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        opt.workload = argv[i++];
    if (i < argc && argv[i][0] != '-')
        opt.workload2 = argv[i++];
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            printUsage(stdout);
            std::exit(0);
        } else if (a == "--tier") {
            opt.tier = parseTier(next());
            opt.tierSet = true;
        } else if (a == "--base-tier") {
            opt.baseTier = vm::tierName(parseTier(next()));
        } else if (a == "--cand-tier") {
            opt.candTier = vm::tierName(parseTier(next()));
        } else if (a == "--invocations") {
            opt.invocations = static_cast<int>(
                parseInt("--invocations", next(), 1));
        } else if (a == "--iterations") {
            opt.iterations = static_cast<int>(
                parseInt("--iterations", next(), 1));
        } else if (a == "--size") {
            opt.size = parseInt("--size", next(), 1);
        } else if (a == "--seed") {
            opt.seed = parseSeed("--seed", next());
        } else if (a == "--jobs") {
            opt.jobs =
                static_cast<int>(parseInt("--jobs", next(), 1));
        } else if (a == "--jit-threshold") {
            opt.jitThreshold = static_cast<int>(
                parseInt("--jit-threshold", next(), 1));
        } else if (a == "--target") {
            opt.targetPct = parseDouble("--target", next(), 1e-6);
        } else if (a == "--json") {
            opt.jsonPath = next();
        } else if (a == "--csv") {
            opt.csvPath = next();
        } else if (a == "--no-noise") {
            opt.noNoise = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--metrics") {
            opt.metricsPath = next();
        } else if (a == "--trace") {
            opt.tracePath = next();
        } else if (a == "--inject") {
            const char *spec = next();
            opt.faultPlan.add(spec);
            opt.injectSpecs.push_back(spec);
        } else if (a == "--max-retries") {
            opt.maxRetries = static_cast<int>(
                parseInt("--max-retries", next(), 0));
        } else if (a == "--deadline-ms") {
            opt.deadlineMs = parseDouble("--deadline-ms", next(),
                                         1e-9);
        } else if (a == "--resume") {
            opt.resumePath = next();
        } else if (a == "--checkpoint-every") {
            opt.checkpointEvery = static_cast<int>(
                parseInt("--checkpoint-every", next(), 1));
        } else if (a == "--archive") {
            opt.archiveDir = next();
        } else if (a == "--label") {
            opt.label = next();
        } else if (a == "--resamples") {
            opt.resamples = static_cast<int>(
                parseInt("--resamples", next(), 10));
        } else if (a == "--confidence") {
            opt.confidence =
                parseDouble("--confidence", next(), 1e-6);
            if (opt.confidence >= 1.0)
                fatal("--confidence must be < 1, got %g",
                      opt.confidence);
        } else if (a == "--gate-threshold") {
            opt.gateThresholdPct =
                parseDouble("--gate-threshold", next(), 0.0);
        } else if (a == "--keep") {
            opt.keep =
                static_cast<int>(parseInt("--keep", next(), 1));
        } else if (a == "--explain") {
            opt.explainGate = true;
        } else if (a == "--repair") {
            opt.repair = true;
        } else {
            usage();
        }
    }
    if (opt.checkpointEvery > 0 &&
        (opt.command != "suite" || opt.resumePath.empty()))
        fatal("--checkpoint-every requires 'suite' with --resume "
              "(checkpoints are written to the resume state file)");
    // A resumed suite only re-measures what the interrupted process
    // left unfinished; archiving it would record a partial picture of
    // the suite as if it were complete.
    if (!opt.archiveDir.empty() && !opt.resumePath.empty())
        fatal("--archive cannot be combined with --resume; "
              "archive the suite in a single uninterrupted run");
    if (!opt.workload2.empty() && opt.command != "compare" &&
        opt.command != "gate" && opt.command != "explain")
        fatal("unexpected extra argument '%s'",
              opt.workload2.c_str());
    if (opt.explainGate && opt.command != "gate")
        fatal("--explain only applies to 'gate' (use the 'explain' "
              "command for a standalone report)");
    if (opt.repair && opt.command != "fsck")
        fatal("--repair only applies to 'fsck'");
    if (opt.command == "fsck" && !opt.workload.empty())
        fatal("fsck takes no positional argument (got '%s'); the "
              "archive comes from --archive DIR",
              opt.workload.c_str());
    if (opt.command == "fsck" && opt.archiveDir.empty())
        fatal("fsck requires --archive DIR");
    if (opt.baseTier.empty() != opt.candTier.empty())
        fatal("cross-tier comparison needs both --base-tier and "
              "--cand-tier (got baseline '%s', candidate '%s')",
              opt.baseTier.c_str(), opt.candTier.c_str());
    if (!opt.baseTier.empty() && opt.command != "compare" &&
        opt.command != "gate" && opt.command != "explain")
        fatal("--base-tier/--cand-tier only apply to "
              "'compare', 'gate' and 'explain'");
    return opt;
}

harness::RunnerConfig
makeConfig(const Options &opt, vm::Tier tier,
           const harness::FaultInjector *faults)
{
    harness::RunnerConfig cfg;
    cfg.invocations = opt.invocations;
    cfg.iterations = opt.iterations;
    cfg.tier = tier;
    cfg.size = opt.size;
    cfg.seed = opt.seed;
    cfg.jobs = opt.jobs;
    cfg.jitThreshold = opt.jitThreshold;
    cfg.noise.enabled = !opt.noNoise;
    cfg.maxRetries = opt.maxRetries;
    cfg.deadlineMs = opt.deadlineMs;
    cfg.faults = faults;
    cfg.metrics = opt.metrics;
    cfg.trace = opt.trace;
    return cfg;
}

// Defined with the other archive plumbing below.
void archiveAppend(const Options &opt,
                   const std::vector<harness::RunResult> &runs);

void
dumpOutputs(const Options &opt, const harness::RunResult &run)
{
    if (!opt.jsonPath.empty()) {
        atomicWriteFile(opt.jsonPath,
                        harness::runToJson(run).dump(2) + "\n");
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        std::ostringstream os;
        harness::writeSeriesCsv(os, run);
        atomicWriteFile(opt.csvPath, os.str());
        std::printf("wrote %s\n", opt.csvPath.c_str());
    }
}

/** Failure/quarantine bookkeeping printed after a degraded run. */
void
printRunFailures(const harness::RunResult &run)
{
    if (run.failures.empty() && !run.quarantined)
        return;
    std::printf("  failures: %zu recorded, %zu invocation(s) "
                "succeeded of %d attempted\n",
                run.failures.size(), run.invocations.size(),
                run.invocationsAttempted);
    for (const auto &f : run.failures)
        std::printf("    inv %d attempt %d [%s]: %s\n", f.invocation,
                    f.attempt, harness::failureKindName(f.kind),
                    f.message.c_str());
    if (run.quarantined)
        std::printf("  QUARANTINED: %s\n",
                    run.quarantineReason.c_str());
}

void
printEstimate(const harness::RunResult &run)
{
    if (run.invocations.empty()) {
        std::printf("%s / %s: no successful invocations\n",
                    run.workload.c_str(), vm::tierName(run.tier));
        printRunFailures(run);
        return;
    }
    auto est = harness::rigorousEstimate(run);
    const auto &ss = est.steadyState;
    std::printf("%s / %s  (%zu invocations x %zu iterations, "
                "size %lld)\n",
                run.workload.c_str(), vm::tierName(run.tier),
                run.invocations.size(),
                run.invocations.front().samples.size(),
                static_cast<long long>(run.size));
    std::printf("  time/iter: %s ms   (%s)\n",
                harness::formatCi(est.ci, 4).c_str(),
                harness::formatCiPercent(est.ci, 4).c_str());
    std::printf("  series: %d flat, %d warmup, %d slowdown, "
                "%d no-steady-state; mean warmup %.1f iters\n",
                ss.flat, ss.warmup, ss.slowdown, ss.noSteadyState,
                ss.meanSteadyStart);
    std::printf("  first invocation: %s\n",
                harness::sparkline(run.invocations.front().times())
                    .c_str());
    printRunFailures(run);
}

int
cmdEnv()
{
    harness::EnvReport report = harness::collectEnvironment();
    std::printf("%s", report.render().c_str());
    std::printf("%d warning(s)\n", report.warningCount());
    return kExitSuccess;
}

int
cmdList()
{
    Table t({"name", "category", "default size", "description"});
    for (const auto &w : workloads::suite()) {
        t.addRow({w.name, workloads::categoryName(w.category),
                  std::to_string(w.defaultSize), w.description});
    }
    std::printf("%s", t.render().c_str());
    return kExitSuccess;
}

int
cmdDisasm(const Options &opt)
{
    const auto &spec = workloads::findWorkload(opt.workload);
    vm::Program prog = vm::compileSource(spec.source, spec.name);
    std::printf("%s", prog.module->disassemble().c_str());
    return kExitSuccess;
}

int
cmdRun(const Options &opt, const harness::FaultInjector *faults)
{
    auto run = harness::runExperiment(
        opt.workload, makeConfig(opt, opt.tier, faults));
    printEstimate(run);
    dumpOutputs(opt, run);
    if (run.interrupted)
        return kExitInterrupted;
    if (run.invocations.empty())
        return kExitFailure;
    // Only completed runs are archived: a partial run would later
    // compare as if it were the whole measurement.
    if (!opt.archiveDir.empty())
        archiveAppend(opt, {run});
    return kExitSuccess;
}

int
cmdProfile(const Options &opt)
{
    harness::ProfileConfig pcfg;
    // Profiling is mostly about explaining warmup/JIT behaviour, so
    // the adaptive tier is the default here (run's default stays
    // interp); --tier still overrides.
    pcfg.tier = opt.tierSet ? opt.tier : vm::Tier::Adaptive;
    pcfg.iterations = opt.iterations;
    pcfg.size = opt.size;
    pcfg.seed = opt.seed;
    pcfg.jitThreshold = opt.jitThreshold;
    auto prof = harness::profileWorkload(opt.workload, pcfg);
    std::printf("%s", harness::renderProfile(prof).c_str());
    return kExitSuccess;
}

int
cmdCompare(const Options &opt, const harness::FaultInjector *faults)
{
    auto interp = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Interp, faults));
    if (interp.interrupted) {
        printEstimate(interp);
        return kExitInterrupted;
    }
    auto jit = harness::runExperiment(
        opt.workload, makeConfig(opt, vm::Tier::Adaptive, faults));
    printEstimate(interp);
    printEstimate(jit);
    if (jit.interrupted)
        return kExitInterrupted;
    if (interp.invocations.empty() || jit.invocations.empty())
        return kExitFailure;
    auto s = harness::rigorousSpeedup(interp, jit);
    std::printf("speedup (adaptive over interp): %s %s\n",
                harness::formatCi(s.ci, 3).c_str(),
                s.significant ? "(significant)"
                              : "(not significant)");
    return kExitSuccess;
}

int
cmdSequential(const Options &opt,
              const harness::FaultInjector *faults)
{
    harness::SequentialConfig seq;
    seq.targetRelativeHalfWidth = opt.targetPct / 100.0;
    seq.maxInvocations = std::max(opt.invocations, 8);
    auto res = harness::runSequential(
        opt.workload, makeConfig(opt, opt.tier, faults), seq);
    printEstimate(res.run);
    if (!res.run.invocations.empty() && !res.run.interrupted) {
        std::printf("  sequential: %s after %d invocations "
                    "(target ±%.1f%%)\n",
                    res.converged ? "converged" : "budget exhausted",
                    res.invocationsUsed, opt.targetPct);
        std::printf("  width trajectory:");
        for (double w : res.widthTrajectory)
            std::printf(" %.2f%%", 100.0 * w);
        std::printf("\n");
    }
    dumpOutputs(opt, res.run);
    if (res.run.interrupted)
        return kExitInterrupted;
    return res.run.invocations.empty() ? kExitFailure
                                       : kExitSuccess;
}

/**
 * inform()/warn() plus a mirror of the message into the trace as a
 * "log" instant, so suite progress lands next to the spans it
 * narrates. The runner mirrors its own messages the same way
 * (caller-owned mirroring keeps serial and parallel traces
 * byte-identical; a sink cannot, because parallel workers buffer
 * their messages and replay them later).
 */
__attribute__((format(printf, 3, 4))) void
logTraced(const Options &opt, LogLevel level, const char *fmt, ...)
{
    if (opt.quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    if (opt.trace)
        opt.trace->logInstant(logLevelName(level), msg);
    if (level == LogLevel::Warn)
        warn("%s", msg.c_str());
    else
        inform("%s", msg.c_str());
}

/**
 * The subset of the configuration that determines measurements.
 * Stored in every checkpoint and compared verbatim on resume: a
 * resume with a different fingerprint would silently mix incomparable
 * measurements, so it is rejected. --jobs and --checkpoint-every are
 * deliberately absent — artifacts are invariant under both, and
 * resuming at a different parallelism or cadence is supported.
 */
Json
configJson(const Options &opt)
{
    Json c = Json::object();
    c.set("seed", strprintf("0x%016llx",
                            static_cast<unsigned long long>(
                                opt.seed)));
    c.set("invocations", opt.invocations);
    c.set("iterations", opt.iterations);
    c.set("size", opt.size);
    c.set("jit_threshold", opt.jitThreshold);
    c.set("max_retries", opt.maxRetries);
    c.set("deadline_ms", opt.deadlineMs);
    c.set("no_noise", opt.noNoise);
    // Cosmetic at first sight, but --quiet suppresses the log-mirror
    // instants in the trace, so it changes artifact bytes.
    c.set("quiet", opt.quiet);
    Json inj = Json::array();
    // io:* specs are excluded: they perturb the durability layer,
    // never the measurements, and the main reason to resume is a
    // crash one of them injected — the resume command won't (and must
    // not need to) repeat the flag.
    for (const auto &s : opt.injectSpecs)
        if (!startsWith(s, "io:"))
            inj.push(s);
    c.set("inject", std::move(inj));
    return c;
}

/**
 * The tiers a suite measures, in execution order. The order is part
 * of the resume-state contract: checkpoints identify the tier in
 * flight by name, and a resumed process walks this list to find where
 * the interrupted one stopped.
 */
constexpr vm::Tier kSuiteTiers[] = {vm::Tier::Interp,
                                    vm::Tier::Adaptive,
                                    vm::Tier::Threaded};
constexpr size_t kSuiteTierCount =
    sizeof(kSuiteTiers) / sizeof(kSuiteTiers[0]);

/**
 * The archived configuration: the resume fingerprint plus what it
 * leaves implicit — which workloads ran on which tiers, and the run
 * schema version. Two entries with equal fingerprints measured the
 * same experiment, so `compare` can promise that any difference is a
 * performance change.
 */
Json
archiveConfigJson(const Options &opt)
{
    Json c = configJson(opt);
    c.set("schema_version", kRunSchemaVersion);
    Json wls = Json::array();
    Json tiers = Json::array();
    if (opt.command == "suite") {
        for (const auto &w : workloads::suite())
            wls.push(w.name);
        for (vm::Tier tier : kSuiteTiers)
            tiers.push(vm::tierName(tier));
    } else {
        wls.push(opt.workload);
        tiers.push(vm::tierName(opt.tier));
    }
    c.set("workloads", std::move(wls));
    c.set("tiers", std::move(tiers));
    return c;
}

/**
 * Append completed runs to --archive DIR and say where they went.
 * Each run is archived with its behavior profile so a later
 * `explain` can attribute measured differences; the profile is a
 * pure function of the committed run, hence byte-identical across
 * repeats and --jobs values. (--archive excludes --resume, so runs
 * here always come from this process with live VM statistics.)
 */
void
archiveAppend(const Options &opt,
              const std::vector<harness::RunResult> &runs)
{
    archive::RunArchive ar(opt.archiveDir);
    std::vector<Json> profiles;
    for (const auto &r : runs) {
        // Only the uarch/clock parameters matter for the profile;
        // they are tier- and fault-independent.
        harness::RunnerConfig cfg = makeConfig(opt, r.tier, nullptr);
        profiles.push_back(
            explain::profileToJson(explain::buildProfile(r, cfg)));
    }
    int id = ar.append(archiveConfigJson(opt), opt.label,
                       opt.command, runs, profiles);
    std::printf("archived as #%d in %s (%zu run(s) with behavior "
                "profiles)\n",
                id, opt.archiveDir.c_str(), runs.size());
}

/**
 * Writes the suite's checksummed resume state (durable_io envelope).
 * A checkpoint captures everything a resumed process needs to
 * continue byte-identically: the completed-workload table, the
 * partial run(s) of the workload in flight, and snapshots of the
 * shared metrics registry and trace emitter taken at the same commit
 * boundary (the runner invokes writeInProgress on the committing
 * thread while the shared sinks are quiescent, so the snapshot is
 * race-free at any --jobs value).
 */
class SuiteCheckpointer
{
  public:
    SuiteCheckpointer(const Options &opt,
                      const harness::SuiteState &state)
        : opt_(opt), state_(state)
    {}

    /** A workload's measurement is starting (no tier in flight yet). */
    void beginWorkload(const std::string &name)
    {
        currentName_ = name;
        currentTier_.clear();
        doneTiers_.clear();
    }

    /** The named tier's run is starting; it is now the one in flight. */
    void beginTier(vm::Tier tier) { currentTier_ = vm::tierName(tier); }

    /**
     * The in-flight tier's run finished; `run` outlives the
     * remaining tier runs of this workload.
     */
    void setTierDone(const harness::RunResult *run)
    {
        doneTiers_.emplace_back(vm::tierName(run->tier), run);
        currentTier_.clear();
    }

    /** The workload finished (or failed); nothing is in flight. */
    void endWorkload()
    {
        currentName_.clear();
        currentTier_.clear();
        doneTiers_.clear();
    }

    /** Checkpoint between workloads (after a completed one commits). */
    void writeCompleted() { write(nullptr); }

    /** Mid-run checkpoint (the runner's onCheckpoint callback). */
    void writeInProgress(const harness::RunResult &run)
    {
        write(&run);
    }

  private:
    void
    write(const harness::RunResult *current)
    {
        Json payload = Json::object();
        payload.set("kind", "suite");
        payload.set("config", configJson(opt_));
        payload.set("suite", harness::suiteStateToJson(state_));
        if (current) {
            Json ip = Json::object();
            ip.set("name", currentName_);
            // Completed tiers first, then the partial run of the tier
            // in flight — each under its tier name, so a resumed
            // process can walk kSuiteTiers and find where this one
            // stopped.
            for (const auto &[tier, run] : doneTiers_)
                ip.set(tier, harness::runToJson(*run));
            ip.set(currentTier_, harness::runToJson(*current));
            payload.set("in_progress", std::move(ip));
        }
        if (opt_.metrics)
            payload.set("metrics", opt_.metrics->toJson());
        if (opt_.trace)
            payload.set("trace", opt_.trace->checkpointJson());
        writeStateFile(opt_.resumePath, payload);
    }

    const Options &opt_;
    const harness::SuiteState &state_;
    std::string currentName_;
    /** Tier name of the run in flight (empty between tier runs). */
    std::string currentTier_;
    /** Completed (tier name, run) pairs of the current workload. */
    std::vector<std::pair<std::string, const harness::RunResult *>>
        doneTiers_;
};

/** Outcome of measuring (or resuming) one suite workload. */
struct SuiteStep
{
    harness::SuiteWorkloadState ws;
    /** True when an interrupt stopped the measurement mid-way. */
    bool interrupted = false;
    /** Full runs, kept only when the suite is being archived. */
    std::vector<harness::RunResult> runs;
};

/** Runner config for one suite run, wired to the checkpointer. */
harness::RunnerConfig
suiteRunConfig(const Options &opt, const std::string &name,
               vm::Tier tier, const harness::FaultInjector *faults,
               SuiteCheckpointer *ckpt)
{
    Options o = opt;
    o.workload = name;
    harness::RunnerConfig cfg = makeConfig(o, tier, faults);
    if (ckpt) {
        cfg.checkpointEvery = opt.checkpointEvery;
        cfg.onCheckpoint = [ckpt](const harness::RunResult &r) {
            ckpt->writeInProgress(r);
        };
    }
    return cfg;
}

/** Estimates and bookkeeping once all tier runs are complete. */
void
finishWorkloadState(harness::SuiteWorkloadState &ws,
                    const harness::RunResult &interp,
                    const harness::RunResult &jit,
                    const harness::RunResult &threaded)
{
    ws.quarantined = interp.quarantined || jit.quarantined ||
        threaded.quarantined;
    ws.failureCount = static_cast<int>(interp.failures.size() +
                                       jit.failures.size() +
                                       threaded.failures.size());
    ws.modelledMs = interp.totalModelledMs() + jit.totalModelledMs() +
        threaded.totalModelledMs();
    if (interp.invocations.size() < 2 || jit.invocations.size() < 2 ||
        threaded.invocations.size() < 2) {
        ws.failed = true;
        return;
    }
    ws.interpMs = harness::rigorousEstimate(interp).ci.estimate;
    ws.adaptiveMs = harness::rigorousEstimate(jit).ci.estimate;
    ws.threadedMs = harness::rigorousEstimate(threaded).ci.estimate;
    ws.speedup = harness::rigorousSpeedup(interp, jit);
    ws.threadedSpeedup = harness::rigorousSpeedup(interp, threaded);
}

/**
 * Measure one workload on every suite tier. Degrades gracefully:
 * failures and quarantines are recorded in the returned state instead
 * of propagating, so one broken workload cannot sink the suite.
 */
SuiteStep
runSuiteWorkload(const workloads::WorkloadSpec &w, const Options &opt,
                 const harness::FaultInjector *faults,
                 SuiteCheckpointer *ckpt)
{
    SuiteStep step;
    step.ws.name = w.name;
    if (ckpt)
        ckpt->beginWorkload(w.name);
    try {
        // Deque, not vector: setTierDone keeps a pointer into the
        // container, so earlier runs must not move when later tiers
        // are appended.
        std::deque<harness::RunResult> runs;
        for (vm::Tier tier : kSuiteTiers) {
            if (ckpt)
                ckpt->beginTier(tier);
            runs.push_back(harness::runExperiment(
                w, suiteRunConfig(opt, w.name, tier, faults, ckpt)));
            if (runs.back().interrupted) {
                step.interrupted = true;
                return step;
            }
            if (ckpt)
                ckpt->setTierDone(&runs.back());
        }
        if (ckpt)
            ckpt->endWorkload();
        finishWorkloadState(step.ws, runs[0], runs[1], runs[2]);
        if (!opt.archiveDir.empty())
            for (auto &r : runs)
                step.runs.push_back(std::move(r));
    } catch (const FatalError &) {
        // Infrastructure failure (a checkpoint write died on a full
        // disk, say), not a workload failure: recording it as
        // "workload failed" would let the suite carry on without the
        // durability the user asked for. Abort loudly instead.
        throw;
    } catch (const std::exception &e) {
        if (ckpt)
            ckpt->endWorkload();
        logTraced(opt, LogLevel::Warn, "workload %s failed: %s",
                  w.name.c_str(), e.what());
        step.ws.failed = true;
    }
    return step;
}

/** A checkpointed run is done once every slot ran (or quarantine). */
bool
runComplete(const harness::RunResult &run, const Options &opt)
{
    return run.quarantined ||
        run.invocationsAttempted >= opt.invocations;
}

/**
 * When --trace is given on resume but the checkpoint carried no trace
 * snapshot (the interrupted process ran without --trace), the restored
 * partial run has no open workload span; open one so the span nesting
 * resumeExperiment expects holds. The resulting trace is well formed
 * but starts mid-suite — byte-identity needs identical flags across
 * the interruption, which the config fingerprint cannot enforce for
 * observability sinks.
 */
void
ensureWorkloadSpanOpen(const Options &opt,
                       const workloads::WorkloadSpec &w,
                       const harness::RunResult &run)
{
    if (!opt.trace || opt.trace->openSpans() > 1)
        return;
    Json args = Json::object();
    args.set("tier", vm::tierName(run.tier));
    args.set("size", run.size);
    opt.trace->beginSpan(w.name, "workload", std::move(args));
}

/**
 * Continue the workload a checkpoint left in flight. The partial
 * run(s) come from the checkpoint's in_progress record; invocation
 * seeds are pure functions of (seed, slot, attempt), so extending the
 * restored run reproduces exactly what the uninterrupted run would
 * have measured — estimates, metrics and trace come out
 * byte-identical.
 */
SuiteStep
resumeSuiteWorkload(const workloads::WorkloadSpec &w,
                    const Options &opt,
                    const harness::FaultInjector *faults,
                    SuiteCheckpointer *ckpt, const Json &ip)
{
    SuiteStep step;
    step.ws.name = w.name;
    // Deserialize the checkpointed partial run(s) before entering the
    // degrade-gracefully region: a record that cannot be restored
    // (e.g. an unknown tier string in a hand-edited file) means the
    // checkpoint itself cannot be trusted, so the resume must abort
    // loudly instead of re-measuring the workload as merely "failed".
    std::array<std::optional<harness::RunResult>, kSuiteTierCount>
        restored;
    for (size_t i = 0; i < kSuiteTierCount; ++i)
        if (const Json *tj = ip.get(vm::tierName(kSuiteTiers[i])))
            restored[i] = harness::runFromJson(*tj);
    if (ckpt)
        ckpt->beginWorkload(w.name);
    try {
        // Deque for pointer stability, as in runSuiteWorkload.
        std::deque<harness::RunResult> runs;
        for (size_t i = 0; i < kSuiteTierCount; ++i) {
            vm::Tier tier = kSuiteTiers[i];
            if (restored[i]) {
                runs.push_back(std::move(*restored[i]));
                auto &run = runs.back();
                if (!runComplete(run, opt)) {
                    ensureWorkloadSpanOpen(opt, w, run);
                    if (ckpt)
                        ckpt->beginTier(tier);
                    harness::resumeExperiment(
                        w,
                        suiteRunConfig(opt, w.name, tier, faults,
                                       ckpt),
                        run);
                    if (run.interrupted) {
                        step.interrupted = true;
                        return step;
                    }
                }
                // A restored-complete run still has its workload span
                // open in the restored trace (the checkpoint fired at
                // the final commit boundary, before the span closed);
                // emit the close the uninterrupted run would have
                // emitted. Only when the next tier's run had not
                // started yet, though: once it has, this tier's span
                // was closed before the checkpoint and the open span
                // belongs to the next tier's run.
                bool nextRestored = i + 1 < kSuiteTierCount &&
                    restored[i + 1].has_value();
                if (opt.trace && !nextRestored)
                    opt.trace->endSpansTo(1);
            } else {
                if (ckpt)
                    ckpt->beginTier(tier);
                runs.push_back(harness::runExperiment(
                    w,
                    suiteRunConfig(opt, w.name, tier, faults, ckpt)));
                if (runs.back().interrupted) {
                    step.interrupted = true;
                    return step;
                }
            }
            if (ckpt)
                ckpt->setTierDone(&runs.back());
        }
        if (ckpt)
            ckpt->endWorkload();
        finishWorkloadState(step.ws, runs[0], runs[1], runs[2]);
    } catch (const FatalError &) {
        // As in runSuiteWorkload: a dead checkpoint write must stop
        // the suite, not degrade to a "failed" workload.
        throw;
    } catch (const std::exception &e) {
        if (ckpt)
            ckpt->endWorkload();
        logTraced(opt, LogLevel::Warn, "workload %s failed: %s",
                  w.name.c_str(), e.what());
        step.ws.failed = true;
    }
    return step;
}

int
cmdSuite(const Options &opt, const harness::FaultInjector *faults)
{
    harness::SuiteState state;
    state.seed = opt.seed;
    state.invocations = opt.invocations;
    state.iterations = opt.iterations;

    std::unique_ptr<SuiteCheckpointer> ckpt;
    Json inProgress;  // null unless a checkpoint left a run in flight
    bool resuming = false;
    if (!opt.resumePath.empty()) {
        ckpt = std::make_unique<SuiteCheckpointer>(opt, state);
        if (stateFileExists(opt.resumePath)) {
            StateLoad load = loadStateFile(opt.resumePath);
            if (load.usedBackup)
                warn("%s", load.warning.c_str());
            const Json &payload = load.payload;
            if (!payload.has("kind") ||
                payload.at("kind").asString() != "suite")
                fatal("%s does not hold suite resume state",
                      opt.resumePath.c_str());
            Json current = configJson(opt);
            if (payload.at("config").dump() != current.dump())
                fatal("%s was recorded with a different "
                      "configuration; refusing to mix incomparable "
                      "measurements\n  recorded: %s\n  current:  %s",
                      opt.resumePath.c_str(),
                      payload.at("config").dump().c_str(),
                      current.dump().c_str());
            state = harness::suiteStateFromJson(payload.at("suite"));
            if (opt.metrics)
                if (const Json *m = payload.get("metrics"))
                    opt.metrics->restoreFromJson(*m);
            if (opt.trace)
                if (const Json *t = payload.get("trace"))
                    opt.trace->restoreCheckpoint(*t);
            if (const Json *ip = payload.get("in_progress"))
                inProgress = *ip;
            resuming = true;
            // Plain inform(), not logTraced(): the bookkeeping
            // message must not land in the trace, or a resumed trace
            // would differ from an uninterrupted one.
            if (!opt.quiet)
                inform("resuming from %s: %zu workload(s) already "
                       "done%s",
                       opt.resumePath.c_str(), state.workloads.size(),
                       inProgress.isNull() ? ""
                                           : ", one in progress");
        }
    }

    // A restored trace checkpoint already has the suite span open.
    if (opt.trace && opt.trace->openSpans() == 0)
        opt.trace->beginSpan("suite", "harness");

    // Heartbeat bookkeeping: long sweeps print one progress line per
    // workload so a terminal shows where the suite is and how much
    // modelled time and how many failures have accumulated.
    size_t total = workloads::suite().size();
    size_t done = 0;
    double modelledMsTotal = 0.0;
    int failuresTotal = 0;
    bool interrupted = false;
    std::vector<harness::RunResult> archiveRuns;
    for (const auto &w : workloads::suite()) {
        ++done;
        if (resuming && state.find(w.name)) {
            const auto *ws = state.find(w.name);
            modelledMsTotal += ws->modelledMs;
            failuresTotal += ws->failureCount;
            continue;
        }
        // Poll between workloads too, so a signal caught outside a
        // run (e.g. while estimates were computed) stops the suite
        // before more measurement work starts.
        if (interruptRequested()) {
            interrupted = true;
            break;
        }
        SuiteStep step;
        if (!inProgress.isNull() &&
            inProgress.at("name").asString() == w.name) {
            Json ip = std::move(inProgress);
            inProgress = Json();
            step = resumeSuiteWorkload(w, opt, faults, ckpt.get(),
                                       ip);
        } else {
            step = runSuiteWorkload(w, opt, faults, ckpt.get());
        }
        if (step.interrupted) {
            // The final checkpoint was already written at the commit
            // boundary that observed the interrupt (with the partial
            // run attached); writing another here would capture
            // post-run state instead.
            interrupted = true;
            break;
        }
        for (auto &r : step.runs)
            archiveRuns.push_back(std::move(r));
        state.workloads.push_back(std::move(step.ws));
        const auto &ws = state.workloads.back();
        modelledMsTotal += ws.modelledMs;
        failuresTotal += ws.failureCount;
        logTraced(opt, LogLevel::Info,
                  "suite [%zu/%zu] %s: %s; %.1f ms modelled, "
                  "%d failure(s) so far",
                  done, total, w.name.c_str(),
                  ws.quarantined ? "quarantined"
                      : ws.failed ? "failed"
                                  : "ok",
                  modelledMsTotal, failuresTotal);
        if (opt.metrics) {
            opt.metrics->gauge("suite.workloads_done")
                .set(static_cast<double>(done));
            opt.metrics->gauge("suite.modelled_ms_total")
                .set(modelledMsTotal);
        }
        if (ckpt)
            ckpt->writeCompleted();
    }

    if (opt.trace)
        opt.trace->endSpansTo(0);

    Table t({"benchmark", "interp ms", "adaptive ms", "threaded ms",
             "adaptive speedup (95% CI)", "sig",
             "threaded speedup (95% CI)", "sig"});
    std::vector<harness::SpeedupResult> speedups;
    std::vector<harness::SpeedupResult> threadedSpeedups;
    int degraded = 0;
    for (const auto &w : workloads::suite()) {
        const auto *ws = state.find(w.name);
        if (!ws)
            continue;
        if (ws->failed) {
            t.addRow({ws->name, "-", "-", "-",
                      ws->quarantined ? "(quarantined)" : "(failed)",
                      "-", "-", "-"});
            ++degraded;
            continue;
        }
        speedups.push_back(ws->speedup);
        threadedSpeedups.push_back(ws->threadedSpeedup);
        t.addRow({ws->name, fmtDouble(ws->interpMs, 4),
                  fmtDouble(ws->adaptiveMs, 4),
                  fmtDouble(ws->threadedMs, 4),
                  harness::formatCi(ws->speedup.ci, 2),
                  ws->speedup.significant ? "y" : "n",
                  harness::formatCi(ws->threadedSpeedup.ci, 2),
                  ws->threadedSpeedup.significant ? "y" : "n"});
        if (ws->quarantined || ws->failureCount > 0)
            ++degraded;
    }
    std::printf("%s", t.render().c_str());
    if (!speedups.empty()) {
        auto geo = harness::geomeanSpeedup(speedups);
        std::printf("geomean speedup (adaptive over interp): %s\n",
                    harness::formatCi(geo, 2).c_str());
        auto tgeo = harness::geomeanSpeedup(threadedSpeedups);
        std::printf("geomean speedup (threaded over interp): %s\n",
                    harness::formatCi(tgeo, 2).c_str());
    }

    if (degraded > 0) {
        Table ft({"benchmark", "status", "failures"});
        for (const auto &ws : state.workloads) {
            if (!ws.failed && !ws.quarantined &&
                ws.failureCount == 0)
                continue;
            const char *status = ws.quarantined ? "quarantined"
                : ws.failed                     ? "failed"
                                                : "degraded";
            ft.addRow({ws.name, status,
                       std::to_string(ws.failureCount)});
        }
        std::printf("\nfailure summary (%d of %zu workloads "
                    "affected):\n%s",
                    degraded, state.workloads.size(),
                    ft.render().c_str());
    }

    if (interrupted) {
        if (!opt.quiet) {
            if (!opt.resumePath.empty())
                inform("interrupted; resume with: rigorbench suite "
                       "--resume %s",
                       opt.resumePath.c_str());
            else
                inform("interrupted; rerun with --resume FILE to "
                       "make interruptions resumable");
        }
        return kExitInterrupted;
    }
    // Partial results are a success; only a suite where *nothing*
    // could be measured exits nonzero.
    if (speedups.empty())
        return kExitFailure;
    if (!opt.archiveDir.empty() && !archiveRuns.empty())
        archiveAppend(opt, archiveRuns);
    return kExitSuccess;
}

compare::CompareConfig
compareConfig(const Options &opt)
{
    compare::CompareConfig cfg;
    cfg.confidence = opt.confidence;
    cfg.resamples = opt.resamples;
    cfg.seed = opt.seed;
    cfg.baselineTier = opt.baseTier;
    cfg.candidateTier = opt.candTier;
    return cfg;
}

/**
 * Resolve both refs and run the comparison engine. When `baseOut` /
 * `candOut` are given the resolved entries are handed back, so
 * explain can reuse them without a second archive scan.
 */
compare::CompareReport
loadAndCompare(const Options &opt, const std::string &baseRef,
               const std::string &candRef,
               archive::Entry *baseOut = nullptr,
               archive::Entry *candOut = nullptr)
{
    if (opt.archiveDir.empty())
        fatal("comparing archive entries requires --archive DIR");
    archive::RunArchive ar(opt.archiveDir);
    archive::Entry base = ar.resolve(baseRef);
    archive::Entry cand = ar.resolve(candRef);
    auto report =
        compare::compareEntries(base, cand, compareConfig(opt));
    report.baselineRef = baseRef;
    report.candidateRef = candRef;
    if (baseOut)
        *baseOut = std::move(base);
    if (candOut)
        *candOut = std::move(cand);
    return report;
}

/** `compare <base> <cand> --archive DIR`: two archived entries. */
int
cmdArchiveCompare(const Options &opt)
{
    auto report = loadAndCompare(opt, opt.workload, opt.workload2);
    std::printf("%s", compare::renderMarkdown(report).c_str());
    if (!opt.jsonPath.empty()) {
        atomicWriteFile(opt.jsonPath,
                        compare::reportToJson(report).dump(2) + "\n");
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return kExitSuccess;
}

/** `explain <base> <cand> --archive DIR`: attribute the ratio. */
int
cmdExplain(const Options &opt)
{
    if (opt.workload2.empty())
        fatal("explain takes two entry refs, e.g. 'explain HEAD~1 "
              "HEAD --archive DIR'");
    archive::Entry base, cand;
    auto report =
        loadAndCompare(opt, opt.workload, opt.workload2, &base,
                       &cand);
    auto ex = explain::explainEntries(base, cand, report);
    std::printf("%s", explain::renderMarkdown(ex).c_str());
    if (!opt.jsonPath.empty()) {
        atomicWriteFile(opt.jsonPath,
                        explain::reportToJson(ex).dump(2) + "\n");
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return kExitSuccess;
}

/** `gate <base> [<cand>] --archive DIR`: exit 4 on regression. */
int
cmdGate(const Options &opt)
{
    std::string candRef =
        opt.workload2.empty() ? "HEAD" : opt.workload2;
    archive::Entry base, cand;
    auto report = loadAndCompare(opt, opt.workload, candRef, &base,
                                 &cand);
    auto gate = compare::evaluateGate(report, opt.gateThresholdPct);
    std::printf("%s", compare::renderGate(gate, report).c_str());
    if (opt.explainGate && !gate.pass) {
        // Root-cause every failing pair, worst first (the gate's
        // regression order), straight into the CI log.
        auto ex = explain::explainEntries(base, cand, report);
        std::printf("\n");
        for (const auto &r : gate.regressions) {
            const explain::PairExplanation *pe =
                explain::findPair(ex, r.workload, r.tier);
            if (pe)
                std::printf("%s\n",
                            explain::renderPair(*pe).c_str());
        }
    }
    if (!opt.jsonPath.empty()) {
        Json root = compare::reportToJson(report);
        Json g = Json::object();
        g.set("pass", gate.pass);
        g.set("threshold_pct", gate.thresholdPct);
        Json regs = Json::array();
        for (const auto &r : gate.regressions) {
            Json j = Json::object();
            j.set("workload", r.workload);
            j.set("tier", r.tier);
            j.set("slowdown_pct", r.slowdownPct);
            regs.push(std::move(j));
        }
        g.set("regressions", std::move(regs));
        root.set("gate", std::move(g));
        atomicWriteFile(opt.jsonPath, root.dump(2) + "\n");
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return gate.pass ? kExitSuccess : kExitRegression;
}

/** `archive list|prune --archive DIR`: hygiene operations. */
int
cmdArchive(const Options &opt)
{
    if (opt.archiveDir.empty())
        fatal("'archive %s' requires --archive DIR",
              opt.workload.c_str());
    archive::RunArchive ar(opt.archiveDir);
    if (opt.workload == "list") {
        archive::ScanResult scan = ar.scan();
        Table t({"id", "label", "command", "runs", "profile",
                 "bytes", "fingerprint"});
        for (const auto &e : scan.entries) {
            // "profile" says whether `explain` can attribute this
            // entry: every run profiled, some, or none (legacy v1).
            const char *profile =
                e.profileCount == 0 ? "no"
                : e.profileCount >= e.runCount ? "yes"
                                               : "partial";
            t.addRow({std::to_string(e.id),
                      e.label.empty() ? "-" : e.label, e.command,
                      std::to_string(e.runCount), profile,
                      fmtCount(e.sizeBytes), e.fingerprint});
        }
        std::printf("%s", t.render().c_str());
        std::printf("%zu entr%s in %s", scan.entries.size(),
                    scan.entries.size() == 1 ? "y" : "ies",
                    opt.archiveDir.c_str());
        if (!scan.quarantined.empty())
            std::printf(", %zu quarantined this scan",
                        scan.quarantined.size());
        if (scan.quarantinedPresent > 0)
            std::printf(", %d quarantined file(s) present "
                        "(see 'rigorbench fsck')",
                        scan.quarantinedPresent);
        std::printf("\n");
        return kExitSuccess;
    }
    if (opt.workload == "prune") {
        if (opt.keep < 1)
            fatal("'archive prune' requires --keep N");
        int removed = ar.prune(opt.keep);
        std::printf("pruned %d entr%s from %s (kept newest %d)\n",
                    removed, removed == 1 ? "y" : "ies",
                    opt.archiveDir.c_str(), opt.keep);
        return kExitSuccess;
    }
    fatal("unknown archive action '%s' (expected list or prune)",
          opt.workload.c_str());
}

/** `fsck --archive DIR [--repair]`: verify / repair an archive. */
int
cmdFsck(const Options &opt)
{
    archive::FsckReport report =
        archive::fsckArchive(opt.archiveDir, opt.repair, opt.metrics);
    std::printf("%s", archive::renderFsck(report).c_str());
    if (!opt.jsonPath.empty()) {
        atomicWriteFile(opt.jsonPath,
                        archive::fsckToJson(report).dump(2) + "\n");
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    // The verdict is about the archive's state *now*: a repaired
    // archive exits 0 even though defects were found, an unrepaired
    // (or unrepairable) one exits 5 so scripts can gate on it.
    return report.clean() ? kExitSuccess : kExitCorruption;
}

/** Flush --metrics / --trace files after the command finished. */
void
writeObservability(const Options &opt)
{
    if (opt.metrics && !opt.metricsPath.empty()) {
        atomicWriteFile(opt.metricsPath,
                        opt.metrics->toJson().dump(2) + "\n");
        std::printf("wrote %s\n", opt.metricsPath.c_str());
    }
    if (opt.trace && !opt.tracePath.empty()) {
        opt.trace->endSpansTo(0);
        atomicWriteFile(opt.tracePath,
                        opt.trace->toJson().dump(1) + "\n");
        std::printf("wrote %s\n", opt.tracePath.c_str());
    }
}

int
dispatch(const Options &opt, const harness::FaultInjector *faults)
{
    if (opt.command == "disasm")
        return cmdDisasm(opt);
    if (opt.command == "run")
        return cmdRun(opt, faults);
    if (opt.command == "compare") {
        // One positional: the legacy interp-vs-adaptive measurement.
        // Two positionals: compare two archived entries.
        if (!opt.workload2.empty())
            return cmdArchiveCompare(opt);
        if (!opt.archiveDir.empty())
            fatal("compare with --archive takes two entry refs, "
                  "e.g. 'compare HEAD~1 HEAD --archive DIR'");
        return cmdCompare(opt, faults);
    }
    if (opt.command == "gate")
        return cmdGate(opt);
    if (opt.command == "explain")
        return cmdExplain(opt);
    if (opt.command == "archive")
        return cmdArchive(opt);
    if (opt.command == "fsck")
        return cmdFsck(opt);
    if (opt.command == "sequential")
        return cmdSequential(opt, faults);
    if (opt.command == "profile")
        return cmdProfile(opt);
    if (opt.command == "suite")
        return cmdSuite(opt, faults);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    installInterruptHandlers();
    Options opt;
    try {
        opt = parseArgs(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitUsage;
    }
    try {
        if (opt.quiet)
            setQuiet(true);
        harness::FaultInjector injector(opt.faultPlan, opt.seed);
        const harness::FaultInjector *faults =
            opt.faultPlan.empty() ? nullptr : &injector;
        // io:* faults arm on durable-I/O calls, not invocations, so
        // they install into the process-wide FsOps seam before any
        // durable work starts. Never uninstalled: the injector must
        // outlive every write, including the observability flush.
        harness::FaultyFsOps faultyFs(opt.faultPlan.ioFaults,
                                      opt.seed);
        if (!opt.faultPlan.ioFaults.empty())
            setFsOps(&faultyFs);
        if (opt.command == "list")
            return cmdList();
        if (opt.command == "env")
            return cmdEnv();
        if (opt.workload.empty() && opt.command != "suite" &&
            opt.command != "fsck")
            usage();

        MetricsRegistry metrics;
        TraceEmitter trace;
        if (!opt.metricsPath.empty())
            opt.metrics = &metrics;
        if (!opt.tracePath.empty())
            opt.trace = &trace;

        int rc = dispatch(opt, faults);
        // Partial artifacts are flushed even after an interrupt, so
        // what was measured is never lost.
        writeObservability(opt);
        // stdout itself is an artifact consumers parse; a full disk
        // or closed pipe must be a loud failure, not silence.
        if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
            std::fprintf(stderr,
                         "error: writing to stdout failed\n");
            return kExitFailure;
        }
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitFailure;
    }
}
